// Quickstart: run a workload on the simulated Fabric network, extract the
// blockchain log, and let BlockOptR recommend optimizations — the full
// paper §4 workflow in ~60 lines.
//
//   $ ./example_quickstart
#include <cstdio>

#include "blockopt/apply/optimizer.h"
#include "blockopt/log/preprocess.h"
#include "blockopt/metrics/metrics.h"
#include "blockopt/recommend/recommender.h"
#include "blockopt/recommend/report.h"
#include "driver/experiment.h"
#include "workload/synthetic.h"

using namespace blockoptr;

int main() {
  // 1. Describe the workload (paper Table 2 control variables) and the
  //    network (2 orgs, Majority endorsement, block count 300).
  SyntheticConfig workload;
  workload.type = SyntheticWorkloadType::kUniform;
  workload.num_txs = 5000;
  workload.send_rate = 300;

  ExperimentConfig experiment;
  experiment.network = NetworkConfig::Defaults();
  experiment.chaincodes = {"genchain"};
  for (auto& [key, value] : SyntheticSeedState(workload)) {
    experiment.seeds.push_back(SeedEntry{"genchain", key, value});
  }
  experiment.schedule = GenerateSynthetic(workload);

  // 2. Run it.
  auto baseline = RunExperiment(experiment);
  if (!baseline.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("baseline : %s\n", baseline->report.Summary().c_str());

  // 3. BlockOptR: preprocess the ledger into the blockchain log, derive
  //    the metrics, and emit multi-level recommendations.
  BlockchainLog log = ExtractBlockchainLog(baseline->ledger);
  LogMetrics metrics = ComputeMetrics(log, MetricsOptions{});
  std::vector<Recommendation> recs = Recommend(metrics, RecommenderOptions{});
  std::printf("\n%s\n", FormatRecommendationReport(metrics, recs).c_str());

  // 4. Apply the recommendations (Table 4) and re-run.
  auto optimized_cfg = ApplyOptimizations(experiment, recs);
  if (!optimized_cfg.ok()) {
    std::fprintf(stderr, "apply failed: %s\n",
                 optimized_cfg.status().ToString().c_str());
    return 1;
  }
  auto optimized = RunExperiment(*optimized_cfg);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimized run failed: %s\n",
                 optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("optimized: %s\n", optimized->report.Summary().c_str());
  std::printf(
      "success rate %+.1f%%, latency %+.1f%%\n",
      100 * RelativeImprovement(baseline->report.SuccessRate(),
                                optimized->report.SuccessRate()),
      100 * RelativeImprovement(baseline->report.AvgLatency(),
                                optimized->report.AvgLatency(),
                                /*lower_is_better=*/true));
  return 0;
}
