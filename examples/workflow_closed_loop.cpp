// Closed-loop workflow demo (paper Figure 6): an automated workflow
// engine triggers transactions based on a process model.
//
//   1. Run the SCM workload and mine its process model from the ledger.
//   2. Redesign the model: drop the illogical edges (process-model
//      pruning at the model level) so audit updates follow the pipeline.
//   3. Hand the redesigned model to the workflow engine, which generates
//      a *compliant* workload.
//   4. Re-run, re-mine, and verify compliance via token-replay
//      conformance — plus auto-tuned thresholds (paper §9 future work).
//
//   $ ./example_workflow_closed_loop
#include <cstdio>

#include "blockopt/eventlog/event_log.h"
#include "blockopt/log/preprocess.h"
#include "blockopt/metrics/metrics.h"
#include "blockopt/recommend/autotune.h"
#include "blockopt/recommend/recommender.h"
#include "blockopt/recommend/report.h"
#include "driver/experiment.h"
#include "mining/alpha_miner.h"
#include "mining/conformance.h"
#include "mining/heuristics_miner.h"
#include "workload/usecase.h"
#include "workload/workflow_engine.h"

using namespace blockoptr;

int main() {
  // --- 1. baseline run + mined model ---------------------------------
  UseCaseConfig uc;
  uc.num_txs = 8000;
  ExperimentConfig experiment;
  experiment.network = NetworkConfig::Defaults();
  experiment.chaincodes = {"scm"};
  experiment.schedule = GenerateScmWorkload(uc);
  auto baseline = RunExperiment(experiment);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("baseline: %s\n", baseline->report.Summary().c_str());

  BlockchainLog log = ExtractBlockchainLog(baseline->ledger);
  auto event_log = EventLog::FromBlockchainLog(log, EventLogOptions{});
  if (!event_log.ok()) return 1;
  auto mined = HeuristicsMiner::Mine(event_log->Traces());
  std::printf("mined model: %zu activities, %zu dependency edges\n",
              mined.activities.size(), mined.edges.size());

  // --- 2. redesign the model ------------------------------------------
  // Pruning at the model level: keep only the intended pipeline plus the
  // audit/query activities at the end (the Figure 4 redesign).
  HeuristicsMiner::DependencyGraph redesigned;
  redesigned.activities = {"PushASN", "Ship",          "QueryASN",
                           "Unload",  "UpdateAuditInfo"};
  redesigned.edges[{"PushASN", "Ship"}] = 0.95;
  redesigned.edges[{"Ship", "QueryASN"}] = 0.95;
  redesigned.edges[{"QueryASN", "Unload"}] = 0.95;
  redesigned.edges[{"Unload", "UpdateAuditInfo"}] = 0.8;
  redesigned.start_activities = {"PushASN"};
  redesigned.end_activities = {"Unload", "UpdateAuditInfo"};

  // --- 3. regenerate a compliant workload -----------------------------
  WorkflowEngine::Options engine;
  engine.num_cases = 1800;
  engine.send_rate = 300;
  engine.chaincode = "scm";
  // Stage gaps must clear the ~1.1s commit latency, or the regenerated
  // pipeline recreates the very conflicts the redesign removes.
  engine.min_step_gap_s = 1.5;
  engine.mean_step_gap_s = 1.0;
  auto compliant = WorkflowEngine::Generate(
      redesigned, engine,
      [](const std::string& case_id, const std::string& activity) {
        if (activity == "UpdateAuditInfo") {
          return std::vector<std::string>{case_id, "audit"};
        }
        return std::vector<std::string>{case_id};
      });
  if (!compliant.ok()) {
    std::fprintf(stderr, "%s\n", compliant.status().ToString().c_str());
    return 1;
  }
  std::printf("workflow engine generated %zu transactions from the "
              "redesigned model\n",
              compliant->size());

  ExperimentConfig redo = experiment;
  redo.schedule = std::move(*compliant);
  auto rerun = RunExperiment(redo);
  if (!rerun.ok()) {
    std::fprintf(stderr, "%s\n", rerun.status().ToString().c_str());
    return 1;
  }
  std::printf("redesigned run: %s\n", rerun->report.Summary().c_str());

  // --- 4. compliance + auto-tuned thresholds --------------------------
  BlockchainLog new_log = ExtractBlockchainLog(rerun->ledger);
  auto new_events = EventLog::FromBlockchainLog(new_log, EventLogOptions{});
  if (new_events.ok()) {
    PetriNet target = AlphaMiner::Mine(new_events->Traces());
    double new_fit = ReplayTraces(target, new_events->Traces()).Fitness();
    double old_fit = ReplayTraces(target, event_log->Traces()).Fitness();
    std::printf("conformance vs redesigned model: new %.3f, old %.3f\n",
                new_fit, old_fit);
  }

  LogMetrics metrics = ComputeMetrics(new_log, MetricsOptions{});
  RecommenderOptions tuned = AutoTuneThresholds(metrics);
  std::printf("auto-tuned thresholds: Rt1=%.0f TPS, Et=%.2f, It=%.2f\n",
              tuned.rt1, tuned.et, tuned.it);
  auto recs = Recommend(metrics, tuned);
  std::printf("remaining recommendations after redesign: %s\n",
              recs.empty() ? "(none)" : RecommendationNames(recs).c_str());
  return 0;
}
