// Digital-voting scenario (paper §6.2 / Figure 16): the base contract
// tallies votes per party, so every Vote read-modify-writes one of four
// party keys and most votes fail during the election rush. BlockOptR
// detects the hotkeys and recommends a data-model alteration (key by
// voter); with the altered contract every voter writes a unique key and
// the success rate reaches 100%.
//
//   $ ./example_digital_voting
#include <cstdio>

#include "blockopt/apply/optimizer.h"
#include "blockopt/log/preprocess.h"
#include "blockopt/metrics/metrics.h"
#include "blockopt/recommend/recommender.h"
#include "blockopt/recommend/report.h"
#include "driver/experiment.h"
#include "workload/usecase.h"

using namespace blockoptr;

int main() {
  ExperimentConfig experiment;
  experiment.network = NetworkConfig::Defaults();
  experiment.chaincodes = {"dv"};
  for (auto& [k, v] : DvSeedState()) {
    experiment.seeds.push_back(SeedEntry{"dv", k, v});
  }
  UseCaseConfig uc;
  experiment.schedule = GenerateDvWorkload(uc);

  std::printf("== Digital voting: party-keyed contract ==\n");
  auto baseline = RunExperiment(experiment);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("baseline : %s\n\n", baseline->report.Summary().c_str());

  BlockchainLog log = ExtractBlockchainLog(baseline->ledger);
  LogMetrics metrics = ComputeMetrics(log, MetricsOptions{});
  auto recs = Recommend(metrics, RecommenderOptions{});
  std::printf("%s\n", FormatRecommendationReport(metrics, recs).c_str());

  // The failure-rate distribution pinpoints the voting phase (paper §7:
  // rate control can then target just those clients/periods).
  std::printf("failure-rate timeline (failures per second):\n  ");
  for (size_t i = 0; i < metrics.frd.size(); i += 5) {
    std::printf("%4.0f ", metrics.frd[i]);
  }
  std::printf("\n\n");

  auto optimized_cfg = ApplyOptimizations(experiment, recs);
  if (!optimized_cfg.ok()) {
    std::fprintf(stderr, "%s\n", optimized_cfg.status().ToString().c_str());
    return 1;
  }
  auto optimized = RunExperiment(*optimized_cfg);
  if (!optimized.ok()) {
    std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("== Voter-keyed contract (data model altered) ==\n");
  std::printf("optimized: %s\n", optimized->report.Summary().c_str());
  std::printf("\nsuccess rate %.1f%% -> %.1f%%\n",
              100 * baseline->report.SuccessRate(),
              100 * optimized->report.SuccessRate());
  return 0;
}
