// Supply-chain management scenario (paper §3, §6.2 / Figures 2, 4, 13):
// runs the SCM workload, mines the process model from the blockchain
// event log with the Alpha algorithm, shows the illogical branches,
// applies the recommended redesign (reordering + pruning), and verifies
// compliance with the new model via token-replay conformance.
//
//   $ ./example_scm_pipeline            # prints models + results
//   $ ./example_scm_pipeline --dot      # also dumps Graphviz DOT models
#include <cstdio>
#include <cstring>

#include "blockopt/apply/optimizer.h"
#include "blockopt/eventlog/event_log.h"
#include "blockopt/log/preprocess.h"
#include "blockopt/provenance.h"
#include "blockopt/recommend/recommender.h"
#include "blockopt/recommend/report.h"
#include "driver/experiment.h"
#include "mining/alpha_miner.h"
#include "mining/conformance.h"
#include "mining/dfg.h"
#include "mining/dot_export.h"
#include "workload/usecase.h"

using namespace blockoptr;

namespace {

Result<EventLog> MineEventLog(const Ledger& ledger) {
  BlockchainLog log = ExtractBlockchainLog(ledger);
  return EventLog::FromBlockchainLog(log, EventLogOptions{});
}

void PrintTopVariants(const EventLog& event_log, int top_n) {
  auto variants = event_log.Variants();
  std::printf("  %zu cases, %zu distinct traces; most frequent:\n",
              event_log.num_cases(), variants.size());
  for (int i = 0; i < top_n && i < static_cast<int>(variants.size()); ++i) {
    std::string flow;
    for (const auto& a : variants[static_cast<size_t>(i)].first) {
      if (!flow.empty()) flow += " -> ";
      flow += a;
    }
    std::printf("    %5zux  %s\n", variants[static_cast<size_t>(i)].second,
                flow.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool dump_dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  UseCaseConfig uc;
  uc.num_txs = 10000;
  ExperimentConfig experiment;
  experiment.network = NetworkConfig::Defaults();
  experiment.chaincodes = {"scm"};
  experiment.schedule = GenerateScmWorkload(uc);

  std::printf("== SCM baseline ==\n");
  auto baseline = RunExperiment(experiment);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", baseline->report.Summary().c_str());

  auto event_log = MineEventLog(baseline->ledger);
  if (!event_log.ok()) {
    std::fprintf(stderr, "%s\n", event_log.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Derived process model (Figure 2 view) ==\n");
  PrintTopVariants(*event_log, 5);
  PetriNet before_model = AlphaMiner::Mine(event_log->Traces());
  if (dump_dot) {
    std::printf("\n%s\n", PetriNetToDot(before_model).c_str());
  }

  // Provenance: the base (unpruned) contract commits deviations exactly
  // so they can be tracked to their invokers (paper §3).
  BlockchainLog log = ExtractBlockchainLog(baseline->ledger);
  ProvenanceReport provenance = TrackDeviations(log);
  std::printf("\n== Provenance: who deviated from the process model ==\n");
  std::printf("%zu deviations committed on-chain\n",
              provenance.deviations.size());
  for (const auto& [org, count] : provenance.by_org) {
    std::printf("  %-14s %llu deviating transactions\n", org.c_str(),
                static_cast<unsigned long long>(count));
  }

  // Recommendations + redesign.
  auto recs = RecommendFromLog(log, RecommenderOptions{});
  std::printf("\n== Recommendations ==\n%s\n",
              RecommendationNames(recs).c_str());

  auto optimized_cfg = ApplyOptimizations(experiment, recs);
  if (!optimized_cfg.ok()) {
    std::fprintf(stderr, "%s\n", optimized_cfg.status().ToString().c_str());
    return 1;
  }
  auto optimized = RunExperiment(*optimized_cfg);
  if (!optimized.ok()) {
    std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("== After redesign (Figure 4 view) ==\n");
  std::printf("%s\n", optimized->report.Summary().c_str());

  auto new_event_log = MineEventLog(optimized->ledger);
  if (new_event_log.ok()) {
    PrintTopVariants(*new_event_log, 5);
    // Conformance: the redesigned behaviour must fit the model mined from
    // the redesigned run far better than the old behaviour does.
    PetriNet after_model = AlphaMiner::Mine(new_event_log->Traces());
    double self_fitness =
        ReplayTraces(after_model, new_event_log->Traces()).Fitness();
    double old_fitness =
        ReplayTraces(after_model, event_log->Traces()).Fitness();
    std::printf(
        "\nconformance vs redesigned model: new traces %.3f, old traces "
        "%.3f\n",
        self_fitness, old_fitness);
    if (dump_dot) {
      std::printf("\n%s\n", PetriNetToDot(after_model).c_str());
    }
  }

  std::printf("\nthroughput %+.0f%%, success rate %+.0f%%\n",
              100 * RelativeImprovement(baseline->report.Throughput(),
                                        optimized->report.Throughput()),
              100 * RelativeImprovement(baseline->report.SuccessRate(),
                                        optimized->report.SuccessRate()));
  return 0;
}
