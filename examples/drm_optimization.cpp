// Digital-rights-management scenario (paper §6.2 / Figure 14): a
// Play-heavy workload makes popular music records hotkeys. BlockOptR
// recommends delta writes and smart-contract partitioning; this example
// applies each data-level optimization separately and compares.
//
//   $ ./example_drm_optimization
#include <cstdio>

#include "blockopt/apply/optimizer.h"
#include "blockopt/log/preprocess.h"
#include "blockopt/metrics/metrics.h"
#include "blockopt/recommend/recommender.h"
#include "blockopt/recommend/report.h"
#include "driver/experiment.h"
#include "workload/usecase.h"

using namespace blockoptr;

namespace {

ExperimentConfig BaseExperiment() {
  UseCaseConfig uc;
  uc.num_txs = 10000;
  ExperimentConfig cfg;
  cfg.network = NetworkConfig::Defaults();
  cfg.chaincodes = {"drm"};
  for (auto& [k, v] : DrmSeedState()) {
    cfg.seeds.push_back(SeedEntry{"drm", k, v});
  }
  cfg.schedule = GenerateDrmWorkload(uc);
  return cfg;
}

void Report(const char* label, const PerformanceReport& baseline,
            const PerformanceReport& variant) {
  std::printf("%-22s %s\n", label, variant.Summary().c_str());
  std::printf("%-22s   tput %+.0f%%  success %+.0f%%  latency %+.0f%%\n", "",
              100 * RelativeImprovement(baseline.Throughput(),
                                        variant.Throughput()),
              100 * RelativeImprovement(baseline.SuccessRate(),
                                        variant.SuccessRate()),
              100 * RelativeImprovement(baseline.AvgLatency(),
                                        variant.AvgLatency(), true));
}

}  // namespace

int main() {
  ExperimentConfig base = BaseExperiment();
  auto baseline = RunExperiment(base);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("%-22s %s\n", "baseline (drm)",
              baseline->report.Summary().c_str());

  // What does BlockOptR see?
  BlockchainLog log = ExtractBlockchainLog(baseline->ledger);
  LogMetrics metrics = ComputeMetrics(log, MetricsOptions{});
  auto recs = Recommend(metrics, RecommenderOptions{});
  std::printf("\nhot keys: ");
  for (const auto& k : metrics.hot_keys) std::printf("%s ", k.c_str());
  std::printf("\nrecommendations: %s\n\n",
              RecommendationNames(recs).c_str());

  // Apply each recommendation in isolation (the per-bar view of Fig 14).
  for (const auto& rec : recs) {
    auto cfg = ApplyOptimizations(base, {rec});
    if (!cfg.ok()) continue;
    auto out = RunExperiment(*cfg);
    if (!out.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   std::string(RecommendationTypeName(rec.type)).c_str(),
                   out.status().ToString().c_str());
      continue;
    }
    Report(std::string(RecommendationTypeName(rec.type)).c_str(),
           baseline->report, out->report);
  }

  // All together.
  auto all_cfg = ApplyOptimizations(base, recs);
  if (all_cfg.ok()) {
    auto out = RunExperiment(*all_cfg);
    if (out.ok()) Report("all combined", baseline->report, out->report);
  }

  // The delta-write trade-off the paper calls out: CalcRevenue has to
  // aggregate the delta keys, so its own latency rises while the overall
  // workload improves. Show it by comparing p99.
  auto delta_cfg =
      ApplyOptimizations(base, {[&] {
        Recommendation r;
        r.type = RecommendationType::kDeltaWrites;
        return r;
      }()});
  if (delta_cfg.ok()) {
    auto out = RunExperiment(*delta_cfg);
    if (out.ok()) {
      std::printf(
          "\ndelta-write trade-off: baseline p99 latency %.3fs, delta p99 "
          "%.3fs (CalcRevenue now aggregates %d-key ranges)\n",
          baseline->report.LatencyPercentile(99),
          out->report.LatencyPercentile(99), kDrmCatalogSize);
    }
  }
  return 0;
}
