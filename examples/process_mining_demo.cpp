// Process-mining walkthrough on the loan-application process (paper
// §5.1.3 / §6.3): generates the BPI-2017-style event log, runs it through
// the chain, rebuilds the event log *from the ledger*, and mines it with
// both the Alpha algorithm and the heuristics miner. Also demonstrates
// the CaseID derivation of §4.2 choosing the applicationID over the
// employeeID.
//
//   $ ./example_process_mining_demo
#include <cstdio>

#include "blockopt/eventlog/case_id.h"
#include "blockopt/eventlog/event_log.h"
#include "blockopt/log/preprocess.h"
#include "blockopt/metrics/metrics.h"
#include "driver/experiment.h"
#include "mining/alpha_miner.h"
#include "mining/conformance.h"
#include "mining/dfg.h"
#include "mining/dot_export.h"
#include "mining/fuzzy_miner.h"
#include "mining/heuristics_miner.h"
#include "mining/precision.h"
#include "workload/lap_log.h"

using namespace blockoptr;

int main() {
  // 1. Generate the loan-application event log and run it at 10 TPS (the
  //    paper's manual-processing scenario).
  LapLogConfig lc;
  lc.num_applications = 500;
  lc.num_events = 5000;
  auto events = GenerateLapEventLog(lc);
  std::printf("generated %zu events over %d applications\n", events.size(),
              lc.num_applications);

  ExperimentConfig experiment;
  experiment.network = NetworkConfig::Defaults();
  experiment.chaincodes = {"lap"};
  experiment.schedule = LapScheduleFromLog(events, 10.0);
  auto out = RunExperiment(experiment);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }
  std::printf("chain run: %s\n\n", out->report.Summary().c_str());

  // 2. Rebuild the event log from the ledger. The CaseID is *derived*:
  //    arg0 is the employee (50 values), arg1 the application (500) — the
  //    automated derivation must pick the application.
  BlockchainLog log = ExtractBlockchainLog(out->ledger);
  auto derivation = DeriveCaseIdColumn(log);
  if (!derivation.ok()) {
    std::fprintf(stderr, "%s\n", derivation.status().ToString().c_str());
    return 1;
  }
  std::printf("derived CaseID column: arg[%d] (%zu cases, coverage %.1f%%)\n",
              derivation->arg_index, derivation->cardinality,
              100 * derivation->coverage);

  auto event_log = EventLog::FromBlockchainLog(log, EventLogOptions{});
  if (!event_log.ok()) {
    std::fprintf(stderr, "%s\n", event_log.status().ToString().c_str());
    return 1;
  }
  auto traces = event_log->Traces();

  // 3. Mine with the Alpha algorithm (paper Figure 2/4 method) and check
  //    how well the model replays its own log.
  PetriNet net = AlphaMiner::Mine(traces);
  ConformanceResult fit = ReplayTraces(net, traces);
  std::printf("\nAlpha miner: %zu transitions, %zu places\n",
              net.num_transitions(), net.num_places());
  std::printf("token-replay fitness on own log: %.3f (%llu/%llu traces "
              "perfect)\n",
              fit.Fitness(),
              static_cast<unsigned long long>(fit.perfectly_fitting_traces),
              static_cast<unsigned long long>(fit.traces_replayed));

  // 3b. Model quality, both axes: fitness (does the model allow the
  //     observed behaviour?) and escaping-edges precision (does it allow
  //     much more?).
  double precision = EscapingEdgesPrecision(net, traces);
  std::printf("escaping-edges precision: %.3f\n", precision);

  // 3c. Fuzzy miner: the simplified map (rare activities clustered).
  auto fuzzy = FuzzyMiner::Mine(traces);
  std::printf("\nfuzzy miner: %zu significant activities, %zu clusters, "
              "%zu kept edges\n",
              fuzzy.activities.size(), fuzzy.clusters.size(),
              fuzzy.edges.size());

  // 4. Heuristics miner view: the noise-robust dependency graph.
  auto deps = HeuristicsMiner::Mine(traces);
  std::printf("\nheuristics miner: %zu dependency edges, e.g.\n",
              deps.edges.size());
  int shown = 0;
  for (const auto& [edge, strength] : deps.edges) {
    if (shown++ >= 8) break;
    std::printf("  %-24s -> %-24s (%.2f)\n", edge.first.c_str(),
                edge.second.c_str(), strength);
  }

  // 5. Frequency view (what Disco/Celonis would show).
  DirectlyFollowsGraph dfg(traces);
  std::printf("\ndirectly-follows counts out of A_Create:\n");
  for (const auto& a : dfg.activities()) {
    uint64_t n = dfg.EdgeCount("A_Create", a);
    if (n > 0) std::printf("  A_Create -> %-24s %llu\n", a.c_str(),
                           static_cast<unsigned long long>(n));
  }

  std::printf("\n(d) run with a DOT viewer:\n  %s | head -5 ...\n",
              "example_process_mining_demo renders via PetriNetToDot()");
  std::string dot = PetriNetToDot(net);
  std::printf("DOT model size: %zu bytes\n", dot.size());
  return 0;
}
