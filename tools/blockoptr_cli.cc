// blockoptr — command-line front end for the BlockOptR pipeline.
//
// Runs a workload on the simulated Fabric network, extracts the blockchain
// log, derives metrics, prints the recommendation report, and (optionally)
// applies the recommendations and re-runs — the complete paper workflow
// from one command. Analysis-ready artefacts (CSV / JSON / XES / DOT) can
// be exported for external tools.
//
// Examples:
//   blockoptr run --workload=synthetic --type=rangeread --rate=300
//   blockoptr run --workload=drm --apply --jobs=4
//   blockoptr run --workload=lap --rate=10 --out-xes=lap.xes --mine
//   blockoptr run --workload=synthetic --orgs=4 --policy=P1 --autotune
//   blockoptr sweep --set=table3 --jobs=0
//   blockoptr sweep --block-counts=50,300,1000 --jobs=4
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "blockopt/apply/optimizer.h"
#include "blockopt/eventlog/event_log.h"
#include "blockopt/eventlog/xes_export.h"
#include "blockopt/log/export.h"
#include "blockopt/log/preprocess.h"
#include "blockopt/metrics/metrics.h"
#include "blockopt/recommend/autotune.h"
#include "blockopt/recommend/evidence.h"
#include "blockopt/recommend/recommender.h"
#include "blockopt/recommend/report.h"
#include "blockopt/stream/export.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "driver/experiment.h"
#include "driver/presets.h"
#include "driver/sweep.h"
#include "telemetry/bottleneck.h"
#include "telemetry/export.h"
#include "mining/alpha_miner.h"
#include "mining/conformance.h"
#include "mining/dot_export.h"
#include "workload/event_log_csv.h"
#include "workload/lap_log.h"
#include "workload/synthetic.h"
#include "workload/usecase.h"

namespace blockoptr {
namespace {

struct CliArgs {
  std::map<std::string, std::string> flags;

  bool Has(const std::string& key) const { return flags.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::strtod(it->second.c_str(),
                                                      nullptr);
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = flags.find(key);
    return it == flags.end()
               ? fallback
               : static_cast<int>(std::strtol(it->second.c_str(), nullptr,
                                              10));
  }
};

int Usage() {
  std::printf(
      "usage: blockoptr run [options]\n"
      "       blockoptr sweep [options]\n"
      "\n"
      "workload selection:\n"
      "  --workload=synthetic|scm|drm|ehr|dv|lap|csv  (default synthetic)\n"
      "  --csv=FILE       external event log (with --workload=csv); columns\n"
      "                   case,activity[,resource,amount,type]\n"
      "  --type=uniform|read|insert|update|rangeread  synthetic mix\n"
      "  --txs=N          transactions (default 10000)\n"
      "  --rate=R         send rate in TPS (default 300)\n"
      "  --key-skew=X     synthetic key skew factor (default 1)\n"
      "  --tx-skew=F      fraction of txs through Org1 (default 0)\n"
      "  --seed=N         workload/network seed (default 1)\n"
      "\n"
      "network configuration (paper Table 2):\n"
      "  --orgs=N         organizations (default 2)\n"
      "  --policy=P1|P2|P3|P4 or a policy expression (default P3)\n"
      "  --block-count=N  orderer batch size (default 300)\n"
      "  --block-timeout=S  batch timeout seconds (default 1)\n"
      "  --endorser-skew=W  endorser distribution skew (default 0)\n"
      "  --scheduler=fabricpp|fabricsharp   orderer reordering baseline\n"
      "\n"
      "multi-channel sharding (parallel per-channel event cores):\n"
      "  --channels=N     shard the experiment into N Fabric channels\n"
      "                   (default 1 = classic single-channel run); the\n"
      "                   workload is partitioned deterministically and\n"
      "                   channels couple through the shared clients\n"
      "  --sim-threads=K  worker threads advancing channels in lockstep\n"
      "                   (default 1, 0 = all cores; exports are\n"
      "                   field-for-field identical for every K)\n"
      "  --sim-epoch=S    lockstep epoch in sim seconds (default: derived\n"
      "                   from the latency model's coupling latency)\n"
      "  --channel-weights=A,B,...  relative per-channel load (skewed\n"
      "                   channel traffic; default balanced)\n"
      "  multi-channel observability exports write one suffixed file per\n"
      "  channel (prom.txt -> prom-0.txt, each labeled channel=\"N\")\n"
      "\n"
      "fault injection (deterministic, scheduled in sim time):\n"
      "  --faults=SPEC    semicolon-separated fault events, each a preset\n"
      "                   name plus optional @key=value,... overrides\n"
      "                   (keys: t, dur, node, org, factor, period,\n"
      "                   offset). presets: leader-crash, node-crash,\n"
      "                   endorser-outage, endorser-slow, burst, diurnal,\n"
      "                   hotkey-shift. examples:\n"
      "                     --faults=leader-crash@t=10,dur=5\n"
      "                     --faults=\"endorser-slow@org=2,factor=8;"
      "burst@t=30,dur=5\"\n"
      "\n"
      "analysis / actions:\n"
      "  --autotune       derive thresholds from the log (vs paper defaults)\n"
      "  --apply          apply the recommendations and re-run: one what-if\n"
      "                   run per recommendation plus the combined run\n"
      "  --jobs=N         worker threads for sweep / what-if re-runs\n"
      "                   (default 1 = serial, 0 = all cores; results are\n"
      "                   identical for every N)\n"
      "  --mine           mine the process model (Alpha) and report fitness\n"
      "  --out-log=F.csv  export the blockchain log as CSV\n"
      "  --out-json=F     export the blockchain log as JSON\n"
      "  --out-xes=F      export the event log as XES (ProM/Disco)\n"
      "  --out-dot=F      export the mined Petri net as Graphviz DOT\n"
      "\n"
      "observability (any of these enables telemetry for the run):\n"
      "  --trace-out=F      export Chrome trace-event JSON (open in\n"
      "                     Perfetto / chrome://tracing)\n"
      "  --trace-csv=F      export the span dump as CSV\n"
      "  --metrics-out=F    export metrics + time series + bottleneck\n"
      "                     attribution as JSON\n"
      "  --prom-out=F       export Prometheus text exposition\n"
      "  --report-out=F     export a self-contained HTML report (inline\n"
      "                     SVG charts + bottleneck attribution)\n"
      "  --sample-period=S  continuous-sampler period in sim seconds\n"
      "                     (default 0.5; 0 disables the sampler)\n"
      "  --txtrace          per-transaction flight recorder: packed\n"
      "                     lifecycle events, critical-path extraction,\n"
      "                     tail-latency exemplars (p50/p95/p99/max per\n"
      "                     window) in the JSON/Prometheus/HTML exports\n"
      "  --txtrace-out=F    export the exemplar causal chains as Chrome\n"
      "                     trace-event JSON with flow arrows (implies\n"
      "                     --txtrace; open in Perfetto)\n"
      "  --txtrace-ring=N   flight-recorder ring capacity in events\n"
      "                     (default 65536, rounded to a power of two;\n"
      "                     implies --txtrace)\n"
      "  --txtrace-window=S exemplar window in sim seconds (default 5;\n"
      "                     implies --txtrace)\n"
      "\n"
      "streaming analysis (online, fed at block-commit time):\n"
      "  --stream-analysis  derive the blockchain log incrementally and\n"
      "                     re-evaluate all nine recommendations over a\n"
      "                     sliding window while the run is in flight;\n"
      "                     adds a `stream` section to --metrics-out /\n"
      "                     --prom-out / --report-out\n"
      "  --stream-window=S  evaluation window in sim seconds (default 5;\n"
      "                     implies --stream-analysis)\n"
      "  --stream-apply     apply the first applicable system-level\n"
      "                     recommendation mid-run via a config update\n"
      "                     transaction (implies --stream-analysis)\n"
      "\n"
      "sweep mode (runs a batch of experiments, optionally in parallel):\n"
      "  --set=table3       the paper's 15 Table 3 experiments (default)\n"
      "  --set=channels     the multi-channel presets (balanced, hot-key\n"
      "                     contention, skewed channel load, 8-channel)\n"
      "  --rates=A,B,...    sweep the send rate over the base config\n"
      "  --block-counts=A,B,...  sweep the orderer batch size\n"
      "  all `run` workload/network/stream flags set the sweep's base\n"
      "  config; --jobs=N picks the worker threads (rows identical for\n"
      "  every N); --trace-out/--metrics-out/--prom-out/--report-out write\n"
      "  one suffixed file per sweep point (metrics.json -> metrics-3.json\n"
      "  for point 3)\n");
  return 2;
}

Result<SyntheticWorkloadType> ParseType(const std::string& name) {
  if (name == "uniform") return SyntheticWorkloadType::kUniform;
  if (name == "read") return SyntheticWorkloadType::kReadHeavy;
  if (name == "insert") return SyntheticWorkloadType::kInsertHeavy;
  if (name == "update") return SyntheticWorkloadType::kUpdateHeavy;
  if (name == "rangeread") return SyntheticWorkloadType::kRangeReadHeavy;
  return Status::InvalidArgument("unknown workload type '" + name + "'");
}

Result<EndorsementPolicy> ParsePolicyFlag(const std::string& text,
                                          int num_orgs) {
  if (text.size() == 2 && text[0] == 'P' && text[1] >= '1' && text[1] <= '4') {
    return EndorsementPolicy::Preset(text[1] - '0', num_orgs);
  }
  return EndorsementPolicy::Parse(text);
}

Result<ExperimentConfig> BuildExperiment(const CliArgs& args) {
  ExperimentConfig cfg;
  cfg.network = NetworkConfig::Defaults();
  cfg.network.num_orgs = args.GetInt("orgs", 2);
  cfg.network.seed = static_cast<uint64_t>(args.GetInt("seed", 1)) + 41;
  cfg.network.endorser_dist_skew = args.GetDouble("endorser-skew", 0);
  cfg.network.block_cutting.max_tx_count =
      static_cast<uint32_t>(args.GetInt("block-count", 300));
  cfg.network.block_cutting.timeout_s = args.GetDouble("block-timeout", 1.0);
  auto policy =
      ParsePolicyFlag(args.Get("policy", "P3"), cfg.network.num_orgs);
  if (!policy.ok()) return policy.status();
  cfg.network.endorsement_policy = *policy;
  cfg.orderer_scheduler = args.Get("scheduler", "");
  if (args.Has("faults")) {
    auto plan = ParseFaultPlan(args.Get("faults", ""));
    if (!plan.ok()) return plan.status();
    cfg.faults = std::move(*plan);
  }

  cfg.channels = args.GetInt("channels", 1);
  if (cfg.channels < 1) {
    return Status::InvalidArgument("--channels must be >= 1");
  }
  cfg.sim_threads = args.GetInt("sim-threads", 1);
  cfg.epoch_s = args.GetDouble("sim-epoch", 0);
  for (const auto& field : Split(args.Get("channel-weights", ""), ',')) {
    if (field.empty()) continue;
    cfg.channel_weights.push_back(std::strtod(field.c_str(), nullptr));
  }

  const std::string workload = args.Get("workload", "synthetic");
  const int txs = args.GetInt("txs", 10000);
  const double rate = args.GetDouble("rate", 300);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));

  if (workload == "synthetic") {
    SyntheticConfig wl;
    auto type = ParseType(args.Get("type", "uniform"));
    if (!type.ok()) return type.status();
    wl.type = *type;
    wl.num_txs = txs;
    wl.send_rate = rate;
    wl.key_skew = args.GetDouble("key-skew", 1.0);
    wl.tx_dist_skew = args.GetDouble("tx-skew", 0);
    wl.num_orgs = cfg.network.num_orgs;
    wl.seed = seed;
    cfg.chaincodes = {"genchain"};
    for (auto& [k, v] : SyntheticSeedState(wl)) {
      cfg.seeds.push_back(SeedEntry{"genchain", k, v});
    }
    cfg.schedule = GenerateSynthetic(wl);
    return cfg;
  }

  UseCaseConfig uc;
  uc.num_txs = txs;
  uc.send_rate = rate;
  uc.seed = seed;
  if (workload == "scm") {
    cfg.chaincodes = {"scm"};
    cfg.schedule = GenerateScmWorkload(uc);
  } else if (workload == "drm") {
    cfg.chaincodes = {"drm"};
    for (auto& [k, v] : DrmSeedState()) {
      cfg.seeds.push_back(SeedEntry{"drm", k, v});
    }
    cfg.schedule = GenerateDrmWorkload(uc);
  } else if (workload == "ehr") {
    cfg.chaincodes = {"ehr"};
    for (auto& [k, v] : EhrSeedState()) {
      cfg.seeds.push_back(SeedEntry{"ehr", k, v});
    }
    cfg.schedule = GenerateEhrWorkload(uc);
  } else if (workload == "dv") {
    cfg.chaincodes = {"dv"};
    for (auto& [k, v] : DvSeedState()) {
      cfg.seeds.push_back(SeedEntry{"dv", k, v});
    }
    cfg.schedule = GenerateDvWorkload(uc);
  } else if (workload == "lap") {
    LapLogConfig lc;
    lc.num_events = txs;
    lc.num_applications = std::max(1, txs / 10);
    lc.seed = seed;
    cfg.chaincodes = {"lap"};
    cfg.schedule = LapScheduleFromLog(GenerateLapEventLog(lc), rate);
  } else if (workload == "csv") {
    if (!args.Has("csv")) {
      return Status::InvalidArgument("--workload=csv requires --csv=FILE");
    }
    auto events = LoadEventLogCsv(args.Get("csv", ""));
    if (!events.ok()) return events.status();
    cfg.chaincodes = {"lap"};
    cfg.schedule = LapScheduleFromLog(*events, rate);
  } else {
    return Status::InvalidArgument("unknown workload '" + workload + "'");
  }
  return cfg;
}

Status WriteFileOrFail(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out << content;
  return Status::OK();
}

/// Whether the run needs telemetry, and with which aspects.
/// Any txtrace flag turns the flight recorder on; --txtrace-out /
/// --txtrace-ring / --txtrace-window imply --txtrace.
bool WantsTxTrace(const CliArgs& args) {
  return args.Has("txtrace") || args.Has("txtrace-out") ||
         args.Has("txtrace-ring") || args.Has("txtrace-window");
}

bool WantsTelemetry(const CliArgs& args) {
  return args.Has("trace-out") || args.Has("trace-csv") ||
         args.Has("metrics-out") || args.Has("prom-out") ||
         args.Has("report-out") || args.Has("sample-period") ||
         WantsTxTrace(args);
}

TelemetryOptions TelemetryOptionsFromArgs(const CliArgs& args) {
  TelemetryOptions opts;
  opts.sample_period_s = args.GetDouble("sample-period", 0.5);
  opts.txtrace.enabled = WantsTxTrace(args);
  opts.txtrace.ring_capacity =
      static_cast<uint32_t>(args.GetInt("txtrace-ring", 1 << 16));
  opts.txtrace.window_s = args.GetDouble("txtrace-window", 5.0);
  return opts;
}

/// Any stream flag turns the engine on; --stream-window/--stream-apply
/// imply --stream-analysis so users don't have to spell out all three.
StreamOptions StreamOptionsFromArgs(const CliArgs& args) {
  StreamOptions opts;
  opts.enabled = args.Has("stream-analysis") || args.Has("stream-window") ||
                 args.Has("stream-apply");
  opts.window_s = args.GetDouble("stream-window", 5.0);
  opts.apply = args.Has("stream-apply");
  return opts;
}

void PrintStreamSummary(const StreamEngine& stream) {
  std::printf(
      "streaming analysis: %llu blocks / %llu txs seen, %llu window "
      "evaluations (window %.1fs), %zu active recommendation(s), "
      "%zu event(s)\n",
      static_cast<unsigned long long>(stream.blocks_seen()),
      static_cast<unsigned long long>(stream.entries_seen()),
      static_cast<unsigned long long>(stream.evaluations()),
      stream.options().window_s, stream.recommender().active().size(),
      stream.recommender().events().size());
  if (stream.applied()) {
    std::printf("  applied mid-run at t=%.2fs: %s\n",
                stream.apply_time(),
                std::string(RecommendationTypeName(
                                stream.applied_recommendation().type))
                    .c_str());
  }
  std::printf("\n");
}

/// "metrics.json" + index 3 -> "metrics-3.json" (suffix appended when the
/// basename has no extension). Used by sweep mode's per-point exports.
std::string SuffixedPath(const std::string& path, size_t index) {
  size_t slash = path.find_last_of('/');
  size_t dot = path.find_last_of('.');
  std::string suffix = "-" + std::to_string(index);
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

/// The `--apply` what-if pass shared by the single- and multi-channel run
/// paths: each recommendation alone, then all combined, deltas vs `base`.
int ApplyWhatIf(const CliArgs& args, const ExperimentConfig& cfg,
                const PerformanceReport& base,
                const std::vector<Recommendation>& recs) {
  if (recs.empty()) {
    std::printf("nothing to apply\n");
    return 0;
  }
  WhatIfOptions options;
  options.jobs = args.GetInt("jobs", 1);
  auto whatif = EvaluateWhatIf(cfg, recs, options);
  if (!whatif.ok()) {
    std::fprintf(stderr, "apply error: %s\n",
                 whatif.status().ToString().c_str());
    return 1;
  }
  std::printf("\nwhat-if: each recommendation applied alone "
              "(jobs=%d):\n",
              ThreadPool::ResolveThreads(options.jobs));
  for (const auto& entry : whatif->individual) {
    std::printf("  %-28s success %+0.1f%%, latency %+0.1f%%, "
                "throughput %+0.1f%%\n",
                std::string(RecommendationTypeName(
                                entry.recommendation.type))
                    .c_str(),
                100 * RelativeImprovement(base.SuccessRate(),
                                          entry.report.SuccessRate()),
                100 * RelativeImprovement(base.AvgLatency(),
                                          entry.report.AvgLatency(), true),
                100 * RelativeImprovement(base.Throughput(),
                                          entry.report.Throughput()));
  }
  const PerformanceReport& combined = whatif->combined;
  std::printf("\nafter applying all recommendations:\n%s\n",
              combined.Summary().c_str());
  std::printf("success %+0.1f%%, latency %+0.1f%%, throughput %+0.1f%%\n",
              100 * RelativeImprovement(base.SuccessRate(),
                                        combined.SuccessRate()),
              100 * RelativeImprovement(base.AvgLatency(),
                                        combined.AvgLatency(), true),
              100 * RelativeImprovement(base.Throughput(),
                                        combined.Throughput()));
  return 0;
}

/// Run-mode output for sharded experiments (`--channels > 1`): per-channel
/// summaries and bottleneck attribution naming the saturated channel,
/// whole-experiment recommendations over the aggregated per-channel
/// metrics, and per-channel suffixed exports ("prom.txt" -> "prom-0.txt"
/// for channel 0, each Prometheus line labeled channel="N").
int MultiChannelRunCommand(const CliArgs& args, const ExperimentConfig& cfg,
                           const ExperimentOutput& out) {
  std::printf("%s\n", out.report.Summary().c_str());
  std::printf("per-channel breakdown (%zu channels, sim-threads=%d):\n",
              out.channels.size(), cfg.sim_threads);
  for (size_t c = 0; c < out.channels.size(); ++c) {
    std::printf("  channel %zu: %s\n", c,
                out.channels[c].report.Summary().c_str());
  }
  // Per-channel tails survive the merge (channel_tails is captured as
  // each channel folds in), so a channel whose p99 is far above the
  // pooled quantile is visible here.
  if (!out.report.channel_tails().empty()) {
    std::printf("per-channel tail latency:\n");
    const auto& tails = out.report.channel_tails();
    for (size_t c = 0; c < tails.size(); ++c) {
      std::printf("  channel %zu: p50=%.3fs p95=%.3fs p99=%.3fs max=%.3fs "
                  "(%llu successful)\n",
                  c, tails[c].p50_s, tails[c].p95_s, tails[c].p99_s,
                  tails[c].max_s,
                  static_cast<unsigned long long>(tails[c].successful));
    }
  }
  std::printf("\n");
  if (!out.fault_windows.empty()) {
    std::printf("injected faults (per channel):\n");
    for (const auto& w : out.fault_windows) {
      std::printf("  %-24s %s\n", w.name.c_str(),
                  FormatEvidenceWindow(w.start, w.end).c_str());
    }
    std::printf("\n");
  }

  // Per-channel bottleneck attribution. The saturated channel is the one
  // whose hottest station shows the highest utilization.
  std::vector<BottleneckReport> bottlenecks(out.channels.size());
  int hottest = -1;
  double hottest_util = -1;
  for (size_t c = 0; c < out.channels.size(); ++c) {
    const auto& ch = out.channels[c];
    if (!ch.telemetry) continue;
    bottlenecks[c] = ComputeBottleneckReport(*ch.telemetry, ch.sim_end_time,
                                             &ch.fault_windows);
    const auto* top = bottlenecks[c].Top();
    if (top != nullptr && top->utilization > hottest_util) {
      hottest_util = top->utilization;
      hottest = static_cast<int>(c);
    }
  }
  if (hottest >= 0) {
    std::printf("bottleneck attribution by channel:\n");
    for (size_t c = 0; c < out.channels.size(); ++c) {
      if (!out.channels[c].telemetry) continue;
      std::printf("  channel %zu: %s\n", c, bottlenecks[c].summary.c_str());
    }
    std::printf("=> hottest channel: channel %d (%s at %.0f%% "
                "utilization)\n\n",
                hottest, bottlenecks[hottest].bottleneck_station.c_str(),
                100 * hottest_util);
  }
  for (size_t c = 0; c < out.channels.size(); ++c) {
    if (out.channels[c].stream) {
      std::printf("channel %zu ", c);
      PrintStreamSummary(*out.channels[c].stream);
    }
  }

  // Cross-channel hot-key aggregation: the per-channel space-saving
  // sketches merge into one experiment-level view (summed counts, union
  // error bounds), so a key hammered from several channels at once
  // surfaces even when no single channel ranks it first.
  {
    const StreamEngine* first = nullptr;
    for (const auto& ch : out.channels) {
      if (ch.stream) {
        first = ch.stream.get();
        break;
      }
    }
    if (first != nullptr) {
      SpaceSavingTopK merged(first->hot_keys().capacity());
      for (const auto& ch : out.channels) {
        if (ch.stream) merged.Merge(ch.stream->hot_keys());
      }
      const auto entries = merged.Entries();
      if (!entries.empty()) {
        std::printf("cross-channel hot keys (failure-involved, merged "
                    "sketch):\n");
        const Interner& interner = GlobalKeyInterner();
        size_t shown = 0;
        for (const SpaceSavingTopK::Counter& c : entries) {
          std::printf("  %-24s count<=%llu (error bound %llu)\n",
                      std::string(interner.KeyForId(c.id)).c_str(),
                      static_cast<unsigned long long>(c.count),
                      static_cast<unsigned long long>(c.error));
          if (++shown == 8) break;
        }
        std::printf("\n");
      }
    }
  }

  // Whole-experiment recommendations: per-channel logs are analyzed
  // independently, then merged into one experiment-level LogMetrics.
  std::vector<BlockchainLog> logs;
  std::vector<LogMetrics> per_channel;
  logs.reserve(out.channels.size());
  per_channel.reserve(out.channels.size());
  for (const auto& ch : out.channels) {
    logs.push_back(ExtractBlockchainLog(ch.ledger));
    per_channel.push_back(ComputeMetrics(logs.back(), MetricsOptions{}));
  }
  LogMetrics metrics = AggregateMetrics(per_channel);
  RecommenderOptions options;
  if (args.Has("autotune")) {
    options = AutoTuneThresholds(metrics, options);
    std::printf("auto-tuned thresholds: Rt1=%.0f Et=%.2f It=%.2f\n\n",
                options.rt1, options.et, options.it);
  }
  auto recs = Recommend(metrics, options);
  if (hottest >= 0) {
    // Evidence windows come from the saturated channel's telemetry.
    AttachTelemetryEvidence(recs, bottlenecks[hottest]);
  }
  std::printf("%s\n", FormatRecommendationReport(metrics, recs).c_str());

  // ---- per-channel exports (path -> path-<channel>) --------------------
  for (size_t c = 0; c < out.channels.size(); ++c) {
    const auto& ch = out.channels[c];
    const std::string tag = std::to_string(c);
    if (ch.telemetry) {
      if (args.Has("trace-out")) {
        std::string path = SuffixedPath(args.Get("trace-out", ""), c);
        std::ofstream f(path);
        if (!f) {
          std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
          return 1;
        }
        ch.telemetry->tracer().WriteChromeTrace(f);
        std::printf("wrote Chrome trace (open in Perfetto): %s\n",
                    path.c_str());
      }
      if (args.Has("trace-csv")) {
        std::string path = SuffixedPath(args.Get("trace-csv", ""), c);
        std::ofstream f(path);
        if (!f) {
          std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
          return 1;
        }
        ch.telemetry->tracer().WriteCsv(f);
        std::printf("wrote span CSV: %s\n", path.c_str());
      }
      if (args.Has("txtrace-out") && ch.telemetry->txtrace() != nullptr) {
        std::string path = SuffixedPath(args.Get("txtrace-out", ""), c);
        std::ofstream f(path);
        if (!f) {
          std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
          return 1;
        }
        WriteTxTraceChromeTrace(ch.telemetry->txtrace()->summary(), f);
        std::printf("wrote txtrace exemplar chains: %s\n", path.c_str());
      }
      if (args.Has("metrics-out")) {
        std::string path = SuffixedPath(args.Get("metrics-out", ""), c);
        JsonValue snapshot =
            TelemetrySnapshotJson(*ch.telemetry, &bottlenecks[c]);
        snapshot.as_object()["channel"] =
            JsonValue(static_cast<int64_t>(c));
        if (ch.stream) {
          snapshot.as_object()["stream"] = StreamStateJson(*ch.stream);
        }
        Status st = WriteFileOrFail(path, snapshot.DumpPretty());
        if (!st.ok()) {
          std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
          return 1;
        }
        std::printf("wrote metrics snapshot: %s\n", path.c_str());
      }
      if (args.Has("prom-out")) {
        std::string path = SuffixedPath(args.Get("prom-out", ""), c);
        std::ofstream f(path);
        if (!f) {
          std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
          return 1;
        }
        WritePrometheusText(*ch.telemetry, f, tag);
        if (ch.stream) AppendStreamPrometheus(*ch.stream, f);
        std::printf("wrote Prometheus exposition: %s\n", path.c_str());
      }
      if (args.Has("report-out")) {
        std::string path = SuffixedPath(args.Get("report-out", ""), c);
        std::ofstream f(path);
        if (!f) {
          std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
          return 1;
        }
        char num[64];
        HtmlSummaryRows rows;
        rows.emplace_back("channel",
                          tag + " of " + std::to_string(out.channels.size()));
        std::snprintf(num, sizeof(num), "%.1f tps",
                      ch.report.Throughput());
        rows.emplace_back("throughput", num);
        std::snprintf(num, sizeof(num), "%.1f%%",
                      100 * ch.report.SuccessRate());
        rows.emplace_back("success rate", num);
        std::snprintf(num, sizeof(num), "%.3f s", ch.report.AvgLatency());
        rows.emplace_back("avg latency", num);
        if (c < out.report.channel_tails().size()) {
          std::snprintf(num, sizeof(num), "%.3f s",
                        out.report.channel_tails()[c].p99_s);
          rows.emplace_back("p99 latency", num);
        }
        std::snprintf(num, sizeof(num), "%.1f s", ch.sim_end_time);
        rows.emplace_back("sim end time", num);
        WriteHtmlReport(f, "BlockOptR run report: channel " + tag, rows,
                        *ch.telemetry, bottlenecks[c],
                        ch.stream ? StreamHtmlSection(*ch.stream)
                                  : std::string());
        std::printf("wrote HTML report: %s\n", path.c_str());
      }
    }
    if (args.Has("out-log")) {
      std::string path = SuffixedPath(args.Get("out-log", ""), c);
      std::ofstream f(path);
      if (!f) {
        std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
        return 1;
      }
      WriteLogCsv(logs[c], f);
      std::printf("wrote blockchain log CSV: %s\n", path.c_str());
    }
    if (args.Has("out-json")) {
      std::string path = SuffixedPath(args.Get("out-json", ""), c);
      Status st = WriteFileOrFail(path, LogToJson(logs[c]).DumpPretty());
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("wrote blockchain log JSON: %s\n", path.c_str());
    }
    if (args.Has("out-xes") || args.Has("mine") || args.Has("out-dot")) {
      auto ev = EventLog::FromBlockchainLog(logs[c], EventLogOptions{});
      if (!ev.ok()) {
        std::fprintf(stderr, "event-log error (channel %zu): %s\n", c,
                     ev.status().ToString().c_str());
        return 1;
      }
      if (args.Has("out-xes")) {
        std::string path = SuffixedPath(args.Get("out-xes", ""), c);
        std::ofstream f(path);
        if (!f) {
          std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
          return 1;
        }
        WriteXes(*ev, f);
        std::printf("wrote XES event log: %s\n", path.c_str());
      }
      if (args.Has("mine") || args.Has("out-dot")) {
        PetriNet net = AlphaMiner::Mine(ev->Traces());
        if (args.Has("mine")) {
          auto fit = ReplayTraces(net, ev->Traces());
          std::printf("channel %zu mined Petri net: %zu transitions, "
                      "%zu places; fitness %.3f over %llu traces\n",
                      c, net.num_transitions(), net.num_places(),
                      fit.Fitness(),
                      static_cast<unsigned long long>(fit.traces_replayed));
        }
        if (args.Has("out-dot")) {
          std::string path = SuffixedPath(args.Get("out-dot", ""), c);
          Status st = WriteFileOrFail(path, PetriNetToDot(net));
          if (!st.ok()) {
            std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
            return 1;
          }
          std::printf("wrote DOT model: %s\n", path.c_str());
        }
      }
    }
  }

  // Experiment-level flight-recorder view: the per-channel summaries merge
  // into one (count-weighted quantiles, union exemplars), written at the
  // unsuffixed path alongside the per-channel dumps.
  if (args.Has("txtrace-out")) {
    TxTraceSummary merged;
    bool any = false;
    for (const auto& ch : out.channels) {
      if (!ch.telemetry || ch.telemetry->txtrace() == nullptr) continue;
      if (!any) {
        merged = ch.telemetry->txtrace()->summary();
        any = true;
      } else {
        merged.Merge(ch.telemetry->txtrace()->summary());
      }
    }
    if (any) {
      const std::string path = args.Get("txtrace-out", "");
      std::ofstream f(path);
      if (!f) {
        std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
        return 1;
      }
      WriteTxTraceChromeTrace(merged, f);
      std::printf("wrote merged txtrace exemplar chains: %s\n",
                  path.c_str());
    }
  }

  if (args.Has("apply")) return ApplyWhatIf(args, cfg, out.report, recs);
  return 0;
}

int RunCommand(const CliArgs& args) {
  auto cfg = BuildExperiment(args);
  if (!cfg.ok()) {
    std::fprintf(stderr, "error: %s\n", cfg.status().ToString().c_str());
    return 1;
  }
  cfg->enable_telemetry = WantsTelemetry(args);
  cfg->telemetry_options = TelemetryOptionsFromArgs(args);
  cfg->stream = StreamOptionsFromArgs(args);

  std::printf("running %zu transactions on %d orgs (policy %s)...\n",
              cfg->schedule.size(), cfg->network.num_orgs,
              cfg->network.endorsement_policy.ToString().c_str());
  auto out = RunExperiment(*cfg);
  if (!out.ok()) {
    std::fprintf(stderr, "error: %s\n", out.status().ToString().c_str());
    return 1;
  }
  if (!out->channels.empty()) {
    return MultiChannelRunCommand(args, *cfg, *out);
  }
  std::printf("%s\n\n", out->report.Summary().c_str());
  if (!out->fault_windows.empty()) {
    std::printf("injected faults:\n");
    for (const auto& w : out->fault_windows) {
      std::printf("  %-24s %s\n", w.name.c_str(),
                  FormatEvidenceWindow(w.start, w.end).c_str());
    }
    std::printf("\n");
  }
  std::optional<BottleneckReport> bottleneck;
  if (out->telemetry) {
    std::printf("per-stage latency breakdown (from lifecycle spans):\n%s\n",
                out->report.StageBreakdownTable().c_str());
    bottleneck = ComputeBottleneckReport(*out->telemetry, out->sim_end_time,
                                         &out->fault_windows);
    std::string table = FormatBottleneckTable(*bottleneck);
    if (!table.empty()) {
      std::printf("bottleneck attribution (sampled every %.2fs):\n%s",
                  out->telemetry->sampler()->period(), table.c_str());
    }
    std::printf("=> %s\n\n", bottleneck->summary.c_str());
  }
  if (out->stream) PrintStreamSummary(*out->stream);

  BlockchainLog log = ExtractBlockchainLog(out->ledger);
  LogMetrics metrics = ComputeMetrics(log, MetricsOptions{});
  RecommenderOptions options;
  if (args.Has("autotune")) {
    options = AutoTuneThresholds(metrics, options);
    std::printf("auto-tuned thresholds: Rt1=%.0f Et=%.2f It=%.2f\n\n",
                options.rt1, options.et, options.it);
  }
  auto recs = Recommend(metrics, options);
  if (bottleneck) {
    // Every recommendation cites its observed evidence window.
    AttachTelemetryEvidence(recs, *bottleneck);
  }
  std::printf("%s\n", FormatRecommendationReport(metrics, recs).c_str());

  // ---- exports ---------------------------------------------------------
  if (args.Has("trace-out")) {
    std::ofstream f(args.Get("trace-out", ""));
    if (!f) {
      std::fprintf(stderr, "error: cannot write --trace-out\n");
      return 1;
    }
    out->telemetry->tracer().WriteChromeTrace(f);
    std::printf("wrote Chrome trace (open in Perfetto): %s\n",
                args.Get("trace-out", "").c_str());
  }
  if (args.Has("trace-csv")) {
    std::ofstream f(args.Get("trace-csv", ""));
    if (!f) {
      std::fprintf(stderr, "error: cannot write --trace-csv\n");
      return 1;
    }
    out->telemetry->tracer().WriteCsv(f);
    std::printf("wrote span CSV: %s\n", args.Get("trace-csv", "").c_str());
  }
  if (args.Has("txtrace-out") && out->telemetry->txtrace() != nullptr) {
    std::ofstream f(args.Get("txtrace-out", ""));
    if (!f) {
      std::fprintf(stderr, "error: cannot write --txtrace-out\n");
      return 1;
    }
    WriteTxTraceChromeTrace(out->telemetry->txtrace()->summary(), f);
    std::printf("wrote txtrace exemplar chains (open in Perfetto): %s\n",
                args.Get("txtrace-out", "").c_str());
  }
  if (args.Has("metrics-out")) {
    JsonValue snapshot = TelemetrySnapshotJson(
        *out->telemetry, bottleneck ? &*bottleneck : nullptr);
    if (out->stream) {
      snapshot.as_object()["stream"] = StreamStateJson(*out->stream);
    }
    Status st =
        WriteFileOrFail(args.Get("metrics-out", ""), snapshot.DumpPretty());
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics snapshot: %s\n",
                args.Get("metrics-out", "").c_str());
  }
  if (args.Has("prom-out")) {
    std::ofstream f(args.Get("prom-out", ""));
    if (!f) {
      std::fprintf(stderr, "error: cannot write --prom-out\n");
      return 1;
    }
    WritePrometheusText(*out->telemetry, f);
    if (out->stream) AppendStreamPrometheus(*out->stream, f);
    std::printf("wrote Prometheus exposition: %s\n",
                args.Get("prom-out", "").c_str());
  }
  if (args.Has("report-out")) {
    std::ofstream f(args.Get("report-out", ""));
    if (!f) {
      std::fprintf(stderr, "error: cannot write --report-out\n");
      return 1;
    }
    char num[64];
    HtmlSummaryRows rows;
    std::snprintf(num, sizeof(num), "%zu", cfg->schedule.size());
    rows.emplace_back("transactions", num);
    std::snprintf(num, sizeof(num), "%.1f tps",
                  out->report.Throughput());
    rows.emplace_back("throughput", num);
    std::snprintf(num, sizeof(num), "%.1f%%",
                  100 * out->report.SuccessRate());
    rows.emplace_back("success rate", num);
    std::snprintf(num, sizeof(num), "%.3f s", out->report.AvgLatency());
    rows.emplace_back("avg latency", num);
    std::snprintf(num, sizeof(num), "%.3f s",
                  out->report.LatencyPercentile(99));
    rows.emplace_back("p99 latency", num);
    std::snprintf(num, sizeof(num), "%.1f s", out->sim_end_time);
    rows.emplace_back("sim end time", num);
    WriteHtmlReport(f, "BlockOptR run report", rows, *out->telemetry,
                    *bottleneck,
                    out->stream ? StreamHtmlSection(*out->stream)
                                : std::string());
    std::printf("wrote HTML report: %s\n",
                args.Get("report-out", "").c_str());
  }
  if (args.Has("out-log")) {
    std::ofstream f(args.Get("out-log", ""));
    if (!f) {
      std::fprintf(stderr, "error: cannot write --out-log\n");
      return 1;
    }
    WriteLogCsv(log, f);
    std::printf("wrote blockchain log CSV: %s\n",
                args.Get("out-log", "").c_str());
  }
  if (args.Has("out-json")) {
    Status st = WriteFileOrFail(args.Get("out-json", ""),
                                LogToJson(log).DumpPretty());
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote blockchain log JSON: %s\n",
                args.Get("out-json", "").c_str());
  }

  std::optional<EventLog> events;
  if (args.Has("out-xes") || args.Has("mine") || args.Has("out-dot")) {
    auto ev = EventLog::FromBlockchainLog(log, EventLogOptions{});
    if (!ev.ok()) {
      std::fprintf(stderr, "event-log error: %s\n",
                   ev.status().ToString().c_str());
      return 1;
    }
    events = std::move(*ev);
  }
  if (args.Has("out-xes")) {
    std::ofstream f(args.Get("out-xes", ""));
    if (!f) {
      std::fprintf(stderr, "error: cannot write --out-xes\n");
      return 1;
    }
    WriteXes(*events, f);
    std::printf("wrote XES event log: %s\n", args.Get("out-xes", "").c_str());
  }
  if (args.Has("mine") || args.Has("out-dot")) {
    PetriNet net = AlphaMiner::Mine(events->Traces());
    if (args.Has("mine")) {
      auto fit = ReplayTraces(net, events->Traces());
      std::printf("mined Petri net: %zu transitions, %zu places; fitness "
                  "%.3f over %llu traces\n",
                  net.num_transitions(), net.num_places(), fit.Fitness(),
                  static_cast<unsigned long long>(fit.traces_replayed));
    }
    if (args.Has("out-dot")) {
      Status st = WriteFileOrFail(args.Get("out-dot", ""), PetriNetToDot(net));
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("wrote DOT model: %s\n", args.Get("out-dot", "").c_str());
    }
  }

  // ---- apply: per-recommendation what-if + combined rerun --------------
  if (args.Has("apply")) return ApplyWhatIf(args, *cfg, out->report, recs);
  return 0;
}

// ---------------------------------------------------------------------------
// sweep mode: a batch of experiments through the parallel engine
// ---------------------------------------------------------------------------

struct SweepCase {
  std::string label;
  ExperimentConfig config;
};

Result<std::vector<SweepCase>> BuildSweepCases(const CliArgs& args) {
  std::vector<SweepCase> cases;
  if (args.Has("rates") || args.Has("block-counts")) {
    for (const auto& field : Split(args.Get("rates", ""), ',')) {
      if (field.empty()) continue;
      CliArgs point = args;
      point.flags["rate"] = field;
      BLOCKOPTR_ASSIGN_OR_RETURN(auto cfg, BuildExperiment(point));
      cases.push_back(SweepCase{"send rate " + field, std::move(cfg)});
    }
    for (const auto& field : Split(args.Get("block-counts", ""), ',')) {
      if (field.empty()) continue;
      CliArgs point = args;
      point.flags["block-count"] = field;
      BLOCKOPTR_ASSIGN_OR_RETURN(auto cfg, BuildExperiment(point));
      cases.push_back(SweepCase{"block count " + field, std::move(cfg)});
    }
    if (cases.empty()) {
      return Status::InvalidArgument(
          "--rates / --block-counts given but no values parsed");
    }
    return cases;
  }
  const std::string set = args.Get("set", "table3");
  if (set == "channels") {
    for (const auto& def : ChannelExperiments(args.GetInt("txs", 10000))) {
      auto cfg = MakeChannelExperiment(def);
      cfg.sim_threads = args.GetInt("sim-threads", 1);
      cfg.epoch_s = args.GetDouble("sim-epoch", 0);
      cases.push_back(SweepCase{def.label, std::move(cfg)});
    }
    return cases;
  }
  if (set != "table3") {
    return Status::InvalidArgument("unknown sweep set '" + set +
                                   "' (supported: table3, channels)");
  }
  for (const auto& def : Table3Experiments(args.GetInt("txs", 10000))) {
    cases.push_back(SweepCase{
        def.label, MakeSyntheticExperiment(def.workload, def.network)});
  }
  return cases;
}

int SweepCommand(const CliArgs& args) {
  auto cases = BuildSweepCases(args);
  if (!cases.ok()) {
    std::fprintf(stderr, "error: %s\n", cases.status().ToString().c_str());
    return 1;
  }
  const int jobs = args.GetInt("jobs", 1);
  const bool telemetry = WantsTelemetry(args);
  const StreamOptions stream_opts = StreamOptionsFromArgs(args);

  std::vector<ExperimentConfig> configs;
  configs.reserve(cases->size());
  for (const auto& c : *cases) {
    configs.push_back(c.config);
    if (telemetry) {
      configs.back().enable_telemetry = true;
      configs.back().telemetry_options = TelemetryOptionsFromArgs(args);
    }
    configs.back().stream = stream_opts;
  }

  // Progress goes to stderr: stdout carries only the result table, which
  // is byte-identical for every --jobs value and therefore diffable.
  std::fprintf(stderr, "sweeping %zu experiments (jobs=%d)...\n",
               configs.size(), ThreadPool::ResolveThreads(jobs));
  auto outputs = SweepRunner(SweepOptions{jobs}).Run(configs);

  std::printf("%-28s %10s %9s %11s  %s\n", "experiment", "tput(tps)",
              "success", "latency(s)", "recommendations");
  std::printf("%-28s %10s %9s %11s  %s\n", "----------", "---------",
              "-------", "----------", "---------------");
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (!outputs[i].ok()) {
      std::fprintf(stderr, "%-28s failed: %s\n", (*cases)[i].label.c_str(),
                   outputs[i].status().ToString().c_str());
      return 1;
    }
    const auto& report = outputs[i]->report;
    std::vector<Recommendation> recs;
    if (!outputs[i]->channels.empty()) {
      // Sharded case: aggregate the per-channel logs into one
      // experiment-level LogMetrics before recommending.
      std::vector<LogMetrics> per_channel;
      per_channel.reserve(outputs[i]->channels.size());
      for (const auto& ch : outputs[i]->channels) {
        per_channel.push_back(
            ComputeMetrics(ExtractBlockchainLog(ch.ledger), MetricsOptions{}));
      }
      recs = Recommend(AggregateMetrics(per_channel), RecommenderOptions{});
    } else {
      recs = RecommendFromLog(ExtractBlockchainLog(outputs[i]->ledger),
                              RecommenderOptions{});
    }
    std::printf("%-28s %10.1f %8.1f%% %11.3f  %s\n",
                (*cases)[i].label.c_str(), report.Throughput(),
                100 * report.SuccessRate(), report.AvgLatency(),
                RecommendationNames(recs).c_str());
    // Per-point observability exports ("metrics.json" -> "metrics-3.json"
    // for point 3). Progress lines go to stderr so stdout stays diffable.
    if (outputs[i]->telemetry != nullptr) {
      if (args.Has("trace-out")) {
        std::string path = SuffixedPath(args.Get("trace-out", ""), i + 1);
        std::ofstream f(path);
        if (!f) {
          std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
          return 1;
        }
        outputs[i]->telemetry->tracer().WriteChromeTrace(f);
        std::fprintf(stderr, "wrote Chrome trace: %s\n", path.c_str());
      }
      if (args.Has("txtrace-out") &&
          outputs[i]->telemetry->txtrace() != nullptr) {
        std::string path = SuffixedPath(args.Get("txtrace-out", ""), i + 1);
        std::ofstream f(path);
        if (!f) {
          std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
          return 1;
        }
        WriteTxTraceChromeTrace(outputs[i]->telemetry->txtrace()->summary(),
                                f);
        std::fprintf(stderr, "wrote txtrace exemplar chains: %s\n",
                     path.c_str());
      }
      if (args.Has("metrics-out")) {
        std::string path = SuffixedPath(args.Get("metrics-out", ""), i + 1);
        BottleneckReport bottleneck = ComputeBottleneckReport(
            *outputs[i]->telemetry, outputs[i]->sim_end_time,
            &outputs[i]->fault_windows);
        JsonValue snapshot =
            TelemetrySnapshotJson(*outputs[i]->telemetry, &bottleneck);
        if (outputs[i]->stream) {
          snapshot.as_object()["stream"] =
              StreamStateJson(*outputs[i]->stream);
        }
        Status st = WriteFileOrFail(path, snapshot.DumpPretty());
        if (!st.ok()) {
          std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
          return 1;
        }
        std::fprintf(stderr, "wrote metrics snapshot: %s\n", path.c_str());
      }
      if (args.Has("prom-out")) {
        std::string path = SuffixedPath(args.Get("prom-out", ""), i + 1);
        std::ofstream f(path);
        if (!f) {
          std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
          return 1;
        }
        WritePrometheusText(*outputs[i]->telemetry, f);
        if (outputs[i]->stream) {
          AppendStreamPrometheus(*outputs[i]->stream, f);
        }
        std::fprintf(stderr, "wrote Prometheus exposition: %s\n",
                     path.c_str());
      }
      if (args.Has("report-out")) {
        std::string path = SuffixedPath(args.Get("report-out", ""), i + 1);
        std::ofstream f(path);
        if (!f) {
          std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
          return 1;
        }
        BottleneckReport bottleneck = ComputeBottleneckReport(
            *outputs[i]->telemetry, outputs[i]->sim_end_time,
            &outputs[i]->fault_windows);
        char num[64];
        HtmlSummaryRows rows;
        rows.emplace_back("experiment", (*cases)[i].label);
        std::snprintf(num, sizeof(num), "%.1f tps", report.Throughput());
        rows.emplace_back("throughput", num);
        std::snprintf(num, sizeof(num), "%.1f%%",
                      100 * report.SuccessRate());
        rows.emplace_back("success rate", num);
        std::snprintf(num, sizeof(num), "%.3f s", report.AvgLatency());
        rows.emplace_back("avg latency", num);
        std::snprintf(num, sizeof(num), "%.1f s",
                      outputs[i]->sim_end_time);
        rows.emplace_back("sim end time", num);
        WriteHtmlReport(f, "BlockOptR sweep: " + (*cases)[i].label, rows,
                        *outputs[i]->telemetry, bottleneck,
                        outputs[i]->stream
                            ? StreamHtmlSection(*outputs[i]->stream)
                            : std::string());
        std::fprintf(stderr, "wrote HTML report: %s\n", path.c_str());
      }
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2 || (std::strcmp(argv[1], "run") != 0 &&
                   std::strcmp(argv[1], "sweep") != 0)) {
    return Usage();
  }
  CliArgs args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return Usage();
    }
    arg = arg.substr(2);
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      args.flags[arg] = "";
    } else {
      args.flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  if (std::strcmp(argv[1], "sweep") == 0) return SweepCommand(args);
  return RunCommand(args);
}

}  // namespace
}  // namespace blockoptr

int main(int argc, char** argv) { return blockoptr::Main(argc, argv); }
