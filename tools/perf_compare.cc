// perf_compare — CI perf-regression gate over BENCH_*.json trajectories.
//
// Compares a current benchmark dump (schema blockoptr-bench-v1, written
// by the bench binaries' --json-out flag) against a committed baseline:
//
//   perf_compare --baseline=bench/baselines/BENCH_e2e.json
//                --current=BENCH_e2e.json [--threshold=0.15]
//                [--threshold-for=NAME=0.30 ...]
//                [--max-ratio=NUM:DEN<=LIMIT ...]
//
// Exit 1 when any benchmark present in the baseline is missing from the
// current dump, or is slower than baseline by more than the threshold
// (default 15%, judged on ns_per_op). `--threshold-for=NAME=VALUE`
// (repeatable) overrides the threshold for a single benchmark — noisy or
// deliberately loose benches get their own bound without widening the
// gate for everything else. Benchmarks only present in the current dump
// are reported but never fail the gate — adding a bench must not require
// regenerating every baseline in the same commit.
//
// `--max-ratio=NUM:DEN<=LIMIT` (repeatable) gates a ratio *within the
// current dump*: ns_per_op(NUM) / ns_per_op(DEN) must be <= LIMIT.
// Benchmark names may contain '/', so the two names are separated by
// ':'. This expresses relative-overhead bounds that survive machine
// speed differences — e.g. streaming observe-only vs streaming-off:
//
//   perf_compare --current=BENCH_streaming.json
//                '--max-ratio=BM_Stream_Observe/10000:BM_Stream_Off/10000<=1.12'
//
// With --max-ratio, --baseline is optional (ratio-only invocations gate
// a single dump).
//
// Improvements are printed too, so a stale baseline that masks a later
// regression is visible in the CI log.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace blockoptr {
namespace {

struct Bench {
  double ns_per_op = 0;
};

struct RatioGate {
  std::string numerator;
  std::string denominator;
  double limit = 0;
};

Result<std::map<std::string, Bench>> LoadDump(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::InvalidArgument("cannot open '" + path + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  BLOCKOPTR_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(buf.str()));
  if (!doc.is_object()) {
    return Status::InvalidArgument(path + ": top level is not an object");
  }
  const auto& obj = doc.as_object();
  auto schema = obj.find("schema");
  if (schema == obj.end() || !schema->second.is_string() ||
      schema->second.as_string() != "blockoptr-bench-v1") {
    return Status::InvalidArgument(path +
                                   ": not a blockoptr-bench-v1 dump");
  }
  auto benches = obj.find("benchmarks");
  if (benches == obj.end() || !benches->second.is_array()) {
    return Status::InvalidArgument(path + ": missing benchmarks array");
  }
  std::map<std::string, Bench> out;
  for (const JsonValue& entry : benches->second.as_array()) {
    if (!entry.is_object()) continue;
    const auto& e = entry.as_object();
    auto name = e.find("name");
    auto ns = e.find("ns_per_op");
    if (name == e.end() || !name->second.is_string() || ns == e.end() ||
        !ns->second.is_number() || ns->second.as_number() <= 0) {
      return Status::InvalidArgument(path + ": malformed benchmark entry");
    }
    out[name->second.as_string()] = Bench{ns->second.as_number()};
  }
  if (out.empty()) {
    return Status::InvalidArgument(path + ": no benchmark entries");
  }
  return out;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: perf_compare [--baseline=FILE] --current=FILE "
      "[--threshold=0.15]\n"
      "                    [--threshold-for=NAME=VALUE ...] "
      "[--max-ratio=NUM:DEN<=LIMIT ...]\n"
      "--baseline may be omitted only when at least one --max-ratio "
      "gate is given.\n");
  return 2;
}

/// Parses "NAME=VALUE" (VALUE a positive double) into `overrides`.
bool ParseThresholdFor(const char* spec,
                       std::map<std::string, double>& overrides) {
  const char* eq = std::strrchr(spec, '=');
  if (eq == nullptr || eq == spec) return false;
  char* end = nullptr;
  const double value = std::strtod(eq + 1, &end);
  if (end == eq + 1 || *end != '\0' || value <= 0) return false;
  overrides[std::string(spec, eq)] = value;
  return true;
}

/// Parses "NUM:DEN<=LIMIT" (names may contain '/', not ':').
bool ParseRatioGate(const char* spec, std::vector<RatioGate>& gates) {
  const char* colon = std::strchr(spec, ':');
  if (colon == nullptr || colon == spec) return false;
  const char* le = std::strstr(colon + 1, "<=");
  if (le == nullptr || le == colon + 1) return false;
  char* end = nullptr;
  const double limit = std::strtod(le + 2, &end);
  if (end == le + 2 || *end != '\0' || limit <= 0) return false;
  gates.push_back(RatioGate{std::string(spec, colon),
                            std::string(colon + 1, le), limit});
  return true;
}

int Main(int argc, char** argv) {
  std::string baseline_path, current_path;
  double threshold = 0.15;
  std::map<std::string, double> threshold_for;
  std::vector<RatioGate> ratio_gates;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--baseline=", 11) == 0) {
      baseline_path = arg + 11;
    } else if (std::strncmp(arg, "--current=", 10) == 0) {
      current_path = arg + 10;
    } else if (std::strncmp(arg, "--threshold=", 12) == 0) {
      threshold = std::strtod(arg + 12, nullptr);
    } else if (std::strncmp(arg, "--threshold-for=", 16) == 0) {
      if (!ParseThresholdFor(arg + 16, threshold_for)) {
        std::fprintf(stderr, "malformed --threshold-for '%s'\n", arg + 16);
        return Usage();
      }
    } else if (std::strncmp(arg, "--max-ratio=", 12) == 0) {
      if (!ParseRatioGate(arg + 12, ratio_gates)) {
        std::fprintf(stderr, "malformed --max-ratio '%s'\n", arg + 12);
        return Usage();
      }
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      return Usage();
    }
  }
  if (current_path.empty() || threshold <= 0) return Usage();
  if (baseline_path.empty() && ratio_gates.empty()) return Usage();

  auto current = LoadDump(current_path);
  if (!current.ok()) {
    std::fprintf(stderr, "error: %s\n", current.status().ToString().c_str());
    return 1;
  }

  int failures = 0;
  if (!baseline_path.empty()) {
    auto baseline = LoadDump(baseline_path);
    if (!baseline.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   baseline.status().ToString().c_str());
      return 1;
    }

    std::printf("%-44s %14s %14s %9s\n", "benchmark", "baseline(ns)",
                "current(ns)", "delta");
    for (const auto& [name, base] : *baseline) {
      auto it = current->find(name);
      if (it == current->end()) {
        std::printf("%-44s %14.0f %14s %9s  MISSING\n", name.c_str(),
                    base.ns_per_op, "-", "-");
        ++failures;
        continue;
      }
      auto ov = threshold_for.find(name);
      const double bound = ov != threshold_for.end() ? ov->second
                                                     : threshold;
      const double ratio = it->second.ns_per_op / base.ns_per_op - 1.0;
      const bool regressed = ratio > bound;
      std::printf("%-44s %14.0f %14.0f %+8.1f%%%s\n", name.c_str(),
                  base.ns_per_op, it->second.ns_per_op, 100 * ratio,
                  regressed ? "  REGRESSION" : "");
      if (regressed) ++failures;
    }
    for (const auto& [name, bench] : *current) {
      if (baseline->count(name) == 0) {
        std::printf("%-44s %14s %14.0f %9s  (new, no baseline)\n",
                    name.c_str(), "-", bench.ns_per_op, "-");
      }
    }
  }

  for (const RatioGate& gate : ratio_gates) {
    auto num = current->find(gate.numerator);
    auto den = current->find(gate.denominator);
    if (num == current->end() || den == current->end()) {
      std::fprintf(stderr,
                   "perf_compare: ratio gate '%s:%s' references a "
                   "benchmark missing from %s\n",
                   gate.numerator.c_str(), gate.denominator.c_str(),
                   current_path.c_str());
      ++failures;
      continue;
    }
    const double ratio = num->second.ns_per_op / den->second.ns_per_op;
    const bool over = ratio > gate.limit;
    std::printf("ratio %s : %s = %.3f (limit %.3f)%s\n",
                gate.numerator.c_str(), gate.denominator.c_str(), ratio,
                gate.limit, over ? "  OVER LIMIT" : "");
    if (over) ++failures;
  }

  if (failures > 0) {
    std::fprintf(stderr,
                 "perf_compare: %d gate(s) failed (regression, missing "
                 "benchmark, or ratio over limit)\n",
                 failures);
    return 1;
  }
  std::printf("perf_compare: all gates passed (%zu benchmark(s), %zu "
              "ratio gate(s))\n",
              current->size(), ratio_gates.size());
  return 0;
}

}  // namespace
}  // namespace blockoptr

int main(int argc, char** argv) { return blockoptr::Main(argc, argv); }
