// perf_compare — CI perf-regression gate over BENCH_*.json trajectories.
//
// Compares a current benchmark dump (schema blockoptr-bench-v1, written
// by the bench binaries' --json-out flag) against a committed baseline:
//
//   perf_compare --baseline=bench/baselines/BENCH_e2e.json \
//                --current=BENCH_e2e.json [--threshold=0.15]
//
// Exit 1 when any benchmark present in the baseline is missing from the
// current dump, or is slower than baseline by more than the threshold
// (default 15%, judged on ns_per_op). Benchmarks only present in the
// current dump are reported but never fail the gate — adding a bench must
// not require regenerating every baseline in the same commit.
//
// Improvements are printed too, so a stale baseline that masks a later
// regression is visible in the CI log.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/json.h"

namespace blockoptr {
namespace {

struct Bench {
  double ns_per_op = 0;
};

Result<std::map<std::string, Bench>> LoadDump(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::InvalidArgument("cannot open '" + path + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  BLOCKOPTR_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(buf.str()));
  if (!doc.is_object()) {
    return Status::InvalidArgument(path + ": top level is not an object");
  }
  const auto& obj = doc.as_object();
  auto schema = obj.find("schema");
  if (schema == obj.end() || !schema->second.is_string() ||
      schema->second.as_string() != "blockoptr-bench-v1") {
    return Status::InvalidArgument(path +
                                   ": not a blockoptr-bench-v1 dump");
  }
  auto benches = obj.find("benchmarks");
  if (benches == obj.end() || !benches->second.is_array()) {
    return Status::InvalidArgument(path + ": missing benchmarks array");
  }
  std::map<std::string, Bench> out;
  for (const JsonValue& entry : benches->second.as_array()) {
    if (!entry.is_object()) continue;
    const auto& e = entry.as_object();
    auto name = e.find("name");
    auto ns = e.find("ns_per_op");
    if (name == e.end() || !name->second.is_string() || ns == e.end() ||
        !ns->second.is_number() || ns->second.as_number() <= 0) {
      return Status::InvalidArgument(path + ": malformed benchmark entry");
    }
    out[name->second.as_string()] = Bench{ns->second.as_number()};
  }
  if (out.empty()) {
    return Status::InvalidArgument(path + ": no benchmark entries");
  }
  return out;
}

int Usage() {
  std::fprintf(stderr,
               "usage: perf_compare --baseline=FILE --current=FILE "
               "[--threshold=0.15]\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::string baseline_path, current_path;
  double threshold = 0.15;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--baseline=", 11) == 0) {
      baseline_path = arg + 11;
    } else if (std::strncmp(arg, "--current=", 10) == 0) {
      current_path = arg + 10;
    } else if (std::strncmp(arg, "--threshold=", 12) == 0) {
      threshold = std::strtod(arg + 12, nullptr);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      return Usage();
    }
  }
  if (baseline_path.empty() || current_path.empty() || threshold <= 0) {
    return Usage();
  }

  auto baseline = LoadDump(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "error: %s\n", baseline.status().ToString().c_str());
    return 1;
  }
  auto current = LoadDump(current_path);
  if (!current.ok()) {
    std::fprintf(stderr, "error: %s\n", current.status().ToString().c_str());
    return 1;
  }

  int failures = 0;
  std::printf("%-44s %14s %14s %9s\n", "benchmark", "baseline(ns)",
              "current(ns)", "delta");
  for (const auto& [name, base] : *baseline) {
    auto it = current->find(name);
    if (it == current->end()) {
      std::printf("%-44s %14.0f %14s %9s  MISSING\n", name.c_str(),
                  base.ns_per_op, "-", "-");
      ++failures;
      continue;
    }
    const double ratio = it->second.ns_per_op / base.ns_per_op - 1.0;
    const bool regressed = ratio > threshold;
    std::printf("%-44s %14.0f %14.0f %+8.1f%%%s\n", name.c_str(),
                base.ns_per_op, it->second.ns_per_op, 100 * ratio,
                regressed ? "  REGRESSION" : "");
    if (regressed) ++failures;
  }
  for (const auto& [name, bench] : *current) {
    if (baseline->count(name) == 0) {
      std::printf("%-44s %14s %14.0f %9s  (new, no baseline)\n",
                  name.c_str(), "-", bench.ns_per_op, "-");
    }
  }

  if (failures > 0) {
    std::fprintf(stderr,
                 "perf_compare: %d benchmark(s) regressed beyond %.0f%% or "
                 "went missing\n",
                 failures, 100 * threshold);
    return 1;
  }
  std::printf("perf_compare: all %zu benchmark(s) within %.0f%% of "
              "baseline\n",
              baseline->size(), 100 * threshold);
  return 0;
}

}  // namespace
}  // namespace blockoptr

int main(int argc, char** argv) { return blockoptr::Main(argc, argv); }
