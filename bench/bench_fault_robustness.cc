// Recommendation robustness under faults: runs Table 3 workloads healthy
// and under the standard fault scenario library (driver/robustness.h) —
// leader crash, endorser outage, straggler endorser, burst window — and
// prints, per recommendation type, whether BlockOptR's advice holds,
// appears, or withdraws under each fault.
//
// Pass --jobs=N to parallelize the runs (rows identical for every N, see
// driver/sweep.h) and --txs=N to rescale (default 10000, the paper scale).
#include "bench_experiments.h"

#include "driver/robustness.h"

using namespace blockoptr;
using namespace blockoptr::bench;

namespace {

int ParseTxsFlag(int argc, char** argv) {
  int txs = kPaperTxCount;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--txs=", 6) == 0) {
      txs = std::atoi(argv[i] + 6);
    }
  }
  return txs;
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = ParseJobsFlag(argc, argv);
  const int txs = ParseTxsFlag(argc, argv);
  std::printf("== Recommendation robustness under faults (jobs=%d, "
              "txs=%d) ==\n\n",
              jobs, txs);

  // Two contrasting Table 3 workloads: update-heavy (conflict-bound, rich
  // recommendation set) and send-rate 1000 (throughput-bound).
  const auto defs = Table3Experiments(txs);
  for (int number : {5, 14}) {
    const auto& def = defs[static_cast<size_t>(number - 1)];
    ExperimentConfig base =
        MakeSyntheticExperiment(def.workload, def.network);
    const double horizon =
        static_cast<double>(def.workload.num_txs) / def.workload.send_rate;
    auto results = EvaluateRobustness(base, StandardFaultScenarios(horizon),
                                      RecommenderOptions{}, jobs);
    if (!results.ok()) {
      std::fprintf(stderr, "robustness evaluation failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", FormatRobustnessMatrix(def.label, *results).c_str());
  }
  return 0;
}
