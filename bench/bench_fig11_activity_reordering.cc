// Reproduces Figure 11: activity reordering across the synthetic
// experiments. The client manager reschedules the conflicting (read-type)
// activities relative to the rest of the workload. Paper shape: up to
// +65% throughput and +58% success (RangeRead-heavy); not recommended for
// Experiments 3 and 5 (self-dependent updates).
#include "bench_experiments.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 11: activity reordering ==\n\n");
  PrintRowHeader();
  int recommended = 0, skipped = 0;
  for (const auto& def : Table3Experiments(kPaperTxCount)) {
    ExperimentConfig cfg = MakeSyntheticExperiment(def.workload, def.network);
    AnalyzedRun baseline = RunAndAnalyze(cfg);
    const Recommendation* rec = FindRecommendation(
        baseline.recommendations, RecommendationType::kActivityReordering);
    if (rec == nullptr) {
      std::printf("%-28s -- not recommended (self-dependent conflicts)\n",
                  def.label.c_str());
      ++skipped;
      continue;
    }
    ++recommended;
    PerformanceReport optimized = RunWithOptimizations(
        cfg, baseline.recommendations,
        {RecommendationType::kActivityReordering});
    PrintRow(def.label + " [base]", baseline.report);
    PrintRow(def.label + " [reorder]", optimized);
    PrintDelta(def.label, baseline.report, optimized);
  }
  std::printf("\nrecommended for %d experiments, skipped for %d "
              "(paper: 13 recommended, skipped for Experiments 3 and 5)\n",
              recommended, skipped);
  std::printf("paper reference: up to +65%% throughput / +58%% success.\n");
  return 0;
}
