// Reproduces Figure 7: the effect of endorser restructuring on the two
// experiments where it is recommended — Experiment 1 (policy P1 makes
// Org1 mandatory) and Experiment 2 (policy P2 with endorser distribution
// skew 6). Only the endorser-restructuring recommendation is applied
// (policy -> P4, even proposal distribution), as in the paper.
// Paper shape: ~29% (Exp 1) and ~26% (Exp 2) throughput increase.
#include "bench_experiments.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 7: endorser restructuring ==\n\n");
  for (const auto& def : Table3Experiments(kPaperTxCount)) {
    if (def.number != 1 && def.number != 2) continue;
    ExperimentConfig cfg = MakeSyntheticExperiment(def.workload, def.network);
    AnalyzedRun baseline = RunAndAnalyze(cfg);

    std::printf("%s\n", def.label.c_str());
    std::printf("  endorsement load: ");
    for (const auto& [org, count] : baseline.endorsement_counts) {
      std::printf("%s=%llu ", org.c_str(),
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");

    if (!HasRecommendation(baseline.recommendations,
                           RecommendationType::kEndorserRestructuring)) {
      std::printf("  (endorser restructuring NOT recommended — unexpected)\n");
      continue;
    }
    PerformanceReport optimized = RunWithOptimizations(
        cfg, baseline.recommendations,
        {RecommendationType::kEndorserRestructuring});

    PrintRowHeader();
    PrintRow("  baseline", baseline.report);
    PrintRow("  restructured (P4, even)", optimized);
    PrintDelta("  delta", baseline.report, optimized);
    std::printf("\n");
  }
  std::printf("paper reference: +29%% / +26%% throughput; main impact on "
              "throughput and latency via de-queuing the bottleneck "
              "endorser.\n");
  return 0;
}
