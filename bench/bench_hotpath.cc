// Data-plane hot-path micro-benchmarks: state-DB point reads, block
// validation (MVCC + phantom + VSCC), conflict-graph construction, and
// log-metrics computation, each at 1k/10k/100k-transaction scale. Unlike
// the figure benches (which measure simulated time), these measure real
// wall-clock ns/op of the engine's inner loops, and `--json-out=PATH`
// dumps the suite as a BENCH_hotpath.json trajectory point so every
// commit's speedup or regression is recorded, not asserted.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "blockopt/log/blockchain_log.h"
#include "blockopt/metrics/metrics.h"
#include "common/rng.h"
#include "fabric/endorsement_policy.h"
#include "fabric/validator.h"
#include "ledger/block.h"
#include "reorder/conflict_graph.h"
#include "statedb/versioned_store.h"

namespace blockoptr {
namespace {

// Namespaced keys ("<chaincode>~<key>") with a shared prefix, like the
// real data plane produces — the prefix is what makes string comparisons
// expensive and the interned fast path visible.
std::string Key(uint64_t i) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "hotpath~acct%08llu",
                static_cast<unsigned long long>(i));
  return buf;
}

// ---------------------------------------------------------------------------
// Point reads (the MVCC inner loop's single dominant operation)
// ---------------------------------------------------------------------------

void BM_PointRead(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  VersionedStore store;
  for (uint64_t i = 0; i < n; ++i) {
    store.Apply(Key(i), "value", false, Version{1, static_cast<uint32_t>(i)});
  }
  // Pre-generated lookup keys: uniform over the key space, fixed seed.
  Rng rng(7);
  std::vector<std::string> lookups;
  lookups.reserve(1024);
  for (int i = 0; i < 1024; ++i) lookups.push_back(Key(rng.NextBelow(n)));
  size_t i = 0;
  for (auto _ : state) {
    auto vv = store.Get(lookups[i++ & 1023]);
    benchmark::DoNotOptimize(vv);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PointRead)->Arg(1000)->Arg(10000)->Arg(100000);

// ---------------------------------------------------------------------------
// Block validation (VSCC signer check + MVCC + phantom re-execution)
// ---------------------------------------------------------------------------

/// One block of `n` transactions over a store of `n` committed keys:
/// every tx reads 3 keys from the lower half and writes 2 in the upper
/// half (so all txs commit and the validator does full work), and every
/// 16th tx additionally recorded a range query over a read-only region
/// (so the phantom check re-executes real ranges).
struct ValidateFixture {
  VersionedStore state;
  Block block;
  EndorsementPolicy policy;

  explicit ValidateFixture(uint64_t n) {
    policy = EndorsementPolicy::Preset(3, 4);  // Majority(Org1..Org4)
    for (uint64_t i = 0; i < n; ++i) {
      state.Apply(Key(i), "value" + std::to_string(i), false,
                  Version{1, static_cast<uint32_t>(i % 1000)});
    }
    const uint64_t kRangeSpan = 16;
    Rng rng(11);
    block.block_num = 2;
    block.transactions.resize(n);
    for (uint64_t t = 0; t < n; ++t) {
      Transaction& tx = block.transactions[t];
      tx.tx_id = t;
      tx.activity = "transfer";
      tx.endorsers = {"Org1", "Org2", "Org3"};
      for (int r = 0; r < 3; ++r) {
        uint64_t k = rng.NextBelow(n / 2);
        tx.rwset.reads.push_back(
            ReadItem{Key(k), Version{1, static_cast<uint32_t>(k % 1000)}});
      }
      for (int w = 0; w < 2; ++w) {
        uint64_t k = n / 2 + rng.NextBelow(n / 2);
        tx.rwset.writes.push_back(WriteItem{Key(k), "newvalue", false});
      }
      if (t % 16 == 0) {
        uint64_t start = rng.NextBelow(n / 2 - kRangeSpan);
        RangeQueryInfo rq;
        rq.start_key = Key(start);
        rq.end_key = Key(start + kRangeSpan);
        for (uint64_t k = start; k < start + kRangeSpan; ++k) {
          rq.results.push_back(
              ReadItem{Key(k), Version{1, static_cast<uint32_t>(k % 1000)}});
        }
        tx.rwset.range_queries.push_back(std::move(rq));
      }
    }
    // Warm-up validation against a scratch store: in production the block
    // arrives after endorsement already touched every key, so the steady
    // state being measured is a warm one (e.g. interner ids cached on the
    // rwset items, where the library supports it). Copies of this block
    // inherit that state.
    VersionedStore scratch = state;
    ValidateAndApplyBlock(block, scratch, policy);
  }
};

void BM_ValidateBlock(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  ValidateFixture fixture(n);
  uint64_t valid = 0;
  for (auto _ : state) {
    // Validation mutates both the block (statuses) and the state (write
    // versions), so each iteration runs on fresh copies, copied outside
    // the timed region.
    state.PauseTiming();
    Block block = fixture.block;
    VersionedStore st = fixture.state;
    state.ResumeTiming();
    auto stats = ValidateAndApplyBlock(block, st, fixture.policy);
    valid = stats.valid;
    benchmark::DoNotOptimize(stats);
  }
  if (valid != n) {
    state.SkipWithError(("unexpected aborts: valid=" + std::to_string(valid) +
                         " of " + std::to_string(n))
                            .c_str());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ValidateBlock)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Conflict-graph construction (the reordering schedulers' first step)
// ---------------------------------------------------------------------------

void BM_ConflictGraph(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  // Contended batch: reads and writes drawn from a key space of n/4 so a
  // realistic fraction of tx pairs actually conflict.
  Rng rng(23);
  std::vector<ReadWriteSet> rwsets(n);
  for (uint64_t t = 0; t < n; ++t) {
    for (int r = 0; r < 3; ++r) {
      rwsets[t].reads.push_back(
          ReadItem{Key(rng.NextBelow(n / 4 + 1)), Version{1, 0}});
    }
    for (int w = 0; w < 2; ++w) {
      rwsets[t].writes.push_back(
          WriteItem{Key(rng.NextBelow(n / 4 + 1)), "v", false});
    }
  }
  std::vector<const ReadWriteSet*> ptrs;
  ptrs.reserve(rwsets.size());
  for (const auto& rw : rwsets) ptrs.push_back(&rw);
  // Steady-state warm-up: reordering in production constructs graphs over
  // long-lived rwsets, so one-time costs of the first construction (e.g.
  // cached key-id views, where the library supports them) don't belong in
  // the per-construction number — especially at 100k where the harness
  // settles on a single iteration.
  {
    ConflictGraph warmup(ptrs);
    benchmark::DoNotOptimize(warmup);
  }
  for (auto _ : state) {
    ConflictGraph graph(ptrs);
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ConflictGraph)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Log metrics (the BlockOptR analysis pass over the full log)
// ---------------------------------------------------------------------------

void BM_ComputeMetrics(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const char* kActivities[] = {"transfer", "audit", "ship", "play", "mint"};
  Rng rng(31);
  std::vector<BlockchainLogEntry> entries(n);
  for (uint64_t i = 0; i < n; ++i) {
    BlockchainLogEntry& e = entries[i];
    e.client_timestamp = static_cast<double>(i) * 0.01;
    e.activity = kActivities[i % 5];
    e.endorsers = {"Org1", "Org2"};
    e.invoker_client = "Org1-client" + std::to_string(i % 8);
    e.invoker_org = "Org1";
    for (int r = 0; r < 2; ++r) {
      e.read_keys.push_back(Key(rng.NextBelow(n / 4 + 1)));
    }
    e.writes.emplace_back(Key(rng.NextBelow(n / 4 + 1)),
                          std::to_string(i % 50) + "|payload");
    e.status =
        (i % 10 == 3) ? TxStatus::kMvccReadConflict : TxStatus::kValid;
    e.commit_order = i;
    e.block_num = i / 100;
    e.tx_pos = static_cast<uint32_t>(i % 100);
  }
  BlockchainLog log(std::move(entries));
  // Same steady-state warm-up rationale as BM_ConflictGraph: the log is
  // analyzed repeatedly (metrics, recommender, what-if re-runs); first-use
  // costs are not part of the per-pass number.
  {
    LogMetrics warm = ComputeMetrics(log, MetricsOptions{});
    benchmark::DoNotOptimize(warm);
  }
  for (auto _ : state) {
    LogMetrics m = ComputeMetrics(log, MetricsOptions{});
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ComputeMetrics)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace blockoptr

int main(int argc, char** argv) {
  std::string json_out = blockoptr::bench::ParseJsonOutFlag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  blockoptr::bench::JsonTrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_out.empty()) reporter.WriteJson(json_out, "hotpath");
  benchmark::Shutdown();
  return 0;
}
