// Reproduces Figure 9: block size adaptation. The paper shows this for
// the experiments where it was recommended (block count 50; key skew 2;
// send rate 300) — setting the block count to the transaction rate
// derived from the log. Paper shape: up to +93% throughput and +85%
// success at block count 50.
//
// Pass --jobs=N to run the baseline and what-if runs on N threads
// (identical output).
#include <optional>

#include "bench_experiments.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main(int argc, char** argv) {
  const int jobs = ParseJobsFlag(argc, argv);
  std::printf("== Figure 9: block size adaptation (jobs=%d) ==\n\n", jobs);

  // The figure's x-axis entries: the experiments with a block-size
  // recommendation (9: block count 50; 8: key skew 2; 13/14: send
  // rates whose derived rate diverges from the block size).
  std::vector<SyntheticExperimentDef> defs;
  for (const auto& def : Table3Experiments(kPaperTxCount)) {
    if (def.number == 8 || def.number == 9 || def.number == 13 ||
        def.number == 14) {
      defs.push_back(def);
    }
  }
  std::vector<ExperimentConfig> configs;
  configs.reserve(defs.size());
  for (const auto& def : defs) {
    configs.push_back(MakeSyntheticExperiment(def.workload, def.network));
  }
  const auto baselines = RunAndAnalyzeAll(configs, jobs);

  // Second phase: the adapted re-runs (only where the rule fired), again
  // fanned out over the worker threads.
  std::vector<std::function<std::optional<PerformanceReport>()>> reruns;
  for (size_t i = 0; i < defs.size(); ++i) {
    reruns.emplace_back([&configs, &baselines, i]() {
      std::optional<PerformanceReport> optimized;
      if (FindRecommendation(baselines[i].recommendations,
                             RecommendationType::kBlockSizeAdaptation)) {
        optimized = RunWithOptimizations(
            configs[i], baselines[i].recommendations,
            {RecommendationType::kBlockSizeAdaptation});
      }
      return optimized;
    });
  }
  const auto optimized =
      RunAll<std::optional<PerformanceReport>>(jobs, std::move(reruns));

  for (size_t i = 0; i < defs.size(); ++i) {
    const auto& def = defs[i];
    const Recommendation* adapt = FindRecommendation(
        baselines[i].recommendations,
        RecommendationType::kBlockSizeAdaptation);
    std::printf("%s  (B_count=%u, Tr=%.0f tps, B_sizeavg=%.0f)\n",
                def.label.c_str(), def.network.block_cutting.max_tx_count,
                baselines[i].metrics.tr, baselines[i].metrics.b_sizeavg);
    if (adapt == nullptr) {
      std::printf("  block size adaptation not recommended here\n\n");
      continue;
    }
    std::printf("  suggested block count: %u\n", adapt->suggested_block_count);
    PrintRowHeader();
    PrintRow("  baseline", baselines[i].report);
    PrintRow("  adapted", *optimized[i]);
    PrintDelta("  delta", baselines[i].report, *optimized[i]);
    std::printf("\n");
  }
  std::printf("paper reference: up to +93%% throughput / +85%% success at "
              "block count 50.\n");
  return 0;
}
