// Reproduces Figure 9: block size adaptation. The paper shows this for
// the experiments where it was recommended (block count 50; key skew 2;
// send rate 300) — setting the block count to the transaction rate
// derived from the log. Paper shape: up to +93% throughput and +85%
// success at block count 50.
#include "bench_experiments.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 9: block size adaptation ==\n\n");
  for (const auto& def : Table3Experiments(kPaperTxCount)) {
    // The figure's x-axis entries: the experiments with a block-size
    // recommendation (9: block count 50; 8: key skew 2; 13/14: send
    // rates whose derived rate diverges from the block size).
    if (def.number != 9 && def.number != 8 && def.number != 13 &&
        def.number != 14) {
      continue;
    }
    ExperimentConfig cfg = MakeSyntheticExperiment(def.workload, def.network);
    AnalyzedRun baseline = RunAndAnalyze(cfg);
    const Recommendation* adapt = FindRecommendation(
        baseline.recommendations, RecommendationType::kBlockSizeAdaptation);
    std::printf("%s  (B_count=%u, Tr=%.0f tps, B_sizeavg=%.0f)\n",
                def.label.c_str(), def.network.block_cutting.max_tx_count,
                baseline.metrics.tr, baseline.metrics.b_sizeavg);
    if (adapt == nullptr) {
      std::printf("  block size adaptation not recommended here\n\n");
      continue;
    }
    std::printf("  suggested block count: %u\n", adapt->suggested_block_count);
    PerformanceReport optimized =
        RunWithOptimizations(cfg, baseline.recommendations,
                             {RecommendationType::kBlockSizeAdaptation});
    PrintRowHeader();
    PrintRow("  baseline", baseline.report);
    PrintRow("  adapted", optimized);
    PrintDelta("  delta", baseline.report, optimized);
    std::printf("\n");
  }
  std::printf("paper reference: up to +93%% throughput / +85%% success at "
              "block count 50.\n");
  return 0;
}
