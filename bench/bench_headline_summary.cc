// Reproduces the paper's headline claim (§1 / §9): "After implementing
// the recommended optimizations, we observe an average of 20% improvement
// in the success rate of transactions and an average of 40% improvement
// in latency." Averages the baseline-vs-all-recommendations deltas over
// the 15 synthetic experiments and the 5 use-case workloads.
#include "bench_experiments.h"

#include "workload/lap_log.h"

using namespace blockoptr;
using namespace blockoptr::bench;

namespace {

struct Deltas {
  double success = 0;         // relative improvement
  double success_points = 0;  // absolute percentage points gained
  double latency = 0;
  double throughput = 0;
};

Deltas RunPair(const ExperimentConfig& cfg, const std::string& label) {
  AnalyzedRun baseline = RunAndAnalyze(cfg);
  auto optimized_cfg = ApplyOptimizations(cfg, baseline.recommendations);
  if (!optimized_cfg.ok()) {
    std::fprintf(stderr, "%s apply: %s\n", label.c_str(),
                 optimized_cfg.status().ToString().c_str());
    std::exit(1);
  }
  auto out = RunExperiment(*optimized_cfg);
  if (!out.ok()) {
    std::fprintf(stderr, "%s run: %s\n", label.c_str(),
                 out.status().ToString().c_str());
    std::exit(1);
  }
  Deltas d;
  d.success = RelativeImprovement(baseline.report.SuccessRate(),
                                  out->report.SuccessRate());
  d.success_points =
      out->report.SuccessRate() - baseline.report.SuccessRate();
  d.latency = RelativeImprovement(baseline.report.AvgLatency(),
                                  out->report.AvgLatency(), true);
  d.throughput = RelativeImprovement(baseline.report.Throughput(),
                                     out->report.Throughput());
  std::printf("%-28s success %+6.1f%%  latency %+6.1f%%  tput %+6.1f%%\n",
              label.c_str(), 100 * d.success, 100 * d.latency,
              100 * d.throughput);
  return d;
}

}  // namespace

int main() {
  std::printf("== Headline summary: average improvement across all "
              "workloads ==\n\n");
  std::vector<Deltas> all;

  for (const auto& def : Table3Experiments(kPaperTxCount)) {
    all.push_back(RunPair(MakeSyntheticExperiment(def.workload, def.network),
                          def.label));
  }

  UseCaseConfig uc;
  uc.num_txs = kPaperTxCount;
  {
    ExperimentConfig cfg;
    cfg.network = NetworkConfig::Defaults();
    cfg.chaincodes = {"scm"};
    cfg.schedule = GenerateScmWorkload(uc);
    all.push_back(RunPair(cfg, "SCM"));
  }
  {
    ExperimentConfig cfg;
    cfg.network = NetworkConfig::Defaults();
    cfg.chaincodes = {"drm"};
    for (auto& [k, v] : DrmSeedState()) {
      cfg.seeds.push_back(SeedEntry{"drm", k, v});
    }
    cfg.schedule = GenerateDrmWorkload(uc);
    all.push_back(RunPair(cfg, "DRM"));
  }
  {
    ExperimentConfig cfg;
    cfg.network = NetworkConfig::Defaults();
    cfg.chaincodes = {"ehr"};
    for (auto& [k, v] : EhrSeedState()) {
      cfg.seeds.push_back(SeedEntry{"ehr", k, v});
    }
    cfg.schedule = GenerateEhrWorkload(uc);
    all.push_back(RunPair(cfg, "EHR"));
  }
  {
    ExperimentConfig cfg;
    cfg.network = NetworkConfig::Defaults();
    cfg.chaincodes = {"dv"};
    for (auto& [k, v] : DvSeedState()) {
      cfg.seeds.push_back(SeedEntry{"dv", k, v});
    }
    cfg.schedule = GenerateDvWorkload(uc);
    all.push_back(RunPair(cfg, "DV"));
  }
  {
    LapLogConfig lc;
    auto events = GenerateLapEventLog(lc);
    ExperimentConfig cfg;
    cfg.network = NetworkConfig::Defaults();
    cfg.chaincodes = {"lap"};
    cfg.schedule = LapScheduleFromLog(events, 300.0);
    all.push_back(RunPair(cfg, "LAP (300 TPS)"));
  }

  Deltas avg;
  for (const auto& d : all) {
    avg.success += d.success;
    avg.success_points += d.success_points;
    avg.latency += d.latency;
    avg.throughput += d.throughput;
  }
  const double n = static_cast<double>(all.size());
  std::printf("\n%-28s success %+6.1f%%  latency %+6.1f%%  tput %+6.1f%%\n",
              "AVERAGE (relative)", 100 * avg.success / n,
              100 * avg.latency / n, 100 * avg.throughput / n);
  std::printf("%-28s success %+6.1f pp\n", "AVERAGE (abs. points)",
              100 * avg.success_points / n);
  std::printf("\npaper reference: ~+20%% average success-rate improvement "
              "and ~+40%% average latency improvement.\n");

  // Where the time actually goes: trace one representative workload and
  // print the stage-level breakdown next to the headline figures.
  auto defs = Table3Experiments(kPaperTxCount);
  if (!defs.empty()) {
    PrintStageBreakdown(
        MakeSyntheticExperiment(defs[0].workload, defs[0].network),
        defs[0].label);
  }
  return 0;
}
