// Reproduces Figure 15: the EHR use case (70% update-heavy grant/revoke
// workload). Recommendations: activity reordering (read activities),
// process-model pruning (revoke-without-grant), rate control.
// Paper shape: reordering +60-65% tput and success; pruning ~+43%;
// rate control +69% success.
#include "bench_util.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 15: Electronic Health Records ==\n\n");
  UseCaseConfig uc;
  uc.num_txs = kPaperTxCount;
  ExperimentConfig cfg;
  cfg.network = NetworkConfig::Defaults();
  cfg.chaincodes = {"ehr"};
  for (auto& [k, v] : EhrSeedState()) {
    cfg.seeds.push_back(SeedEntry{"ehr", k, v});
  }
  cfg.schedule = GenerateEhrWorkload(uc);

  AnalyzedRun baseline = RunAndAnalyze(cfg);
  std::printf("recommendations: %s\n\n",
              RecommendationNames(baseline.recommendations).c_str());
  PrintRowHeader();
  PrintRow("baseline", baseline.report);

  const struct {
    const char* label;
    std::vector<RecommendationType> types;
  } bars[] = {
      {"activity reordering", {RecommendationType::kActivityReordering}},
      {"process model pruning", {RecommendationType::kProcessModelPruning}},
      {"rate control", {RecommendationType::kTransactionRateControl}},
      {"all combined",
       {RecommendationType::kActivityReordering,
        RecommendationType::kProcessModelPruning,
        RecommendationType::kTransactionRateControl}},
  };
  for (const auto& bar : bars) {
    PerformanceReport r =
        RunWithOptimizations(cfg, baseline.recommendations, bar.types);
    PrintRow(bar.label, r);
    PrintDelta(bar.label, baseline.report, r);
  }
  std::printf("\npaper reference: reordering +60-65%%; pruning ~+43%%; rate "
              "control +69%% success.\n");
  return 0;
}
