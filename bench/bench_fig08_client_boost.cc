// Reproduces Figure 8: client resource boost on Experiment 15 (70% of
// transactions invoked through Org1). Only the client-boost
// recommendation is applied (double the flagged organization's clients).
// Paper shape: ~75% latency decrease, ~15% throughput and ~7% success
// increase.
#include "bench_experiments.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 8: client resource boost ==\n\n");
  for (const auto& def : Table3Experiments(kPaperTxCount)) {
    if (def.number != 15) continue;
    ExperimentConfig cfg = MakeSyntheticExperiment(def.workload, def.network);
    AnalyzedRun baseline = RunAndAnalyze(cfg);
    std::printf("%s\n", def.label.c_str());
    std::printf("  invoker significance: ");
    for (const auto& [org, count] : baseline.metrics.invoker_org_sig) {
      std::printf("%s=%llu ", org.c_str(),
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");
    const Recommendation* boost = FindRecommendation(
        baseline.recommendations, RecommendationType::kClientResourceBoost);
    if (boost == nullptr) {
      std::printf("  (client boost NOT recommended — unexpected)\n");
      return 1;
    }
    std::printf("  recommendation: %s\n\n", boost->detail.c_str());
    PerformanceReport optimized = RunWithOptimizations(
        cfg, baseline.recommendations,
        {RecommendationType::kClientResourceBoost});
    PrintRowHeader();
    PrintRow("  baseline (5 clients/org)", baseline.report);
    PrintRow("  boosted (Org1 doubled)", optimized);
    PrintDelta("  delta", baseline.report, optimized);
  }
  std::printf("\npaper reference: -75%% latency, +15%% throughput, +7%% "
              "success rate.\n");
  return 0;
}
