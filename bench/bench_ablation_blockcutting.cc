// Ablation: block-cutting regimes. Sweeps the block count at a fixed
// 300 TPS send rate to expose the two failure modes the paper's
// block-size-adaptation rule targets (§4.4.3): count-driven cutting with
// tiny blocks (block-creation overhead dominates, the orderer saturates)
// vs timeout-driven cutting with oversized counts (transactions queue in
// the cutter, widening the MVCC window). The sweet spot sits near
// B_count == Tr * B_timeout.
//
// Pass --jobs=N to run the sweep points on N threads (identical output).
#include "bench_util.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main(int argc, char** argv) {
  const int jobs = ParseJobsFlag(argc, argv);
  std::printf("== Ablation: block cutting (send rate 300 TPS, timeout 1s, "
              "jobs=%d) ==\n\n",
              jobs);
  SyntheticConfig wl;
  wl.num_txs = kPaperTxCount;

  const std::vector<uint32_t> counts = {25u,  50u,  100u,  200u,
                                        300u, 500u, 1000u, 2000u};
  std::vector<ExperimentConfig> configs;
  configs.reserve(counts.size());
  for (uint32_t count : counts) {
    NetworkConfig net = NetworkConfig::Defaults();
    net.block_cutting.max_tx_count = count;
    configs.push_back(MakeSyntheticExperiment(wl, net));
  }
  const auto outputs = SweepRunner(SweepOptions{jobs}).Run(configs);

  PrintRowHeader();
  for (size_t i = 0; i < counts.size(); ++i) {
    if (!outputs[i].ok()) {
      std::fprintf(stderr, "%s\n", outputs[i].status().ToString().c_str());
      return 1;
    }
    PrintRow("block count " + std::to_string(counts[i]), outputs[i]->report);
    std::printf("%-28s   blocks=%llu avg_size=%.1f\n", "",
                static_cast<unsigned long long>(outputs[i]->ledger.NumBlocks()),
                outputs[i]->ledger.AverageBlockSize());
  }
  std::printf("\ntimeout-driven regime kicks in once count > 300 (the rate "
              "x timeout product); tiny blocks saturate the orderer.\n");
  return 0;
}
