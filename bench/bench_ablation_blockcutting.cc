// Ablation: block-cutting regimes. Sweeps the block count at a fixed
// 300 TPS send rate to expose the two failure modes the paper's
// block-size-adaptation rule targets (§4.4.3): count-driven cutting with
// tiny blocks (block-creation overhead dominates, the orderer saturates)
// vs timeout-driven cutting with oversized counts (transactions queue in
// the cutter, widening the MVCC window). The sweet spot sits near
// B_count == Tr * B_timeout.
#include "bench_util.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Ablation: block cutting (send rate 300 TPS, timeout 1s) "
              "==\n\n");
  SyntheticConfig wl;
  wl.num_txs = kPaperTxCount;

  PrintRowHeader();
  for (uint32_t count : {25u, 50u, 100u, 200u, 300u, 500u, 1000u, 2000u}) {
    NetworkConfig net = NetworkConfig::Defaults();
    net.block_cutting.max_tx_count = count;
    ExperimentConfig cfg = MakeSyntheticExperiment(wl, net);
    auto out = RunExperiment(cfg);
    if (!out.ok()) {
      std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
      return 1;
    }
    PrintRow("block count " + std::to_string(count), out->report);
    std::printf("%-28s   blocks=%llu avg_size=%.1f\n", "",
                static_cast<unsigned long long>(out->ledger.NumBlocks()),
                out->ledger.AverageBlockSize());
  }
  std::printf("\ntimeout-driven regime kicks in once count > 300 (the rate "
              "x timeout product); tiny blocks saturate the orderer.\n");
  return 0;
}
