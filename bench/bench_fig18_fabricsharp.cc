// Reproduces Figure 18: BlockOptR on top of a FabricSharp-style ordering
// scheduler. The paper runs the workloads FabricSharp handles worst
// (insert-heavy) plus the defaults, derives recommendations, and applies
// them. Shape to reproduce: the recommendations still help even with the
// system-level reordering in place (§6.4).
#include "bench_experiments.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 18: synthetic workloads on FabricSharp ==\n\n");
  PrintRowHeader();
  for (const auto& def : Table3Experiments(kPaperTxCount)) {
    // The paper's Fig 18 selection: workloads known to stress FabricSharp
    // (insert-heavy) and the endorsement-skew experiments.
    if (def.number != 1 && def.number != 6 && def.number != 10) continue;
    ExperimentConfig cfg = MakeSyntheticExperiment(def.workload, def.network);
    cfg.orderer_scheduler = "fabricsharp";
    AnalyzedRun baseline = RunAndAnalyze(cfg);
    auto optimized_cfg = ApplyOptimizations(cfg, baseline.recommendations);
    if (!optimized_cfg.ok()) {
      std::fprintf(stderr, "%s\n", optimized_cfg.status().ToString().c_str());
      return 1;
    }
    auto optimized = RunExperiment(*optimized_cfg);
    if (!optimized.ok()) {
      std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
      return 1;
    }
    PrintRow(def.label + " [sharp]", baseline.report);
    PrintRow(def.label + " [sharp+recs]", optimized->report);
    PrintDelta(def.label, baseline.report, optimized->report);
    std::printf("  recommendations applied: %s\n\n",
                RecommendationNames(baseline.recommendations).c_str());
  }
  std::printf("paper reference: recommendations yield up to +55%% "
              "throughput / +46%% success on top of the reordering "
              "schedulers.\n");
  return 0;
}
