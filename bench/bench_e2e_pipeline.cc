// End-to-end simulation-engine benchmarks.
//
// Two layers:
//
//   1. BM_EventCore_* — an interleaved A/B of the event core. Side A
//      ("Legacy") is the pre-overhaul pipeline verbatim: the old engine
//      (type-erased std::function events in a binary std::priority_queue,
//      with the copy-before-pop in Step) driven with the old scheduling
//      idiom (requests copied into their arrival events, per-org
//      make_shared commit fan-out). Side B ("Pooled") is the shipping
//      pipeline: the 4-ary-heap/InlineCallback-slot-pool Simulator driven
//      move-clean (thin by-reference arrivals, payload moved through
//      assembly, one shared commit payload). Both run the same
//      seven-events-per-transaction pipeline shape — arrival → endorse ×3
//      → order → commit fan-out ×2 — over the same pre-built schedule.
//      items/sec = events/sec.
//
//   2. BM_E2E_Experiment — the full pipeline (endorse → order → validate →
//      commit via RunExperiment) on the paper's synthetic workload at
//      three scales. items/sec = committed transactions/sec, so
//      ns/tx = 1e9 / items_per_second.
//
// `--json-out=PATH` dumps the suite as a BENCH_e2e.json trajectory point
// (schema blockoptr-bench-v1); main() additionally prints an explicit
// interleaved A/B summary with the events/sec ratio at the largest scale.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "sim/simulator.h"

namespace blockoptr {
namespace {

// ---------------------------------------------------------------------------
// Legacy event core (the pre-overhaul Simulator, kept verbatim as the A side)
// ---------------------------------------------------------------------------

class LegacyEventEngine {
 public:
  using Callback = std::function<void()>;

  SimTime Now() const { return now_; }

  /// The old engine had no pre-sizing hook (std::priority_queue exposes
  /// none); kept as a no-op so both engines run the same workload code.
  void Reserve(size_t) {}

  void ScheduleAt(SimTime at, Callback cb) {
    if (at < now_) at = now_;
    queue_.push(Event{at, next_seq_++, std::move(cb)});
  }
  void ScheduleAfter(SimTime delay, Callback cb) {
    ScheduleAt(now_ + delay, std::move(cb));
  }
  bool Step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();  // the copy-before-pop the overhaul removed
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.cb();
    return true;
  }
  void Run() {
    while (Step()) {
    }
  }
  uint64_t num_processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// ---------------------------------------------------------------------------
// Pipeline-shaped synthetic workload (identical on both engines)
// ---------------------------------------------------------------------------

/// Stand-in for what real pipeline closures carry: a request/transaction
/// worth of bytes. Big enough that std::function's ~16-byte inline buffer
/// never holds it — exactly the situation on the real hot path.
struct TxPayload {
  uint64_t id = 0;
  double send_time = 0;
  unsigned char body[240] = {};
};

std::vector<TxPayload> MakePipelineSchedule(int num_txs) {
  std::vector<TxPayload> schedule(static_cast<size_t>(num_txs));
  for (int i = 0; i < num_txs; ++i) {
    schedule[i].id = static_cast<uint64_t>(i);
    schedule[i].send_time = static_cast<double>(i) * 0.001;
  }
  return schedule;
}

/// Side A — the seed pipeline: every arrival event copies its request
/// (the old `[&network, req]` idiom forced by std::function's
/// copyability requirement), endorsement and ordering events carry the
/// payload by value, and the commit fan-out re-heap-allocates the payload
/// per delivering org (the old per-org make_shared<Block>). Every event
/// folds into `sink` so no stage can be optimized away.
void RunLegacyPipeline(LegacyEventEngine& eng,
                       const std::vector<TxPayload>& schedule,
                       uint64_t& sink) {
  for (const TxPayload& req : schedule) {
    TxPayload p = req;
    eng.ScheduleAt(p.send_time, [&eng, &sink, p] {
      for (int org = 0; org < 3; ++org) {
        const double endorse_done = 0.0005 * (org + 1);
        if (org < 2) {
          eng.ScheduleAfter(endorse_done, [&sink, p] { sink += p.id; });
        } else {
          // Last endorsement assembles the transaction and submits it
          // for ordering.
          eng.ScheduleAfter(endorse_done, [&eng, &sink, p] {
            sink += p.id;
            eng.ScheduleAfter(0.0002, [&eng, &sink, p] {
              sink += p.id;
              // Commit fan-out: one payload copy per delivering org.
              for (int dest = 0; dest < 2; ++dest) {
                auto copy = std::make_shared<TxPayload>(p);
                eng.ScheduleAfter(0.0001,
                                  [&sink, copy] { sink += copy->id; });
              }
            });
          });
        }
      }
    });
  }
  eng.Run();
}

/// Side B — the shipping pipeline: thin by-reference arrivals (the
/// schedule outlives the run, as in driver/experiment.cc), the payload
/// rides the pipeline by value only where it genuinely transfers
/// (endorsement results, assembly), and the commit fan-out shares one
/// immutable payload between the delivering orgs' thin events.
void RunPooledPipeline(Simulator& eng,
                       const std::vector<TxPayload>& schedule,
                       uint64_t& sink) {
  eng.Reserve(schedule.size() + 64);
  for (const TxPayload& req : schedule) {
    eng.ScheduleAt(req.send_time, [&eng, &sink, &req] {
      const TxPayload& p = req;
      for (int org = 0; org < 3; ++org) {
        const double endorse_done = 0.0005 * (org + 1);
        if (org < 2) {
          eng.ScheduleAfter(endorse_done, [&sink, p] { sink += p.id; });
        } else {
          eng.ScheduleAfter(endorse_done, [&eng, &sink, p] {
            sink += p.id;
            eng.ScheduleAfter(0.0002, [&eng, &sink, p]() mutable {
              sink += p.id;
              // Commit fan-out: one shared immutable payload, moved out
              // of the ordering event, referenced by both thin delivery
              // events (the real pipeline amortizes this allocation over
              // a whole block's fan-out).
              auto committed =
                  std::make_shared<const TxPayload>(std::move(p));
              for (int dest = 0; dest < 2; ++dest) {
                eng.ScheduleAfter(0.0001, [&sink, committed] {
                  sink += committed->id;
                });
              }
            });
          });
        }
      }
    });
  }
  eng.Run();
}

template <typename Engine, typename RunFn>
void RunEventCoreBench(benchmark::State& state, RunFn run) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<TxPayload> schedule = MakePipelineSchedule(n);
  uint64_t events = 0;
  uint64_t sink = 0;
  for (auto _ : state) {
    Engine eng;
    run(eng, schedule, sink);
    events += eng.num_processed();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(events));
}

void BM_EventCore_Legacy(benchmark::State& state) {
  RunEventCoreBench<LegacyEventEngine>(state, RunLegacyPipeline);
}
void BM_EventCore_Pooled(benchmark::State& state) {
  RunEventCoreBench<Simulator>(state, RunPooledPipeline);
}
BENCHMARK(BM_EventCore_Legacy)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_EventCore_Pooled)->Arg(1000)->Arg(10000)->Arg(100000);

// ---------------------------------------------------------------------------
// Full pipeline: RunExperiment on the paper's synthetic workload
// ---------------------------------------------------------------------------

void BM_E2E_Experiment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SyntheticConfig wl;
  wl.num_txs = n;
  ExperimentConfig cfg =
      MakeSyntheticExperiment(wl, NetworkConfig::Defaults());
  uint64_t events = 0;
  uint64_t runs = 0;
  for (auto _ : state) {
    auto out = RunExperiment(cfg);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    events += out->events_processed;
    ++runs;
    benchmark::DoNotOptimize(out->report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.counters["events_per_run"] =
      benchmark::Counter(static_cast<double>(events / (runs ? runs : 1)));
}
BENCHMARK(BM_E2E_Experiment)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Multi-channel sharded runs: the channels × sim-threads scaling matrix
// ---------------------------------------------------------------------------

void BM_E2E_ShardedExperiment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int channels = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  SyntheticConfig wl;
  wl.num_txs = n;
  ExperimentConfig cfg =
      MakeSyntheticExperiment(wl, NetworkConfig::Defaults());
  cfg.channels = channels;
  cfg.sim_threads = threads;
  uint64_t events = 0;
  uint64_t runs = 0;
  for (auto _ : state) {
    auto out = RunExperiment(cfg);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    events += out->events_processed;
    ++runs;
    benchmark::DoNotOptimize(out->report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.counters["events_per_run"] =
      benchmark::Counter(static_cast<double>(events / (runs ? runs : 1)));
}
// Arg triple: {txs, channels, sim-threads}. The {100k, 1, 1} row is the
// single-channel reference the >=1.5x whole-experiment scaling target is
// measured against (it needs >= sim-threads free cores to show — on a
// 1-core runner the lockstep barrier serializes the channels); the
// 1M-tx 8-channel row is the large-run completion check. UseRealTime
// makes items/sec wall-clock (the honest scaling number) and
// MeasureProcessCPUTime makes the CPU column sum the worker threads
// instead of reporting the main thread blocked on the barrier.
BENCHMARK(BM_E2E_ShardedExperiment)
    ->Args({100000, 1, 1})
    ->Args({100000, 4, 1})
    ->Args({100000, 4, 2})
    ->Args({100000, 4, 4})
    ->Args({100000, 8, 8})
    ->Args({1000000, 8, 8})
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Explicit interleaved A/B at the largest scale
// ---------------------------------------------------------------------------

template <typename Engine, typename RunFn>
double MeasureEventsPerSec(const std::vector<TxPayload>& schedule, RunFn run,
                           uint64_t& sink) {
  Engine eng;
  const auto start = std::chrono::steady_clock::now();
  run(eng, schedule, sink);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(eng.num_processed()) / elapsed.count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Alternates legacy/pooled runs so drift (frequency scaling, cache
/// state) hits both engines equally, then compares medians.
void PrintInterleavedAB(int num_txs, int rounds) {
  const std::vector<TxPayload> schedule = MakePipelineSchedule(num_txs);
  std::vector<double> legacy, pooled;
  uint64_t sink = 0;
  for (int r = 0; r < rounds; ++r) {
    legacy.push_back(MeasureEventsPerSec<LegacyEventEngine>(
        schedule, RunLegacyPipeline, sink));
    pooled.push_back(MeasureEventsPerSec<Simulator>(
        schedule, RunPooledPipeline, sink));
  }
  benchmark::DoNotOptimize(sink);
  const double a = Median(legacy);
  const double b = Median(pooled);
  std::printf("\ninterleaved A/B at %d txs (%d rounds, median): "
              "legacy %.2fM events/s, pooled %.2fM events/s -> %.2fx\n",
              num_txs, rounds, a / 1e6, b / 1e6, b / a);
}

/// Alternates single-channel and 4-channel/4-thread whole experiments and
/// compares median committed-tx/s — the ISSUE's >=1.5x sharding target.
void PrintShardedAB(int num_txs, int rounds) {
  SyntheticConfig wl;
  wl.num_txs = num_txs;
  ExperimentConfig single =
      MakeSyntheticExperiment(wl, NetworkConfig::Defaults());
  ExperimentConfig sharded = single;
  sharded.channels = 4;
  sharded.sim_threads = 4;
  auto measure = [&](const ExperimentConfig& cfg) {
    const auto start = std::chrono::steady_clock::now();
    auto out = RunExperiment(cfg);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (!out.ok()) return 0.0;
    return static_cast<double>(out->report.total_committed()) /
           elapsed.count();
  };
  std::vector<double> a, b;
  for (int r = 0; r < rounds; ++r) {
    a.push_back(measure(single));
    b.push_back(measure(sharded));
  }
  std::printf("sharded A/B at %d txs (%d rounds, median): 1ch %.0fk tx/s, "
              "4ch/4thr %.0fk tx/s -> %.2fx\n",
              num_txs, rounds, Median(a) / 1e3, Median(b) / 1e3,
              Median(b) / Median(a));
}

}  // namespace
}  // namespace blockoptr

int main(int argc, char** argv) {
  std::string json_out = blockoptr::bench::ParseJsonOutFlag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  blockoptr::bench::JsonTrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_out.empty()) reporter.WriteJson(json_out, "e2e");
  blockoptr::PrintInterleavedAB(/*num_txs=*/100000, /*rounds=*/5);
  blockoptr::PrintShardedAB(/*num_txs=*/100000, /*rounds=*/5);
  benchmark::Shutdown();
  return 0;
}
