// Streaming-analysis overhead A/B: what live in-run analysis costs.
//
// Runs the full pipeline (RunExperiment) on the paper's synthetic
// workload at 1k / 10k / 100k transactions in three streaming profiles:
//
//   BM_Stream_Off      — the shipping fast path (no stream engine)
//   BM_Stream_Observe  — incremental log derivation + windowed metrics +
//                        conflict window + online recommender, advisory
//                        only (the always-on monitoring profile)
//   BM_Stream_Apply    — observe plus the live-reconfig hook that can
//                        submit a config update mid-run
//
// Each profile measures the full pipeline to the same deliverable —
// whole-run LogMetrics plus recommendations. The Off profile derives
// them post-mortem (ExtractBlockchainLog + ComputeMetrics + Recommend);
// the streaming profiles take the engine's cumulative snapshot instead,
// which stream_test asserts is field-for-field identical. Measuring
// "run + post-mortem analysis + streaming" would double-count the exact
// analysis the engine already performed online.
//
// Measured on a Release build at 10k txs, the commit-time feed that
// replaces the post-mortem pass is a wash; the observe-only end-to-end
// overhead is ~15-23% (median ~20% across repeated A/B runs; the
// pre-pane ring engine measured ~24-33% on the same machine) and is
// entirely the live-only work the batch pipeline never does — the
// per-window rule evaluations (now pane merges plus one straddling
// pane's row suffix, with the window Snapshot() the dominant term) and
// the incremental conflict window and hot-key sketch.
// main() prints an explicit interleaved A/B so the ratio is robust
// against frequency-scaling drift, and `--json-out=PATH` dumps the
// suite as BENCH_streaming.json (schema blockoptr-bench-v1) for CI.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "blockopt/log/preprocess.h"
#include "blockopt/metrics/metrics.h"
#include "blockopt/recommend/recommender.h"

namespace blockoptr {
namespace {

enum class Profile { kOff, kObserve, kApply };

ExperimentConfig MakeConfig(int num_txs, Profile profile,
                            size_t pane_rows = 0) {
  SyntheticConfig wl;
  wl.num_txs = num_txs;
  ExperimentConfig cfg =
      MakeSyntheticExperiment(wl, NetworkConfig::Defaults());
  cfg.stream.enabled = profile != Profile::kOff;
  cfg.stream.apply = profile == Profile::kApply;
  if (pane_rows > 0) cfg.stream.pane_rows = pane_rows;
  return cfg;
}

void RunProfile(benchmark::State& state, Profile profile) {
  const int n = static_cast<int>(state.range(0));
  const ExperimentConfig cfg = MakeConfig(n, profile);
  for (auto _ : state) {
    auto out = RunExperiment(cfg);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    // Same deliverable on both sides: whole-run metrics + advice. Off
    // pays the post-mortem pass; streaming already holds the (equal)
    // cumulative metrics and just snapshots them.
    LogMetrics metrics =
        out->stream
            ? out->stream->CumulativeSnapshot()
            : ComputeMetrics(ExtractBlockchainLog(out->ledger),
                             MetricsOptions{});
    auto recs = Recommend(metrics, RecommenderOptions{});
    benchmark::DoNotOptimize(recs);
    benchmark::DoNotOptimize(out->report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}

void BM_Stream_Off(benchmark::State& state) {
  RunProfile(state, Profile::kOff);
}
void BM_Stream_Observe(benchmark::State& state) {
  RunProfile(state, Profile::kObserve);
}
void BM_Stream_Apply(benchmark::State& state) {
  RunProfile(state, Profile::kApply);
}

BENCHMARK(BM_Stream_Off)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Stream_Observe)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Stream_Apply)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Pane-size ablation: observe-only at 10k txs, pane_rows swept
// ---------------------------------------------------------------------------

// Smaller panes mean more (cheaper-to-seal) panes per window and more
// merges per evaluation; larger panes amortize merge cost but coarsen
// the window boundary. The arg is pane_rows.
void BM_Stream_PaneRows(benchmark::State& state) {
  const ExperimentConfig cfg = MakeConfig(
      10000, Profile::kObserve, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = RunExperiment(cfg);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    LogMetrics metrics = out->stream->CumulativeSnapshot();
    auto recs = Recommend(metrics, RecommenderOptions{});
    benchmark::DoNotOptimize(recs);
    benchmark::DoNotOptimize(out->report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}

BENCHMARK(BM_Stream_PaneRows)
    ->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Window-evaluation microbench: pane merge vs row re-feed
// ---------------------------------------------------------------------------

// Isolates the core tentpole claim from the end-to-end pipeline: one
// window evaluation over the same 10k-row evidence, done the new way
// (merge the sealed 1024-row panes) and the old way (re-feed every row
// into a fresh accumulator). Both end in Snapshot(); items_processed is
// window evaluations, so the ratio of the two rates is the per-window
// speedup of the pane-merge engine.
struct WindowEvalFixture {
  BlockchainLog log;                      // owns the strings the rows view
  std::vector<MetricsAccumulator> panes;  // sealed 1024-row panes
};

const WindowEvalFixture& GetWindowFixture() {
  static const WindowEvalFixture* fixture = [] {
    auto* fx = new WindowEvalFixture;
    auto out = RunExperiment(MakeConfig(10000, Profile::kOff));
    if (!out.ok()) {
      std::fprintf(stderr, "fixture run failed: %s\n",
                   out.status().ToString().c_str());
      std::exit(1);
    }
    fx->log = ExtractBlockchainLog(out->ledger);
    const size_t kPaneRows = 1024;
    const size_t n = fx->log.size();
    fx->panes.reserve((n + kPaneRows - 1) / kPaneRows);
    for (size_t i = 0; i < n; ++i) {
      if (i % kPaneRows == 0) fx->panes.emplace_back(MetricsOptions{});
      fx->panes.back().OnEntry(fx->log[i]);
    }
    return fx;
  }();
  return *fixture;
}

void BM_WindowEval_PaneMerge(benchmark::State& state) {
  const WindowEvalFixture& fx = GetWindowFixture();
  for (auto _ : state) {
    MetricsAccumulator window{MetricsOptions{}};
    for (const MetricsAccumulator& pane : fx.panes) window.Merge(pane);
    LogMetrics wm = window.Snapshot();
    benchmark::DoNotOptimize(wm);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_WindowEval_RowFeed(benchmark::State& state) {
  const WindowEvalFixture& fx = GetWindowFixture();
  for (auto _ : state) {
    MetricsAccumulator window{MetricsOptions{}};
    for (const BlockchainLogEntry& entry : fx.log.entries()) {
      window.OnEntry(entry);
    }
    LogMetrics wm = window.Snapshot();
    benchmark::DoNotOptimize(wm);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_WindowEval_PaneMerge)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WindowEval_RowFeed)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Snapshot-detail microbench: full vs hot-keys-only materialization
// ---------------------------------------------------------------------------

// Isolates the per-evaluation Snapshot() term the engine actually pays:
// the same 10k-row window state materialized with full per-key detail
// (every distinct key lands in three string-ordered maps) and with the
// hot-keys-only detail the engine's Evaluate() uses (cold keys are
// skipped before their strings exist). The gap is pure cold-key string
// and ordered-map work — the recommender output is identical either way.
const MetricsAccumulator& GetWindowAccumulator() {
  static const MetricsAccumulator* acc = [] {
    auto* window = new MetricsAccumulator{MetricsOptions{}};
    for (const MetricsAccumulator& pane : GetWindowFixture().panes) {
      window->Merge(pane);
    }
    return window;
  }();
  return *acc;
}

void BM_WindowSnapshot_Full(benchmark::State& state) {
  const MetricsAccumulator& window = GetWindowAccumulator();
  for (auto _ : state) {
    LogMetrics wm =
        window.Snapshot(MetricsAccumulator::SnapshotDetail::kFull);
    benchmark::DoNotOptimize(wm);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_WindowSnapshot_HotKeysOnly(benchmark::State& state) {
  const MetricsAccumulator& window = GetWindowAccumulator();
  for (auto _ : state) {
    LogMetrics wm =
        window.Snapshot(MetricsAccumulator::SnapshotDetail::kHotKeysOnly);
    benchmark::DoNotOptimize(wm);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_WindowSnapshot_Full)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WindowSnapshot_HotKeysOnly)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Explicit interleaved A/B: observe-only vs stream-off
// ---------------------------------------------------------------------------

double MeasureTxPerSec(const ExperimentConfig& cfg) {
  const auto start = std::chrono::steady_clock::now();
  auto out = RunExperiment(cfg);
  if (!out.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 out.status().ToString().c_str());
    std::exit(1);
  }
  // Same pipeline as RunProfile: both sides end with whole-run metrics
  // and recommendations in hand.
  LogMetrics metrics =
      out->stream ? out->stream->CumulativeSnapshot()
                  : ComputeMetrics(ExtractBlockchainLog(out->ledger),
                                   MetricsOptions{});
  auto recs = Recommend(metrics, RecommenderOptions{});
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  benchmark::DoNotOptimize(recs);
  benchmark::DoNotOptimize(out->report);
  return static_cast<double>(cfg.schedule.size()) / elapsed.count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Alternates off/observe runs so drift (frequency scaling, cache state)
/// hits both sides equally, then compares medians. The printed overhead
/// is the canonical cost-of-observing number (~15-23%, median ~20%, on a
/// Release build at 10k; see the file header for the attribution).
void PrintInterleavedAB(int num_txs, int rounds) {
  const ExperimentConfig off = MakeConfig(num_txs, Profile::kOff);
  const ExperimentConfig observe = MakeConfig(num_txs, Profile::kObserve);
  std::vector<double> off_tps, observe_tps;
  for (int r = 0; r < rounds; ++r) {
    off_tps.push_back(MeasureTxPerSec(off));
    observe_tps.push_back(MeasureTxPerSec(observe));
  }
  const double a = Median(off_tps);
  const double b = Median(observe_tps);
  std::printf("\ninterleaved A/B at %d txs (%d rounds, median): "
              "stream-off %.0f tx/s, observe-only %.0f tx/s -> "
              "overhead %.1f%%\n",
              num_txs, rounds, a, b, 100.0 * (a - b) / a);
}

}  // namespace
}  // namespace blockoptr

int main(int argc, char** argv) {
  std::string json_out = blockoptr::bench::ParseJsonOutFlag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  blockoptr::bench::JsonTrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_out.empty()) reporter.WriteJson(json_out, "streaming");
  blockoptr::PrintInterleavedAB(/*num_txs=*/10000, /*rounds=*/5);
  benchmark::Shutdown();
  return 0;
}
