// Ablation: recommendation-threshold sensitivity (paper §4.4: "The
// optimization recommendation techniques ... include configurable
// thresholds"; §9 notes the defaults depend on the deployment). Runs the
// default synthetic workload once and re-evaluates the recommender under
// swept thresholds, showing exactly when each rule starts/stops firing —
// and what the auto-tuner picks.
#include "bench_util.h"

#include "blockopt/recommend/autotune.h"

using namespace blockoptr;
using namespace blockoptr::bench;

namespace {

const char* Fired(const std::vector<Recommendation>& recs,
                  RecommendationType t) {
  return HasRecommendation(recs, t) ? "fires" : "-";
}

}  // namespace

int main() {
  std::printf("== Ablation: recommendation thresholds ==\n\n");
  SyntheticConfig wl;
  wl.num_txs = kPaperTxCount;
  ExperimentConfig cfg =
      MakeSyntheticExperiment(wl, NetworkConfig::Defaults());
  AnalyzedRun run = RunAndAnalyze(cfg);
  const LogMetrics& m = run.metrics;
  std::printf("workload: default synthetic (Tr=%.0f TPS, success %.1f%%, "
              "reorderable %llu / %llu read conflicts)\n\n",
              m.tr, 100 * m.SuccessRate(),
              static_cast<unsigned long long>(m.reorderable_conflicts),
              static_cast<unsigned long long>(m.mvcc_failures +
                                              m.phantom_failures));

  std::printf("-- Rt1 (rate-control 'high traffic' bar, paper default 300) "
              "--\n");
  for (double rt1 : {100.0, 200.0, 300.0, 400.0, 600.0}) {
    RecommenderOptions options;
    options.rt1 = rt1;
    auto recs = Recommend(m, options);
    std::printf("  Rt1=%4.0f  rate control %s\n", rt1,
                Fired(recs, RecommendationType::kTransactionRateControl));
  }

  std::printf("\n-- reorderable fraction (paper default 0.4; repo default "
              "0.3) --\n");
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    RecommenderOptions options;
    options.reorderable_mvcc_fraction = frac;
    auto recs = Recommend(m, options);
    std::printf("  frac=%.1f  activity reordering %s\n", frac,
                Fired(recs, RecommendationType::kActivityReordering));
  }

  std::printf("\n-- Bt (block-size deviation tolerance, default 0.6) --\n");
  for (double bt : {0.01, 0.05, 0.2, 0.6, 0.9}) {
    RecommenderOptions options;
    options.bt = bt;
    auto recs = Recommend(m, options);
    std::printf("  Bt=%.2f  block size adaptation %s\n", bt,
                Fired(recs, RecommendationType::kBlockSizeAdaptation));
  }

  std::printf("\n-- It (invoker significance, default 0.5) --\n");
  for (double it : {0.3, 0.45, 0.5, 0.7}) {
    RecommenderOptions options;
    options.it = it;
    auto recs = Recommend(m, options);
    std::printf("  It=%.2f  client resource boost %s\n", it,
                Fired(recs, RecommendationType::kClientResourceBoost));
  }

  RecommenderOptions tuned = AutoTuneThresholds(m);
  std::printf("\nauto-tuned (paper §9 future work): Rt1=%.0f Et=%.2f "
              "It=%.2f -> %s\n",
              tuned.rt1, tuned.et, tuned.it,
              RecommendationNames(Recommend(m, tuned)).c_str());
  return 0;
}
