// Reproduces Figure 10: transaction rate control on the experiments where
// it is recommended. The client send rate is capped at 100 TPS (Table 4).
// Paper shape: up to -87% latency and +36% success (send rate 1000);
// throughput intentionally drops toward the sustainable rate (§6 note).
//
// Pass --jobs=N to run the baseline and capped runs on N threads
// (identical output).
#include <optional>

#include "bench_experiments.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main(int argc, char** argv) {
  const int jobs = ParseJobsFlag(argc, argv);
  std::printf("== Figure 10: transaction rate control (jobs=%d) ==\n\n",
              jobs);
  const auto defs = Table3Experiments(kPaperTxCount);
  std::vector<ExperimentConfig> configs;
  configs.reserve(defs.size());
  for (const auto& def : defs) {
    configs.push_back(MakeSyntheticExperiment(def.workload, def.network));
  }
  const auto baselines = RunAndAnalyzeAll(configs, jobs);

  std::vector<std::function<std::optional<PerformanceReport>()>> reruns;
  for (size_t i = 0; i < defs.size(); ++i) {
    reruns.emplace_back([&configs, &baselines, i]() {
      std::optional<PerformanceReport> capped;
      if (HasRecommendation(baselines[i].recommendations,
                            RecommendationType::kTransactionRateControl)) {
        capped = RunWithOptimizations(
            configs[i], baselines[i].recommendations,
            {RecommendationType::kTransactionRateControl});
      }
      return capped;
    });
  }
  const auto capped =
      RunAll<std::optional<PerformanceReport>>(jobs, std::move(reruns));

  PrintRowHeader();
  for (size_t i = 0; i < defs.size(); ++i) {
    if (!capped[i].has_value()) continue;
    PrintRow(defs[i].label + " [base]", baselines[i].report);
    PrintRow(defs[i].label + " [100tps]", *capped[i]);
    PrintDelta(defs[i].label, baselines[i].report, *capped[i]);
  }
  std::printf("\npaper reference: up to -87%% latency / +36%% success; "
              "throughput moves toward the sustainable rate.\n");
  return 0;
}
