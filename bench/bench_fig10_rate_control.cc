// Reproduces Figure 10: transaction rate control on the experiments where
// it is recommended. The client send rate is capped at 100 TPS (Table 4).
// Paper shape: up to -87% latency and +36% success (send rate 1000);
// throughput intentionally drops toward the sustainable rate (§6 note).
#include "bench_experiments.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 10: transaction rate control ==\n\n");
  PrintRowHeader();
  for (const auto& def : Table3Experiments(kPaperTxCount)) {
    ExperimentConfig cfg = MakeSyntheticExperiment(def.workload, def.network);
    AnalyzedRun baseline = RunAndAnalyze(cfg);
    if (!HasRecommendation(baseline.recommendations,
                           RecommendationType::kTransactionRateControl)) {
      continue;
    }
    PerformanceReport optimized =
        RunWithOptimizations(cfg, baseline.recommendations,
                             {RecommendationType::kTransactionRateControl});
    PrintRow(def.label + " [base]", baseline.report);
    PrintRow(def.label + " [100tps]", optimized);
    PrintDelta(def.label, baseline.report, optimized);
  }
  std::printf("\npaper reference: up to -87%% latency / +36%% success; "
              "throughput moves toward the sustainable rate.\n");
  return 0;
}
