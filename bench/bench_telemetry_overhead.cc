// Telemetry-overhead A/B: what the continuous monitor costs.
//
// Runs the full pipeline (RunExperiment) on the paper's 10k-tx synthetic
// workload in three telemetry profiles:
//
//   BM_E2E_TelemetryOff   — the shipping fast path (no Telemetry at all)
//   BM_E2E_SamplerOnly    — continuous sampler only (the always-on
//                           monitoring profile: time series + bottleneck
//                           inputs, no spans, no event metrics)
//   BM_E2E_FullTelemetry  — spans + event metrics + sampler (the debug
//                           profile behind --trace-out)
//
// The acceptance budget is SamplerOnly within 5% of TelemetryOff
// throughput; main() prints an explicit interleaved A/B so the ratio is
// robust against frequency-scaling drift, and `--json-out=PATH` dumps the
// suite as BENCH_telemetry.json (schema blockoptr-bench-v1) for CI.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace blockoptr {
namespace {

ExperimentConfig MakeConfig(int num_txs, bool telemetry,
                            TelemetryOptions options) {
  SyntheticConfig wl;
  wl.num_txs = num_txs;
  ExperimentConfig cfg =
      MakeSyntheticExperiment(wl, NetworkConfig::Defaults());
  cfg.enable_telemetry = telemetry;
  cfg.telemetry_options = options;
  return cfg;
}

void RunProfile(benchmark::State& state, bool telemetry,
                TelemetryOptions options) {
  const int n = static_cast<int>(state.range(0));
  const ExperimentConfig cfg = MakeConfig(n, telemetry, options);
  for (auto _ : state) {
    auto out = RunExperiment(cfg);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out->report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}

void BM_E2E_TelemetryOff(benchmark::State& state) {
  RunProfile(state, false, TelemetryOptions{});
}
void BM_E2E_SamplerOnly(benchmark::State& state) {
  RunProfile(state, true, TelemetryOptions::SamplerOnly());
}
void BM_E2E_FullTelemetry(benchmark::State& state) {
  RunProfile(state, true, TelemetryOptions{});
}

BENCHMARK(BM_E2E_TelemetryOff)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2E_SamplerOnly)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2E_FullTelemetry)->Arg(10000)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Explicit interleaved A/B: sampler-on vs telemetry-off
// ---------------------------------------------------------------------------

double MeasureTxPerSec(const ExperimentConfig& cfg) {
  const auto start = std::chrono::steady_clock::now();
  auto out = RunExperiment(cfg);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (!out.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 out.status().ToString().c_str());
    std::exit(1);
  }
  benchmark::DoNotOptimize(out->report);
  return static_cast<double>(cfg.schedule.size()) / elapsed.count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Alternates off/sampler runs so drift (frequency scaling, cache state)
/// hits both sides equally, then compares medians. The printed overhead is
/// the number the <=5% acceptance budget is judged against.
void PrintInterleavedAB(int num_txs, int rounds) {
  const ExperimentConfig off =
      MakeConfig(num_txs, false, TelemetryOptions{});
  const ExperimentConfig sampled =
      MakeConfig(num_txs, true, TelemetryOptions::SamplerOnly());
  std::vector<double> off_tps, sampled_tps;
  for (int r = 0; r < rounds; ++r) {
    off_tps.push_back(MeasureTxPerSec(off));
    sampled_tps.push_back(MeasureTxPerSec(sampled));
  }
  const double a = Median(off_tps);
  const double b = Median(sampled_tps);
  std::printf("\ninterleaved A/B at %d txs (%d rounds, median): "
              "telemetry-off %.0f tx/s, sampler-only %.0f tx/s -> "
              "overhead %.1f%%\n",
              num_txs, rounds, a, b, 100.0 * (a - b) / a);
}

}  // namespace
}  // namespace blockoptr

int main(int argc, char** argv) {
  std::string json_out = blockoptr::bench::ParseJsonOutFlag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  blockoptr::bench::JsonTrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_out.empty()) reporter.WriteJson(json_out, "telemetry");
  blockoptr::PrintInterleavedAB(/*num_txs=*/10000, /*rounds=*/5);
  benchmark::Shutdown();
  return 0;
}
