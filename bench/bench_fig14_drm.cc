// Reproduces Figure 14: the DRM use case. Recommendations: activity
// reordering (CalcRevenue / QueryRightHolders), delta writes (Play's
// counter), smart-contract partitioning (play-count vs metadata).
// Paper shape: delta +42% tput / +50% success (with higher CalcRevenue
// latency); partitioning +35% / +26%; reordering >+50% both; all >+50%.
#include "bench_util.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 14: Digital Rights Management ==\n\n");
  UseCaseConfig uc;
  uc.num_txs = kPaperTxCount;
  ExperimentConfig cfg;
  cfg.network = NetworkConfig::Defaults();
  cfg.chaincodes = {"drm"};
  for (auto& [k, v] : DrmSeedState()) {
    cfg.seeds.push_back(SeedEntry{"drm", k, v});
  }
  cfg.schedule = GenerateDrmWorkload(uc);

  AnalyzedRun baseline = RunAndAnalyze(cfg);
  std::printf("hot keys: %zu detected; recommendations: %s\n\n",
              baseline.metrics.hot_keys.size(),
              RecommendationNames(baseline.recommendations).c_str());
  PrintRowHeader();
  PrintRow("baseline", baseline.report);

  const struct {
    const char* label;
    std::vector<RecommendationType> types;
  } bars[] = {
      {"activity reordering", {RecommendationType::kActivityReordering}},
      {"delta writes", {RecommendationType::kDeltaWrites}},
      {"contract partitioning",
       {RecommendationType::kSmartContractPartitioning}},
      {"all combined",
       {RecommendationType::kActivityReordering,
        RecommendationType::kDeltaWrites,
        RecommendationType::kSmartContractPartitioning,
        RecommendationType::kTransactionRateControl}},
  };
  for (const auto& bar : bars) {
    PerformanceReport r =
        RunWithOptimizations(cfg, baseline.recommendations, bar.types);
    PrintRow(bar.label, r);
    PrintDelta(bar.label, baseline.report, r);
  }
  std::printf("\npaper reference: delta +42%% tput / +50%% success "
              "(CalcRevenue latency rises); partitioning +35%% / +26%%; "
              "reordering and all-combined > +50%%.\n");
  return 0;
}
