// Reproduces Figure 16: the digital-voting use case with its phased
// workload (queries at 100 TPS, a 300 TPS voting rush, results).
// Recommendations: transaction rate control (the rush) and data-model
// alteration (party-keyed tallies -> voter-keyed votes).
// Paper shape: rate control +11% tput; data-model alteration -> 100%
// success rate (no more dependencies).
#include "bench_util.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 16: Digital Voting ==\n\n");
  ExperimentConfig cfg;
  cfg.network = NetworkConfig::Defaults();
  cfg.chaincodes = {"dv"};
  for (auto& [k, v] : DvSeedState()) {
    cfg.seeds.push_back(SeedEntry{"dv", k, v});
  }
  UseCaseConfig uc;
  cfg.schedule = GenerateDvWorkload(uc);

  AnalyzedRun baseline = RunAndAnalyze(cfg);
  std::printf("hot keys: ");
  for (const auto& k : baseline.metrics.hot_keys) {
    std::printf("%s ", k.c_str());
  }
  std::printf("\nrecommendations: %s\n\n",
              RecommendationNames(baseline.recommendations).c_str());
  PrintRowHeader();
  PrintRow("baseline (party-keyed)", baseline.report);

  const struct {
    const char* label;
    std::vector<RecommendationType> types;
  } bars[] = {
      {"rate control", {RecommendationType::kTransactionRateControl}},
      {"data model alteration", {RecommendationType::kDataModelAlteration}},
      {"both combined",
       {RecommendationType::kTransactionRateControl,
        RecommendationType::kDataModelAlteration}},
  };
  for (const auto& bar : bars) {
    PerformanceReport r =
        RunWithOptimizations(cfg, baseline.recommendations, bar.types);
    PrintRow(bar.label, r);
    PrintDelta(bar.label, baseline.report, r);
  }
  std::printf("\npaper reference: rate control +11%% tput; voter-keyed "
              "model reaches 100%% success.\n");
  return 0;
}
