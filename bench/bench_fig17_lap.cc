// Reproduces Figure 17: the loan-application process (BPI-2017-style
// event log, 20k transactions). The busy employee's record is the hotkey;
// BlockOptR recommends a data-model alteration (key by applicationID).
// Both the 10 TPS (manual processing) and 300 TPS (automated) scenarios
// are run. Paper shape: >50% throughput and success improvement at both
// rates.
#include "bench_util.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 17: Loan Application Process ==\n\n");
  LapLogConfig lc;  // 2000 applications, 20000 events (paper scale)
  auto events = GenerateLapEventLog(lc);
  std::printf("event log: %zu events, %d applications\n\n", events.size(),
              lc.num_applications);

  for (double rate : {10.0, 300.0}) {
    ExperimentConfig cfg;
    cfg.network = NetworkConfig::Defaults();
    cfg.chaincodes = {"lap"};
    cfg.schedule = LapScheduleFromLog(events, rate);

    AnalyzedRun baseline = RunAndAnalyze(cfg);
    std::printf("-- send rate %.0f TPS --\n", rate);
    if (!baseline.metrics.hot_keys.empty()) {
      std::printf("hot key: %s (Kfreq=%llu)\n",
                  baseline.metrics.hot_keys[0].c_str(),
                  static_cast<unsigned long long>(baseline.metrics.key_freq.at(
                      baseline.metrics.hot_keys[0])));
    }
    std::printf("recommendations: %s\n",
                RecommendationNames(baseline.recommendations).c_str());

    PerformanceReport optimized = RunWithOptimizations(
        cfg, baseline.recommendations,
        {RecommendationType::kDataModelAlteration});
    PrintRowHeader();
    PrintRow("baseline (employee key)", baseline.report);
    PrintRow("altered (application key)", optimized);
    PrintDelta("delta", baseline.report, optimized);
    std::printf("\n");
  }
  std::printf("paper reference: >50%% throughput and success improvement at "
              "both send rates.\n");
  return 0;
}
