#ifndef BLOCKOPTR_BENCH_BENCH_UTIL_H_
#define BLOCKOPTR_BENCH_BENCH_UTIL_H_

// Shared harness for the figure/table reproduction benches. Each bench
// binary prints paper-style rows: baseline vs optimized with relative
// changes, so the *shape* of every figure can be compared against the
// paper (absolute numbers come from the simulator, see DESIGN.md).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/json.h"

#include "blockopt/apply/optimizer.h"
#include "blockopt/log/preprocess.h"
#include "blockopt/metrics/metrics.h"
#include "blockopt/recommend/evidence.h"
#include "blockopt/recommend/recommender.h"
#include "blockopt/recommend/report.h"
#include "telemetry/bottleneck.h"
#include "common/thread_pool.h"
#include "driver/experiment.h"
#include "driver/presets.h"
#include "driver/sweep.h"
#include "workload/lap_log.h"
#include "workload/synthetic.h"
#include "workload/usecase.h"

namespace blockoptr::bench {

/// Parses the shared `--jobs=N` bench flag (0 = all hardware threads);
/// defaults to 1 (serial) so every bench stays byte-reproducible by
/// default and opts into parallelism explicitly. The engine guarantees
/// identical output for every value — see driver/sweep.h.
inline int ParseJobsFlag(int argc, char** argv) {
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = ThreadPool::ResolveThreads(std::atoi(argv[i] + 7));
    }
  }
  return jobs;
}

/// One finished run plus its BlockOptR analysis.
struct AnalyzedRun {
  PerformanceReport report;
  LogMetrics metrics;
  std::vector<Recommendation> recommendations;
  std::map<std::string, uint64_t> endorsement_counts;
};

inline AnalyzedRun RunAndAnalyze(const ExperimentConfig& cfg) {
  auto out = RunExperiment(cfg);
  if (!out.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 out.status().ToString().c_str());
    std::exit(1);
  }
  AnalyzedRun run;
  run.report = out->report;
  BlockchainLog log = ExtractBlockchainLog(out->ledger);
  run.metrics = ComputeMetrics(log, MetricsOptions{});
  run.recommendations = Recommend(run.metrics, RecommenderOptions{});
  run.endorsement_counts = out->endorsement_counts;
  return run;
}

/// Runs and analyzes every config, distributing the runs (including their
/// log analysis) over `jobs` threads; results come back in input order,
/// field-for-field identical to a serial loop over RunAndAnalyze.
inline std::vector<AnalyzedRun> RunAndAnalyzeAll(
    const std::vector<ExperimentConfig>& configs, int jobs) {
  std::vector<std::function<AnalyzedRun()>> tasks;
  tasks.reserve(configs.size());
  for (const auto& cfg : configs) {
    tasks.emplace_back([&cfg]() { return RunAndAnalyze(cfg); });
  }
  return RunAll<AnalyzedRun>(jobs, std::move(tasks));
}

/// Re-runs `cfg` with only the recommendations of the given types applied
/// (the per-optimization bars of the paper's figures). Types not present
/// among the detected recommendations are ignored.
inline PerformanceReport RunWithOptimizations(
    const ExperimentConfig& cfg, const std::vector<Recommendation>& recs,
    const std::vector<RecommendationType>& only_types) {
  std::vector<Recommendation> selected;
  for (const auto& r : recs) {
    for (auto t : only_types) {
      if (r.type == t) selected.push_back(r);
    }
  }
  auto optimized_cfg = ApplyOptimizations(cfg, selected);
  if (!optimized_cfg.ok()) {
    std::fprintf(stderr, "apply failed: %s\n",
                 optimized_cfg.status().ToString().c_str());
    std::exit(1);
  }
  auto out = RunExperiment(*optimized_cfg);
  if (!out.ok()) {
    std::fprintf(stderr, "optimized run failed: %s\n",
                 out.status().ToString().c_str());
    std::exit(1);
  }
  return out->report;
}

// MakeSyntheticExperiment and the Table 3 experiment set moved into the
// library (driver/presets.h) so the CLI sweep mode and the determinism
// tests share them; they resolve here through the enclosing namespace.

inline void PrintRowHeader() {
  std::printf("%-28s %10s %10s %10s %10s %9s\n", "experiment", "tput(tps)",
              "success", "latency(s)", "mvcc+phm", "endorse");
  std::printf("%-28s %10s %10s %10s %10s %9s\n", "----------", "---------",
              "-------", "----------", "--------", "-------");
}

inline void PrintRow(const std::string& label, const PerformanceReport& r) {
  std::printf("%-28s %10.1f %9.1f%% %10.3f %10llu %9llu\n", label.c_str(),
              r.Throughput(), 100 * r.SuccessRate(), r.AvgLatency(),
              static_cast<unsigned long long>(r.mvcc_failures() +
                                              r.phantom_failures()),
              static_cast<unsigned long long>(r.endorsement_failures()));
}

inline void PrintDelta(const std::string& label,
                       const PerformanceReport& baseline,
                       const PerformanceReport& optimized) {
  std::printf("%-28s %+9.0f%% %+9.0f%% %+9.0f%%   (tput / success / latency "
              "improvement)\n",
              label.c_str(),
              100 * RelativeImprovement(baseline.Throughput(),
                                        optimized.Throughput()),
              100 * RelativeImprovement(baseline.SuccessRate(),
                                        optimized.SuccessRate()),
              100 * RelativeImprovement(baseline.AvgLatency(),
                                        optimized.AvgLatency(),
                                        /*lower_is_better=*/true));
}

/// Re-runs `cfg` with telemetry enabled and prints the per-stage latency
/// breakdown derived from lifecycle spans, then the continuous-sampler
/// bottleneck attribution (which station saturated, over which evidence
/// window) and the recommendations with their observed evidence attached.
/// Kept separate from the figure-producing runs so those stay on the
/// telemetry-off fast path.
inline void PrintStageBreakdown(const ExperimentConfig& cfg,
                                const std::string& label) {
  ExperimentConfig traced = cfg;
  traced.enable_telemetry = true;
  auto out = RunExperiment(traced);
  if (!out.ok()) {
    std::fprintf(stderr, "traced run failed: %s\n",
                 out.status().ToString().c_str());
    return;
  }
  std::printf("\n%s — per-stage latency breakdown:\n%s", label.c_str(),
              out->report.StageBreakdownTable().c_str());

  BottleneckReport bottleneck =
      ComputeBottleneckReport(*out->telemetry, out->sim_end_time);
  std::string table = FormatBottleneckTable(bottleneck);
  if (!table.empty()) {
    std::printf("\n%s — bottleneck attribution:\n%s", label.c_str(),
                table.c_str());
  }
  std::printf("=> %s\n", bottleneck.summary.c_str());

  auto recs = RecommendFromLog(ExtractBlockchainLog(out->ledger),
                               RecommenderOptions{});
  AttachTelemetryEvidence(recs, bottleneck);
  for (const auto& rec : recs) {
    std::printf("  %s: %s\n",
                std::string(RecommendationTypeName(rec.type)).c_str(),
                rec.detail.c_str());
  }
}

/// The paper's default experiment scale.
inline constexpr int kPaperTxCount = 10000;

// ---------------------------------------------------------------------------
// Machine-readable perf trajectory (--json-out)
// ---------------------------------------------------------------------------

/// Extracts (and strips) a `--json-out=PATH` flag so the remaining argv can
/// be handed to benchmark::Initialize untouched. Returns "" when absent.
inline std::string ParseJsonOutFlag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      path = argv[i] + 11;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

/// The current git revision (short hash), or "unknown" outside a checkout.
/// Stamped into BENCH_*.json so perf points are attributable to commits.
inline std::string GitRevision() {
  FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {0};
  std::string rev;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) rev = buf;
  ::pclose(pipe);
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  return rev.empty() ? "unknown" : rev;
}

/// Console reporter that additionally collects every run so the suite can
/// be dumped as a BENCH_<suite>.json trajectory point. Schema (v1):
///   { "schema": "blockoptr-bench-v1", "suite": "<suite>",
///     "git_rev": "<short-hash>", "benchmarks": [
///       { "name": "BM_X/1000", "scale": 1000,
///         "ns_per_op": 123.4, "items_per_second": 8.1e6 }, ... ] }
/// `scale` is the trailing /N benchmark argument (0 when absent);
/// `items_per_second` is 0 for benches that do not SetItemsProcessed.
class JsonTrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      Entry e;
      e.name = run.benchmark_name();
      // Normalize away the measurement-mode suffixes UseRealTime /
      // MeasureProcessCPUTime append, so JSON names (and therefore the
      // perf_compare baseline keys) stay stable across mode changes and
      // the trailing path segment is again the numeric scale argument.
      for (const char* suffix : {"/real_time", "/process_time"}) {
        const size_t len = std::strlen(suffix);
        if (e.name.size() > len &&
            e.name.compare(e.name.size() - len, len, suffix) == 0) {
          e.name.resize(e.name.size() - len);
        }
      }
      auto slash = e.name.rfind('/');
      if (slash != std::string::npos) {
        e.scale = std::strtoll(e.name.c_str() + slash + 1, nullptr, 10);
      }
      e.ns_per_op = run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9;
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) e.items_per_second = it->second;
      entries_.push_back(std::move(e));
    }
  }

  /// Writes the collected runs to `path`; exits non-zero on I/O failure so
  /// CI catches a silently missing artifact.
  void WriteJson(const std::string& path, const std::string& suite) const {
    JsonValue::Array benchmarks;
    for (const Entry& e : entries_) {
      JsonValue::Object o;
      o["name"] = e.name;
      o["scale"] = static_cast<int64_t>(e.scale);
      o["ns_per_op"] = e.ns_per_op;
      o["items_per_second"] = e.items_per_second;
      benchmarks.push_back(std::move(o));
    }
    JsonValue::Object root;
    root["schema"] = "blockoptr-bench-v1";
    root["suite"] = suite;
    root["git_rev"] = GitRevision();
    root["benchmarks"] = std::move(benchmarks);
    std::ofstream out(path);
    out << JsonValue(std::move(root)).DumpPretty() << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      std::exit(1);
    }
    std::printf("wrote %s (%zu benchmarks)\n", path.c_str(), entries_.size());
  }

 private:
  struct Entry {
    std::string name;
    long long scale = 0;
    double ns_per_op = 0;
    double items_per_second = 0;
  };
  std::vector<Entry> entries_;
};

}  // namespace blockoptr::bench

#endif  // BLOCKOPTR_BENCH_BENCH_UTIL_H_
