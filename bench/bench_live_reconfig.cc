// Live reconfiguration (paper §4.5: "all optimizations can be applied in
// a live system on the fly... Block size can be adapted either by
// changing the configuration file or by using a configuration update
// transaction"). Compares three regimes on the misconfigured block-count-
// 50 network:
//
//   1. no adaptation (the Figure 9 baseline),
//   2. a config-update *transaction* submitted mid-run (live, no restart),
//   3. restart with the adapted configuration (the paper's evaluation
//      method).
#include "bench_util.h"

#include "contracts/gen_chain.h"
#include "fabric/network.h"

using namespace blockoptr;
using namespace blockoptr::bench;

namespace {

PerformanceReport RunDirect(NetworkConfig net, const Schedule& schedule,
                            const std::vector<SeedEntry>& seeds,
                            double reconfig_at, uint32_t new_count) {
  Simulator sim;
  FabricNetwork network(&sim, std::move(net));
  if (!network.InstallChaincode(std::make_unique<GenChainContract>()).ok()) {
    std::exit(1);
  }
  for (const auto& s : seeds) network.SeedState(s.chaincode, s.key, s.value);

  PerformanceReport report;
  size_t completed = 0;
  double last_commit = 0;
  network.set_on_commit([&](const Transaction& tx) {
    report.RecordCommit(tx);
    if (!tx.is_config) {
      ++completed;
      last_commit = std::max(last_commit, tx.commit_timestamp);
    }
  });
  network.set_on_early_abort(
      [&](const ClientRequest&, const Status&) { ++completed; });

  // `schedule` outlives the run loop below; no per-request copy.
  for (const auto& req : schedule) {
    sim.ScheduleAt(req.send_time, [&network, &req] {
      (void)network.Submit(req);
    });
  }
  if (reconfig_at > 0) {
    sim.ScheduleAt(reconfig_at, [&network, new_count] {
      BlockCuttingConfig cutting;
      cutting.max_tx_count = new_count;
      network.SubmitBlockCuttingUpdate(cutting);
    });
  }
  network.Start();
  while (completed < schedule.size() && sim.Step()) {
  }
  report.Finish(last_commit);
  return report;
}

}  // namespace

int main() {
  std::printf("== Live reconfiguration: block-count adaptation without a "
              "restart ==\n\n");
  SyntheticConfig wl;
  wl.num_txs = kPaperTxCount;
  NetworkConfig bad = NetworkConfig::Defaults();
  bad.block_cutting.max_tx_count = 50;  // the Figure 9 misconfiguration

  Schedule schedule = GenerateSynthetic(wl);
  std::vector<SeedEntry> seeds;
  for (auto& [k, v] : SyntheticSeedState(wl)) {
    seeds.push_back(SeedEntry{"genchain", k, v});
  }

  PerformanceReport no_adapt = RunDirect(bad, schedule, seeds, 0, 0);
  PerformanceReport live = RunDirect(bad, schedule, seeds, /*at=*/5.0,
                                     /*new_count=*/300);
  NetworkConfig good = bad;
  good.block_cutting.max_tx_count = 300;
  PerformanceReport restart = RunDirect(good, schedule, seeds, 0, 0);

  PrintRowHeader();
  PrintRow("no adaptation", no_adapt);
  PrintRow("live config update @5s", live);
  PrintRow("restart with count=300", restart);
  PrintDelta("live vs none", no_adapt, live);
  PrintDelta("restart vs none", no_adapt, restart);
  std::printf("\nlive adaptation recovers most of the restart-based gain "
              "while the system keeps serving transactions.\n");
  return 0;
}
