// Reproduces Figure 13: the SCM use case. BlockOptR recommends activity
// reordering (queryProducts / UpdateAuditInfo), process-model pruning
// (Ship/Unload on illogical paths), and transaction rate control; each is
// applied separately and then all together.
// Paper shape: +24% tput / +15% success (reorder), +27% / +19% (prune).
#include "bench_util.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 13: Supply Chain Management ==\n\n");
  UseCaseConfig uc;
  uc.num_txs = kPaperTxCount;
  ExperimentConfig cfg;
  cfg.network = NetworkConfig::Defaults();
  cfg.chaincodes = {"scm"};
  cfg.schedule = GenerateScmWorkload(uc);

  AnalyzedRun baseline = RunAndAnalyze(cfg);
  std::printf("recommendations: %s\n\n",
              RecommendationNames(baseline.recommendations).c_str());
  PrintRowHeader();
  PrintRow("baseline", baseline.report);

  const struct {
    const char* label;
    std::vector<RecommendationType> types;
  } bars[] = {
      {"activity reordering", {RecommendationType::kActivityReordering}},
      {"process model pruning", {RecommendationType::kProcessModelPruning}},
      {"rate control", {RecommendationType::kTransactionRateControl}},
      {"all combined",
       {RecommendationType::kActivityReordering,
        RecommendationType::kProcessModelPruning,
        RecommendationType::kTransactionRateControl}},
  };
  for (const auto& bar : bars) {
    PerformanceReport r =
        RunWithOptimizations(cfg, baseline.recommendations, bar.types);
    PrintRow(bar.label, r);
    PrintDelta(bar.label, baseline.report, r);
  }
  std::printf("\npaper reference: reordering +24%% tput / +15%% success; "
              "pruning +27%% / +19%%.\n");
  return 0;
}
