// Reproduces Figure 19: BlockOptR on top of a Fabric++-style ordering
// scheduler, using the workloads Fabric++ handles worst (update-heavy,
// read-heavy, range-read-heavy per [13]). Shape to reproduce: BlockOptR's
// higher-level recommendations still improve the optimized system (§6.4;
// up to +55% throughput / +46% success on RangeRead-heavy).
#include "bench_experiments.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 19: synthetic workloads on Fabric++ ==\n\n");
  PrintRowHeader();
  for (const auto& def : Table3Experiments(kPaperTxCount)) {
    if (def.number != 4 && def.number != 5 && def.number != 7) continue;
    ExperimentConfig cfg = MakeSyntheticExperiment(def.workload, def.network);
    cfg.orderer_scheduler = "fabricpp";
    AnalyzedRun baseline = RunAndAnalyze(cfg);
    auto optimized_cfg = ApplyOptimizations(cfg, baseline.recommendations);
    if (!optimized_cfg.ok()) {
      std::fprintf(stderr, "%s\n", optimized_cfg.status().ToString().c_str());
      return 1;
    }
    auto optimized = RunExperiment(*optimized_cfg);
    if (!optimized.ok()) {
      std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
      return 1;
    }
    PrintRow(def.label + " [f++]", baseline.report);
    PrintRow(def.label + " [f+++recs]", optimized->report);
    PrintDelta(def.label, baseline.report, optimized->report);
    std::printf("  recommendations applied: %s\n\n",
                RecommendationNames(baseline.recommendations).c_str());
  }
  std::printf("paper reference: up to +55%% throughput / +46%% success "
              "(RangeRead-heavy).\n");
  return 0;
}
