// Reproduces Figure 12: all recommended optimizations applied together
// for every synthetic experiment. Paper shape: up to +93% throughput and
// +85% success; the combination is comparable to the best single
// optimization per experiment.
#include "bench_experiments.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Figure 12: all recommended optimizations combined ==\n\n");
  PrintRowHeader();
  for (const auto& def : Table3Experiments(kPaperTxCount)) {
    ExperimentConfig cfg = MakeSyntheticExperiment(def.workload, def.network);
    AnalyzedRun baseline = RunAndAnalyze(cfg);
    auto optimized_cfg = ApplyOptimizations(cfg, baseline.recommendations);
    if (!optimized_cfg.ok()) {
      std::fprintf(stderr, "apply failed: %s\n",
                   optimized_cfg.status().ToString().c_str());
      return 1;
    }
    auto optimized = RunExperiment(*optimized_cfg);
    if (!optimized.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   optimized.status().ToString().c_str());
      return 1;
    }
    PrintRow(def.label + " [base]", baseline.report);
    PrintRow(def.label + " [all]", optimized->report);
    PrintDelta(def.label, baseline.report, optimized->report);
  }
  std::printf("\npaper reference: up to +93%% throughput / +85%% success "
              "(block count 50).\n");
  return 0;
}
