// Reproduces Figures 2 and 4: the SCM process model mined from the
// blockchain log before and after activity reordering. Before: the model
// contains illogical branches (Ship observed before its PushASN effect,
// UpdateAuditInfo interleaved between pipeline stages). After: the
// redesign pushes the audit/query activities behind the pipeline, and the
// newly mined model confirms adherence (token-replay conformance).
#include "bench_util.h"

#include "blockopt/eventlog/event_log.h"
#include "mining/alpha_miner.h"
#include "mining/conformance.h"
#include "mining/dfg.h"

using namespace blockoptr;
using namespace blockoptr::bench;

namespace {

Result<EventLog> Mine(const ExperimentConfig& cfg, PerformanceReport* report) {
  auto out = RunExperiment(cfg);
  if (!out.ok()) return out.status();
  *report = out->report;
  BlockchainLog log = ExtractBlockchainLog(out->ledger);
  return EventLog::FromBlockchainLog(log, EventLogOptions{});
}

void DescribeModel(const char* title, const EventLog& event_log) {
  std::printf("%s\n", title);
  auto traces = event_log.Traces();
  DirectlyFollowsGraph dfg(traces);
  // The tell-tale edges of Figure 2: audit/query activities interleaved
  // inside the pipeline vs pushed behind it (Figure 4).
  const char* probes[][2] = {{"PushASN", "UpdateAuditInfo"},
                             {"UpdateAuditInfo", "Ship"},
                             {"PushASN", "Ship"},
                             {"Ship", "Unload"},
                             {"Unload", "UpdateAuditInfo"}};
  for (const auto& probe : probes) {
    std::printf("  %-18s -> %-18s : %llu\n", probe[0], probe[1],
                static_cast<unsigned long long>(
                    dfg.EdgeCount(probe[0], probe[1])));
  }
  auto variants = event_log.Variants();
  std::printf("  %zu cases, %zu trace variants; top variant %zux\n",
              event_log.num_cases(), variants.size(),
              variants.empty() ? 0 : variants[0].second);
}

}  // namespace

int main() {
  std::printf("== Figures 2 & 4: SCM process models before/after ==\n\n");
  UseCaseConfig uc;
  uc.num_txs = kPaperTxCount;
  ExperimentConfig cfg;
  cfg.network = NetworkConfig::Defaults();
  cfg.chaincodes = {"scm"};
  cfg.schedule = GenerateScmWorkload(uc);

  PerformanceReport before_report;
  auto before = Mine(cfg, &before_report);
  if (!before.ok()) {
    std::fprintf(stderr, "%s\n", before.status().ToString().c_str());
    return 1;
  }
  DescribeModel("-- Figure 2 view: derived model, original design --",
                *before);

  // Redesign: reorder the audit/query activities behind the pipeline.
  ExperimentConfig redesigned = cfg;
  redesigned.client_manager.activities_last = {"UpdateAuditInfo",
                                               "QueryProducts"};
  PerformanceReport after_report;
  auto after = Mine(redesigned, &after_report);
  if (!after.ok()) {
    std::fprintf(stderr, "%s\n", after.status().ToString().c_str());
    return 1;
  }
  std::printf("\n");
  DescribeModel("-- Figure 4 view: derived model after reordering --",
                *after);

  // Compliance verification: the redesigned traces fit a model mined from
  // the redesigned run; the original behaviour does not.
  PetriNet redesigned_model = AlphaMiner::Mine(after->Traces());
  double new_fit = ReplayTraces(redesigned_model, after->Traces()).Fitness();
  double old_fit = ReplayTraces(redesigned_model, before->Traces()).Fitness();
  std::printf("\nconformance vs redesigned model: new traces %.3f, original "
              "traces %.3f\n",
              new_fit, old_fit);

  std::printf("\nperformance: ");
  PrintDelta("redesign", before_report, after_report);
  std::printf("paper reference: +24%% throughput / +15%% success for the "
              "reordering redesign (§3).\n");
  return 0;
}
