// Ablation: vanilla Fabric ordering vs Fabric++-style vs FabricSharp-style
// reordering, across the five synthetic workload types. Quantifies what
// the system-level reordering baselines buy on their own (before any
// BlockOptR recommendation), and where they struggle — the update-heavy /
// range-read-heavy weaknesses reported for Fabric++ and the insert-heavy
// weakness reported for FabricSharp [13].
//
// Pass --jobs=N to run the 15 workload x scheduler cells on N threads
// (identical output).
#include "bench_util.h"

#include "blockopt/log/preprocess.h"

using namespace blockoptr;
using namespace blockoptr::bench;

namespace {

struct Cell {
  std::string label;
  PerformanceReport report;
  uint64_t intra_block = 0;
  uint64_t inter_block = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int jobs = ParseJobsFlag(argc, argv);
  std::printf("== Ablation: ordering-service reordering strategies "
              "(jobs=%d) ==\n\n",
              jobs);
  const SyntheticWorkloadType types[] = {
      SyntheticWorkloadType::kUniform, SyntheticWorkloadType::kReadHeavy,
      SyntheticWorkloadType::kInsertHeavy,
      SyntheticWorkloadType::kUpdateHeavy,
      SyntheticWorkloadType::kRangeReadHeavy};
  const char* schedulers[] = {"", "fabricpp", "fabricsharp"};

  std::vector<std::function<Cell()>> tasks;
  for (auto type : types) {
    for (const char* scheduler : schedulers) {
      tasks.emplace_back([type, scheduler]() {
        SyntheticConfig wl;
        wl.type = type;
        wl.num_txs = kPaperTxCount;
        ExperimentConfig cfg =
            MakeSyntheticExperiment(wl, NetworkConfig::Defaults());
        cfg.orderer_scheduler = scheduler;
        auto out = RunExperiment(cfg);
        if (!out.ok()) {
          std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
          std::exit(1);
        }
        Cell cell;
        cell.label = std::string(SyntheticWorkloadTypeName(type)) + " [" +
                     (*scheduler ? scheduler : "vanilla") + "]";
        cell.report = out->report;
        // Intra- vs inter-block split: intra-block reordering can only fix
        // the former (the corP insight of paper §4.3 metric 8).
        auto metrics = ComputeMetrics(ExtractBlockchainLog(out->ledger), {});
        cell.intra_block = metrics.intra_block_conflicts;
        cell.inter_block = metrics.inter_block_conflicts;
        return cell;
      });
    }
  }
  const auto cells = RunAll<Cell>(jobs, std::move(tasks));

  PrintRowHeader();
  size_t i = 0;
  for (const auto& cell : cells) {
    PrintRow(cell.label, cell.report);
    std::printf("%-28s   intra-block=%llu inter-block=%llu\n", "",
                static_cast<unsigned long long>(cell.intra_block),
                static_cast<unsigned long long>(cell.inter_block));
    if (++i % 3 == 0) std::printf("\n");
  }
  return 0;
}
