// Ablation: vanilla Fabric ordering vs Fabric++-style vs FabricSharp-style
// reordering, across the five synthetic workload types. Quantifies what
// the system-level reordering baselines buy on their own (before any
// BlockOptR recommendation), and where they struggle — the update-heavy /
// range-read-heavy weaknesses reported for Fabric++ and the insert-heavy
// weakness reported for FabricSharp [13].
#include "bench_util.h"

#include "blockopt/log/preprocess.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Ablation: ordering-service reordering strategies ==\n\n");
  const SyntheticWorkloadType types[] = {
      SyntheticWorkloadType::kUniform, SyntheticWorkloadType::kReadHeavy,
      SyntheticWorkloadType::kInsertHeavy,
      SyntheticWorkloadType::kUpdateHeavy,
      SyntheticWorkloadType::kRangeReadHeavy};
  const char* schedulers[] = {"", "fabricpp", "fabricsharp"};

  PrintRowHeader();
  for (auto type : types) {
    SyntheticConfig wl;
    wl.type = type;
    wl.num_txs = kPaperTxCount;
    for (const char* scheduler : schedulers) {
      ExperimentConfig cfg =
          MakeSyntheticExperiment(wl, NetworkConfig::Defaults());
      cfg.orderer_scheduler = scheduler;
      auto out = RunExperiment(cfg);
      if (!out.ok()) {
        std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
        return 1;
      }
      std::string label = std::string(SyntheticWorkloadTypeName(type)) +
                          " [" + (*scheduler ? scheduler : "vanilla") + "]";
      PrintRow(label, out->report);
      // Intra- vs inter-block split: intra-block reordering can only fix
      // the former (the corP insight of paper §4.3 metric 8).
      auto metrics = ComputeMetrics(ExtractBlockchainLog(out->ledger), {});
      std::printf("%-28s   intra-block=%llu inter-block=%llu\n", "",
                  static_cast<unsigned long long>(
                      metrics.intra_block_conflicts),
                  static_cast<unsigned long long>(
                      metrics.inter_block_conflicts));
    }
    std::printf("\n");
  }
  return 0;
}
