// Reproduces Table 3: the recommendations BlockOptR emits for each of the
// 15 synthetic experiments. Compare the rightmost column against the
// paper's "Optimizations recommended" column (see EXPERIMENTS.md).
#include "bench_experiments.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main() {
  std::printf("== Table 3: synthetic experiments -> recommendations ==\n\n");
  std::printf("%-4s %-28s %-9s %s\n", "#", "control variable", "success",
              "recommendations");
  std::printf("%-4s %-28s %-9s %s\n", "--", "----------------", "-------",
              "---------------");
  for (const auto& def : Table3Experiments(kPaperTxCount)) {
    ExperimentConfig cfg = MakeSyntheticExperiment(def.workload, def.network);
    AnalyzedRun run = RunAndAnalyze(cfg);
    std::printf("%-4d %-28s %7.1f%%  %s\n", def.number, def.label.c_str(),
                100 * run.report.SuccessRate(),
                RecommendationNames(run.recommendations).c_str());
  }
  std::printf(
      "\npaper reference (Table 3): 1 Endorser restructuring+Reordering; "
      "2 Endorser restructuring+Reordering; 3 Rate control; 4 Reordering; "
      "5 Rate control; 6 Reordering; 7 Reordering+Rate control; "
      "8 Reordering+Partitioning+Block size; 9/10 Reordering+Rate control; "
      "11 Reordering; 12 Reordering; 13 Reordering+Block size+Rate control; "
      "14 Reordering+Rate control; 15 Reordering+Client boost\n");
  return 0;
}
