// Reproduces Table 3: the recommendations BlockOptR emits for each of the
// 15 synthetic experiments. Compare the rightmost column against the
// paper's "Optimizations recommended" column (see EXPERIMENTS.md).
//
// Pass --jobs=N to run the 15 experiments on N threads (0 = all cores);
// the rows are identical for every N (driver/sweep.h determinism
// contract), only the wall-clock changes.
#include "bench_experiments.h"

using namespace blockoptr;
using namespace blockoptr::bench;

int main(int argc, char** argv) {
  const int jobs = ParseJobsFlag(argc, argv);
  std::printf("== Table 3: synthetic experiments -> recommendations "
              "(jobs=%d) ==\n\n",
              jobs);
  std::printf("%-4s %-28s %-9s %s\n", "#", "control variable", "success",
              "recommendations");
  std::printf("%-4s %-28s %-9s %s\n", "--", "----------------", "-------",
              "---------------");
  const auto defs = Table3Experiments(kPaperTxCount);
  std::vector<ExperimentConfig> configs;
  configs.reserve(defs.size());
  for (const auto& def : defs) {
    configs.push_back(MakeSyntheticExperiment(def.workload, def.network));
  }
  const auto runs = RunAndAnalyzeAll(configs, jobs);
  for (size_t i = 0; i < defs.size(); ++i) {
    std::printf("%-4d %-28s %7.1f%%  %s\n", defs[i].number,
                defs[i].label.c_str(), 100 * runs[i].report.SuccessRate(),
                RecommendationNames(runs[i].recommendations).c_str());
  }
  std::printf(
      "\npaper reference (Table 3): 1 Endorser restructuring+Reordering; "
      "2 Endorser restructuring+Reordering; 3 Rate control; 4 Reordering; "
      "5 Rate control; 6 Reordering; 7 Reordering+Rate control; "
      "8 Reordering+Partitioning+Block size; 9/10 Reordering+Rate control; "
      "11 Reordering; 12 Reordering; 13 Reordering+Block size+Rate control; "
      "14 Reordering+Rate control; 15 Reordering+Client boost\n");
  return 0;
}
