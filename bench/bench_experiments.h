#ifndef BLOCKOPTR_BENCH_BENCH_EXPERIMENTS_H_
#define BLOCKOPTR_BENCH_BENCH_EXPERIMENTS_H_

// The 15 synthetic experiments of the paper's Table 3. The definitions
// now live in the library (driver/presets.h) so the CLI `sweep` mode and
// the determinism-equivalence tests iterate over the same set; this
// header remains the bench-facing include.

#include "bench_util.h"
#include "driver/presets.h"

#endif  // BLOCKOPTR_BENCH_BENCH_EXPERIMENTS_H_
