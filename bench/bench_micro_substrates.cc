// Google-benchmark micro-benchmarks for the substrate layers: state DB,
// endorsement-policy evaluation, block validation, the event simulator,
// and the process-mining algorithms. These quantify the per-operation
// costs behind the figure benches.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fabric/endorsement_policy.h"
#include "fabric/validator.h"
#include "mining/alpha_miner.h"
#include "mining/conformance.h"
#include "sim/service_station.h"
#include "sim/simulator.h"
#include "statedb/versioned_store.h"

namespace blockoptr {
namespace {

// ---------------------------------------------------------------------------
// VersionedStore
// ---------------------------------------------------------------------------

void BM_StateDbApply(benchmark::State& state) {
  VersionedStore store;
  uint64_t i = 0;
  for (auto _ : state) {
    store.Apply("key" + std::to_string(i % 10000), "value", false,
                Version{i, 0});
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StateDbApply);

void BM_StateDbGet(benchmark::State& state) {
  VersionedStore store;
  for (uint64_t i = 0; i < 10000; ++i) {
    store.Apply("key" + std::to_string(i), "value", false, Version{1, 0});
  }
  Rng rng(1);
  for (auto _ : state) {
    auto v = store.Get("key" + std::to_string(rng.NextBelow(10000)));
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StateDbGet);

void BM_StateDbRange(benchmark::State& state) {
  VersionedStore store;
  for (uint64_t i = 0; i < 10000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%06llu",
                  static_cast<unsigned long long>(i));
    store.Apply(buf, "value", false, Version{1, 0});
  }
  const int span = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    uint64_t start = rng.NextBelow(10000 - static_cast<uint64_t>(span));
    char lo[16], hi[16];
    std::snprintf(lo, sizeof(lo), "key%06llu",
                  static_cast<unsigned long long>(start));
    std::snprintf(hi, sizeof(hi), "key%06llu",
                  static_cast<unsigned long long>(start + span));
    auto r = store.Range(lo, hi);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * span);
}
BENCHMARK(BM_StateDbRange)->Arg(20)->Arg(200);

// ---------------------------------------------------------------------------
// Endorsement policy
// ---------------------------------------------------------------------------

void BM_PolicyEvaluate(benchmark::State& state) {
  EndorsementPolicy policy =
      EndorsementPolicy::Preset(3, static_cast<int>(state.range(0)));
  std::set<std::string> orgs;
  for (int i = 1; i <= state.range(0); ++i) {
    orgs.insert("Org" + std::to_string(i));
  }
  for (auto _ : state) {
    bool ok = policy.IsSatisfiedBy(orgs);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_PolicyEvaluate)->Arg(2)->Arg(4)->Arg(8);

void BM_PolicyMinimalSets(benchmark::State& state) {
  EndorsementPolicy policy =
      EndorsementPolicy::Preset(4, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto sets = policy.MinimalSatisfyingSets();
    benchmark::DoNotOptimize(sets);
  }
}
BENCHMARK(BM_PolicyMinimalSets)->Arg(4)->Arg(8)->Arg(12);

// ---------------------------------------------------------------------------
// Block validation
// ---------------------------------------------------------------------------

void BM_ValidateBlock(benchmark::State& state) {
  const int txs = static_cast<int>(state.range(0));
  EndorsementPolicy policy = EndorsementPolicy::Preset(3, 2);
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    VersionedStore store;
    for (int k = 0; k < 500; ++k) {
      store.Apply("key" + std::to_string(k), "v", false, Version{0, 0});
    }
    Block block;
    block.block_num = 1;
    for (int i = 0; i < txs; ++i) {
      Transaction tx;
      tx.endorsers = {"Org1", "Org2"};
      std::string key = "key" + std::to_string(rng.NextBelow(500));
      tx.rwset.reads.push_back(ReadItem{key, Version{0, 0}});
      tx.rwset.writes.push_back(WriteItem{key, "new", false});
      block.transactions.push_back(std::move(tx));
    }
    state.ResumeTiming();
    auto stats = ValidateAndApplyBlock(block, store, policy);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * txs);
}
BENCHMARK(BM_ValidateBlock)->Arg(50)->Arg(300)->Arg(1000);

// ---------------------------------------------------------------------------
// Simulator core
// ---------------------------------------------------------------------------

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int count = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.ScheduleAt(i * 0.001, [&count] { ++count; });
    }
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_ServiceStationQueueing(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    ServiceStation station(&sim, "s", 2);
    sim.ScheduleAt(0, [&] {
      for (int i = 0; i < 5000; ++i) station.Submit(0.001, [] {});
    });
    sim.Run();
    benchmark::DoNotOptimize(station.jobs_completed());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 5000);
}
BENCHMARK(BM_ServiceStationQueueing);

// ---------------------------------------------------------------------------
// Process mining
// ---------------------------------------------------------------------------

std::vector<std::vector<std::string>> SyntheticTraces(int cases) {
  Rng rng(3);
  std::vector<std::vector<std::string>> traces;
  for (int c = 0; c < cases; ++c) {
    std::vector<std::string> t = {"start"};
    if (rng.NextBool(0.5)) {
      t.push_back("b");
      t.push_back("c");
    } else {
      t.push_back("c");
      t.push_back("b");
    }
    if (rng.NextBool(0.3)) t.push_back("audit");
    t.push_back("end");
    traces.push_back(std::move(t));
  }
  return traces;
}

void BM_AlphaMiner(benchmark::State& state) {
  auto traces = SyntheticTraces(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    PetriNet net = AlphaMiner::Mine(traces);
    benchmark::DoNotOptimize(net);
  }
}
BENCHMARK(BM_AlphaMiner)->Arg(100)->Arg(1000);

void BM_TokenReplay(benchmark::State& state) {
  auto traces = SyntheticTraces(static_cast<int>(state.range(0)));
  PetriNet net = AlphaMiner::Mine(traces);
  for (auto _ : state) {
    auto result = ReplayTraces(net, traces);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TokenReplay)->Arg(100)->Arg(1000);

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  ZipfGenerator zipf(static_cast<uint64_t>(state.range(0)), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(500)->Arg(100000);

}  // namespace
}  // namespace blockoptr

BENCHMARK_MAIN();
