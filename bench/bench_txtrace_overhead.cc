// Flight-recorder overhead A/B: what per-transaction causal tracing costs.
//
// Runs the full pipeline (RunExperiment) on the paper's 10k-tx synthetic
// workload in three profiles:
//
//   BM_E2E_TxTraceBaseline — no Telemetry object at all (the shipping
//                            fast path; shared baseline with the
//                            telemetry-overhead suite)
//   BM_E2E_TxTraceOff      — Telemetry constructed, flight recorder
//                            disabled (every hook site is a cached-null
//                            check; the zero-cost-when-disabled claim)
//   BM_E2E_TxTraceOn       — flight recorder only (the profile behind
//                            --txtrace: ring appends at every stage
//                            transition + per-commit chain extraction)
//
// CI gates Off/Baseline <= 1.02 (disabled hooks are free) and
// On/Off <= 1.15 (recording stays cheap enough to leave on for tail
// hunts). main() prints an explicit interleaved A/B so the ratios are
// robust against frequency-scaling drift, and `--json-out=PATH` dumps the
// suite as BENCH_txtrace.json (schema blockoptr-bench-v1) for CI.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace blockoptr {
namespace {

ExperimentConfig MakeConfig(int num_txs, bool telemetry, bool txtrace) {
  SyntheticConfig wl;
  wl.num_txs = num_txs;
  ExperimentConfig cfg =
      MakeSyntheticExperiment(wl, NetworkConfig::Defaults());
  cfg.enable_telemetry = telemetry;
  // Off = the causal-tracing profile with the recorder switched back off:
  // spans/metrics/sampler stay disabled either way, so On - Off isolates
  // the recorder and Off - Baseline isolates the disabled hook checks.
  cfg.telemetry_options = TelemetryOptions::TxTraceOnly();
  cfg.telemetry_options.txtrace.enabled = txtrace;
  return cfg;
}

void RunProfile(benchmark::State& state, bool telemetry, bool txtrace) {
  const int n = static_cast<int>(state.range(0));
  const ExperimentConfig cfg = MakeConfig(n, telemetry, txtrace);
  for (auto _ : state) {
    auto out = RunExperiment(cfg);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out->report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}

void BM_E2E_TxTraceBaseline(benchmark::State& state) {
  RunProfile(state, /*telemetry=*/false, /*txtrace=*/false);
}
void BM_E2E_TxTraceOff(benchmark::State& state) {
  RunProfile(state, /*telemetry=*/true, /*txtrace=*/false);
}
void BM_E2E_TxTraceOn(benchmark::State& state) {
  RunProfile(state, /*telemetry=*/true, /*txtrace=*/true);
}

BENCHMARK(BM_E2E_TxTraceBaseline)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2E_TxTraceOff)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2E_TxTraceOn)->Arg(10000)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Explicit interleaved A/B: recorder-on vs recorder-off
// ---------------------------------------------------------------------------

double MeasureTxPerSec(const ExperimentConfig& cfg) {
  const auto start = std::chrono::steady_clock::now();
  auto out = RunExperiment(cfg);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (!out.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 out.status().ToString().c_str());
    std::exit(1);
  }
  benchmark::DoNotOptimize(out->report);
  return static_cast<double>(cfg.schedule.size()) / elapsed.count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Alternates off/on runs so drift (frequency scaling, cache state) hits
/// both sides equally, then compares medians. The printed overheads are
/// the numbers the CI ratio gates are judged against.
void PrintInterleavedAB(int num_txs, int rounds) {
  const ExperimentConfig baseline = MakeConfig(num_txs, false, false);
  const ExperimentConfig off = MakeConfig(num_txs, true, false);
  const ExperimentConfig on = MakeConfig(num_txs, true, true);
  std::vector<double> base_tps, off_tps, on_tps;
  for (int r = 0; r < rounds; ++r) {
    base_tps.push_back(MeasureTxPerSec(baseline));
    off_tps.push_back(MeasureTxPerSec(off));
    on_tps.push_back(MeasureTxPerSec(on));
  }
  const double a = Median(base_tps);
  const double b = Median(off_tps);
  const double c = Median(on_tps);
  std::printf("\ninterleaved A/B at %d txs (%d rounds, median): "
              "baseline %.0f tx/s, txtrace-off %.0f tx/s, "
              "txtrace-on %.0f tx/s -> disabled-hook overhead %.1f%%, "
              "recording overhead %.1f%%\n",
              num_txs, rounds, a, b, c, 100.0 * (a - b) / a,
              100.0 * (b - c) / b);
}

}  // namespace
}  // namespace blockoptr

int main(int argc, char** argv) {
  std::string json_out = blockoptr::bench::ParseJsonOutFlag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  blockoptr::bench::JsonTrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_out.empty()) reporter.WriteJson(json_out, "txtrace");
  blockoptr::PrintInterleavedAB(/*num_txs=*/10000, /*rounds=*/5);
  benchmark::Shutdown();
  return 0;
}
