file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_combined.dir/bench_fig12_combined.cc.o"
  "CMakeFiles/bench_fig12_combined.dir/bench_fig12_combined.cc.o.d"
  "bench_fig12_combined"
  "bench_fig12_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
