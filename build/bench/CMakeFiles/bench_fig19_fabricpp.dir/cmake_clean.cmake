file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_fabricpp.dir/bench_fig19_fabricpp.cc.o"
  "CMakeFiles/bench_fig19_fabricpp.dir/bench_fig19_fabricpp.cc.o.d"
  "bench_fig19_fabricpp"
  "bench_fig19_fabricpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_fabricpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
