# Empty compiler generated dependencies file for bench_fig19_fabricpp.
# This may be replaced when dependencies are built.
