# Empty dependencies file for bench_fig13_scm.
# This may be replaced when dependencies are built.
