file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_scm.dir/bench_fig13_scm.cc.o"
  "CMakeFiles/bench_fig13_scm.dir/bench_fig13_scm.cc.o.d"
  "bench_fig13_scm"
  "bench_fig13_scm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_scm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
