file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_dv.dir/bench_fig16_dv.cc.o"
  "CMakeFiles/bench_fig16_dv.dir/bench_fig16_dv.cc.o.d"
  "bench_fig16_dv"
  "bench_fig16_dv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_dv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
