# Empty dependencies file for bench_fig16_dv.
# This may be replaced when dependencies are built.
