# Empty dependencies file for bench_fig09_block_size.
# This may be replaced when dependencies are built.
