file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_drm.dir/bench_fig14_drm.cc.o"
  "CMakeFiles/bench_fig14_drm.dir/bench_fig14_drm.cc.o.d"
  "bench_fig14_drm"
  "bench_fig14_drm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_drm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
