# Empty compiler generated dependencies file for bench_ablation_blockcutting.
# This may be replaced when dependencies are built.
