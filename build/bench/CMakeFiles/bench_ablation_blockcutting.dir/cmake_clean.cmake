file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blockcutting.dir/bench_ablation_blockcutting.cc.o"
  "CMakeFiles/bench_ablation_blockcutting.dir/bench_ablation_blockcutting.cc.o.d"
  "bench_ablation_blockcutting"
  "bench_ablation_blockcutting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blockcutting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
