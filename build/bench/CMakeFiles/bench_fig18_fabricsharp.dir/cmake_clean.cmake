file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_fabricsharp.dir/bench_fig18_fabricsharp.cc.o"
  "CMakeFiles/bench_fig18_fabricsharp.dir/bench_fig18_fabricsharp.cc.o.d"
  "bench_fig18_fabricsharp"
  "bench_fig18_fabricsharp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_fabricsharp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
