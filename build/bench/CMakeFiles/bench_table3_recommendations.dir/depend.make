# Empty dependencies file for bench_table3_recommendations.
# This may be replaced when dependencies are built.
