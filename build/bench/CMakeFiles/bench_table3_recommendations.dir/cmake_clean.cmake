file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_recommendations.dir/bench_table3_recommendations.cc.o"
  "CMakeFiles/bench_table3_recommendations.dir/bench_table3_recommendations.cc.o.d"
  "bench_table3_recommendations"
  "bench_table3_recommendations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
