file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_ehr.dir/bench_fig15_ehr.cc.o"
  "CMakeFiles/bench_fig15_ehr.dir/bench_fig15_ehr.cc.o.d"
  "bench_fig15_ehr"
  "bench_fig15_ehr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_ehr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
