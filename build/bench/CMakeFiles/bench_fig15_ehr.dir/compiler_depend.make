# Empty compiler generated dependencies file for bench_fig15_ehr.
# This may be replaced when dependencies are built.
