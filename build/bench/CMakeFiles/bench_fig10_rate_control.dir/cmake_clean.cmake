file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_rate_control.dir/bench_fig10_rate_control.cc.o"
  "CMakeFiles/bench_fig10_rate_control.dir/bench_fig10_rate_control.cc.o.d"
  "bench_fig10_rate_control"
  "bench_fig10_rate_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_rate_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
