# Empty dependencies file for bench_fig07_endorser_restructuring.
# This may be replaced when dependencies are built.
