file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_endorser_restructuring.dir/bench_fig07_endorser_restructuring.cc.o"
  "CMakeFiles/bench_fig07_endorser_restructuring.dir/bench_fig07_endorser_restructuring.cc.o.d"
  "bench_fig07_endorser_restructuring"
  "bench_fig07_endorser_restructuring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_endorser_restructuring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
