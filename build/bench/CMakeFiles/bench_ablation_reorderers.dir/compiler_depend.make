# Empty compiler generated dependencies file for bench_ablation_reorderers.
# This may be replaced when dependencies are built.
