file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reorderers.dir/bench_ablation_reorderers.cc.o"
  "CMakeFiles/bench_ablation_reorderers.dir/bench_ablation_reorderers.cc.o.d"
  "bench_ablation_reorderers"
  "bench_ablation_reorderers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reorderers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
