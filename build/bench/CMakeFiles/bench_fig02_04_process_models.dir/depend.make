# Empty dependencies file for bench_fig02_04_process_models.
# This may be replaced when dependencies are built.
