file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_lap.dir/bench_fig17_lap.cc.o"
  "CMakeFiles/bench_fig17_lap.dir/bench_fig17_lap.cc.o.d"
  "bench_fig17_lap"
  "bench_fig17_lap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_lap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
