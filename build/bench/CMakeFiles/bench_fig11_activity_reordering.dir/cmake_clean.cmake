file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_activity_reordering.dir/bench_fig11_activity_reordering.cc.o"
  "CMakeFiles/bench_fig11_activity_reordering.dir/bench_fig11_activity_reordering.cc.o.d"
  "bench_fig11_activity_reordering"
  "bench_fig11_activity_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_activity_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
