# Empty dependencies file for bench_fig11_activity_reordering.
# This may be replaced when dependencies are built.
