file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_client_boost.dir/bench_fig08_client_boost.cc.o"
  "CMakeFiles/bench_fig08_client_boost.dir/bench_fig08_client_boost.cc.o.d"
  "bench_fig08_client_boost"
  "bench_fig08_client_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_client_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
