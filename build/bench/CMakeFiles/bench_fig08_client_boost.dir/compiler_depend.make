# Empty compiler generated dependencies file for bench_fig08_client_boost.
# This may be replaced when dependencies are built.
