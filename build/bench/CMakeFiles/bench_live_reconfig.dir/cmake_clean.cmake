file(REMOVE_RECURSE
  "CMakeFiles/bench_live_reconfig.dir/bench_live_reconfig.cc.o"
  "CMakeFiles/bench_live_reconfig.dir/bench_live_reconfig.cc.o.d"
  "bench_live_reconfig"
  "bench_live_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_live_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
