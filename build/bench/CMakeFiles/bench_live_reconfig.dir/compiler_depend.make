# Empty compiler generated dependencies file for bench_live_reconfig.
# This may be replaced when dependencies are built.
