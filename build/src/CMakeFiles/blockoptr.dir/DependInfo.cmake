
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blockopt/apply/optimizer.cc" "src/CMakeFiles/blockoptr.dir/blockopt/apply/optimizer.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/blockopt/apply/optimizer.cc.o.d"
  "/root/repo/src/blockopt/eventlog/case_id.cc" "src/CMakeFiles/blockoptr.dir/blockopt/eventlog/case_id.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/blockopt/eventlog/case_id.cc.o.d"
  "/root/repo/src/blockopt/eventlog/event_log.cc" "src/CMakeFiles/blockoptr.dir/blockopt/eventlog/event_log.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/blockopt/eventlog/event_log.cc.o.d"
  "/root/repo/src/blockopt/eventlog/xes_export.cc" "src/CMakeFiles/blockoptr.dir/blockopt/eventlog/xes_export.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/blockopt/eventlog/xes_export.cc.o.d"
  "/root/repo/src/blockopt/log/blockchain_log.cc" "src/CMakeFiles/blockoptr.dir/blockopt/log/blockchain_log.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/blockopt/log/blockchain_log.cc.o.d"
  "/root/repo/src/blockopt/log/export.cc" "src/CMakeFiles/blockoptr.dir/blockopt/log/export.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/blockopt/log/export.cc.o.d"
  "/root/repo/src/blockopt/log/preprocess.cc" "src/CMakeFiles/blockoptr.dir/blockopt/log/preprocess.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/blockopt/log/preprocess.cc.o.d"
  "/root/repo/src/blockopt/metrics/metrics.cc" "src/CMakeFiles/blockoptr.dir/blockopt/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/blockopt/metrics/metrics.cc.o.d"
  "/root/repo/src/blockopt/provenance.cc" "src/CMakeFiles/blockoptr.dir/blockopt/provenance.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/blockopt/provenance.cc.o.d"
  "/root/repo/src/blockopt/recommend/autotune.cc" "src/CMakeFiles/blockoptr.dir/blockopt/recommend/autotune.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/blockopt/recommend/autotune.cc.o.d"
  "/root/repo/src/blockopt/recommend/recommender.cc" "src/CMakeFiles/blockoptr.dir/blockopt/recommend/recommender.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/blockopt/recommend/recommender.cc.o.d"
  "/root/repo/src/blockopt/recommend/report.cc" "src/CMakeFiles/blockoptr.dir/blockopt/recommend/report.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/blockopt/recommend/report.cc.o.d"
  "/root/repo/src/chaincode/chaincode.cc" "src/CMakeFiles/blockoptr.dir/chaincode/chaincode.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/chaincode/chaincode.cc.o.d"
  "/root/repo/src/chaincode/tx_context.cc" "src/CMakeFiles/blockoptr.dir/chaincode/tx_context.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/chaincode/tx_context.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/blockoptr.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/common/csv.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/blockoptr.dir/common/json.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/common/json.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/blockoptr.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/blockoptr.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/blockoptr.dir/common/status.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/blockoptr.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/common/string_util.cc.o.d"
  "/root/repo/src/contracts/builtin.cc" "src/CMakeFiles/blockoptr.dir/contracts/builtin.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/contracts/builtin.cc.o.d"
  "/root/repo/src/contracts/drm.cc" "src/CMakeFiles/blockoptr.dir/contracts/drm.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/contracts/drm.cc.o.d"
  "/root/repo/src/contracts/dv.cc" "src/CMakeFiles/blockoptr.dir/contracts/dv.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/contracts/dv.cc.o.d"
  "/root/repo/src/contracts/ehr.cc" "src/CMakeFiles/blockoptr.dir/contracts/ehr.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/contracts/ehr.cc.o.d"
  "/root/repo/src/contracts/gen_chain.cc" "src/CMakeFiles/blockoptr.dir/contracts/gen_chain.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/contracts/gen_chain.cc.o.d"
  "/root/repo/src/contracts/lap.cc" "src/CMakeFiles/blockoptr.dir/contracts/lap.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/contracts/lap.cc.o.d"
  "/root/repo/src/contracts/scm.cc" "src/CMakeFiles/blockoptr.dir/contracts/scm.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/contracts/scm.cc.o.d"
  "/root/repo/src/driver/client_manager.cc" "src/CMakeFiles/blockoptr.dir/driver/client_manager.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/driver/client_manager.cc.o.d"
  "/root/repo/src/driver/experiment.cc" "src/CMakeFiles/blockoptr.dir/driver/experiment.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/driver/experiment.cc.o.d"
  "/root/repo/src/driver/rate_controller.cc" "src/CMakeFiles/blockoptr.dir/driver/rate_controller.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/driver/rate_controller.cc.o.d"
  "/root/repo/src/driver/report.cc" "src/CMakeFiles/blockoptr.dir/driver/report.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/driver/report.cc.o.d"
  "/root/repo/src/fabric/client.cc" "src/CMakeFiles/blockoptr.dir/fabric/client.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/fabric/client.cc.o.d"
  "/root/repo/src/fabric/config.cc" "src/CMakeFiles/blockoptr.dir/fabric/config.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/fabric/config.cc.o.d"
  "/root/repo/src/fabric/endorsement_policy.cc" "src/CMakeFiles/blockoptr.dir/fabric/endorsement_policy.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/fabric/endorsement_policy.cc.o.d"
  "/root/repo/src/fabric/endorser.cc" "src/CMakeFiles/blockoptr.dir/fabric/endorser.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/fabric/endorser.cc.o.d"
  "/root/repo/src/fabric/network.cc" "src/CMakeFiles/blockoptr.dir/fabric/network.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/fabric/network.cc.o.d"
  "/root/repo/src/fabric/orderer.cc" "src/CMakeFiles/blockoptr.dir/fabric/orderer.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/fabric/orderer.cc.o.d"
  "/root/repo/src/fabric/peer.cc" "src/CMakeFiles/blockoptr.dir/fabric/peer.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/fabric/peer.cc.o.d"
  "/root/repo/src/fabric/validator.cc" "src/CMakeFiles/blockoptr.dir/fabric/validator.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/fabric/validator.cc.o.d"
  "/root/repo/src/ledger/block.cc" "src/CMakeFiles/blockoptr.dir/ledger/block.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/ledger/block.cc.o.d"
  "/root/repo/src/ledger/ledger.cc" "src/CMakeFiles/blockoptr.dir/ledger/ledger.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/ledger/ledger.cc.o.d"
  "/root/repo/src/ledger/rwset.cc" "src/CMakeFiles/blockoptr.dir/ledger/rwset.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/ledger/rwset.cc.o.d"
  "/root/repo/src/ledger/transaction.cc" "src/CMakeFiles/blockoptr.dir/ledger/transaction.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/ledger/transaction.cc.o.d"
  "/root/repo/src/mining/alpha_miner.cc" "src/CMakeFiles/blockoptr.dir/mining/alpha_miner.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/mining/alpha_miner.cc.o.d"
  "/root/repo/src/mining/conformance.cc" "src/CMakeFiles/blockoptr.dir/mining/conformance.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/mining/conformance.cc.o.d"
  "/root/repo/src/mining/dfg.cc" "src/CMakeFiles/blockoptr.dir/mining/dfg.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/mining/dfg.cc.o.d"
  "/root/repo/src/mining/dot_export.cc" "src/CMakeFiles/blockoptr.dir/mining/dot_export.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/mining/dot_export.cc.o.d"
  "/root/repo/src/mining/footprint.cc" "src/CMakeFiles/blockoptr.dir/mining/footprint.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/mining/footprint.cc.o.d"
  "/root/repo/src/mining/fuzzy_miner.cc" "src/CMakeFiles/blockoptr.dir/mining/fuzzy_miner.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/mining/fuzzy_miner.cc.o.d"
  "/root/repo/src/mining/heuristics_miner.cc" "src/CMakeFiles/blockoptr.dir/mining/heuristics_miner.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/mining/heuristics_miner.cc.o.d"
  "/root/repo/src/mining/petri_net.cc" "src/CMakeFiles/blockoptr.dir/mining/petri_net.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/mining/petri_net.cc.o.d"
  "/root/repo/src/mining/precision.cc" "src/CMakeFiles/blockoptr.dir/mining/precision.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/mining/precision.cc.o.d"
  "/root/repo/src/raft/raft_cluster.cc" "src/CMakeFiles/blockoptr.dir/raft/raft_cluster.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/raft/raft_cluster.cc.o.d"
  "/root/repo/src/raft/raft_log.cc" "src/CMakeFiles/blockoptr.dir/raft/raft_log.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/raft/raft_log.cc.o.d"
  "/root/repo/src/raft/raft_node.cc" "src/CMakeFiles/blockoptr.dir/raft/raft_node.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/raft/raft_node.cc.o.d"
  "/root/repo/src/reorder/conflict_graph.cc" "src/CMakeFiles/blockoptr.dir/reorder/conflict_graph.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/reorder/conflict_graph.cc.o.d"
  "/root/repo/src/reorder/fabricpp.cc" "src/CMakeFiles/blockoptr.dir/reorder/fabricpp.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/reorder/fabricpp.cc.o.d"
  "/root/repo/src/reorder/fabricsharp.cc" "src/CMakeFiles/blockoptr.dir/reorder/fabricsharp.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/reorder/fabricsharp.cc.o.d"
  "/root/repo/src/sim/service_station.cc" "src/CMakeFiles/blockoptr.dir/sim/service_station.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/sim/service_station.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/blockoptr.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/sim/simulator.cc.o.d"
  "/root/repo/src/statedb/versioned_store.cc" "src/CMakeFiles/blockoptr.dir/statedb/versioned_store.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/statedb/versioned_store.cc.o.d"
  "/root/repo/src/workload/event_log_csv.cc" "src/CMakeFiles/blockoptr.dir/workload/event_log_csv.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/workload/event_log_csv.cc.o.d"
  "/root/repo/src/workload/lap_log.cc" "src/CMakeFiles/blockoptr.dir/workload/lap_log.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/workload/lap_log.cc.o.d"
  "/root/repo/src/workload/spec.cc" "src/CMakeFiles/blockoptr.dir/workload/spec.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/workload/spec.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/blockoptr.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/usecase.cc" "src/CMakeFiles/blockoptr.dir/workload/usecase.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/workload/usecase.cc.o.d"
  "/root/repo/src/workload/workflow_engine.cc" "src/CMakeFiles/blockoptr.dir/workload/workflow_engine.cc.o" "gcc" "src/CMakeFiles/blockoptr.dir/workload/workflow_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
