# Empty compiler generated dependencies file for blockoptr.
# This may be replaced when dependencies are built.
