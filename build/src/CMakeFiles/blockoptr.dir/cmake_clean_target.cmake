file(REMOVE_RECURSE
  "libblockoptr.a"
)
