file(REMOVE_RECURSE
  "CMakeFiles/example_scm_pipeline.dir/scm_pipeline.cpp.o"
  "CMakeFiles/example_scm_pipeline.dir/scm_pipeline.cpp.o.d"
  "example_scm_pipeline"
  "example_scm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
