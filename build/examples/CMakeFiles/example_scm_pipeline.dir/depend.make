# Empty dependencies file for example_scm_pipeline.
# This may be replaced when dependencies are built.
