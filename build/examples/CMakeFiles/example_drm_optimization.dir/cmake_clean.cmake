file(REMOVE_RECURSE
  "CMakeFiles/example_drm_optimization.dir/drm_optimization.cpp.o"
  "CMakeFiles/example_drm_optimization.dir/drm_optimization.cpp.o.d"
  "example_drm_optimization"
  "example_drm_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_drm_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
