# Empty dependencies file for example_drm_optimization.
# This may be replaced when dependencies are built.
