# Empty compiler generated dependencies file for example_workflow_closed_loop.
# This may be replaced when dependencies are built.
