file(REMOVE_RECURSE
  "CMakeFiles/example_workflow_closed_loop.dir/workflow_closed_loop.cpp.o"
  "CMakeFiles/example_workflow_closed_loop.dir/workflow_closed_loop.cpp.o.d"
  "example_workflow_closed_loop"
  "example_workflow_closed_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_workflow_closed_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
