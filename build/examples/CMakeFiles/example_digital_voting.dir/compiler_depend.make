# Empty compiler generated dependencies file for example_digital_voting.
# This may be replaced when dependencies are built.
