file(REMOVE_RECURSE
  "CMakeFiles/example_digital_voting.dir/digital_voting.cpp.o"
  "CMakeFiles/example_digital_voting.dir/digital_voting.cpp.o.d"
  "example_digital_voting"
  "example_digital_voting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_digital_voting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
