# Empty compiler generated dependencies file for example_process_mining_demo.
# This may be replaced when dependencies are built.
