file(REMOVE_RECURSE
  "CMakeFiles/example_process_mining_demo.dir/process_mining_demo.cpp.o"
  "CMakeFiles/example_process_mining_demo.dir/process_mining_demo.cpp.o.d"
  "example_process_mining_demo"
  "example_process_mining_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_process_mining_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
