file(REMOVE_RECURSE
  "CMakeFiles/blockoptr_cli.dir/blockoptr_cli.cc.o"
  "CMakeFiles/blockoptr_cli.dir/blockoptr_cli.cc.o.d"
  "blockoptr"
  "blockoptr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockoptr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
