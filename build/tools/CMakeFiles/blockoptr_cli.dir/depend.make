# Empty dependencies file for blockoptr_cli.
# This may be replaced when dependencies are built.
