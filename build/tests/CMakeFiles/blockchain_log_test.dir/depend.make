# Empty dependencies file for blockchain_log_test.
# This may be replaced when dependencies are built.
