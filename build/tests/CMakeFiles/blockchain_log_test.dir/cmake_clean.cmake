file(REMOVE_RECURSE
  "CMakeFiles/blockchain_log_test.dir/blockchain_log_test.cc.o"
  "CMakeFiles/blockchain_log_test.dir/blockchain_log_test.cc.o.d"
  "blockchain_log_test"
  "blockchain_log_test.pdb"
  "blockchain_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockchain_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
