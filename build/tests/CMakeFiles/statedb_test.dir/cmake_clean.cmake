file(REMOVE_RECURSE
  "CMakeFiles/statedb_test.dir/statedb_test.cc.o"
  "CMakeFiles/statedb_test.dir/statedb_test.cc.o.d"
  "statedb_test"
  "statedb_test.pdb"
  "statedb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statedb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
