# Empty compiler generated dependencies file for chaincode_test.
# This may be replaced when dependencies are built.
