# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/statedb_test[1]_include.cmake")
include("/root/repo/build/tests/ledger_test[1]_include.cmake")
include("/root/repo/build/tests/raft_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/chaincode_test[1]_include.cmake")
include("/root/repo/build/tests/contracts_test[1]_include.cmake")
include("/root/repo/build/tests/validator_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/blockchain_log_test[1]_include.cmake")
include("/root/repo/build/tests/eventlog_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/recommend_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/reorder_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
