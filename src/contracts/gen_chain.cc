#include "contracts/gen_chain.h"

#include <cstdlib>

namespace blockoptr {

Status GenChainContract::Invoke(TxContext& ctx, const std::string& function,
                                const std::vector<std::string>& args) {
  auto need = [&](size_t n) -> Status {
    if (args.size() < n) {
      return Status::InvalidArgument(function + " requires " +
                                     std::to_string(n) + " argument(s)");
    }
    return Status::OK();
  };

  if (function == "Read") {
    BLOCKOPTR_RETURN_NOT_OK(need(1));
    ctx.GetState(args[0]);
    return Status::OK();
  }
  if (function == "Write") {
    // Blind insert: no read, so the write itself cannot fail MVCC
    // validation. Inserts still conflict with concurrent range reads
    // (phantoms) — which is what makes the insert-heavy workload
    // reorderable rather than self-dependent.
    BLOCKOPTR_RETURN_NOT_OK(need(2));
    ctx.PutState(args[0], args[1]);
    return Status::OK();
  }
  if (function == "Update") {
    // Read-modify-write without increment/decrement semantics — the paper
    // notes genChain has no counter operations (§6.1), so delta writes are
    // never applicable to the synthetic workloads.
    BLOCKOPTR_RETURN_NOT_OK(need(2));
    auto current = ctx.GetState(args[0]);
    std::string next = args[1];
    if (current && !current->empty()) next += "." + current->substr(0, 8);
    ctx.PutState(args[0], next);
    return Status::OK();
  }
  if (function == "RangeRead") {
    BLOCKOPTR_RETURN_NOT_OK(need(2));
    ctx.GetStateByRange(args[0], args[1]);
    return Status::OK();
  }
  if (function == "Delete") {
    BLOCKOPTR_RETURN_NOT_OK(need(1));
    ctx.GetState(args[0]);
    ctx.DeleteState(args[0]);
    return Status::OK();
  }
  return Status::InvalidArgument("genchain: unknown function '" + function +
                                 "'");
}

}  // namespace blockoptr
