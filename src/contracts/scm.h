#ifndef BLOCKOPTR_CONTRACTS_SCM_H_
#define BLOCKOPTR_CONTRACTS_SCM_H_

#include <string>
#include <vector>

#include "chaincode/chaincode.h"

namespace blockoptr {

/// Supply Chain Management contract (paper §5.1.2). Tracks products
/// through the pipeline PushASN -> Ship -> QueryASN -> Unload, with
/// QueryProducts (range query) and UpdateAuditInfo (reads the product,
/// writes a per-product audit entry) possible at any time.
///
/// State model:
///   PRODUCT_<id> : lifecycle status ("ASN", "SHIPPED", "UNLOADED")
///   AUDIT_<id>   : audit-entry counter for the product
///
/// The *base* contract commits illogical paths (Ship without ASN, Unload
/// without Ship) as read-only transactions — deliberate, for provenance
/// (paper §3). The *pruned* variant (`pruned=true`, registered as
/// "scm_pruned") early-aborts them at endorsement, implementing the
/// process-model-pruning recommendation.
class ScmContract : public Chaincode {
 public:
  explicit ScmContract(bool pruned = false) : pruned_(pruned) {}

  std::string name() const override { return pruned_ ? "scm_pruned" : "scm"; }

  Status Invoke(TxContext& ctx, const std::string& function,
                const std::vector<std::string>& args) override;

  /// The activity names, exported for workload generators and tests.
  static const std::vector<std::string>& Activities();

 private:
  bool pruned_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_CONTRACTS_SCM_H_
