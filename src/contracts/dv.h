#ifndef BLOCKOPTR_CONTRACTS_DV_H_
#define BLOCKOPTR_CONTRACTS_DV_H_

#include <string>
#include <vector>

#include "chaincode/chaincode.h"

namespace blockoptr {

/// Digital Voting contract (paper §5.1.2). The base design keys vote
/// tallies by *party*, so every Vote transaction read-modify-writes one of
/// a handful of party keys — the hotkey pattern that triggers the paper's
/// data-model-alteration recommendation (§6.2, Figure 16).
///
/// State model (namespace "dv"):
///   ELECTION_<id> : "open" / "closed"
///   PARTY_<id>    : vote tally
///
/// Functions: CreateElection(election, num_parties), Vote(election, party,
/// voter), QueryParties, SeeResults, EndElection.
class DvContract : public Chaincode {
 public:
  std::string name() const override { return "dv"; }

  Status Invoke(TxContext& ctx, const std::string& function,
                const std::vector<std::string>& args) override;

  static const std::vector<std::string>& Activities();
};

/// Data-model-altered variant ("dv_voter"): votes are keyed by *voter*.
/// Since each voter votes once, every Vote writes a unique key and the
/// transaction dependencies disappear entirely — the paper observes 100%
/// success with this design.
class DvVoterContract : public Chaincode {
 public:
  std::string name() const override { return "dv_voter"; }

  Status Invoke(TxContext& ctx, const std::string& function,
                const std::vector<std::string>& args) override;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_CONTRACTS_DV_H_
