#include "contracts/lap.h"

namespace blockoptr {

namespace {

Status CheckArgs(const std::string& contract,
                 const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return Status::InvalidArgument(
        contract + ": requires [employeeID, applicationID, ...] arguments");
  }
  return Status::OK();
}

/// Appends "<application>:<activity>" (or "<employee>:<activity>") to a
/// bounded history value. The history is capped so values do not grow
/// without limit over a 20k-transaction run.
std::string AppendEvent(const std::string& current, const std::string& entry) {
  constexpr size_t kMaxValueBytes = 512;
  std::string next = current;
  if (!next.empty()) next += ';';
  next += entry;
  if (next.size() > kMaxValueBytes) {
    next.erase(0, next.size() - kMaxValueBytes);
  }
  return next;
}

}  // namespace

Status LapContract::Invoke(TxContext& ctx, const std::string& function,
                           const std::vector<std::string>& args) {
  BLOCKOPTR_RETURN_NOT_OK(CheckArgs("lap", args));
  // Keyed by employee: the record aggregates everything the employee
  // processed, so a busy employee's key is contended by every concurrent
  // activity they perform.
  const std::string key = "EMP_" + args[0];
  auto current = ctx.GetState(key);
  ctx.PutState(key,
               AppendEvent(current ? *current : "", args[1] + ":" + function));
  return Status::OK();
}

Status LapAppKeyContract::Invoke(TxContext& ctx, const std::string& function,
                                 const std::vector<std::string>& args) {
  BLOCKOPTR_RETURN_NOT_OK(CheckArgs("lap_app", args));
  // Keyed by application: employee is just a field; concurrent activities
  // collide only within the same application's life cycle.
  const std::string key = "APP_" + args[1];
  auto current = ctx.GetState(key);
  ctx.PutState(key,
               AppendEvent(current ? *current : "", args[0] + ":" + function));
  return Status::OK();
}

}  // namespace blockoptr
