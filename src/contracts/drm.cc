#include "contracts/drm.h"

#include <cstdlib>

#include "common/string_util.h"

namespace blockoptr {

namespace {

constexpr double kRevenuePerPlay = 0.01;

std::string MusicKey(const std::string& id) { return "MUSIC_" + id; }

/// Parses "<count>|<metadata>|<rights>"; returns the count.
long ParseCount(const std::string& value) {
  return std::strtol(value.c_str(), nullptr, 10);
}

std::string MakeRecord(long count, const std::string& meta,
                       const std::string& rights) {
  return std::to_string(count) + "|" + meta + "|" + rights;
}

Status NeedArgs(const std::string& function,
                const std::vector<std::string>& args, size_t n) {
  if (args.size() < n) {
    return Status::InvalidArgument("drm: " + function + " requires " +
                                   std::to_string(n) + " argument(s)");
  }
  return Status::OK();
}

}  // namespace

const std::vector<std::string>& DrmContract::Activities() {
  static const std::vector<std::string>* kActivities =
      new std::vector<std::string>{"Create", "Play", "ViewMetaData",
                                   "QueryRightHolders", "CalcRevenue"};
  return *kActivities;
}

Status DrmContract::Invoke(TxContext& ctx, const std::string& function,
                           const std::vector<std::string>& args) {
  BLOCKOPTR_RETURN_NOT_OK(NeedArgs(function, args, 1));
  const std::string key = MusicKey(args[0]);

  if (function == "Create") {
    ctx.GetState(key);  // existence check
    const std::string meta = args.size() > 1 ? args[1] : "meta";
    const std::string rights = args.size() > 2 ? args[2] : "artist";
    ctx.PutState(key, MakeRecord(0, meta, rights));
    return Status::OK();
  }
  if (function == "Play") {
    auto record = ctx.GetState(key);
    if (!record) {
      return Status::NotFound("drm: unknown music '" + args[0] + "'");
    }
    auto parts = Split(*record, '|');
    long count = ParseCount(parts[0]);
    ctx.PutState(key, MakeRecord(count + 1, parts.size() > 1 ? parts[1] : "",
                                 parts.size() > 2 ? parts[2] : ""));
    return Status::OK();
  }
  if (function == "ViewMetaData" || function == "QueryRightHolders") {
    ctx.GetState(key);
    return Status::OK();
  }
  if (function == "CalcRevenue") {
    auto record = ctx.GetState(key);
    long count = record ? ParseCount(*record) : 0;
    ctx.PutState("REV_" + args[0],
                 FormatDouble(static_cast<double>(count) * kRevenuePerPlay, 2));
    return Status::OK();
  }
  return Status::InvalidArgument("drm: unknown function '" + function + "'");
}

Status DrmDeltaContract::Invoke(TxContext& ctx, const std::string& function,
                                const std::vector<std::string>& args) {
  BLOCKOPTR_RETURN_NOT_OK(NeedArgs(function, args, 1));
  const std::string key = MusicKey(args[0]);

  if (function == "Play") {
    // Delta write: a unique key per playback, no read — the transaction
    // becomes a blind write with no MVCC dependency.
    BLOCKOPTR_RETURN_NOT_OK(NeedArgs(function, args, 2));
    ctx.PutState("DELTA_" + args[0] + "_" + args[1], "1");
    return Status::OK();
  }
  if (function == "CalcRevenue") {
    // Aggregate all delta keys for this music id (the expensive part the
    // paper notes: CalcRevenue latency rises, but it runs rarely).
    auto deltas =
        ctx.GetStateByRange("DELTA_" + args[0] + "_", "DELTA_" + args[0] + "`");
    long count = 0;
    for (const auto& [k, v] : deltas) {
      (void)k;
      count += std::strtol(v.c_str(), nullptr, 10);
    }
    ctx.PutState("REV_" + args[0],
                 FormatDouble(static_cast<double>(count) * kRevenuePerPlay, 2));
    return Status::OK();
  }
  if (function == "Create") {
    ctx.GetState(key);
    const std::string meta = args.size() > 1 ? args[1] : "meta";
    const std::string rights = args.size() > 2 ? args[2] : "artist";
    ctx.PutState(key, MakeRecord(0, meta, rights));
    return Status::OK();
  }
  if (function == "ViewMetaData" || function == "QueryRightHolders") {
    ctx.GetState(key);
    return Status::OK();
  }
  return Status::InvalidArgument("drm_delta: unknown function '" + function +
                                 "'");
}

Status DrmMetaContract::Invoke(TxContext& ctx, const std::string& function,
                               const std::vector<std::string>& args) {
  BLOCKOPTR_RETURN_NOT_OK(NeedArgs(function, args, 1));
  const std::string key = MusicKey(args[0]);
  if (function == "Create") {
    ctx.GetState(key);
    const std::string meta = args.size() > 1 ? args[1] : "meta";
    const std::string rights = args.size() > 2 ? args[2] : "artist";
    ctx.PutState(key, meta + "|" + rights);
    return Status::OK();
  }
  if (function == "ViewMetaData" || function == "QueryRightHolders") {
    ctx.GetState(key);
    return Status::OK();
  }
  return Status::InvalidArgument("drmmeta: unknown function '" + function +
                                 "'");
}

Status DrmPlayContract::Invoke(TxContext& ctx, const std::string& function,
                               const std::vector<std::string>& args) {
  BLOCKOPTR_RETURN_NOT_OK(NeedArgs(function, args, 1));
  const std::string key = MusicKey(args[0]);

  if (function == "Create") {
    ctx.GetState(key);
    ctx.PutState(key, "0");
    // Keep the metadata partition in sync (cross-chaincode invocation).
    return InvokeChaincode(meta_, ctx, "Create", args);
  }
  if (function == "Play") {
    auto record = ctx.GetState(key);
    if (!record) {
      return Status::NotFound("drmplay: unknown music '" + args[0] + "'");
    }
    long count = std::strtol(record->c_str(), nullptr, 10);
    ctx.PutState(key, std::to_string(count + 1));
    return Status::OK();
  }
  if (function == "CalcRevenue") {
    auto record = ctx.GetState(key);
    long count = record ? std::strtol(record->c_str(), nullptr, 10) : 0;
    ctx.PutState("REV_" + args[0],
                 FormatDouble(static_cast<double>(count) * kRevenuePerPlay, 2));
    return Status::OK();
  }
  return Status::InvalidArgument("drmplay: unknown function '" + function +
                                 "'");
}

}  // namespace blockoptr
