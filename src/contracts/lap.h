#ifndef BLOCKOPTR_CONTRACTS_LAP_H_
#define BLOCKOPTR_CONTRACTS_LAP_H_

#include <string>
#include <vector>

#include "chaincode/chaincode.h"

namespace blockoptr {

/// Loan Application Process contract (paper §5.1.3), modeled on the
/// BPI-2017 event log of a Dutch financial institute. Every activity of
/// the loan process flow is a smart-contract function; the generic handler
/// accepts any activity name and appends the event to the case record.
///
/// The paper's initial design keys records by *employee*: the value of
/// EMP_<employee> is the array of applications that employee processed, so
/// one busy employee (employeeID 1) becomes a hotkey — the data-model
/// flaw BlockOptR detects (§6.3, Figure 17).
///
/// Arguments: [employeeID, applicationID, loanType, loanAmount].
class LapContract : public Chaincode {
 public:
  std::string name() const override { return "lap"; }

  Status Invoke(TxContext& ctx, const std::string& function,
                const std::vector<std::string>& args) override;
};

/// Data-model-altered variant ("lap_app"): records are keyed by
/// *application*; the employee becomes a field of the value. Concurrent
/// transactions now collide only when they touch the same application,
/// which removes the hotkey (paper §6.3).
class LapAppKeyContract : public Chaincode {
 public:
  std::string name() const override { return "lap_app"; }

  Status Invoke(TxContext& ctx, const std::string& function,
                const std::vector<std::string>& args) override;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_CONTRACTS_LAP_H_
