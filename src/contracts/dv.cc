#include "contracts/dv.h"

#include <cstdlib>

namespace blockoptr {

const std::vector<std::string>& DvContract::Activities() {
  static const std::vector<std::string>* kActivities =
      new std::vector<std::string>{"CreateElection", "Vote", "QueryParties",
                                   "SeeResults", "EndElection"};
  return *kActivities;
}

Status DvContract::Invoke(TxContext& ctx, const std::string& function,
                          const std::vector<std::string>& args) {
  if (args.empty()) {
    return Status::InvalidArgument("dv: missing election argument");
  }
  const std::string election_key = "ELECTION_" + args[0];

  if (function == "CreateElection") {
    int parties = args.size() > 1 ? std::atoi(args[1].c_str()) : 4;
    ctx.PutState(election_key, "open");
    for (int p = 0; p < parties; ++p) {
      ctx.PutState("PARTY_" + std::to_string(p), "0");
    }
    return Status::OK();
  }
  if (function == "Vote") {
    if (args.size() < 2) {
      return Status::InvalidArgument("dv: Vote needs a party");
    }
    auto open = ctx.GetState(election_key);
    if (!open || *open != "open") {
      return Status::FailedPrecondition("dv: election is not open");
    }
    const std::string party_key = "PARTY_" + args[1];
    auto tally = ctx.GetState(party_key);
    long votes = tally ? std::strtol(tally->c_str(), nullptr, 10) : 0;
    ctx.PutState(party_key, std::to_string(votes + 1));
    return Status::OK();
  }
  if (function == "QueryParties" || function == "SeeResults") {
    ctx.GetStateByRange("PARTY_", "PARTY`");
    return Status::OK();
  }
  if (function == "EndElection") {
    auto open = ctx.GetState(election_key);
    (void)open;
    ctx.PutState(election_key, "closed");
    return Status::OK();
  }
  return Status::InvalidArgument("dv: unknown function '" + function + "'");
}

Status DvVoterContract::Invoke(TxContext& ctx, const std::string& function,
                               const std::vector<std::string>& args) {
  if (args.empty()) {
    return Status::InvalidArgument("dv_voter: missing election argument");
  }
  const std::string election_key = "ELECTION_" + args[0];

  if (function == "CreateElection") {
    ctx.PutState(election_key, "open");
    return Status::OK();
  }
  if (function == "Vote") {
    if (args.size() < 3) {
      return Status::InvalidArgument("dv_voter: Vote needs party and voter");
    }
    auto open = ctx.GetState(election_key);
    if (!open || *open != "open") {
      return Status::FailedPrecondition("dv_voter: election is not open");
    }
    // One unique key per voter: no shared tally, no write conflicts.
    ctx.PutState("VOTE_" + args[2], args[1]);
    return Status::OK();
  }
  if (function == "QueryParties" || function == "SeeResults") {
    ctx.GetStateByRange("VOTE_", "VOTE`");
    return Status::OK();
  }
  if (function == "EndElection") {
    ctx.PutState(election_key, "closed");
    return Status::OK();
  }
  return Status::InvalidArgument("dv_voter: unknown function '" + function +
                                 "'");
}

}  // namespace blockoptr
