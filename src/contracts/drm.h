#ifndef BLOCKOPTR_CONTRACTS_DRM_H_
#define BLOCKOPTR_CONTRACTS_DRM_H_

#include <string>
#include <vector>

#include "chaincode/chaincode.h"

namespace blockoptr {

/// Digital Rights Management contract (paper §5.1.2): manages music
/// rights. `Play` is executed on every playback and dominates the
/// workload (70%), making the music record a hotkey.
///
/// State model (namespace "drm"):
///   MUSIC_<id> : "<playcount>|<metadata>|<rightholders>"
///   REV_<id>   : computed revenue
///
/// Functions: Create, Play (read-increment-write), ViewMetaData,
/// QueryRightHolders, CalcRevenue (reads playcount, writes revenue).
class DrmContract : public Chaincode {
 public:
  std::string name() const override { return "drm"; }

  Status Invoke(TxContext& ctx, const std::string& function,
                const std::vector<std::string>& args) override;

  static const std::vector<std::string>& Activities();
};

/// Delta-write variant (paper §4.4.2 "Delta writes", evaluated in §6.2):
/// `Play(music, uuid)` blind-writes a unique delta key instead of
/// read-modify-writing the shared counter, eliminating the dependency.
/// `CalcRevenue` aggregates the delta keys with a range query — slower
/// (it touches every delta key) but rare. Registered as "drm_delta".
class DrmDeltaContract : public Chaincode {
 public:
  std::string name() const override { return "drm_delta"; }

  Status Invoke(TxContext& ctx, const std::string& function,
                const std::vector<std::string>& args) override;
};

/// Partitioned variant (paper §4.4.2 "Smart contract partitioning"):
/// the play-count functions live in "drmplay" and the metadata functions
/// in "drmmeta"; each chaincode has its own world-state namespace, so the
/// MUSIC_<id> record is duplicated and Play no longer conflicts with
/// ViewMetaData/QueryRightHolders. `Create` on drmplay cross-invokes
/// drmmeta's Create so both partitions stay populated.
class DrmMetaContract : public Chaincode {
 public:
  std::string name() const override { return "drmmeta"; }

  Status Invoke(TxContext& ctx, const std::string& function,
                const std::vector<std::string>& args) override;
};

class DrmPlayContract : public Chaincode {
 public:
  std::string name() const override { return "drmplay"; }

  Status Invoke(TxContext& ctx, const std::string& function,
                const std::vector<std::string>& args) override;

 private:
  DrmMetaContract meta_;  // stateless delegate for cross-invocation
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_CONTRACTS_DRM_H_
