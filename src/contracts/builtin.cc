#include <memory>

#include "chaincode/chaincode.h"
#include "contracts/drm.h"
#include "contracts/dv.h"
#include "contracts/ehr.h"
#include "contracts/gen_chain.h"
#include "contracts/lap.h"
#include "contracts/scm.h"

namespace blockoptr {

// Referenced by ChaincodeRegistry::Global() (declared in chaincode.cc).
void RegisterBuiltinContracts(ChaincodeRegistry& registry) {
  registry.Register("genchain",
                    [] { return std::make_unique<GenChainContract>(); });
  registry.Register("scm", [] { return std::make_unique<ScmContract>(); });
  registry.Register("scm_pruned",
                    [] { return std::make_unique<ScmContract>(true); });
  registry.Register("drm", [] { return std::make_unique<DrmContract>(); });
  registry.Register("drm_delta",
                    [] { return std::make_unique<DrmDeltaContract>(); });
  registry.Register("drmplay",
                    [] { return std::make_unique<DrmPlayContract>(); });
  registry.Register("drmmeta",
                    [] { return std::make_unique<DrmMetaContract>(); });
  registry.Register("ehr", [] { return std::make_unique<EhrContract>(); });
  registry.Register("ehr_pruned",
                    [] { return std::make_unique<EhrContract>(true); });
  registry.Register("dv", [] { return std::make_unique<DvContract>(); });
  registry.Register("dv_voter",
                    [] { return std::make_unique<DvVoterContract>(); });
  registry.Register("lap", [] { return std::make_unique<LapContract>(); });
  registry.Register("lap_app",
                    [] { return std::make_unique<LapAppKeyContract>(); });
}

}  // namespace blockoptr
