#include "contracts/scm.h"

#include <cstdlib>

namespace blockoptr {

const std::vector<std::string>& ScmContract::Activities() {
  static const std::vector<std::string>* kActivities =
      new std::vector<std::string>{"PushASN",       "Ship",
                                   "QueryASN",      "Unload",
                                   "QueryProducts", "UpdateAuditInfo"};
  return *kActivities;
}

Status ScmContract::Invoke(TxContext& ctx, const std::string& function,
                           const std::vector<std::string>& args) {
  if (args.empty()) {
    return Status::InvalidArgument("scm: missing product argument");
  }
  const std::string product_key = "PRODUCT_" + args[0];

  if (function == "PushASN") {
    auto status = ctx.GetState(product_key);
    // A new shipment notice is valid for a new product or one whose
    // previous cycle completed.
    ctx.PutState(product_key, "ASN");
    (void)status;
    return Status::OK();
  }
  if (function == "Ship") {
    auto status = ctx.GetState(product_key);
    if (!status || *status != "ASN") {
      if (pruned_) {
        return Status::FailedPrecondition(
            "scm: Ship before PushASN is pruned");
      }
      // Base design: commit the read-only transaction so the deviation is
      // recorded on-chain (provenance over performance).
      return Status::OK();
    }
    ctx.PutState(product_key, "SHIPPED");
    return Status::OK();
  }
  if (function == "QueryASN") {
    ctx.GetState(product_key);
    return Status::OK();
  }
  if (function == "Unload") {
    auto status = ctx.GetState(product_key);
    if (!status || *status != "SHIPPED") {
      if (pruned_) {
        return Status::FailedPrecondition(
            "scm: Unload before Ship is pruned");
      }
      return Status::OK();  // read-only provenance record
    }
    ctx.PutState(product_key, "UNLOADED");
    return Status::OK();
  }
  if (function == "QueryProducts") {
    const std::string end = args.size() > 1 ? "PRODUCT_" + args[1] : "";
    ctx.GetStateByRange(product_key, end);
    return Status::OK();
  }
  if (function == "UpdateAuditInfo") {
    // Reads the product, writes the product's audit entry — write sets of
    // UpdateAuditInfo and of PushASN/Ship/Unload are disjoint, which is
    // exactly what makes the pair reorderable (paper §3, Figure 3).
    auto product = ctx.GetState(product_key);
    const std::string audit_key = "AUDIT_" + args[0];
    auto audit = ctx.GetState(audit_key);
    std::string entry = args.size() > 1 ? args[1] : "entry";
    std::string next = audit ? *audit + ";" + entry : entry;
    if (product) next += "@" + *product;
    if (next.size() > 256) next.erase(0, next.size() - 256);
    ctx.PutState(audit_key, next);
    return Status::OK();
  }
  return Status::InvalidArgument("scm: unknown function '" + function + "'");
}

}  // namespace blockoptr
