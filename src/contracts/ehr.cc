#include "contracts/ehr.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace blockoptr {

const std::vector<std::string>& EhrContract::Activities() {
  static const std::vector<std::string>* kActivities =
      new std::vector<std::string>{"Register", "GrantAccess", "RevokeAccess",
                                   "QueryRecord", "AddRecord"};
  return *kActivities;
}

Status EhrContract::Invoke(TxContext& ctx, const std::string& function,
                           const std::vector<std::string>& args) {
  if (args.empty()) {
    return Status::InvalidArgument("ehr: missing patient argument");
  }
  const std::string patient_key = "PATIENT_" + args[0];
  const std::string record_key = "REC_" + args[0];

  if (function == "Register") {
    ctx.GetState(patient_key);
    ctx.PutState(patient_key, "");
    return Status::OK();
  }
  if (function == "GrantAccess") {
    if (args.size() < 2) {
      return Status::InvalidArgument("ehr: GrantAccess needs an institute");
    }
    auto acl = ctx.GetState(patient_key);
    std::string list = acl ? *acl : "";
    auto entries = Split(list, ',');
    if (std::find(entries.begin(), entries.end(), args[1]) == entries.end()) {
      if (!list.empty()) list += ',';
      list += args[1];
    }
    ctx.PutState(patient_key, list);
    return Status::OK();
  }
  if (function == "RevokeAccess") {
    if (args.size() < 2) {
      return Status::InvalidArgument("ehr: RevokeAccess needs an institute");
    }
    auto acl = ctx.GetState(patient_key);
    auto entries = acl ? Split(*acl, ',') : std::vector<std::string>{};
    auto it = std::find(entries.begin(), entries.end(), args[1]);
    if (it == entries.end()) {
      if (pruned_) {
        return Status::FailedPrecondition(
            "ehr: revoke without a prior grant is pruned");
      }
      // Base design: record the deviation as a read-only transaction.
      return Status::OK();
    }
    entries.erase(it);
    ctx.PutState(patient_key, Join(entries, ","));
    return Status::OK();
  }
  if (function == "QueryRecord") {
    // Access check then record read — a pure read transaction.
    ctx.GetState(patient_key);
    ctx.GetState(record_key);
    return Status::OK();
  }
  if (function == "AddRecord") {
    // Appends the new observation id to the record summary (bounded).
    auto rec = ctx.GetState(record_key);
    std::string data = args.size() > 1 ? args[1] : "obs";
    std::string next = rec && !rec->empty() ? *rec + ";" + data : data;
    if (next.size() > 256) next.erase(0, next.size() - 256);
    ctx.PutState(record_key, next);
    return Status::OK();
  }
  return Status::InvalidArgument("ehr: unknown function '" + function + "'");
}

}  // namespace blockoptr
