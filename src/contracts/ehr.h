#ifndef BLOCKOPTR_CONTRACTS_EHR_H_
#define BLOCKOPTR_CONTRACTS_EHR_H_

#include <string>
#include <vector>

#include "chaincode/chaincode.h"

namespace blockoptr {

/// Electronic Health Records contract (paper §5.1.2): patients grant or
/// revoke access rights for medical/research institutes and the institutes
/// query records. The paper's workload is 70% update-heavy
/// (grant/revoke), creating read-modify-write contention on patient keys.
///
/// State model (namespace "ehr"):
///   PATIENT_<id> : comma-separated ACL of institutes with access
///   REC_<id>     : record counter / summary for the patient
///
/// Functions: Register, GrantAccess, RevokeAccess, QueryRecord, AddRecord.
/// The pruned variant ("ehr_pruned") early-aborts RevokeAccess for an
/// institute that never had access — the illogical path the paper prunes
/// in §6.2 ("revoke access to records without granting access").
class EhrContract : public Chaincode {
 public:
  explicit EhrContract(bool pruned = false) : pruned_(pruned) {}

  std::string name() const override { return pruned_ ? "ehr_pruned" : "ehr"; }

  Status Invoke(TxContext& ctx, const std::string& function,
                const std::vector<std::string>& args) override;

  static const std::vector<std::string>& Activities();

 private:
  bool pruned_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_CONTRACTS_EHR_H_
