#ifndef BLOCKOPTR_CONTRACTS_GEN_CHAIN_H_
#define BLOCKOPTR_CONTRACTS_GEN_CHAIN_H_

#include <string>
#include <vector>

#include "chaincode/chaincode.h"

namespace blockoptr {

/// The paper's generic synthetic smart contract ("genChain" [13]): plain
/// read / write / update / range-read / delete functions over an abstract
/// keyspace. The synthetic workload generator (Table 2) drives this
/// contract.
///
/// Functions (activity names match the paper's synthetic experiments):
///   Read(key)                — point read
///   Write(key, value)        — insert with existence check (read + put)
///   Update(key, delta)       — read-modify-write of an integer value
///   RangeRead(start, end)    — ordered scan
///   Delete(key)              — read + delete
class GenChainContract : public Chaincode {
 public:
  std::string name() const override { return "genchain"; }

  Status Invoke(TxContext& ctx, const std::string& function,
                const std::vector<std::string>& args) override;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_CONTRACTS_GEN_CHAIN_H_
