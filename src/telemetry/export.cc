#include "telemetry/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace blockoptr {

namespace {

std::string PromDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// HELP text per family: the original (unsanitized) series name, escaped
/// per the exposition format (backslash and newline).
std::string PromHelpText(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void PromFamilyHeader(std::ostream& out, const std::string& prom_name,
                      const std::string& original_name, const char* type) {
  out << "# HELP " << prom_name << ' ' << PromHelpText(original_name)
      << '\n';
  out << "# TYPE " << prom_name << ' ' << type << '\n';
}

std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "blockoptr_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string HtmlEscapeText(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void WriteTimeSeriesChart(std::ostream& out, const std::string& caption,
                          const TimeSeries& series) {
  constexpr double kW = 640, kH = 120, kPadL = 56, kPadR = 10, kPadT = 8,
                   kPadB = 20;
  out << "<figure><figcaption>" << HtmlEscapeText(caption)
      << "</figcaption>";
  const auto& pts = series.points();
  if (pts.empty()) {
    out << "<p class=\"empty\">(no samples)</p></figure>\n";
    return;
  }
  double t0 = pts.front().t, t1 = pts.back().t;
  double vmin = pts.front().v, vmax = pts.front().v;
  for (const auto& p : pts) {
    vmin = std::min(vmin, p.v);
    vmax = std::max(vmax, p.v);
  }
  if (vmax - vmin < 1e-12) {  // flat series: pad the range so it centers
    vmax = vmin + (vmin == 0 ? 1.0 : std::abs(vmin) * 0.5 + 1e-9);
    vmin = vmin - (vmax - vmin);
  }
  double tspan = std::max(t1 - t0, 1e-12);
  out << "<svg viewBox=\"0 0 " << kW << " " << kH
      << "\" width=\"" << kW << "\" height=\"" << kH
      << "\" role=\"img\">";
  // Frame + y extremes + x extremes.
  out << "<rect x=\"" << kPadL << "\" y=\"" << kPadT << "\" width=\""
      << (kW - kPadL - kPadR) << "\" height=\"" << (kH - kPadT - kPadB)
      << "\" class=\"frame\"/>";
  out << "<text x=\"" << (kPadL - 4) << "\" y=\"" << (kPadT + 10)
      << "\" class=\"ylab\">" << Fmt("%.4g", vmax) << "</text>";
  out << "<text x=\"" << (kPadL - 4) << "\" y=\"" << (kH - kPadB)
      << "\" class=\"ylab\">" << Fmt("%.4g", vmin) << "</text>";
  out << "<text x=\"" << kPadL << "\" y=\"" << (kH - 6)
      << "\" class=\"xlab\">" << Fmt("%.1fs", t0) << "</text>";
  out << "<text x=\"" << (kW - kPadR) << "\" y=\"" << (kH - 6)
      << "\" class=\"xlab xend\">" << Fmt("%.1fs", t1) << "</text>";
  out << "<polyline class=\"line\" points=\"";
  for (size_t i = 0; i < pts.size(); ++i) {
    double x = kPadL + (pts[i].t - t0) / tspan * (kW - kPadL - kPadR);
    double y = kPadT +
               (1.0 - (pts[i].v - vmin) / (vmax - vmin)) *
                   (kH - kPadT - kPadB);
    if (i) out << ' ';
    out << Fmt("%.2f", x) << ',' << Fmt("%.2f", y);
  }
  out << "\"/></svg></figure>\n";
}

void WritePrometheusText(const Telemetry& telemetry, std::ostream& out,
                         const std::string& channel) {
  // With a channel set, every sample line carries {channel="..."}; the
  // empty default emits exactly the historical unlabeled format.
  const std::string label =
      channel.empty()
          ? std::string()
          : "{channel=\"" + PrometheusEscapeLabel(channel) + "\"}";
  const std::string bucket_prefix =
      channel.empty()
          ? std::string("{")
          : "{channel=\"" + PrometheusEscapeLabel(channel) + "\",";
  const MetricsRegistry& metrics = telemetry.metrics();
  for (const auto& [name, c] : metrics.counters()) {
    std::string p = PrometheusMetricName(name);
    PromFamilyHeader(out, p, name, "counter");
    out << p << label << ' ' << c.value() << '\n';
  }
  for (const auto& [name, g] : metrics.gauges()) {
    std::string p = PrometheusMetricName(name);
    PromFamilyHeader(out, p, name, "gauge");
    out << p << label << ' ' << PromDouble(g.value()) << '\n';
  }
  for (const auto& [name, h] : metrics.histograms()) {
    std::string p = PrometheusMetricName(name);
    PromFamilyHeader(out, p, name, "histogram");
    uint64_t cumulative = 0;
    const auto& counts = h.bucket_counts();
    for (size_t i = 0; i < h.bounds().size(); ++i) {
      cumulative += counts[i];
      out << p << "_bucket" << bucket_prefix << "le=\""
          << PrometheusEscapeLabel(PromDouble(h.bounds()[i])) << "\"} "
          << cumulative << '\n';
    }
    out << p << "_bucket" << bucket_prefix << "le=\"+Inf\"} " << h.count()
        << '\n';
    out << p << "_sum" << label << ' ' << PromDouble(h.sum()) << '\n';
    out << p << "_count" << label << ' ' << h.count() << '\n';
  }
  const Sampler* sampler = telemetry.sampler();
  if (sampler != nullptr) {
    // Last sampled value of every series, exposed as gauges so a scrape of
    // the finished run still carries the continuous-monitoring signals.
    for (const auto& s : sampler->series()) {
      const std::string name = "ts." + s.name();
      std::string p = PrometheusMetricName(name);
      PromFamilyHeader(out, p, name, "gauge");
      out << p << label << ' ' << PromDouble(s.Last()) << '\n';
    }
    for (const auto& tr : sampler->stations()) {
      const TimeSeries* tracks[] = {&tr.utilization, &tr.queue_depth_s,
                                    &tr.wait_mean_s, &tr.service_mean_s};
      for (const TimeSeries* series : tracks) {
        const std::string name = "station." + tr.name + "." + series->name();
        std::string p = PrometheusMetricName(name);
        PromFamilyHeader(out, p, name, "gauge");
        out << p << label << ' ' << PromDouble(series->Last()) << '\n';
      }
    }
  }
  const TxTraceRecorder* txtrace = telemetry.txtrace();
  if (txtrace == nullptr) return;
  const TxTraceSummary& ts = txtrace->summary();
  const struct { const char* name; uint64_t value; } counters_out[] = {
      {"txtrace.committed", ts.committed},
      {"txtrace.aborted", ts.aborted},
      {"txtrace.events_appended", ts.events_appended},
      {"txtrace.events_evicted", ts.events_evicted},
      {"txtrace.truncated_chains", ts.truncated_chains},
  };
  for (const auto& c : counters_out) {
    std::string p = PrometheusMetricName(std::string(c.name) + "_total");
    PromFamilyHeader(out, p, c.name, "counter");
    out << p << label << ' ' << c.value << '\n';
  }
  // Per-stage critical-path shares: the causal-chain partition of total
  // committed latency (shares sum to ~1), plus each stage's queueing share.
  const std::string share_name = PrometheusMetricName("txtrace.stage_share");
  PromFamilyHeader(out, share_name, "txtrace.stage_share", "gauge");
  for (int i = 0; i < kNumCriticalStages; ++i) {
    out << share_name << bucket_prefix << "stage=\""
        << CriticalStageName(i) << "\"} " << PromDouble(ts.StageShare(i))
        << '\n';
  }
  const std::string wait_name =
      PrometheusMetricName("txtrace.stage_wait_share");
  PromFamilyHeader(out, wait_name, "txtrace.stage_wait_share", "gauge");
  for (int i = 0; i < kNumCriticalStages; ++i) {
    out << wait_name << bucket_prefix << "stage=\"" << CriticalStageName(i)
        << "\"} " << PromDouble(ts.stages[i].wait_share()) << '\n';
  }
}

namespace {

JsonValue StagePathAggJson(const StagePathAgg* stages, double latency_total) {
  JsonValue::Array arr;
  for (int i = 0; i < kNumCriticalStages; ++i) {
    JsonValue::Object entry;
    entry["stage"] = JsonValue(CriticalStageName(i));
    entry["span_s"] = JsonValue(stages[i].span_s);
    entry["service_s"] = JsonValue(stages[i].service_s);
    entry["wait_s"] = JsonValue(stages[i].wait_s);
    entry["wait_share"] = JsonValue(stages[i].wait_share());
    entry["share"] = JsonValue(
        latency_total > 0 ? stages[i].span_s / latency_total : 0.0);
    entry["count"] = JsonValue(stages[i].count);
    arr.push_back(JsonValue(std::move(entry)));
  }
  return JsonValue(std::move(arr));
}

JsonValue ExemplarJson(const TxTraceExemplar& ex) {
  JsonValue::Object entry;
  entry["tx_id"] = JsonValue(ex.tx_id);
  entry["label"] = JsonValue(ex.label);
  entry["latency_s"] = JsonValue(ex.latency_s);
  entry["truncated"] = JsonValue(ex.truncated);
  entry["nearest"] = JsonValue(ex.nearest);
  entry["events"] = JsonValue(static_cast<uint64_t>(ex.events.size()));
  JsonValue::Array stages;
  for (int i = 0; i < kNumCriticalStages; ++i) {
    JsonValue::Object s;
    s["stage"] = JsonValue(CriticalStageName(i));
    s["span_s"] = JsonValue(ex.stage_span_s[i]);
    s["service_s"] = JsonValue(ex.stage_service_s[i]);
    s["wait_s"] = JsonValue(ex.stage_wait_s[i]);
    s["share"] = JsonValue(ex.StageShare(i));
    stages.push_back(JsonValue(std::move(s)));
  }
  entry["stages"] = JsonValue(std::move(stages));
  return JsonValue(std::move(entry));
}

}  // namespace

JsonValue TxTraceSummaryJson(const TxTraceSummary& summary) {
  JsonValue::Object root;
  root["committed"] = JsonValue(summary.committed);
  root["aborted"] = JsonValue(summary.aborted);
  root["events_appended"] = JsonValue(summary.events_appended);
  root["events_evicted"] = JsonValue(summary.events_evicted);
  root["truncated_chains"] = JsonValue(summary.truncated_chains);
  root["latency_total_s"] = JsonValue(summary.latency_total_s);
  int dom = summary.DominantStage();
  root["dominant_stage"] =
      JsonValue(dom >= 0 ? CriticalStageName(dom) : "");
  root["dominant_stage_share"] =
      JsonValue(dom >= 0 ? summary.StageShare(dom) : 0.0);
  root["stages"] = StagePathAggJson(summary.stages, summary.latency_total_s);

  JsonValue::Array windows;
  for (const auto& w : summary.windows) {
    JsonValue::Object entry;
    entry["start_s"] = JsonValue(w.start_s);
    entry["end_s"] = JsonValue(w.end_s);
    entry["committed"] = JsonValue(w.committed);
    entry["aborted"] = JsonValue(w.aborted);
    entry["dropped_chains"] = JsonValue(w.dropped_chains);
    entry["p50_s"] = JsonValue(w.p50_s);
    entry["p95_s"] = JsonValue(w.p95_s);
    entry["p99_s"] = JsonValue(w.p99_s);
    entry["max_s"] = JsonValue(w.max_s);
    double window_latency = 0;
    for (int i = 0; i < kNumCriticalStages; ++i) {
      window_latency += w.stages[i].span_s;
    }
    entry["stages"] = StagePathAggJson(w.stages, window_latency);
    JsonValue::Array exemplars;
    for (const auto& ex : w.exemplars) exemplars.push_back(ExemplarJson(ex));
    for (const auto& ex : w.abort_exemplars) {
      exemplars.push_back(ExemplarJson(ex));
    }
    entry["exemplars"] = JsonValue(std::move(exemplars));
    windows.push_back(JsonValue(std::move(entry)));
  }
  root["windows"] = JsonValue(std::move(windows));
  return JsonValue(std::move(root));
}

void WriteTxTraceChromeTrace(const TxTraceSummary& summary,
                             std::ostream& out) {
  constexpr double kMicros = 1e6;
  JsonValue::Array events;
  int pid = 0;
  char buf[160];
  for (size_t wi = 0; wi < summary.windows.size(); ++wi) {
    const TxTraceWindow& w = summary.windows[wi];
    const std::vector<TxTraceExemplar>* groups[] = {&w.exemplars,
                                                    &w.abort_exemplars};
    for (const auto* group : groups) {
      for (const auto& ex : *group) {
        ++pid;
        std::snprintf(buf, sizeof(buf),
                      "w%zu [%.1fs,%.1fs) %s tx=%llu lat=%.4fs%s%s", wi,
                      w.start_s, w.end_s, ex.label.c_str(),
                      static_cast<unsigned long long>(ex.tx_id),
                      ex.latency_s, ex.truncated ? " truncated" : "",
                      ex.nearest ? " nearest" : "");
        JsonValue::Object meta;
        meta["ph"] = JsonValue("M");
        meta["name"] = JsonValue("process_name");
        meta["pid"] = JsonValue(pid);
        JsonValue::Object margs;
        margs["name"] = JsonValue(std::string(buf));
        meta["args"] = JsonValue(std::move(margs));
        events.push_back(JsonValue(std::move(meta)));

        for (size_t i = 0; i < ex.events.size(); ++i) {
          const TxTraceEvent& ev = ex.events[i];
          double dur = static_cast<double>(ev.dur);
          JsonValue::Object slice;
          // Service time renders as the slice body ending at the
          // transition instant; zero-cost transitions become instants.
          slice["ph"] = JsonValue(dur > 0 ? "X" : "i");
          slice["name"] = JsonValue(TxStageName(ev.stage));
          slice["cat"] = JsonValue("txtrace");
          slice["pid"] = JsonValue(pid);
          slice["tid"] = JsonValue(ev.tx_id);
          slice["ts"] = JsonValue((ev.t - dur) * kMicros);
          if (dur > 0) slice["dur"] = JsonValue(dur * kMicros);
          if (dur <= 0) slice["s"] = JsonValue("t");  // instant scope
          JsonValue::Object args;
          args["tx_id"] = JsonValue(ev.tx_id);
          args["actor"] = JsonValue(static_cast<uint64_t>(ev.actor));
          args["block_seq"] = JsonValue(static_cast<uint64_t>(ev.block_seq));
          if (ev.flags & TxTraceEvent::kTruncated) {
            args["truncated"] = JsonValue(true);
          }
          if (ev.flags & TxTraceEvent::kFailed) {
            args["failed"] = JsonValue(true);
          }
          slice["args"] = JsonValue(std::move(args));
          events.push_back(JsonValue(std::move(slice)));

          // Flow arrows thread the causal chain through the exemplar:
          // "s" starts at the first event, "t" steps through the rest,
          // "f" closes at the terminal commit/abort.
          JsonValue::Object flow;
          flow["ph"] = JsonValue(i == 0 ? "s"
                                 : i + 1 == ex.events.size() ? "f" : "t");
          if (i + 1 == ex.events.size()) flow["bp"] = JsonValue("e");
          flow["id"] = JsonValue(pid);
          flow["name"] = JsonValue("txchain");
          flow["cat"] = JsonValue("txtrace");
          flow["pid"] = JsonValue(pid);
          flow["tid"] = JsonValue(ev.tx_id);
          flow["ts"] = JsonValue(ev.t * kMicros);
          events.push_back(JsonValue(std::move(flow)));
        }
      }
    }
  }
  JsonValue::Object root;
  root["traceEvents"] = JsonValue(std::move(events));
  root["displayTimeUnit"] = JsonValue("ms");
  out << JsonValue(std::move(root)).Dump();
}

JsonValue TelemetrySnapshotJson(const Telemetry& telemetry,
                                const BottleneckReport* bottleneck) {
  JsonValue root = telemetry.metrics().SnapshotJson();
  JsonValue::Object& obj = root.as_object();
  if (const Sampler* sampler = telemetry.sampler()) {
    obj["timeseries"] = sampler->ToJson();
  }
  if (const TxTraceRecorder* txtrace = telemetry.txtrace()) {
    obj["txtrace"] = TxTraceSummaryJson(txtrace->summary());
  }
  if (bottleneck != nullptr) {
    obj["bottleneck"] = BottleneckToJson(*bottleneck);
  }
  return root;
}

namespace {

/// One exemplar's critical-path waterfall: one row per stage at its
/// cumulative offset within the transaction's latency. The light bar is
/// the stage's span on the causal chain; the dark overlay is its modelled
/// service time (the remainder is queueing + network wait).
void WriteExemplarWaterfall(std::ostream& out, const TxTraceExemplar& ex) {
  constexpr double kW = 640, kRowH = 16, kPadL = 76, kPadR = 10, kPadT = 4,
                   kPadB = 16;
  const double kHeight = kPadT + kPadB + kRowH * kNumCriticalStages;
  char cap[160];
  std::snprintf(cap, sizeof(cap),
                "%s \xc2\xb7 tx %llu \xc2\xb7 %.4fs%s%s", ex.label.c_str(),
                static_cast<unsigned long long>(ex.tx_id), ex.latency_s,
                ex.truncated ? " \xc2\xb7 truncated" : "",
                ex.nearest ? " \xc2\xb7 nearest" : "");
  out << "<figure class=\"waterfall\"><figcaption>" << HtmlEscapeText(cap)
      << "</figcaption>";
  const double total = ex.latency_s;
  if (total <= 0) {
    out << "<p class=\"empty\">(zero-latency exemplar)</p></figure>\n";
    return;
  }
  out << "<svg viewBox=\"0 0 " << kW << " " << kHeight << "\" width=\""
      << kW << "\" height=\"" << kHeight << "\" role=\"img\">";
  const double plot_w = kW - kPadL - kPadR;
  double cum = 0;
  for (int i = 0; i < kNumCriticalStages; ++i) {
    double y = kPadT + kRowH * i;
    double x = kPadL + cum / total * plot_w;
    double span_w = ex.stage_span_s[i] / total * plot_w;
    double svc = std::min(ex.stage_service_s[i], ex.stage_span_s[i]);
    double svc_w = svc / total * plot_w;
    out << "<text x=\"" << (kPadL - 4) << "\" y=\"" << Fmt("%.1f", y + 12)
        << "\" class=\"wlab\">" << CriticalStageName(i) << "</text>";
    out << "<rect x=\"" << Fmt("%.2f", x) << "\" y=\"" << Fmt("%.1f", y + 2)
        << "\" width=\"" << Fmt("%.2f", span_w)
        << "\" height=\"12\" class=\"wait\"/>";
    if (svc_w > 0) {
      out << "<rect x=\"" << Fmt("%.2f", x) << "\" y=\""
          << Fmt("%.1f", y + 2) << "\" width=\"" << Fmt("%.2f", svc_w)
          << "\" height=\"12\" class=\"svc\"/>";
    }
    out << "<text x=\"" << Fmt("%.2f", x + span_w + 4) << "\" y=\""
        << Fmt("%.1f", y + 12) << "\" class=\"wshare\">"
        << Fmt("%.0f%%", 100.0 * ex.StageShare(i)) << "</text>";
    cum += ex.stage_span_s[i];
  }
  out << "<text x=\"" << kPadL << "\" y=\"" << Fmt("%.1f", kHeight - 4)
      << "\" class=\"xlab\">0s</text>";
  out << "<text x=\"" << (kW - kPadR) << "\" y=\""
      << Fmt("%.1f", kHeight - 4) << "\" class=\"xlab xend\">"
      << Fmt("%.4fs", total) << "</text>";
  out << "</svg></figure>\n";
}

}  // namespace

void WriteHtmlReport(std::ostream& out, const std::string& title,
                     const HtmlSummaryRows& summary,
                     const Telemetry& telemetry,
                     const BottleneckReport& bottleneck,
                     const std::string& extra_sections_html) {
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
         "<meta charset=\"utf-8\">\n<title>"
      << HtmlEscapeText(title)
      << "</title>\n<style>\n"
         "body{font:14px/1.45 system-ui,sans-serif;margin:24px;"
         "color:#1f2937;max-width:760px}\n"
         "h1{font-size:20px}h2{font-size:16px;margin-top:28px}\n"
         "table{border-collapse:collapse;margin:8px 0}\n"
         "th,td{border:1px solid #d1d5db;padding:3px 8px;text-align:right}\n"
         "th:first-child,td:first-child{text-align:left}\n"
         "figure{margin:12px 0}\n"
         "figcaption{font-size:12px;color:#6b7280;margin-bottom:2px}\n"
         ".frame{fill:none;stroke:#e5e7eb}\n"
         ".line{fill:none;stroke:#2563eb;stroke-width:1.5}\n"
         ".ylab{font-size:10px;fill:#6b7280;text-anchor:end}\n"
         ".xlab{font-size:10px;fill:#6b7280}\n"
         ".xend{text-anchor:end}\n"
         ".verdict{background:#eff6ff;border:1px solid #bfdbfe;"
         "padding:8px 12px;border-radius:4px}\n"
         ".empty{color:#9ca3af;font-size:12px}\n"
         ".wait{fill:#bfdbfe}\n"
         ".svc{fill:#2563eb}\n"
         ".wlab{font-size:10px;fill:#374151;text-anchor:end}\n"
         ".wshare{font-size:10px;fill:#6b7280}\n"
         "</style>\n</head>\n<body>\n<h1>"
      << HtmlEscapeText(title) << "</h1>\n";

  if (!summary.empty()) {
    out << "<h2>Run summary</h2>\n<table>\n";
    for (const auto& [key, value] : summary) {
      out << "<tr><td>" << HtmlEscapeText(key) << "</td><td>"
          << HtmlEscapeText(value) << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  out << "<h2>Bottleneck attribution</h2>\n<p class=\"verdict\">"
      << HtmlEscapeText(bottleneck.summary) << "</p>\n";
  if (!bottleneck.stations.empty()) {
    out << "<table>\n<tr><th>station</th><th>stage</th><th>util</th>"
           "<th>peak</th><th>wait mean (s)</th><th>service mean (s)</th>"
           "<th>queue peak (s)</th><th>evidence window</th></tr>\n";
    for (const auto& st : bottleneck.stations) {
      out << "<tr><td>" << HtmlEscapeText(st.station) << "</td><td>"
          << HtmlEscapeText(st.stage) << "</td><td>"
          << Fmt("%.3f", st.utilization) << "</td><td>"
          << Fmt("%.3f", st.peak_utilization) << "</td><td>"
          << Fmt("%.6f", st.mean_wait_s) << "</td><td>"
          << Fmt("%.6f", st.mean_service_s) << "</td><td>"
          << Fmt("%.4f", st.queue_peak_s) << "</td><td>"
          << HtmlEscapeText(
                 FormatEvidenceWindow(st.window_start, st.window_end))
          << "</td></tr>\n";
    }
    out << "</table>\n";
  }
  if (!bottleneck.stages.empty()) {
    out << "<h2>Stage latency (spans)</h2>\n"
           "<table>\n<tr><th>stage</th><th>spans</th><th>mean (s)</th>"
           "<th>p50 (s)</th><th>p95 (s)</th><th>max (s)</th></tr>\n";
    for (const auto& st : bottleneck.stages) {
      out << "<tr><td>" << HtmlEscapeText(st.stage) << "</td><td>" << st.count
          << "</td><td>" << Fmt("%.6f", st.mean_s) << "</td><td>"
          << Fmt("%.6f", st.p50_s) << "</td><td>" << Fmt("%.6f", st.p95_s)
          << "</td><td>" << Fmt("%.6f", st.max_s) << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  const TxTraceRecorder* txtrace = telemetry.txtrace();
  if (txtrace != nullptr) {
    const TxTraceSummary& ts = txtrace->summary();
    out << "<h2>Critical path (flight recorder)</h2>\n";
    if (ts.committed > 0) {
      out << "<table>\n<tr><th>stage</th><th>share</th><th>wait share</th>"
             "<th>span (s)</th><th>service (s)</th><th>wait (s)</th></tr>\n";
      for (int i = 0; i < kNumCriticalStages; ++i) {
        out << "<tr><td>" << CriticalStageName(i) << "</td><td>"
            << Fmt("%.1f%%", 100.0 * ts.StageShare(i)) << "</td><td>"
            << Fmt("%.1f%%", 100.0 * ts.stages[i].wait_share())
            << "</td><td>" << Fmt("%.4f", ts.stages[i].span_s)
            << "</td><td>" << Fmt("%.4f", ts.stages[i].service_s)
            << "</td><td>" << Fmt("%.4f", ts.stages[i].wait_s)
            << "</td></tr>\n";
      }
      out << "</table>\n";
      out << "<h2>Tail-latency exemplars</h2>\n";
      for (const auto& w : ts.windows) {
        char head[200];
        std::snprintf(head, sizeof(head),
                      "window [%.1fs,%.1fs): %llu committed, %llu aborted "
                      "— p50 %.4fs, p95 %.4fs, p99 %.4fs, max %.4fs",
                      w.start_s, w.end_s,
                      static_cast<unsigned long long>(w.committed),
                      static_cast<unsigned long long>(w.aborted), w.p50_s,
                      w.p95_s, w.p99_s, w.max_s);
        out << "<h3>" << HtmlEscapeText(head) << "</h3>\n";
        const std::vector<TxTraceExemplar>* groups[] = {&w.exemplars,
                                                        &w.abort_exemplars};
        for (const auto* group : groups) {
          for (const auto& ex : *group) WriteExemplarWaterfall(out, ex);
        }
      }
    } else {
      out << "<p class=\"empty\">no transactions committed while the "
             "flight recorder was on</p>\n";
    }
  }

  const Sampler* sampler = telemetry.sampler();
  if (sampler != nullptr &&
      (!sampler->series().empty() || !sampler->stations().empty())) {
    out << "<h2>Time series</h2>\n";
    for (const auto& s : sampler->series()) {
      WriteTimeSeriesChart(out, s.name(), s);
    }
    for (const auto& tr : sampler->stations()) {
      const TimeSeries* tracks[] = {&tr.utilization, &tr.queue_depth_s,
                                    &tr.wait_mean_s, &tr.service_mean_s};
      for (const TimeSeries* series : tracks) {
        WriteTimeSeriesChart(out, tr.name + " \xc2\xb7 " + series->name(),
                      *series);
      }
    }
  } else {
    out << "<p class=\"empty\">sampler disabled: no time series "
           "recorded</p>\n";
  }
  out << extra_sections_html;
  out << "</body>\n</html>\n";
}

}  // namespace blockoptr
