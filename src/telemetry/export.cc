#include "telemetry/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace blockoptr {

namespace {

std::string PromDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// HELP text per family: the original (unsanitized) series name, escaped
/// per the exposition format (backslash and newline).
std::string PromHelpText(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void PromFamilyHeader(std::ostream& out, const std::string& prom_name,
                      const std::string& original_name, const char* type) {
  out << "# HELP " << prom_name << ' ' << PromHelpText(original_name)
      << '\n';
  out << "# TYPE " << prom_name << ' ' << type << '\n';
}

std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "blockoptr_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string HtmlEscapeText(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void WriteTimeSeriesChart(std::ostream& out, const std::string& caption,
                          const TimeSeries& series) {
  constexpr double kW = 640, kH = 120, kPadL = 56, kPadR = 10, kPadT = 8,
                   kPadB = 20;
  out << "<figure><figcaption>" << HtmlEscapeText(caption)
      << "</figcaption>";
  const auto& pts = series.points();
  if (pts.empty()) {
    out << "<p class=\"empty\">(no samples)</p></figure>\n";
    return;
  }
  double t0 = pts.front().t, t1 = pts.back().t;
  double vmin = pts.front().v, vmax = pts.front().v;
  for (const auto& p : pts) {
    vmin = std::min(vmin, p.v);
    vmax = std::max(vmax, p.v);
  }
  if (vmax - vmin < 1e-12) {  // flat series: pad the range so it centers
    vmax = vmin + (vmin == 0 ? 1.0 : std::abs(vmin) * 0.5 + 1e-9);
    vmin = vmin - (vmax - vmin);
  }
  double tspan = std::max(t1 - t0, 1e-12);
  out << "<svg viewBox=\"0 0 " << kW << " " << kH
      << "\" width=\"" << kW << "\" height=\"" << kH
      << "\" role=\"img\">";
  // Frame + y extremes + x extremes.
  out << "<rect x=\"" << kPadL << "\" y=\"" << kPadT << "\" width=\""
      << (kW - kPadL - kPadR) << "\" height=\"" << (kH - kPadT - kPadB)
      << "\" class=\"frame\"/>";
  out << "<text x=\"" << (kPadL - 4) << "\" y=\"" << (kPadT + 10)
      << "\" class=\"ylab\">" << Fmt("%.4g", vmax) << "</text>";
  out << "<text x=\"" << (kPadL - 4) << "\" y=\"" << (kH - kPadB)
      << "\" class=\"ylab\">" << Fmt("%.4g", vmin) << "</text>";
  out << "<text x=\"" << kPadL << "\" y=\"" << (kH - 6)
      << "\" class=\"xlab\">" << Fmt("%.1fs", t0) << "</text>";
  out << "<text x=\"" << (kW - kPadR) << "\" y=\"" << (kH - 6)
      << "\" class=\"xlab xend\">" << Fmt("%.1fs", t1) << "</text>";
  out << "<polyline class=\"line\" points=\"";
  for (size_t i = 0; i < pts.size(); ++i) {
    double x = kPadL + (pts[i].t - t0) / tspan * (kW - kPadL - kPadR);
    double y = kPadT +
               (1.0 - (pts[i].v - vmin) / (vmax - vmin)) *
                   (kH - kPadT - kPadB);
    if (i) out << ' ';
    out << Fmt("%.2f", x) << ',' << Fmt("%.2f", y);
  }
  out << "\"/></svg></figure>\n";
}

void WritePrometheusText(const Telemetry& telemetry, std::ostream& out,
                         const std::string& channel) {
  // With a channel set, every sample line carries {channel="..."}; the
  // empty default emits exactly the historical unlabeled format.
  const std::string label =
      channel.empty()
          ? std::string()
          : "{channel=\"" + PrometheusEscapeLabel(channel) + "\"}";
  const std::string bucket_prefix =
      channel.empty()
          ? std::string("{")
          : "{channel=\"" + PrometheusEscapeLabel(channel) + "\",";
  const MetricsRegistry& metrics = telemetry.metrics();
  for (const auto& [name, c] : metrics.counters()) {
    std::string p = PrometheusMetricName(name);
    PromFamilyHeader(out, p, name, "counter");
    out << p << label << ' ' << c.value() << '\n';
  }
  for (const auto& [name, g] : metrics.gauges()) {
    std::string p = PrometheusMetricName(name);
    PromFamilyHeader(out, p, name, "gauge");
    out << p << label << ' ' << PromDouble(g.value()) << '\n';
  }
  for (const auto& [name, h] : metrics.histograms()) {
    std::string p = PrometheusMetricName(name);
    PromFamilyHeader(out, p, name, "histogram");
    uint64_t cumulative = 0;
    const auto& counts = h.bucket_counts();
    for (size_t i = 0; i < h.bounds().size(); ++i) {
      cumulative += counts[i];
      out << p << "_bucket" << bucket_prefix << "le=\""
          << PrometheusEscapeLabel(PromDouble(h.bounds()[i])) << "\"} "
          << cumulative << '\n';
    }
    out << p << "_bucket" << bucket_prefix << "le=\"+Inf\"} " << h.count()
        << '\n';
    out << p << "_sum" << label << ' ' << PromDouble(h.sum()) << '\n';
    out << p << "_count" << label << ' ' << h.count() << '\n';
  }
  const Sampler* sampler = telemetry.sampler();
  if (sampler == nullptr) return;
  // Last sampled value of every series, exposed as gauges so a scrape of
  // the finished run still carries the continuous-monitoring signals.
  for (const auto& s : sampler->series()) {
    const std::string name = "ts." + s.name();
    std::string p = PrometheusMetricName(name);
    PromFamilyHeader(out, p, name, "gauge");
    out << p << label << ' ' << PromDouble(s.Last()) << '\n';
  }
  for (const auto& tr : sampler->stations()) {
    const TimeSeries* tracks[] = {&tr.utilization, &tr.queue_depth_s,
                                  &tr.wait_mean_s, &tr.service_mean_s};
    for (const TimeSeries* series : tracks) {
      const std::string name = "station." + tr.name + "." + series->name();
      std::string p = PrometheusMetricName(name);
      PromFamilyHeader(out, p, name, "gauge");
      out << p << label << ' ' << PromDouble(series->Last()) << '\n';
    }
  }
}

JsonValue TelemetrySnapshotJson(const Telemetry& telemetry,
                                const BottleneckReport* bottleneck) {
  JsonValue root = telemetry.metrics().SnapshotJson();
  JsonValue::Object& obj = root.as_object();
  if (const Sampler* sampler = telemetry.sampler()) {
    obj["timeseries"] = sampler->ToJson();
  }
  if (bottleneck != nullptr) {
    obj["bottleneck"] = BottleneckToJson(*bottleneck);
  }
  return root;
}

void WriteHtmlReport(std::ostream& out, const std::string& title,
                     const HtmlSummaryRows& summary,
                     const Telemetry& telemetry,
                     const BottleneckReport& bottleneck,
                     const std::string& extra_sections_html) {
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
         "<meta charset=\"utf-8\">\n<title>"
      << HtmlEscapeText(title)
      << "</title>\n<style>\n"
         "body{font:14px/1.45 system-ui,sans-serif;margin:24px;"
         "color:#1f2937;max-width:760px}\n"
         "h1{font-size:20px}h2{font-size:16px;margin-top:28px}\n"
         "table{border-collapse:collapse;margin:8px 0}\n"
         "th,td{border:1px solid #d1d5db;padding:3px 8px;text-align:right}\n"
         "th:first-child,td:first-child{text-align:left}\n"
         "figure{margin:12px 0}\n"
         "figcaption{font-size:12px;color:#6b7280;margin-bottom:2px}\n"
         ".frame{fill:none;stroke:#e5e7eb}\n"
         ".line{fill:none;stroke:#2563eb;stroke-width:1.5}\n"
         ".ylab{font-size:10px;fill:#6b7280;text-anchor:end}\n"
         ".xlab{font-size:10px;fill:#6b7280}\n"
         ".xend{text-anchor:end}\n"
         ".verdict{background:#eff6ff;border:1px solid #bfdbfe;"
         "padding:8px 12px;border-radius:4px}\n"
         ".empty{color:#9ca3af;font-size:12px}\n"
         "</style>\n</head>\n<body>\n<h1>"
      << HtmlEscapeText(title) << "</h1>\n";

  if (!summary.empty()) {
    out << "<h2>Run summary</h2>\n<table>\n";
    for (const auto& [key, value] : summary) {
      out << "<tr><td>" << HtmlEscapeText(key) << "</td><td>"
          << HtmlEscapeText(value) << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  out << "<h2>Bottleneck attribution</h2>\n<p class=\"verdict\">"
      << HtmlEscapeText(bottleneck.summary) << "</p>\n";
  if (!bottleneck.stations.empty()) {
    out << "<table>\n<tr><th>station</th><th>stage</th><th>util</th>"
           "<th>peak</th><th>wait mean (s)</th><th>service mean (s)</th>"
           "<th>queue peak (s)</th><th>evidence window</th></tr>\n";
    for (const auto& st : bottleneck.stations) {
      out << "<tr><td>" << HtmlEscapeText(st.station) << "</td><td>"
          << HtmlEscapeText(st.stage) << "</td><td>"
          << Fmt("%.3f", st.utilization) << "</td><td>"
          << Fmt("%.3f", st.peak_utilization) << "</td><td>"
          << Fmt("%.6f", st.mean_wait_s) << "</td><td>"
          << Fmt("%.6f", st.mean_service_s) << "</td><td>"
          << Fmt("%.4f", st.queue_peak_s) << "</td><td>"
          << HtmlEscapeText(
                 FormatEvidenceWindow(st.window_start, st.window_end))
          << "</td></tr>\n";
    }
    out << "</table>\n";
  }
  if (!bottleneck.stages.empty()) {
    out << "<h2>Stage latency (spans)</h2>\n"
           "<table>\n<tr><th>stage</th><th>spans</th><th>mean (s)</th>"
           "<th>p50 (s)</th><th>p95 (s)</th><th>max (s)</th></tr>\n";
    for (const auto& st : bottleneck.stages) {
      out << "<tr><td>" << HtmlEscapeText(st.stage) << "</td><td>" << st.count
          << "</td><td>" << Fmt("%.6f", st.mean_s) << "</td><td>"
          << Fmt("%.6f", st.p50_s) << "</td><td>" << Fmt("%.6f", st.p95_s)
          << "</td><td>" << Fmt("%.6f", st.max_s) << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  const Sampler* sampler = telemetry.sampler();
  if (sampler != nullptr &&
      (!sampler->series().empty() || !sampler->stations().empty())) {
    out << "<h2>Time series</h2>\n";
    for (const auto& s : sampler->series()) {
      WriteTimeSeriesChart(out, s.name(), s);
    }
    for (const auto& tr : sampler->stations()) {
      const TimeSeries* tracks[] = {&tr.utilization, &tr.queue_depth_s,
                                    &tr.wait_mean_s, &tr.service_mean_s};
      for (const TimeSeries* series : tracks) {
        WriteTimeSeriesChart(out, tr.name + " \xc2\xb7 " + series->name(),
                      *series);
      }
    }
  } else {
    out << "<p class=\"empty\">sampler disabled: no time series "
           "recorded</p>\n";
  }
  out << extra_sections_html;
  out << "</body>\n</html>\n";
}

}  // namespace blockoptr
