#ifndef BLOCKOPTR_TELEMETRY_TXTRACE_H_
#define BLOCKOPTR_TELEMETRY_TXTRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace blockoptr {

/// Lifecycle stages recorded by the per-transaction flight recorder.
/// Transaction-scoped stages chain on tx_id; block-scoped stages (Raft and
/// validation, which act on whole blocks) chain on the orderer payload id
/// and are joined to transaction chains through the kBlockCut event.
enum class TxStage : uint8_t {
  kSubmit = 0,        // client accepted the proposal request
  kProposalDone,      // client-side proposal processing finished
  kEndorseStart,      // proposal arrived at one endorsing org
  kEndorseDone,       // endorsement signed (dur = chaincode execution)
  kEndorseRefused,    // endorser down: refusal after endorse_timeout_s
  kCollect,           // all endorsement responses back at the client
  kAssembleDone,      // envelope assembled (dur = assembly cost)
  kOrdererEnqueue,    // orderer admission done (dur = per-tx ordering cost)
  kBlockCut,          // included in a cut block (block_seq = payload id)
  kCommit,            // applied to the ledger (block_seq = block number)
  kEarlyAbort,        // every endorsement refused; never ordered
  // Block-scoped (tx_id = 0, chained on the orderer payload id):
  kRaftPropose,       // payload handed to the Raft leader
  kRaftReplicate,     // appended to the leader log (replication started)
  kRaftCommit,        // quorum-committed; delivery begins
  kValidateStart,     // one org's validator picked up the block
  kValidateDone,      // that org finished validate+apply (dur = service)
};

/// Stable display name ("submit", "endorse_done", ...).
const char* TxStageName(TxStage stage);

/// The six critical-path stages. Consecutive chain boundaries partition a
/// committed transaction's end-to-end latency exactly:
///   submit   = kSubmit        -> kProposalDone
///   endorse  = kProposalDone  -> kCollect
///   assemble = kCollect       -> kAssembleDone
///   order    = kAssembleDone  -> kBlockCut
///   raft     = kBlockCut      -> kRaftCommit   (via the block chain)
///   commit   = kRaftCommit    -> kCommit       (validation + apply)
/// so per-stage shares sum to 1.0 per transaction by construction.
inline constexpr int kNumCriticalStages = 6;

/// Name of critical-path stage i, aligned with trace_category (the last
/// stage is "commit" and covers validation + ledger apply).
const char* CriticalStageName(int stage);

/// One packed lifecycle event in the flight-recorder ring.
struct TxTraceEvent {
  static constexpr uint32_t kNoPrev = 0xFFFFFFFFu;
  // Flag bits.
  static constexpr uint8_t kTruncated = 1;  // older chain events evicted
  static constexpr uint8_t kFailed = 2;     // committed with failure status

  uint64_t tx_id = 0;     // 0 for block-scoped events
  double t = 0;           // virtual time of the transition
  float dur = 0;          // service time attributed to this transition
  uint32_t prev = kNoPrev;  // ring sequence of the previous chain event
  uint32_t block_seq = 0;   // payload id (kBlockCut) or block number
  uint16_t actor = 0;       // org index / raft node / client index
  TxStage stage = TxStage::kSubmit;
  uint8_t flags = 0;
};
static_assert(sizeof(TxTraceEvent) == 32, "flight-recorder events are 32B");

/// Recorder knobs; all capacities are fixed at construction so the
/// steady-state append path never allocates.
struct TxTraceOptions {
  bool enabled = false;
  /// Ring capacity in events (rounded up to a power of two). In-flight
  /// transactions whose oldest events fall out of the ring get truncated
  /// chains (flagged, never silently missing).
  uint32_t ring_capacity = 1u << 16;
  /// Exemplar window length in virtual seconds.
  double window_s = 5.0;
  /// Per-window retained-chain budget: at most this many committed chains
  /// (and at most this many total chain events) are retained as exemplar
  /// candidates; beyond it, selection falls back to the nearest retained
  /// chain (the window max is always retained exactly).
  uint32_t window_chain_capacity = 4096;
  uint32_t window_event_capacity = 1u << 17;
};

/// Critical-path accumulator for one stage: total span (wall) time on the
/// submit->commit path, split into service (modelled work) and wait
/// (queueing + network), over `count` committed transactions.
struct StagePathAgg {
  double span_s = 0;
  double service_s = 0;
  double wait_s = 0;
  uint64_t count = 0;

  double wait_share() const { return span_s > 0 ? wait_s / span_s : 0; }
  void Merge(const StagePathAgg& other) {
    span_s += other.span_s;
    service_s += other.service_s;
    wait_s += other.wait_s;
    count += other.count;
  }
};

/// One retained exemplar: the full (possibly truncated) event chain of a
/// selected transaction plus its critical-path breakdown.
struct TxTraceExemplar {
  uint64_t tx_id = 0;
  double latency_s = 0;
  std::string label;        // "p50" / "p95" / "p99" / "max" / "abort"
  bool truncated = false;   // ring eviction cut the chain's head
  bool nearest = false;     // exact-quantile chain was not retained;
                            // this is the nearest retained latency
  double stage_span_s[kNumCriticalStages] = {};
  double stage_service_s[kNumCriticalStages] = {};
  double stage_wait_s[kNumCriticalStages] = {};
  std::vector<TxTraceEvent> events;  // merged tx+block chain, time-sorted

  /// Critical-path share of stage i in this transaction's latency.
  double StageShare(int stage) const {
    return latency_s > 0 ? stage_span_s[stage] / latency_s : 0;
  }
};

/// One sealed exemplar window.
struct TxTraceWindow {
  double start_s = 0;
  double end_s = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t dropped_chains = 0;  // committed chains not retained (budget)
  double p50_s = 0;
  double p95_s = 0;
  double p99_s = 0;
  double max_s = 0;
  StagePathAgg stages[kNumCriticalStages];
  std::vector<TxTraceExemplar> exemplars;        // p50/p95/p99/max
  std::vector<TxTraceExemplar> abort_exemplars;  // first few early aborts
};

/// Channel-mergeable whole-run summary (per-stage critical path + windows).
struct TxTraceSummary {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t events_appended = 0;
  uint64_t events_evicted = 0;
  uint64_t truncated_chains = 0;
  double latency_total_s = 0;
  StagePathAgg stages[kNumCriticalStages];
  std::vector<TxTraceWindow> windows;

  /// Critical-path share of stage i over the whole run: the fraction of
  /// total committed latency spent in that stage's span.
  double StageShare(int stage) const {
    return latency_total_s > 0 ? stages[stage].span_s / latency_total_s : 0;
  }
  /// Index of the stage with the largest critical-path share (-1 if none).
  int DominantStage() const;

  /// Folds another channel's summary into this one: counters and stage
  /// aggregates add; windows covering the same [start,end) interval merge
  /// (quantiles become count-weighted nearest-rank estimates over the
  /// per-channel quantile summaries; exemplars are re-selected from the
  /// union of both sides' retained exemplars, so the merged max is exact).
  void Merge(const TxTraceSummary& other);
};

/// The flight recorder: a fixed-capacity ring of packed lifecycle events,
/// with per-transaction chains threaded through `prev` links and indexed by
/// open-addressed tables (no node allocation). All capacities are fixed at
/// construction; the append path and the per-commit critical-path
/// extraction are allocation-free in steady state. Sealing a window copies
/// at most a handful of exemplar chains — O(windows), like the sampler.
///
/// Single-threaded per channel, like TraceRecorder/MetricsRegistry;
/// sharded runs own one recorder per channel and merge summaries.
class TxTraceRecorder {
 public:
  TxTraceRecorder(Simulator* sim, TxTraceOptions options);

  TxTraceRecorder(const TxTraceRecorder&) = delete;
  TxTraceRecorder& operator=(const TxTraceRecorder&) = delete;

  const TxTraceOptions& options() const { return options_; }

  /// Appends a transaction-scoped event at the current virtual time.
  void TxEvent(uint64_t tx_id, TxStage stage, uint16_t actor = 0,
               float dur = 0, uint32_t block_seq = 0);

  /// Appends a block-scoped event chained on the orderer payload id.
  void BlockEvent(uint32_t payload, TxStage stage, uint16_t actor = 0,
                  float dur = 0);

  /// Maps a delivered block number to the most recently Raft-committed
  /// payload so validation events (which only see block numbers) land on
  /// the right block chain. Call from the block-delivery path, which runs
  /// synchronously after the Raft commit callback.
  void OnBlockDelivered(uint32_t block_num);

  /// Appends a validation event for a delivered block.
  void ValidateEvent(uint32_t block_num, TxStage stage, uint16_t actor,
                     float dur = 0);

  /// Records the terminal commit event, extracts the transaction's causal
  /// chain (joined with its block's Raft/validation chain), accumulates
  /// the critical-path breakdown, and retains the chain as an exemplar
  /// candidate for the current window.
  void CommitTx(uint64_t tx_id, double client_timestamp, uint32_t block_num,
                bool failed);

  /// Records the terminal early-abort event and retains the (refused)
  /// chain as an abort exemplar for the current window.
  void AbortTx(uint64_t tx_id);

  /// Seals the trailing window. Idempotent; call once at run end.
  void Finalize(double end_time);

  /// Whole-run summary (valid after Finalize; windows accrue during the
  /// run as they seal).
  const TxTraceSummary& summary() const { return summary_; }

  uint64_t events_appended() const { return summary_.events_appended; }
  uint64_t events_evicted() const { return summary_.events_evicted; }

 private:
  /// Fixed-capacity open-addressed map from chain key to ring sequence of
  /// the chain tail. Linear probing with backward-shift deletion; when the
  /// table is (pathologically) full the probed slot is overwritten, which
  /// truncates that chain deterministically rather than allocating.
  class ChainIndex {
   public:
    void Init(uint32_t capacity);
    void Put(uint64_t key, uint32_t seq);
    /// Returns kNoSeq when absent.
    uint32_t Get(uint64_t key) const;
    void Erase(uint64_t key);
    static constexpr uint32_t kNoSeq = 0xFFFFFFFFu;

   private:
    struct Slot {
      uint64_t key = 0;  // 0 = empty (keys are stored biased by +1)
      uint32_t seq = 0;
    };
    std::vector<Slot> slots_;
    uint32_t mask_ = 0;
  };

  /// Critical-path boundaries of one extracted chain.
  struct PathBreakdown {
    double span[kNumCriticalStages] = {};
    double service[kNumCriticalStages] = {};
    double wait[kNumCriticalStages] = {};
    bool truncated = false;
  };

  uint32_t Append(const TxTraceEvent& ev, uint32_t prev);
  bool Alive(uint32_t seq) const;
  const TxTraceEvent& At(uint32_t seq) const { return ring_[seq & mask_]; }

  /// Walks a chain tail into `scratch_` (oldest first), joining the block
  /// chain reachable through kBlockCut. Returns true when the walk hit an
  /// evicted event (truncated chain).
  bool ExtractChain(uint32_t tail_seq);

  /// Computes the six-stage breakdown of a merged chain. `t0`/`t_end`
  /// bound the transaction (client submit / ledger commit).
  PathBreakdown BreakDown(const std::vector<TxTraceEvent>& chain, double t0,
                          double t_end) const;

  void SealWindow(double end_time);
  void RollWindow(double t);
  void CopyExemplar(TxTraceExemplar* out, const std::vector<TxTraceEvent>& ev,
                    uint64_t tx_id, double latency, bool truncated) const;

  Simulator* sim_;
  TxTraceOptions options_;
  uint32_t mask_ = 0;
  std::vector<TxTraceEvent> ring_;
  uint64_t appended_ = 0;

  ChainIndex tx_index_;
  ChainIndex block_index_;   // payload id -> chain tail
  ChainIndex alias_index_;   // block number -> payload id
  uint32_t last_committed_payload_ = 0;
  bool have_committed_payload_ = false;

  // Current-window state (recycled between windows).
  struct Candidate {
    double latency = 0;
    uint64_t tx_id = 0;
    uint32_t offset = 0;  // into arena_
    uint32_t len = 0;
    bool truncated = false;
  };
  bool window_open_ = false;
  double window_start_ = 0;
  uint64_t window_committed_ = 0;
  uint64_t window_aborted_ = 0;
  uint64_t window_dropped_ = 0;
  StagePathAgg window_stages_[kNumCriticalStages];
  std::vector<std::pair<double, uint64_t>> latencies_;  // (latency, tx_id)
  std::vector<TxTraceEvent> arena_;
  std::vector<Candidate> candidates_;
  std::vector<TxTraceEvent> max_chain_;  // always-exact window max
  Candidate max_candidate_;
  bool max_in_arena_ = false;
  std::vector<TxTraceExemplar> abort_exemplars_;

  std::vector<TxTraceEvent> scratch_;        // extracted chain
  std::vector<TxTraceEvent> block_scratch_;  // block-chain leg

  TxTraceSummary summary_;
  bool finalized_ = false;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_TELEMETRY_TXTRACE_H_
