#ifndef BLOCKOPTR_TELEMETRY_EXPORT_H_
#define BLOCKOPTR_TELEMETRY_EXPORT_H_

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "telemetry/bottleneck.h"
#include "telemetry/telemetry.h"

namespace blockoptr {

/// Sanitized Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*) with the
/// `blockoptr_` prefix. Dots, slashes and anything else collapse to '_'.
std::string PrometheusMetricName(const std::string& name);

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote, and newline become `\\`, `\"`, `\n`.
std::string PrometheusEscapeLabel(const std::string& value);

/// One inline SVG line chart of a series (an empty figure when the series
/// has no samples). Shared by the HTML report and extra report sections.
void WriteTimeSeriesChart(std::ostream& out, const std::string& caption,
                          const TimeSeries& series);

/// HTML entity escaping (&, <, >, ") for report text.
std::string HtmlEscapeText(const std::string& s);

/// Prometheus text exposition of the run's metrics: counters, gauges, and
/// histograms (cumulative `_bucket{le=...}` / `_sum` / `_count` form),
/// plus the last sampled value of every sampler series as a gauge. Names
/// are prefixed `blockoptr_` and sanitized to the Prometheus charset.
/// Byte-deterministic: registry maps are ordered and sampler order is
/// registration order. A non-empty `channel` stamps every sample line with
/// a `channel="..."` label (multi-channel runs concatenate one exposition
/// per channel); the default empty channel emits no label at all, keeping
/// single-channel output byte-identical to the unlabeled format.
void WritePrometheusText(const Telemetry& telemetry, std::ostream& out,
                         const std::string& channel = std::string());

/// The run's full machine-readable snapshot: the MetricsRegistry snapshot
/// (counters/gauges/histograms) extended with a "timeseries" section
/// (sampler series + station tracks), a "txtrace" section when the flight
/// recorder ran, and, when given, a "bottleneck" section. This is what
/// `--metrics-out` writes.
JsonValue TelemetrySnapshotJson(const Telemetry& telemetry,
                                const BottleneckReport* bottleneck = nullptr);

/// Machine-readable flight-recorder summary: run-level critical-path
/// aggregates plus per-window quantiles, per-stage shares, and exemplar
/// descriptors (full event chains travel in the Chrome trace, not here).
JsonValue TxTraceSummaryJson(const TxTraceSummary& summary);

/// Chrome-trace (chrome://tracing / Perfetto) export of every retained
/// tail-latency exemplar: one process per exemplar, one slice per
/// lifecycle event (service time as the slice duration), with flow arrows
/// threading each causal chain submit -> ... -> commit. This is what
/// `--txtrace-out` writes. Byte-deterministic for a given run.
void WriteTxTraceChromeTrace(const TxTraceSummary& summary,
                             std::ostream& out);

/// Key/value rows rendered at the top of the HTML report (throughput,
/// success rate, ...).
using HtmlSummaryRows = std::vector<std::pair<std::string, std::string>>;

/// A self-contained single-file HTML report: run summary, bottleneck
/// attribution (summary sentence + station table + stage table), and one
/// inline SVG chart per sampled series (pipeline series first, then every
/// station's utilization / queue-depth / wait / service series). No
/// external assets, no scripts; byte-deterministic for a given run.
/// `extra_sections_html` (pre-escaped HTML, e.g. the streaming-analysis
/// section) is appended verbatim before </body>.
void WriteHtmlReport(std::ostream& out, const std::string& title,
                     const HtmlSummaryRows& summary,
                     const Telemetry& telemetry,
                     const BottleneckReport& bottleneck,
                     const std::string& extra_sections_html = std::string());

}  // namespace blockoptr

#endif  // BLOCKOPTR_TELEMETRY_EXPORT_H_
