#ifndef BLOCKOPTR_TELEMETRY_EXPORT_H_
#define BLOCKOPTR_TELEMETRY_EXPORT_H_

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "telemetry/bottleneck.h"
#include "telemetry/telemetry.h"

namespace blockoptr {

/// Prometheus text exposition of the run's metrics: counters, gauges, and
/// histograms (cumulative `_bucket{le=...}` / `_sum` / `_count` form),
/// plus the last sampled value of every sampler series as a gauge. Names
/// are prefixed `blockoptr_` and sanitized to the Prometheus charset.
/// Byte-deterministic: registry maps are ordered and sampler order is
/// registration order.
void WritePrometheusText(const Telemetry& telemetry, std::ostream& out);

/// The run's full machine-readable snapshot: the MetricsRegistry snapshot
/// (counters/gauges/histograms) extended with a "timeseries" section
/// (sampler series + station tracks) and, when given, a "bottleneck"
/// section. This is what `--metrics-out` writes.
JsonValue TelemetrySnapshotJson(const Telemetry& telemetry,
                                const BottleneckReport* bottleneck = nullptr);

/// Key/value rows rendered at the top of the HTML report (throughput,
/// success rate, ...).
using HtmlSummaryRows = std::vector<std::pair<std::string, std::string>>;

/// A self-contained single-file HTML report: run summary, bottleneck
/// attribution (summary sentence + station table + stage table), and one
/// inline SVG chart per sampled series (pipeline series first, then every
/// station's utilization / queue-depth / wait / service series). No
/// external assets, no scripts; byte-deterministic for a given run.
void WriteHtmlReport(std::ostream& out, const std::string& title,
                     const HtmlSummaryRows& summary,
                     const Telemetry& telemetry,
                     const BottleneckReport& bottleneck);

}  // namespace blockoptr

#endif  // BLOCKOPTR_TELEMETRY_EXPORT_H_
