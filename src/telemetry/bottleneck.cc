#include "telemetry/bottleneck.h"

#include <algorithm>
#include <cstdio>

namespace blockoptr {

namespace {

/// Near-peak threshold for evidence windows: the longest stretch where the
/// series stays within 10% of its peak (but never below half of it, so a
/// noisy low-peak series does not produce a run-wide "window").
double EvidenceThreshold(double peak) {
  return std::max(0.5 * peak, 0.9 * peak - 1e-12);
}

}  // namespace

const StationAttribution* BottleneckReport::ForStage(
    const std::string& stage) const {
  for (const auto& st : stations) {
    if (st.stage == stage) return &st;  // stations are sorted by util desc
  }
  return nullptr;
}

std::string FormatEvidenceWindow(double start_s, double end_s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%.1fs,%.1fs]", start_s, end_s);
  return buf;
}

BottleneckReport ComputeBottleneckReport(
    const Telemetry& telemetry, double run_duration_s,
    const std::vector<FaultWindow>* fault_windows) {
  BottleneckReport report;

  // Critical-path evidence: total span time per stage.
  report.stages = ComputeStageBreakdown(telemetry.tracer());
  double total_span_time = 0;
  double dominant_time = 0;
  std::string dominant_stage;
  for (const auto& stage : report.stages) {
    double t = stage.mean_s * static_cast<double>(stage.count);
    total_span_time += t;
    if (t > dominant_time) {
      dominant_time = t;
      dominant_stage = stage.stage;
    }
  }
  if (total_span_time > 0) {
    report.dominant_stage_share = dominant_time / total_span_time;
  }

  // Queueing evidence: per-station utilization with evidence windows.
  const Sampler* sampler = telemetry.sampler();
  if (sampler != nullptr) {
    for (const auto& track : sampler->stations()) {
      StationAttribution attr;
      attr.station = track.name;
      attr.stage = track.stage;
      // Whole-run totals come from the Finalize() snapshots, not the
      // ServiceStation pointer: the simulated network is destroyed when
      // the run returns, while the telemetry stays readable.
      if (run_duration_s > 0) {
        attr.utilization = std::clamp(
            track.total_busy_s /
                (run_duration_s * static_cast<double>(track.servers)),
            0.0, 1.0);
      }
      attr.peak_utilization = track.utilization.Max();
      TimeSeries::Window w = track.utilization.LongestWindowAbove(
          EvidenceThreshold(attr.peak_utilization));
      if (w.found) {
        attr.window_start = w.start;
        attr.window_end = w.end;
      }
      attr.mean_wait_s = track.total_wait_mean_s;
      attr.mean_service_s =
          track.total_jobs
              ? track.total_busy_s / static_cast<double>(track.total_jobs)
              : 0.0;
      attr.queue_peak_s = track.queue_depth_s.Max();
      report.stations.push_back(std::move(attr));
    }
    std::sort(report.stations.begin(), report.stations.end(),
              [](const StationAttribution& a, const StationAttribution& b) {
                if (a.utilization != b.utilization) {
                  return a.utilization > b.utilization;
                }
                return a.station < b.station;
              });

    for (const auto& series : sampler->series()) {
      SeriesSummary s;
      s.name = series.name();
      s.mean = series.Mean();
      s.peak = series.Max();
      TimeSeries::Window w =
          series.LongestWindowAbove(EvidenceThreshold(s.peak));
      if (w.found) {
        s.window_start = w.start;
        s.window_end = w.end;
      }
      report.series.push_back(std::move(s));
    }
  }

  // Attribution: a saturated station wins; otherwise fall back to the
  // dominant span stage (the run is latency-bound, not capacity-bound).
  const StationAttribution* top = report.Top();
  if (top != nullptr && top->utilization >= kSaturationThreshold) {
    report.saturated = true;
    report.bottleneck_station = top->station;
    report.bottleneck_stage = top->stage;
    report.bottleneck_utilization = top->utilization;
    report.window_start = top->window_start;
    report.window_end = top->window_end;
  } else if (!dominant_stage.empty()) {
    report.bottleneck_stage = dominant_stage;
    const StationAttribution* st = report.ForStage(dominant_stage);
    if (st != nullptr) {
      report.bottleneck_station = st->station;
      report.bottleneck_utilization = st->utilization;
      report.window_start = st->window_start;
      report.window_end = st->window_end;
    }
  } else if (top != nullptr) {
    report.bottleneck_station = top->station;
    report.bottleneck_stage = top->stage;
    report.bottleneck_utilization = top->utilization;
    report.window_start = top->window_start;
    report.window_end = top->window_end;
  }

  char buf[256];
  if (report.saturated) {
    std::snprintf(buf, sizeof(buf),
                  "%s saturated: utilization %.2f over %s (stage: %s)",
                  report.bottleneck_station.c_str(),
                  report.bottleneck_utilization,
                  FormatEvidenceWindow(report.window_start,
                                       report.window_end)
                      .c_str(),
                  report.bottleneck_stage.c_str());
    report.summary = buf;
  } else if (!report.bottleneck_stage.empty()) {
    std::snprintf(
        buf, sizeof(buf),
        "no station saturated (top utilization %.2f); stage '%s' dominates "
        "end-to-end time (%.0f%% of span time)",
        top != nullptr ? top->utilization : 0.0,
        report.bottleneck_stage.c_str(), 100.0 * report.dominant_stage_share);
    report.summary = buf;
  } else {
    report.summary = "no telemetry evidence recorded";
  }

  // Causal-chain evidence: the flight recorder's critical-path shares
  // partition committed latency exactly, so they are cited alongside the
  // utilization verdict (a saturated station should also dominate the
  // critical path; when it does not, the verdict is queueing elsewhere).
  const TxTraceRecorder* txrec = telemetry.txtrace();
  if (txrec != nullptr && txrec->summary().committed > 0) {
    const TxTraceSummary& ts = txrec->summary();
    for (int i = 0; i < kNumCriticalStages; ++i) {
      BottleneckReport::CriticalPathShare cps;
      cps.stage = CriticalStageName(i);
      cps.share = ts.StageShare(i);
      cps.wait_share = ts.stages[i].wait_share();
      report.critical_path.push_back(std::move(cps));
    }
    int dom = ts.DominantStage();
    if (dom >= 0) {
      report.critical_path_stage = CriticalStageName(dom);
      report.critical_path_share = ts.StageShare(dom);
      std::snprintf(buf, sizeof(buf),
                    "; critical path: %.0f%% of committed latency in '%s' "
                    "(wait share %.0f%%)",
                    100.0 * report.critical_path_share,
                    report.critical_path_stage.c_str(),
                    100.0 * ts.stages[dom].wait_share());
      report.summary += buf;
    }
  }

  // Fault attribution: when faults were injected, the verdict names the
  // one whose active window best overlaps the bottleneck evidence window
  // (falling back to the longest window when nothing overlaps — e.g. the
  // evidence window is empty because the sampler was off).
  if (fault_windows != nullptr && !fault_windows->empty()) {
    report.faults = *fault_windows;
    const FaultWindow* cause = nullptr;
    double best_overlap = 0;
    for (const auto& f : report.faults) {
      double overlap = std::min(f.end, report.window_end) -
                       std::max(f.start, report.window_start);
      if (cause == nullptr || overlap > best_overlap) {
        cause = &f;
        best_overlap = overlap;
      }
    }
    if (best_overlap <= 0) {
      for (const auto& f : report.faults) {
        if (cause == nullptr || f.end - f.start > cause->end - cause->start) {
          cause = &f;
        }
      }
    }
    report.active_fault = cause->name;
    report.summary = "fault '" + cause->name + "' active over " +
                     FormatEvidenceWindow(cause->start, cause->end) + ": " +
                     report.summary;
  }
  return report;
}

std::string FormatBottleneckTable(const BottleneckReport& report) {
  if (report.stations.empty()) return "";
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-24s %-9s %6s %6s %10s %10s  %s\n",
                "station", "stage", "util", "peak", "wait(s)", "svc(s)",
                "evidence window");
  out += line;
  for (const auto& st : report.stations) {
    std::snprintf(line, sizeof(line),
                  "%-24s %-9s %6.3f %6.3f %10.6f %10.6f  %s\n",
                  st.station.c_str(), st.stage.c_str(), st.utilization,
                  st.peak_utilization, st.mean_wait_s, st.mean_service_s,
                  FormatEvidenceWindow(st.window_start, st.window_end)
                      .c_str());
    out += line;
  }
  return out;
}

JsonValue BottleneckToJson(const BottleneckReport& report) {
  JsonValue::Object root;
  root["saturated"] = JsonValue(report.saturated);
  root["bottleneck_station"] = JsonValue(report.bottleneck_station);
  root["bottleneck_stage"] = JsonValue(report.bottleneck_stage);
  root["bottleneck_utilization"] = JsonValue(report.bottleneck_utilization);
  root["window_start"] = JsonValue(report.window_start);
  root["window_end"] = JsonValue(report.window_end);
  root["dominant_stage_share"] = JsonValue(report.dominant_stage_share);
  root["critical_path_stage"] = JsonValue(report.critical_path_stage);
  root["critical_path_share"] = JsonValue(report.critical_path_share);
  root["active_fault"] = JsonValue(report.active_fault);
  root["summary"] = JsonValue(report.summary);

  JsonValue::Array critical_path;
  for (const auto& cps : report.critical_path) {
    JsonValue::Object entry;
    entry["stage"] = JsonValue(cps.stage);
    entry["share"] = JsonValue(cps.share);
    entry["wait_share"] = JsonValue(cps.wait_share);
    critical_path.push_back(JsonValue(std::move(entry)));
  }
  root["critical_path"] = JsonValue(std::move(critical_path));

  JsonValue::Array faults;
  for (const auto& f : report.faults) {
    JsonValue::Object entry;
    entry["name"] = JsonValue(f.name);
    entry["start"] = JsonValue(f.start);
    entry["end"] = JsonValue(f.end);
    faults.push_back(JsonValue(std::move(entry)));
  }
  root["faults"] = JsonValue(std::move(faults));

  JsonValue::Array stations;
  for (const auto& st : report.stations) {
    JsonValue::Object entry;
    entry["station"] = JsonValue(st.station);
    entry["stage"] = JsonValue(st.stage);
    entry["utilization"] = JsonValue(st.utilization);
    entry["peak_utilization"] = JsonValue(st.peak_utilization);
    entry["window_start"] = JsonValue(st.window_start);
    entry["window_end"] = JsonValue(st.window_end);
    entry["mean_wait_s"] = JsonValue(st.mean_wait_s);
    entry["mean_service_s"] = JsonValue(st.mean_service_s);
    entry["queue_peak_s"] = JsonValue(st.queue_peak_s);
    stations.push_back(JsonValue(std::move(entry)));
  }
  root["stations"] = JsonValue(std::move(stations));

  JsonValue::Array series;
  for (const auto& s : report.series) {
    JsonValue::Object entry;
    entry["name"] = JsonValue(s.name);
    entry["mean"] = JsonValue(s.mean);
    entry["peak"] = JsonValue(s.peak);
    entry["window_start"] = JsonValue(s.window_start);
    entry["window_end"] = JsonValue(s.window_end);
    series.push_back(JsonValue(std::move(entry)));
  }
  root["series"] = JsonValue(std::move(series));

  JsonValue::Array stages;
  for (const auto& st : report.stages) {
    JsonValue::Object entry;
    entry["stage"] = JsonValue(st.stage);
    entry["count"] = JsonValue(st.count);
    entry["mean_s"] = JsonValue(st.mean_s);
    entry["p50_s"] = JsonValue(st.p50_s);
    entry["p95_s"] = JsonValue(st.p95_s);
    entry["max_s"] = JsonValue(st.max_s);
    stages.push_back(JsonValue(std::move(entry)));
  }
  root["stages"] = JsonValue(std::move(stages));
  return JsonValue(std::move(root));
}

}  // namespace blockoptr
