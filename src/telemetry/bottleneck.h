#ifndef BLOCKOPTR_TELEMETRY_BOTTLENECK_H_
#define BLOCKOPTR_TELEMETRY_BOTTLENECK_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "telemetry/telemetry.h"

namespace blockoptr {

/// One injected fault's active window (driver/faults.h resolves these at
/// run time, e.g. "leader-crash(node1)" over [5.0, 15.0]). Plain data so
/// the telemetry layer stays independent of the driver.
struct FaultWindow {
  std::string name;
  double start = 0;
  double end = 0;
};

/// How much one ServiceStation contributed to the run, with the evidence
/// window where it was hottest.
struct StationAttribution {
  std::string station;  // display name, e.g. "peer/Org2/endorser"
  std::string stage;    // pipeline stage the station implements
  double utilization = 0;       // whole-run busy share across servers
  double peak_utilization = 0;  // hottest sampled window
  /// Longest contiguous stretch of near-peak utilization (the evidence
  /// window cited in recommendation rationales). Zero-width when the
  /// station never did work.
  double window_start = 0;
  double window_end = 0;
  double mean_wait_s = 0;     // whole-run mean queue wait
  double mean_service_s = 0;  // whole-run mean service time
  double queue_peak_s = 0;    // deepest sampled backlog, in seconds
};

/// Peak behaviour of one pipeline-level sampled series (throughput,
/// conflict rate, block fill, ...).
struct SeriesSummary {
  std::string name;
  double mean = 0;
  double peak = 0;
  double window_start = 0;  // longest near-peak stretch
  double window_end = 0;
};

/// The run's bottleneck attribution: queueing evidence (station
/// utilization over sampled windows) joined with critical-path evidence
/// (which span stage dominates end-to-end time). `saturated` is set when
/// the top station's whole-run utilization crosses the saturation
/// threshold — then the named station *is* the bottleneck; otherwise the
/// dominant span stage is named and the run is latency- rather than
/// capacity-bound.
struct BottleneckReport {
  std::vector<StageLatency> stages;          // empty when tracing was off
  std::vector<StationAttribution> stations;  // sorted by utilization desc
  std::vector<SeriesSummary> series;         // pipeline-level series
  bool saturated = false;
  std::string bottleneck_station;  // "" when no station evidence
  std::string bottleneck_stage;
  double bottleneck_utilization = 0;
  double window_start = 0;
  double window_end = 0;
  /// Share of total span time spent in the dominant stage (0 when tracing
  /// was off).
  double dominant_stage_share = 0;
  /// Causal-chain evidence from the flight recorder (txtrace aspect): one
  /// entry per critical stage with its share of total committed latency
  /// and how much of that stage's time was queueing rather than service.
  /// Unlike `stages` (span totals, which overlap), these shares partition
  /// end-to-end latency exactly and sum to ~1.0. Empty when txtrace off.
  struct CriticalPathShare {
    std::string stage;       // CriticalStageName order
    double share = 0;        // stage span / total committed latency
    double wait_share = 0;   // queueing share within the stage
  };
  std::vector<CriticalPathShare> critical_path;
  /// Dominant critical-path stage and its share ("" / 0 when txtrace off).
  std::string critical_path_stage;
  double critical_path_share = 0;
  /// Fault windows active during the run (empty for healthy runs).
  std::vector<FaultWindow> faults;
  /// The injected fault named as the verdict: the fault whose window best
  /// overlaps the bottleneck evidence window ("" when no fault was
  /// active). When set, `summary` leads with the fault.
  std::string active_fault;
  /// One-sentence human-readable attribution.
  std::string summary;

  /// Highest-utilization station of `stage`; null when none.
  const StationAttribution* ForStage(const std::string& stage) const;
  const StationAttribution* Top() const {
    return stations.empty() ? nullptr : &stations.front();
  }
};

/// Whole-run utilization at/above which a station counts as saturated.
inline constexpr double kSaturationThreshold = 0.8;

/// Builds the attribution from a finished run's telemetry.
/// `run_duration_s` is the run's virtual end time (used for whole-run
/// utilization). Works with any subset of aspects enabled: span analysis
/// needs tracing, station/series analysis needs the sampler. When
/// `fault_windows` is non-null and non-empty, the report names the active
/// fault as the verdict (the cause behind the saturated station / dominant
/// stage).
BottleneckReport ComputeBottleneckReport(
    const Telemetry& telemetry, double run_duration_s,
    const std::vector<FaultWindow>* fault_windows = nullptr);

/// Fixed-width station-attribution table (evidence windows included);
/// "" when there is no station evidence.
std::string FormatBottleneckTable(const BottleneckReport& report);

JsonValue BottleneckToJson(const BottleneckReport& report);

/// "[40.0s,80.0s]" — the evidence-window notation used in rationales.
std::string FormatEvidenceWindow(double start_s, double end_s);

}  // namespace blockoptr

#endif  // BLOCKOPTR_TELEMETRY_BOTTLENECK_H_
