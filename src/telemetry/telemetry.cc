#include "telemetry/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/stats.h"

namespace blockoptr {

std::vector<StageLatency> ComputeStageBreakdown(const TraceRecorder& tracer) {
  std::map<std::string, std::vector<double>> durations;
  for (const auto& span : tracer.spans()) {
    durations[span.category].push_back(span.duration());
  }

  // Pipeline stages first, everything else after in alphabetical order.
  const char* pipeline[] = {
      trace_category::kSubmit,  trace_category::kEndorse,
      trace_category::kAssemble, trace_category::kOrder,
      trace_category::kRaft,    trace_category::kValidate,
      trace_category::kCommit};
  std::vector<std::string> order;
  for (const char* stage : pipeline) {
    if (durations.count(stage)) order.push_back(stage);
  }
  for (const auto& [stage, _] : durations) {
    if (std::find(order.begin(), order.end(), stage) == order.end()) {
      order.push_back(stage);
    }
  }

  std::vector<StageLatency> out;
  for (const auto& stage : order) {
    auto& samples = durations.at(stage);
    StageLatency row;
    row.stage = stage;
    row.count = samples.size();
    RunningStats stats;
    PercentileTracker pct;
    for (double d : samples) {
      stats.Add(d);
      pct.Add(d);
    }
    row.mean_s = stats.mean();
    row.max_s = stats.max();
    row.p50_s = pct.Percentile(50);
    row.p95_s = pct.Percentile(95);
    out.push_back(std::move(row));
  }
  return out;
}

std::string FormatStageBreakdownTable(
    const std::vector<StageLatency>& stages) {
  if (stages.empty()) return "";
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-10s %10s %12s %12s %12s %12s\n",
                "stage", "spans", "mean(s)", "p50(s)", "p95(s)", "max(s)");
  out += line;
  for (const auto& s : stages) {
    std::snprintf(line, sizeof(line),
                  "%-10s %10llu %12.6f %12.6f %12.6f %12.6f\n",
                  s.stage.c_str(), static_cast<unsigned long long>(s.count),
                  s.mean_s, s.p50_s, s.p95_s, s.max_s);
    out += line;
  }
  return out;
}

}  // namespace blockoptr
