#include "telemetry/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/stats.h"

namespace blockoptr {

namespace {

/// Pipeline stages first, everything else after in alphabetical order
/// (callers pass the categories present; `present` is already sorted
/// because it comes from a std::map).
std::vector<std::string> StageOrder(const std::vector<std::string>& present) {
  const char* pipeline[] = {
      trace_category::kSubmit,  trace_category::kEndorse,
      trace_category::kAssemble, trace_category::kOrder,
      trace_category::kRaft,    trace_category::kValidate,
      trace_category::kCommit};
  std::vector<std::string> order;
  for (const char* stage : pipeline) {
    if (std::find(present.begin(), present.end(), stage) != present.end()) {
      order.push_back(stage);
    }
  }
  for (const auto& stage : present) {
    if (std::find(order.begin(), order.end(), stage) == order.end()) {
      order.push_back(stage);
    }
  }
  return order;
}

}  // namespace

std::vector<StageLatency> ComputeStageBreakdown(const TraceRecorder& tracer) {
  std::map<std::string, std::vector<double>> durations;
  for (const auto& span : tracer.spans()) {
    durations[span.category].push_back(span.duration());
  }

  std::vector<std::string> present;
  for (const auto& [stage, _] : durations) present.push_back(stage);
  std::vector<std::string> order = StageOrder(present);

  std::vector<StageLatency> out;
  for (const auto& stage : order) {
    auto& samples = durations.at(stage);
    StageLatency row;
    row.stage = stage;
    row.count = samples.size();
    RunningStats stats;
    PercentileTracker pct;
    for (double d : samples) {
      stats.Add(d);
      pct.Add(d);
    }
    row.mean_s = stats.mean();
    row.max_s = stats.max();
    row.p50_s = pct.Percentile(50);
    row.p95_s = pct.Percentile(95);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<StageLatency> ComputeStageBreakdown(
    const MetricsRegistry& metrics) {
  const std::string prefix = "stage.";
  const std::string suffix = ".seconds";
  std::vector<std::string> present;
  for (const auto& [name, _] : metrics.histograms()) {
    if (name.size() > prefix.size() + suffix.size() &&
        name.compare(0, prefix.size(), prefix) == 0 &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      present.push_back(
          name.substr(prefix.size(),
                      name.size() - prefix.size() - suffix.size()));
    }
  }
  std::vector<StageLatency> out;
  for (const auto& stage : StageOrder(present)) {
    const Histogram& h =
        metrics.histograms().at(prefix + stage + suffix);
    StageLatency row;
    row.stage = stage;
    row.count = h.count();
    row.mean_s = h.Mean();
    row.p50_s = h.Quantile(0.5);
    row.p95_s = h.Quantile(0.95);
    // Bucket-resolution max: the upper bound of the highest occupied
    // bucket (the last finite bound when the overflow bucket is occupied).
    const auto& counts = h.bucket_counts();
    for (size_t i = counts.size(); i > 0 && !h.bounds().empty(); --i) {
      if (counts[i - 1] == 0) continue;
      row.max_s = i - 1 < h.bounds().size() ? h.bounds()[i - 1]
                                            : h.bounds().back();
      break;
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::string FormatStageBreakdownTable(
    const std::vector<StageLatency>& stages) {
  if (stages.empty()) return "";
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-10s %10s %12s %12s %12s %12s\n",
                "stage", "spans", "mean(s)", "p50(s)", "p95(s)", "max(s)");
  out += line;
  for (const auto& s : stages) {
    std::snprintf(line, sizeof(line),
                  "%-10s %10llu %12.6f %12.6f %12.6f %12.6f\n",
                  s.stage.c_str(), static_cast<unsigned long long>(s.count),
                  s.mean_s, s.p50_s, s.p95_s, s.max_s);
    out += line;
  }
  return out;
}

}  // namespace blockoptr
