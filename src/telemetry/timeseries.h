#ifndef BLOCKOPTR_TELEMETRY_TIMESERIES_H_
#define BLOCKOPTR_TELEMETRY_TIMESERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace blockoptr {

/// A bounded time series of (virtual time, value) samples. The buffer has
/// a fixed point capacity: when it fills up, adjacent point pairs are
/// merged (value-averaged, keeping the later timestamp) and the effective
/// resolution halves — every stored point then represents
/// `samples_per_point()` raw samples. A whole run therefore always fits in
/// O(capacity) memory while keeping uniform resolution, and the merge rule
/// is purely arithmetic, so identical sample streams produce identical
/// series (the sweep-determinism contract extends to telemetry exports).
class TimeSeries {
 public:
  struct Point {
    double t = 0;
    double v = 0;
  };

  /// Longest contiguous stretch of points with value >= a threshold.
  /// `start` is the timestamp of the point *before* the stretch (the left
  /// edge of the first qualifying window; 0 when the stretch starts at the
  /// first point), `end` the timestamp of its last point.
  struct Window {
    bool found = false;
    double start = 0;
    double end = 0;
    double peak = 0;
    double mean = 0;
  };

  /// `capacity` is rounded up to an even number and clamped to >= 2.
  TimeSeries(std::string name, size_t capacity);

  /// Appends one raw sample. O(1) amortized; merges in place at capacity.
  void Record(double t, double v);

  const std::string& name() const { return name_; }
  const std::vector<Point>& points() const { return points_; }
  /// Raw samples recorded over the series' lifetime.
  uint64_t raw_count() const { return raw_count_; }
  /// How many raw samples each stored point aggregates (a power of two).
  uint64_t samples_per_point() const { return merge_factor_; }
  bool empty() const { return points_.empty(); }

  /// Max / mean over the stored points (0 when empty).
  double Max() const;
  double Mean() const;
  /// Value of the most recent raw sample (0 when none).
  double Last() const { return last_value_; }

  Window LongestWindowAbove(double threshold) const;

  /// {"samples_per_point": n, "t": [...], "v": [...]}.
  JsonValue ToJson() const;

 private:
  std::string name_;
  size_t capacity_;
  std::vector<Point> points_;
  uint64_t merge_factor_ = 1;
  // Partial aggregate of the next point (fewer than merge_factor_ raw
  // samples seen so far).
  double pending_sum_ = 0;
  uint64_t pending_count_ = 0;
  uint64_t raw_count_ = 0;
  double last_value_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_TELEMETRY_TIMESERIES_H_
