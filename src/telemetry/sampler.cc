#include "telemetry/sampler.h"

#include <algorithm>
#include <utility>

namespace blockoptr {

Sampler::Sampler(Simulator* sim, SamplerConfig config)
    : sim_(sim), config_(config) {}

void Sampler::AddRate(std::string name, std::function<uint64_t()> cumulative) {
  if (!enabled()) return;
  Source src;
  src.kind = Source::Kind::kRate;
  src.count = std::move(cumulative);
  sources_.push_back(std::move(src));
  series_.emplace_back(std::move(name), config_.series_capacity);
}

void Sampler::AddGauge(std::string name, std::function<double()> value) {
  if (!enabled()) return;
  Source src;
  src.kind = Source::Kind::kGauge;
  src.value = std::move(value);
  sources_.push_back(std::move(src));
  series_.emplace_back(std::move(name), config_.series_capacity);
}

void Sampler::AddWindowMean(std::string name, std::function<double()> sum,
                            std::function<uint64_t()> count) {
  if (!enabled()) return;
  Source src;
  src.kind = Source::Kind::kWindowMean;
  src.value = std::move(sum);
  src.count = std::move(count);
  sources_.push_back(std::move(src));
  series_.emplace_back(std::move(name), config_.series_capacity);
}

void Sampler::AddStation(std::string name, std::string stage,
                         const ServiceStation* station) {
  if (!enabled()) return;
  StationTrack track{std::move(name),
                     std::move(stage),
                     station,
                     TimeSeries("utilization", config_.series_capacity),
                     TimeSeries("queue_depth_s", config_.series_capacity),
                     TimeSeries("wait_mean_s", config_.series_capacity),
                     TimeSeries("service_mean_s", config_.series_capacity)};
  stations_.push_back(std::move(track));
}

void Sampler::Start() {
  if (!enabled() || started_) return;
  started_ = true;
  sim_->ScheduleAfter(config_.period_s, [this]() { Tick(); });
}

void Sampler::Finalize() {
  // Idempotent: the driver and defensive callers may both finalize; the
  // second call must not touch the snapshotted whole-run totals.
  if (finalized_) return;
  finalized_ = true;
  for (StationTrack& tr : stations_) {
    if (tr.station == nullptr) continue;
    tr.total_busy_s = tr.station->busy_time();
    tr.total_wait_mean_s = tr.station->wait_stats().mean();
    tr.total_jobs = tr.station->wait_stats().count();
    tr.servers = tr.station->servers();
    tr.station = nullptr;
  }
  sim_ = nullptr;
}

void Sampler::Tick() {
  const double now = sim_->Now();
  const double period = config_.period_s;

  for (size_t i = 0; i < sources_.size(); ++i) {
    Source& src = sources_[i];
    double sample = 0;
    switch (src.kind) {
      case Source::Kind::kRate: {
        uint64_t total = src.count();
        sample = static_cast<double>(total - src.prev_count) / period;
        src.prev_count = total;
        break;
      }
      case Source::Kind::kGauge:
        sample = src.value();
        break;
      case Source::Kind::kWindowMean: {
        double sum = src.value();
        uint64_t count = src.count();
        uint64_t dc = count - src.prev_count;
        sample = dc ? (sum - src.prev_sum) / static_cast<double>(dc) : 0.0;
        src.prev_sum = sum;
        src.prev_count = count;
        break;
      }
    }
    series_[i].Record(now, sample);
  }

  for (StationTrack& tr : stations_) {
    const ServiceStation& st = *tr.station;
    double busy = st.busy_time();
    double wait_sum = st.wait_stats().sum();
    uint64_t jobs = st.wait_stats().count();  // jobs *submitted* so far

    double util = (busy - tr.prev_busy) /
                  (period * static_cast<double>(st.servers()));
    tr.utilization.Record(now, std::clamp(util, 0.0, 1.0));
    tr.queue_depth_s.Record(now, st.CurrentDelay());

    uint64_t dj = jobs - tr.prev_jobs;
    double dwait = wait_sum - tr.prev_wait_sum;
    double dbusy = busy - tr.prev_busy;
    tr.wait_mean_s.Record(now, dj ? dwait / static_cast<double>(dj) : 0.0);
    tr.service_mean_s.Record(now, dj ? dbusy / static_cast<double>(dj) : 0.0);

    tr.prev_busy = busy;
    tr.prev_wait_sum = wait_sum;
    tr.prev_jobs = jobs;
  }

  ++ticks_;
  sim_->ScheduleAfter(period, [this]() { Tick(); });
}

JsonValue Sampler::ToJson() const {
  JsonValue::Object root;
  root["period_s"] = JsonValue(config_.period_s);
  root["ticks"] = JsonValue(ticks_);
  JsonValue::Object series;
  for (const TimeSeries& s : series_) series[s.name()] = s.ToJson();
  root["series"] = JsonValue(std::move(series));
  JsonValue::Object stations;
  for (const StationTrack& tr : stations_) {
    JsonValue::Object entry;
    entry["stage"] = JsonValue(tr.stage);
    entry["utilization"] = tr.utilization.ToJson();
    entry["queue_depth_s"] = tr.queue_depth_s.ToJson();
    entry["wait_mean_s"] = tr.wait_mean_s.ToJson();
    entry["service_mean_s"] = tr.service_mean_s.ToJson();
    stations[tr.name] = JsonValue(std::move(entry));
  }
  root["stations"] = JsonValue(std::move(stations));
  return JsonValue(std::move(root));
}

}  // namespace blockoptr
