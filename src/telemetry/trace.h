#ifndef BLOCKOPTR_TELEMETRY_TRACE_H_
#define BLOCKOPTR_TELEMETRY_TRACE_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace blockoptr {

/// Pipeline-stage categories, in execute-order-validate order. Every span
/// recorded by the Fabric model uses one of these (plus "abort" for early
/// aborts), which is what the per-stage latency breakdown groups by.
namespace trace_category {
inline constexpr const char* kSubmit = "submit";
inline constexpr const char* kEndorse = "endorse";
inline constexpr const char* kAssemble = "assemble";
inline constexpr const char* kOrder = "order";
inline constexpr const char* kRaft = "raft";
inline constexpr const char* kValidate = "validate";
inline constexpr const char* kCommit = "commit";
inline constexpr const char* kAbort = "abort";
}  // namespace trace_category

/// One interval of work on a simulated component, keyed on virtual time.
struct Span {
  uint64_t span_id = 0;
  uint64_t tx_id = 0;      // transaction correlation id; 0 = block-scoped
  std::string category;    // pipeline stage (see trace_category)
  std::string name;        // display name, e.g. "endorse@Org2"
  std::string component;   // simulated process, e.g. "peer/Org2/endorser"
  SimTime start = 0;
  SimTime end = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  double duration() const { return end - start; }
};

/// Records a span per pipeline stage per transaction, stamped with virtual
/// `SimTime`. Ground truth the blockchain-log analysis can be validated
/// against: the ledger only sees client/commit timestamps, the trace sees
/// every stage in between.
///
/// Thread-safety contract: like MetricsRegistry, a recorder is
/// single-threaded by design (no locks, no static mutable state; span ids
/// are per-instance). Concurrent experiment runs each own a private
/// recorder via their per-run Telemetry — see driver/sweep.h.
class TraceRecorder {
 public:
  /// `sim` must outlive the recorder's Begin/End/RecordInstant calls
  /// (finished spans remain readable afterwards).
  explicit TraceRecorder(Simulator* sim) : sim_(sim) {}

  /// Opens a span starting now; returns its id (never 0).
  uint64_t Begin(std::string category, std::string name,
                 std::string component, uint64_t tx_id = 0);

  /// Closes an open span at the current virtual time. Unknown ids are
  /// ignored (callers may hold 0 for "never started").
  void End(uint64_t span_id);

  /// Attaches a key/value attribute to an open span.
  void Annotate(uint64_t span_id, std::string key, std::string value);

  /// Records an already-bounded span (start/end known up front).
  void RecordComplete(std::string category, std::string name,
                      std::string component, uint64_t tx_id, SimTime start,
                      SimTime end);

  /// Records a zero-duration marker at the current virtual time.
  void RecordInstant(std::string category, std::string name,
                     std::string component, uint64_t tx_id);

  /// Finished spans, in completion order.
  const std::vector<Span>& spans() const { return finished_; }
  size_t open_spans() const { return open_.size(); }

  /// Finished spans of one transaction, in completion order.
  std::vector<const Span*> SpansForTx(uint64_t tx_id) const;

  /// Distinct categories seen so far (sorted).
  std::vector<std::string> Categories() const;

  /// Chrome trace_event JSON ("traceEvents" object format), loadable in
  /// Perfetto / chrome://tracing. One "process" per simulated component;
  /// the thread id is the transaction id. Virtual seconds map to trace
  /// microseconds.
  void WriteChromeTrace(std::ostream& out) const;

  /// Flat CSV span dump: span_id,tx_id,category,name,component,start,end,
  /// duration,attrs.
  void WriteCsv(std::ostream& out) const;

 private:
  Simulator* sim_;
  uint64_t next_id_ = 1;
  std::vector<Span> finished_;
  std::map<uint64_t, Span> open_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_TELEMETRY_TRACE_H_
