#include "telemetry/txtrace.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace blockoptr {

namespace {

/// Smallest power of two >= n (n clamped to [16, 2^30]).
uint32_t RoundUpPow2(uint32_t n) {
  uint32_t p = 16;
  while (p < n && p < (1u << 30)) p <<= 1;
  return p;
}

/// Nearest-rank index for percentile p over n sorted samples.
size_t RankIndex(double p, size_t n) {
  if (n == 0) return 0;
  double rank = std::ceil(p / 100.0 * static_cast<double>(n));
  if (rank < 1) rank = 1;
  if (rank > static_cast<double>(n)) rank = static_cast<double>(n);
  return static_cast<size_t>(rank) - 1;
}

constexpr double kExemplarPercentiles[] = {50.0, 95.0, 99.0};
constexpr const char* kExemplarLabels[] = {"p50", "p95", "p99"};

/// Deterministic chain-merge order: by time, transaction events before
/// block events at equal timestamps, then by stage and actor.
bool EventBefore(const TxTraceEvent& a, const TxTraceEvent& b) {
  if (a.t != b.t) return a.t < b.t;
  const bool a_block = a.tx_id == 0;
  const bool b_block = b.tx_id == 0;
  if (a_block != b_block) return b_block;
  if (a.stage != b.stage) return a.stage < b.stage;
  return a.actor < b.actor;
}

}  // namespace

const char* TxStageName(TxStage stage) {
  switch (stage) {
    case TxStage::kSubmit: return "submit";
    case TxStage::kProposalDone: return "proposal_done";
    case TxStage::kEndorseStart: return "endorse_start";
    case TxStage::kEndorseDone: return "endorse_done";
    case TxStage::kEndorseRefused: return "endorse_refused";
    case TxStage::kCollect: return "collect";
    case TxStage::kAssembleDone: return "assemble_done";
    case TxStage::kOrdererEnqueue: return "orderer_enqueue";
    case TxStage::kBlockCut: return "block_cut";
    case TxStage::kCommit: return "commit";
    case TxStage::kEarlyAbort: return "early_abort";
    case TxStage::kRaftPropose: return "raft_propose";
    case TxStage::kRaftReplicate: return "raft_replicate";
    case TxStage::kRaftCommit: return "raft_commit";
    case TxStage::kValidateStart: return "validate_start";
    case TxStage::kValidateDone: return "validate_done";
  }
  return "unknown";
}

const char* CriticalStageName(int stage) {
  static constexpr const char* kNames[kNumCriticalStages] = {
      "submit", "endorse", "assemble", "order", "raft", "commit"};
  return (stage >= 0 && stage < kNumCriticalStages) ? kNames[stage]
                                                    : "unknown";
}

// ---------------------------------------------------------------------------
// ChainIndex: fixed-capacity direct-mapped key -> value table
// ---------------------------------------------------------------------------
//
// Chain keys (tx ids, payload ids, block numbers) are all sequentially
// assigned, so a direct-mapped table with power-of-two slots behaves like a
// sliding window over recent keys: a collision can only come from a key a
// full table-capacity older, whose ring events are long evicted. Overwrite
// is therefore the correct (and allocation-free) collision policy; the
// overwritten chain surfaces as truncated, never silently missing.

void TxTraceRecorder::ChainIndex::Init(uint32_t capacity) {
  const uint32_t cap = RoundUpPow2(capacity);
  slots_.assign(cap, Slot{});
  mask_ = cap - 1;
}

void TxTraceRecorder::ChainIndex::Put(uint64_t key, uint32_t seq) {
  Slot& slot = slots_[key & mask_];
  slot.key = key + 1;
  slot.seq = seq;
}

uint32_t TxTraceRecorder::ChainIndex::Get(uint64_t key) const {
  const Slot& slot = slots_[key & mask_];
  return slot.key == key + 1 ? slot.seq : kNoSeq;
}

void TxTraceRecorder::ChainIndex::Erase(uint64_t key) {
  Slot& slot = slots_[key & mask_];
  if (slot.key == key + 1) slot = Slot{};
}

// ---------------------------------------------------------------------------
// TxTraceRecorder
// ---------------------------------------------------------------------------

TxTraceRecorder::TxTraceRecorder(Simulator* sim, TxTraceOptions options)
    : sim_(sim), options_(options) {
  const uint32_t cap = RoundUpPow2(options_.ring_capacity);
  options_.ring_capacity = cap;
  mask_ = cap - 1;
  ring_.assign(cap, TxTraceEvent{});
  tx_index_.Init(std::max(1024u, cap / 4));
  block_index_.Init(std::max(1024u, cap / 16));
  alias_index_.Init(std::max(1024u, cap / 16));
  arena_.reserve(options_.window_event_capacity);
  candidates_.reserve(options_.window_chain_capacity);
  latencies_.reserve(options_.window_chain_capacity);
  scratch_.reserve(256);
  block_scratch_.reserve(64);
  max_chain_.reserve(256);
}

bool TxTraceRecorder::Alive(uint32_t seq) const {
  // Sequences are the low 32 bits of the append counter; wrap-safe age.
  const uint32_t age = static_cast<uint32_t>(appended_) - seq;
  return age >= 1 && age <= options_.ring_capacity && appended_ > 0;
}

uint32_t TxTraceRecorder::Append(const TxTraceEvent& ev, uint32_t prev) {
  const uint32_t seq = static_cast<uint32_t>(appended_);
  TxTraceEvent& slot = ring_[seq & mask_];
  if (appended_ >= options_.ring_capacity) ++summary_.events_evicted;
  slot = ev;
  slot.prev = prev;
  ++appended_;
  ++summary_.events_appended;
  return seq;
}

void TxTraceRecorder::TxEvent(uint64_t tx_id, TxStage stage, uint16_t actor,
                              float dur, uint32_t block_seq) {
  TxTraceEvent ev;
  ev.tx_id = tx_id;
  ev.t = sim_->Now();
  ev.dur = dur;
  ev.block_seq = block_seq;
  ev.actor = actor;
  ev.stage = stage;
  const uint32_t prev = tx_index_.Get(tx_id);
  tx_index_.Put(tx_id, Append(ev, prev));
}

void TxTraceRecorder::BlockEvent(uint32_t payload, TxStage stage,
                                 uint16_t actor, float dur) {
  TxTraceEvent ev;
  ev.tx_id = 0;
  ev.t = sim_->Now();
  ev.dur = dur;
  ev.block_seq = payload;
  ev.actor = actor;
  ev.stage = stage;
  const uint32_t prev = block_index_.Get(payload);
  block_index_.Put(payload, Append(ev, prev));
  if (stage == TxStage::kRaftCommit) {
    last_committed_payload_ = payload;
    have_committed_payload_ = true;
  }
}

void TxTraceRecorder::OnBlockDelivered(uint32_t block_num) {
  // Block delivery runs synchronously inside the Raft commit callback
  // chain, so the last committed payload is this block's payload.
  if (have_committed_payload_) {
    alias_index_.Put(block_num, last_committed_payload_);
  }
}

void TxTraceRecorder::ValidateEvent(uint32_t block_num, TxStage stage,
                                    uint16_t actor, float dur) {
  const uint32_t payload = alias_index_.Get(block_num);
  if (payload == ChainIndex::kNoSeq) return;  // alias aged out
  BlockEvent(payload, stage, actor, dur);
}

bool TxTraceRecorder::ExtractChain(uint32_t tail_seq) {
  scratch_.clear();
  block_scratch_.clear();
  bool truncated = false;

  uint32_t seq = tail_seq;
  uint32_t payload = TxTraceEvent::kNoPrev;
  while (seq != TxTraceEvent::kNoPrev) {
    if (!Alive(seq)) {
      truncated = true;
      break;
    }
    const TxTraceEvent& ev = At(seq);
    scratch_.push_back(ev);
    if (ev.stage == TxStage::kBlockCut) payload = ev.block_seq;
    seq = ev.prev;
  }
  std::reverse(scratch_.begin(), scratch_.end());

  if (payload != TxTraceEvent::kNoPrev) {
    uint32_t bseq = block_index_.Get(payload);
    while (bseq != TxTraceEvent::kNoPrev && bseq != ChainIndex::kNoSeq) {
      if (!Alive(bseq)) {
        truncated = true;
        break;
      }
      const TxTraceEvent& ev = At(bseq);
      // The direct-mapped index can alias a newer payload's chain onto an
      // old key; events disagreeing on the payload mean exactly that.
      if (ev.block_seq != payload) {
        truncated = true;
        break;
      }
      block_scratch_.push_back(ev);
      bseq = ev.prev;
    }
    std::reverse(block_scratch_.begin(), block_scratch_.end());
    // Merge the block leg into the transaction chain by time. Both legs
    // are time-sorted; std::inplace_merge would allocate, so merge into
    // the tail manually: append then rotate via stable sort of two sorted
    // runs. The chains are tiny (tens of events), so a simple insertion
    // merge is fine and allocation-free on warm vectors.
    const size_t tx_len = scratch_.size();
    scratch_.insert(scratch_.end(), block_scratch_.begin(),
                    block_scratch_.end());
    // Manual merge of [0, tx_len) and [tx_len, end): both sorted.
    // In-place: repeatedly bubble the block-leg head left while smaller.
    for (size_t i = tx_len; i < scratch_.size(); ++i) {
      size_t j = i;
      while (j > 0 && EventBefore(scratch_[j], scratch_[j - 1])) {
        std::swap(scratch_[j], scratch_[j - 1]);
        --j;
      }
    }
  }
  return truncated;
}

TxTraceRecorder::PathBreakdown TxTraceRecorder::BreakDown(
    const std::vector<TxTraceEvent>& chain, double t0, double t_end) const {
  PathBreakdown out;
  // Stage boundaries: b[0]=submit time .. b[6]=commit time; missing
  // transitions (truncated chains) collapse that stage's span to zero.
  double b[kNumCriticalStages + 1];
  bool found[kNumCriticalStages + 1] = {};
  b[0] = t0;
  found[0] = true;
  b[kNumCriticalStages] = t_end;

  double raft_propose = 0;
  bool have_propose = false;
  double last_endorse_t = -1, last_endorse_dur = 0;
  double last_validate_t = -1, last_validate_dur = 0;
  double service[kNumCriticalStages] = {};

  for (const TxTraceEvent& ev : chain) {
    switch (ev.stage) {
      case TxStage::kProposalDone:
        b[1] = ev.t;
        found[1] = true;
        service[0] = ev.dur;
        break;
      case TxStage::kEndorseDone:
        if (ev.t > last_endorse_t) {
          last_endorse_t = ev.t;
          last_endorse_dur = ev.dur;
        }
        break;
      case TxStage::kCollect:
        b[2] = ev.t;
        found[2] = true;
        break;
      case TxStage::kAssembleDone:
        b[3] = ev.t;
        found[3] = true;
        service[2] = ev.dur;
        break;
      case TxStage::kOrdererEnqueue:
        service[3] = ev.dur;
        break;
      case TxStage::kBlockCut:
        b[4] = ev.t;
        found[4] = true;
        break;
      case TxStage::kRaftPropose:
        raft_propose = ev.t;
        have_propose = true;
        break;
      case TxStage::kRaftCommit:
        b[5] = ev.t;
        found[5] = true;
        break;
      case TxStage::kValidateDone:
        if (ev.t > last_validate_t) {
          last_validate_t = ev.t;
          last_validate_dur = ev.dur;
        }
        break;
      default:
        break;
    }
  }
  service[1] = last_endorse_dur;
  service[5] = last_validate_dur;

  // Monotonic clamp: each boundary is at least the previous one (missing
  // boundaries inherit it) and at most the commit time, so spans are
  // non-negative and partition [t0, t_end] exactly.
  for (int i = 1; i <= kNumCriticalStages; ++i) {
    if (!found[i]) b[i] = b[i - 1];
    if (b[i] < b[i - 1]) b[i] = b[i - 1];
    if (b[i] > t_end) b[i] = t_end;
  }
  b[kNumCriticalStages] = std::max(t_end, b[kNumCriticalStages - 1]);

  for (int i = 0; i < kNumCriticalStages; ++i) {
    out.span[i] = b[i + 1] - b[i];
  }
  if (found[4] && found[5] && have_propose) {
    service[4] = std::max(0.0, b[5] - std::max(raft_propose, b[4]));
  }
  for (int i = 0; i < kNumCriticalStages; ++i) {
    out.service[i] = std::min(static_cast<double>(service[i]), out.span[i]);
    if (out.service[i] < 0) out.service[i] = 0;
    out.wait[i] = out.span[i] - out.service[i];
  }
  return out;
}

void TxTraceRecorder::RollWindow(double t) {
  if (window_open_ && t >= window_start_ + options_.window_s) {
    SealWindow(window_start_ + options_.window_s);
  }
  if (!window_open_) {
    window_start_ =
        std::floor(t / options_.window_s) * options_.window_s;
    window_open_ = true;
  }
}

void TxTraceRecorder::CommitTx(uint64_t tx_id, double client_timestamp,
                               uint32_t block_num, bool failed) {
  const double now = sim_->Now();
  RollWindow(now);

  TxTraceEvent ev;
  ev.tx_id = tx_id;
  ev.t = now;
  ev.block_seq = block_num;
  ev.stage = TxStage::kCommit;
  if (failed) ev.flags |= TxTraceEvent::kFailed;
  const uint32_t prev = tx_index_.Get(tx_id);
  const uint32_t tail = Append(ev, prev);
  tx_index_.Erase(tx_id);

  const bool truncated = ExtractChain(tail);
  if (truncated) ++summary_.truncated_chains;

  const double latency = std::max(0.0, now - client_timestamp);
  const PathBreakdown bd = BreakDown(scratch_, client_timestamp, now);
  for (int i = 0; i < kNumCriticalStages; ++i) {
    window_stages_[i].span_s += bd.span[i];
    window_stages_[i].service_s += bd.service[i];
    window_stages_[i].wait_s += bd.wait[i];
    ++window_stages_[i].count;
    summary_.stages[i].span_s += bd.span[i];
    summary_.stages[i].service_s += bd.service[i];
    summary_.stages[i].wait_s += bd.wait[i];
    ++summary_.stages[i].count;
  }
  ++window_committed_;
  ++summary_.committed;
  summary_.latency_total_s += latency;
  latencies_.emplace_back(latency, tx_id);

  // Retain the chain as an exemplar candidate while the window budget
  // lasts; the window maximum is always retained exactly.
  const bool retained =
      candidates_.size() < options_.window_chain_capacity &&
      arena_.size() + scratch_.size() <= options_.window_event_capacity;
  Candidate cand;
  cand.latency = latency;
  cand.tx_id = tx_id;
  cand.truncated = truncated || scratch_.empty() ||
                   scratch_.front().stage != TxStage::kSubmit;
  if (retained) {
    cand.offset = static_cast<uint32_t>(arena_.size());
    cand.len = static_cast<uint32_t>(scratch_.size());
    arena_.insert(arena_.end(), scratch_.begin(), scratch_.end());
    candidates_.push_back(cand);
  } else {
    ++window_dropped_;
  }
  if (window_committed_ == 1 || latency > max_candidate_.latency ||
      (latency == max_candidate_.latency &&
       tx_id < max_candidate_.tx_id)) {
    max_candidate_ = cand;
    max_in_arena_ = retained;
    if (!retained) {
      max_chain_.assign(scratch_.begin(), scratch_.end());
    }
  }
}

void TxTraceRecorder::AbortTx(uint64_t tx_id) {
  const double now = sim_->Now();
  RollWindow(now);

  TxTraceEvent ev;
  ev.tx_id = tx_id;
  ev.t = now;
  ev.stage = TxStage::kEarlyAbort;
  const uint32_t prev = tx_index_.Get(tx_id);
  const uint32_t tail = Append(ev, prev);
  tx_index_.Erase(tx_id);

  ++window_aborted_;
  ++summary_.aborted;
  if (abort_exemplars_.size() >= 2) return;

  const bool truncated = ExtractChain(tail);
  const double t0 = scratch_.empty() ? now : scratch_.front().t;
  abort_exemplars_.emplace_back();
  CopyExemplar(&abort_exemplars_.back(), scratch_, tx_id,
               std::max(0.0, now - t0), truncated);
  abort_exemplars_.back().label = "abort";
}

void TxTraceRecorder::CopyExemplar(TxTraceExemplar* out,
                                   const std::vector<TxTraceEvent>& ev,
                                   uint64_t tx_id, double latency,
                                   bool truncated) const {
  out->tx_id = tx_id;
  out->latency_s = latency;
  out->truncated = truncated;
  out->events = ev;
  const double t_end = ev.empty() ? 0 : ev.back().t;
  const double t0 = t_end - latency;
  const PathBreakdown bd = BreakDown(ev, t0, t_end);
  for (int i = 0; i < kNumCriticalStages; ++i) {
    out->stage_span_s[i] = bd.span[i];
    out->stage_service_s[i] = bd.service[i];
    out->stage_wait_s[i] = bd.wait[i];
  }
}

void TxTraceRecorder::SealWindow(double end_time) {
  if (!window_open_) return;

  TxTraceWindow w;
  w.start_s = window_start_;
  w.end_s = std::max(end_time, window_start_);
  w.committed = window_committed_;
  w.aborted = window_aborted_;
  w.dropped_chains = window_dropped_;
  for (int i = 0; i < kNumCriticalStages; ++i) w.stages[i] = window_stages_[i];

  if (!latencies_.empty()) {
    std::sort(latencies_.begin(), latencies_.end());
    const size_t n = latencies_.size();
    w.p50_s = latencies_[RankIndex(50.0, n)].first;
    w.p95_s = latencies_[RankIndex(95.0, n)].first;
    w.p99_s = latencies_[RankIndex(99.0, n)].first;
    w.max_s = latencies_[n - 1].first;

    std::sort(candidates_.begin(), candidates_.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.latency != b.latency) return a.latency < b.latency;
                return a.tx_id < b.tx_id;
              });

    auto select = [&](double latency, uint64_t tx_id,
                      const char* label) {
      // Prefer the exact transaction; otherwise the nearest retained
      // latency (ties toward the smaller latency, then tx id).
      const Candidate* best = nullptr;
      bool exact = false;
      for (const Candidate& c : candidates_) {
        if (c.tx_id == tx_id && c.latency == latency) {
          best = &c;
          exact = true;
          break;
        }
      }
      if (best == nullptr) {
        double best_dist = 0;
        for (const Candidate& c : candidates_) {
          const double dist = std::abs(c.latency - latency);
          if (best == nullptr || dist < best_dist) {
            best = &c;
            best_dist = dist;
          }
        }
      }
      if (best == nullptr && !max_in_arena_ && !max_chain_.empty()) {
        // Every candidate was dropped; fall back to the max chain.
        w.exemplars.emplace_back();
        CopyExemplar(&w.exemplars.back(), max_chain_, max_candidate_.tx_id,
                     max_candidate_.latency, max_candidate_.truncated);
        w.exemplars.back().label = label;
        w.exemplars.back().nearest = true;
        return;
      }
      if (best == nullptr) return;
      w.exemplars.emplace_back();
      TxTraceExemplar& ex = w.exemplars.back();
      const auto* base = arena_.data() + best->offset;
      std::vector<TxTraceEvent> chain(base, base + best->len);
      CopyExemplar(&ex, chain, best->tx_id, best->latency, best->truncated);
      ex.label = label;
      ex.nearest = !exact;
    };

    for (size_t q = 0; q < 3; ++q) {
      const auto& target = latencies_[RankIndex(kExemplarPercentiles[q], n)];
      select(target.first, target.second, kExemplarLabels[q]);
    }
    // The maximum is tracked exactly even when its chain fell outside the
    // arena budget.
    w.exemplars.emplace_back();
    TxTraceExemplar& mx = w.exemplars.back();
    if (max_in_arena_) {
      const auto* base = arena_.data() + max_candidate_.offset;
      std::vector<TxTraceEvent> chain(base, base + max_candidate_.len);
      CopyExemplar(&mx, chain, max_candidate_.tx_id, max_candidate_.latency,
                   max_candidate_.truncated);
    } else {
      CopyExemplar(&mx, max_chain_, max_candidate_.tx_id,
                   max_candidate_.latency, max_candidate_.truncated);
    }
    mx.label = "max";
  }

  w.abort_exemplars = std::move(abort_exemplars_);
  abort_exemplars_.clear();
  summary_.windows.push_back(std::move(w));

  // Recycle window state (capacity retained).
  window_open_ = false;
  window_committed_ = 0;
  window_aborted_ = 0;
  window_dropped_ = 0;
  for (auto& s : window_stages_) s = StagePathAgg{};
  latencies_.clear();
  arena_.clear();
  candidates_.clear();
  max_chain_.clear();
  max_candidate_ = Candidate{};
  max_in_arena_ = false;
}

void TxTraceRecorder::Finalize(double end_time) {
  if (finalized_) return;
  finalized_ = true;
  if (window_open_) SealWindow(std::max(end_time, window_start_));
}

// ---------------------------------------------------------------------------
// TxTraceSummary merge
// ---------------------------------------------------------------------------

int TxTraceSummary::DominantStage() const {
  int best = -1;
  double best_span = 0;
  for (int i = 0; i < kNumCriticalStages; ++i) {
    if (stages[i].span_s > best_span) {
      best_span = stages[i].span_s;
      best = i;
    }
  }
  return best;
}

namespace {

/// Count-weighted nearest-rank estimate of percentile `p` over the two
/// windows' quantile summaries (each side contributes its p50/p95/p99/max
/// points weighted by the latency mass they summarize).
double MergedQuantile(const TxTraceWindow& a, const TxTraceWindow& b,
                      double p) {
  struct Point {
    double value;
    double weight;
  };
  Point points[8];
  int n = 0;
  auto add = [&](const TxTraceWindow& w) {
    const double c = static_cast<double>(w.committed);
    if (c <= 0) return;
    points[n++] = {w.p50_s, 0.50 * c};
    points[n++] = {w.p95_s, 0.45 * c};
    points[n++] = {w.p99_s, 0.04 * c};
    points[n++] = {w.max_s, 0.01 * c};
  };
  add(a);
  add(b);
  if (n == 0) return 0;
  for (int i = 1; i < n; ++i) {  // tiny fixed array: insertion sort
    Point p = points[i];
    int j = i;
    while (j > 0 && p.value < points[j - 1].value) {
      points[j] = points[j - 1];
      --j;
    }
    points[j] = p;
  }
  double total = 0;
  for (int i = 0; i < n; ++i) total += points[i].weight;
  const double target = p / 100.0 * total;
  double cum = 0;
  for (int i = 0; i < n; ++i) {
    cum += points[i].weight;
    if (cum >= target) return points[i].value;
  }
  return points[n - 1].value;
}

void MergeWindow(TxTraceWindow* into, const TxTraceWindow& other) {
  TxTraceWindow merged;
  merged.start_s = into->start_s;
  merged.end_s = std::max(into->end_s, other.end_s);
  merged.committed = into->committed + other.committed;
  merged.aborted = into->aborted + other.aborted;
  merged.dropped_chains = into->dropped_chains + other.dropped_chains;
  for (int i = 0; i < kNumCriticalStages; ++i) {
    merged.stages[i] = into->stages[i];
    merged.stages[i].Merge(other.stages[i]);
  }
  merged.p50_s = MergedQuantile(*into, other, 50.0);
  merged.p95_s = MergedQuantile(*into, other, 95.0);
  merged.p99_s = MergedQuantile(*into, other, 99.0);
  merged.max_s = std::max(into->max_s, other.max_s);

  // Re-select exemplars from the union of both sides' retained chains:
  // nearest retained latency per percentile label; the max is exact.
  std::vector<const TxTraceExemplar*> pool;
  for (const auto& e : into->exemplars) pool.push_back(&e);
  for (const auto& e : other.exemplars) pool.push_back(&e);
  auto pick_nearest = [&](double target) -> const TxTraceExemplar* {
    const TxTraceExemplar* best = nullptr;
    double best_dist = 0;
    for (const TxTraceExemplar* e : pool) {
      const double dist = std::abs(e->latency_s - target);
      if (best == nullptr || dist < best_dist ||
          (dist == best_dist && e->tx_id < best->tx_id)) {
        best = e;
        best_dist = dist;
      }
    }
    return best;
  };
  const double targets[3] = {merged.p50_s, merged.p95_s, merged.p99_s};
  for (int q = 0; q < 3; ++q) {
    if (const TxTraceExemplar* e = pick_nearest(targets[q])) {
      merged.exemplars.push_back(*e);
      merged.exemplars.back().label = kExemplarLabels[q];
      merged.exemplars.back().nearest = true;
    }
  }
  const TxTraceExemplar* mx = nullptr;
  for (const TxTraceExemplar* e : pool) {
    if (mx == nullptr || e->latency_s > mx->latency_s ||
        (e->latency_s == mx->latency_s && e->tx_id < mx->tx_id)) {
      mx = e;
    }
  }
  if (mx != nullptr) {
    merged.exemplars.push_back(*mx);
    merged.exemplars.back().label = "max";
    merged.exemplars.back().nearest = false;
  }

  for (const auto& e : into->abort_exemplars) {
    if (merged.abort_exemplars.size() < 2) merged.abort_exemplars.push_back(e);
  }
  for (const auto& e : other.abort_exemplars) {
    if (merged.abort_exemplars.size() < 2) merged.abort_exemplars.push_back(e);
  }
  *into = std::move(merged);
}

}  // namespace

void TxTraceSummary::Merge(const TxTraceSummary& other) {
  committed += other.committed;
  aborted += other.aborted;
  events_appended += other.events_appended;
  events_evicted += other.events_evicted;
  truncated_chains += other.truncated_chains;
  latency_total_s += other.latency_total_s;
  for (int i = 0; i < kNumCriticalStages; ++i) {
    stages[i].Merge(other.stages[i]);
  }

  // Merge-join the window lists on window start time (both sorted).
  std::vector<TxTraceWindow> merged;
  merged.reserve(windows.size() + other.windows.size());
  size_t i = 0, j = 0;
  while (i < windows.size() || j < other.windows.size()) {
    if (j >= other.windows.size() ||
        (i < windows.size() &&
         windows[i].start_s < other.windows[j].start_s)) {
      merged.push_back(std::move(windows[i++]));
    } else if (i >= windows.size() ||
               other.windows[j].start_s < windows[i].start_s) {
      merged.push_back(other.windows[j++]);
    } else {
      merged.push_back(std::move(windows[i++]));
      MergeWindow(&merged.back(), other.windows[j++]);
    }
  }
  windows = std::move(merged);
}

}  // namespace blockoptr
