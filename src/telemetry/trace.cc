#include "telemetry/trace.h"

#include <algorithm>
#include <set>

#include "common/csv.h"
#include "common/json.h"

namespace blockoptr {

namespace {

constexpr double kMicrosPerSimSecond = 1e6;

}  // namespace

uint64_t TraceRecorder::Begin(std::string category, std::string name,
                              std::string component, uint64_t tx_id) {
  Span span;
  span.span_id = next_id_++;
  span.tx_id = tx_id;
  span.category = std::move(category);
  span.name = std::move(name);
  span.component = std::move(component);
  span.start = sim_->Now();
  uint64_t id = span.span_id;
  open_.emplace(id, std::move(span));
  return id;
}

void TraceRecorder::End(uint64_t span_id) {
  auto it = open_.find(span_id);
  if (it == open_.end()) return;
  it->second.end = sim_->Now();
  finished_.push_back(std::move(it->second));
  open_.erase(it);
}

void TraceRecorder::Annotate(uint64_t span_id, std::string key,
                             std::string value) {
  auto it = open_.find(span_id);
  if (it == open_.end()) return;
  it->second.attrs.emplace_back(std::move(key), std::move(value));
}

void TraceRecorder::RecordComplete(std::string category, std::string name,
                                   std::string component, uint64_t tx_id,
                                   SimTime start, SimTime end) {
  Span span;
  span.span_id = next_id_++;
  span.tx_id = tx_id;
  span.category = std::move(category);
  span.name = std::move(name);
  span.component = std::move(component);
  span.start = start;
  span.end = end;
  finished_.push_back(std::move(span));
}

void TraceRecorder::RecordInstant(std::string category, std::string name,
                                  std::string component, uint64_t tx_id) {
  SimTime now = sim_->Now();
  RecordComplete(std::move(category), std::move(name), std::move(component),
                 tx_id, now, now);
}

std::vector<const Span*> TraceRecorder::SpansForTx(uint64_t tx_id) const {
  std::vector<const Span*> out;
  for (const auto& span : finished_) {
    if (span.tx_id == tx_id) out.push_back(&span);
  }
  return out;
}

std::vector<std::string> TraceRecorder::Categories() const {
  std::set<std::string> seen;
  for (const auto& span : finished_) seen.insert(span.category);
  return {seen.begin(), seen.end()};
}

void TraceRecorder::WriteChromeTrace(std::ostream& out) const {
  // Stable component -> pid mapping in first-seen order.
  std::map<std::string, int> pids;
  std::vector<const std::string*> pid_order;
  for (const auto& span : finished_) {
    if (pids.emplace(span.component, static_cast<int>(pids.size()) + 1)
            .second) {
      pid_order.push_back(&span.component);
    }
  }

  JsonValue::Array events;
  for (size_t i = 0; i < pid_order.size(); ++i) {
    JsonValue::Object meta;
    meta["ph"] = JsonValue("M");
    meta["name"] = JsonValue("process_name");
    meta["pid"] = JsonValue(static_cast<int>(i) + 1);
    JsonValue::Object args;
    args["name"] = JsonValue(*pid_order[i]);
    meta["args"] = JsonValue(std::move(args));
    events.push_back(JsonValue(std::move(meta)));
  }
  for (const auto& span : finished_) {
    JsonValue::Object ev;
    ev["ph"] = JsonValue("X");
    ev["name"] = JsonValue(span.name);
    ev["cat"] = JsonValue(span.category);
    ev["pid"] = JsonValue(pids.at(span.component));
    ev["tid"] = JsonValue(span.tx_id);
    ev["ts"] = JsonValue(span.start * kMicrosPerSimSecond);
    ev["dur"] = JsonValue(span.duration() * kMicrosPerSimSecond);
    JsonValue::Object args;
    args["tx_id"] = JsonValue(span.tx_id);
    for (const auto& [k, v] : span.attrs) args[k] = JsonValue(v);
    ev["args"] = JsonValue(std::move(args));
    events.push_back(JsonValue(std::move(ev)));
  }

  JsonValue::Object root;
  root["traceEvents"] = JsonValue(std::move(events));
  root["displayTimeUnit"] = JsonValue("ms");
  out << JsonValue(std::move(root)).Dump();
}

void TraceRecorder::WriteCsv(std::ostream& out) const {
  CsvWriter writer(out);
  writer.WriteRow({"span_id", "tx_id", "category", "name", "component",
                   "start_s", "end_s", "duration_s", "attrs"});
  for (const auto& span : finished_) {
    std::string attrs;
    for (const auto& [k, v] : span.attrs) {
      if (!attrs.empty()) attrs += ";";
      attrs += k + "=" + v;
    }
    writer.WriteRow({std::to_string(span.span_id), std::to_string(span.tx_id),
                     span.category, span.name, span.component,
                     std::to_string(span.start), std::to_string(span.end),
                     std::to_string(span.duration()), attrs});
  }
}

}  // namespace blockoptr
