#ifndef BLOCKOPTR_TELEMETRY_SAMPLER_H_
#define BLOCKOPTR_TELEMETRY_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "sim/service_station.h"
#include "sim/simulator.h"
#include "telemetry/timeseries.h"

namespace blockoptr {

struct SamplerConfig {
  /// Sampling period in virtual seconds. <= 0 disables the sampler
  /// entirely: Start() becomes a no-op, no event is ever scheduled.
  double period_s = 0.5;
  /// Point capacity of every recorded TimeSeries.
  size_t series_capacity = 512;
};

/// Continuous sim-time monitoring: a self-re-arming tick event that, every
/// `period_s` of virtual time, evaluates a set of registered sources and
/// appends one sample per source to a bounded TimeSeries.
///
/// Three source kinds cover the pipeline signals:
///   - Rate:       reads a cumulative count and records the per-second
///                 delta over the window (throughput, conflict rates).
///   - Gauge:      records an instantaneous value (queue depths).
///   - WindowMean: reads a cumulative (sum, count) pair and records
///                 delta_sum / delta_count for the window (block fill).
/// ServiceStations get a four-series track: utilization (busy-time share
/// of the window across servers, clamped to [0,1]), queue backlog seconds,
/// and the wait-vs-service decomposition of jobs submitted in the window.
///
/// The sampler only *reads* component state — it never perturbs the
/// simulation beyond adding its own tick events, so a sampled run commits
/// the same blocks at the same virtual times as an unsampled one. Sampling
/// is pure arithmetic over deterministic state, so series content is
/// byte-identical across `--jobs` values.
class Sampler {
 public:
  /// `sim` must outlive the sampler; sources must outlive the run.
  Sampler(Simulator* sim, SamplerConfig config);

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  bool enabled() const { return config_.period_s > 0; }
  double period() const { return config_.period_s; }
  uint64_t ticks() const { return ticks_; }

  /// Registers a windowed rate: `cumulative` is read every tick and the
  /// delta divided by the period is recorded.
  void AddRate(std::string name, std::function<uint64_t()> cumulative);
  /// Registers an instantaneous value.
  void AddGauge(std::string name, std::function<double()> value);
  /// Registers a windowed mean of cumulative (sum, count): records
  /// delta_sum / delta_count, or 0 when the window saw no observations.
  void AddWindowMean(std::string name, std::function<double()> sum,
                     std::function<uint64_t()> count);
  /// Registers a ServiceStation track (four series). `stage` is the
  /// pipeline stage the station implements (endorse/order/validate/...),
  /// used by bottleneck attribution to join stations with span categories.
  void AddStation(std::string name, std::string stage,
                  const ServiceStation* station);

  /// Arms the first tick. No-op when disabled or already started, so the
  /// telemetry-off path schedules zero events.
  void Start();

  /// Snapshots whole-run station totals (busy time, wait mean, job count)
  /// and detaches from the stations and the simulator. The experiment
  /// driver calls this after the run, because the network and simulator
  /// are destroyed when RunExperiment returns while the telemetry stays
  /// readable/exportable — post-run consumers (bottleneck attribution,
  /// exports) must only read the recorded series and these snapshots.
  /// Idempotent: repeated calls leave the first snapshot untouched.
  void Finalize();
  bool finalized() const { return finalized_; }

  struct StationTrack {
    std::string name;
    std::string stage;
    const ServiceStation* station = nullptr;  // null after Finalize()
    TimeSeries utilization;
    TimeSeries queue_depth_s;
    TimeSeries wait_mean_s;
    TimeSeries service_mean_s;
    // Previous-tick cumulative snapshots for windowed deltas.
    double prev_busy = 0;
    double prev_wait_sum = 0;
    uint64_t prev_jobs = 0;
    // Whole-run totals, valid after Finalize().
    double total_busy_s = 0;
    double total_wait_mean_s = 0;
    uint64_t total_jobs = 0;
    int servers = 1;
  };

  const std::vector<TimeSeries>& series() const { return series_; }
  const std::vector<StationTrack>& stations() const { return stations_; }

  /// {"period_s":..., "ticks":..., "series": {name: series...},
  ///  "stations": {name: {"stage":..., "utilization": series, ...}}}.
  JsonValue ToJson() const;

 private:
  struct Source {
    enum class Kind { kRate, kGauge, kWindowMean };
    Kind kind = Kind::kGauge;
    std::function<double()> value;      // gauge / window-mean sum
    std::function<uint64_t()> count;    // rate / window-mean count
    double prev_sum = 0;
    uint64_t prev_count = 0;
  };

  void Tick();

  Simulator* sim_;
  SamplerConfig config_;
  bool started_ = false;
  bool finalized_ = false;
  uint64_t ticks_ = 0;
  std::vector<Source> sources_;
  std::vector<TimeSeries> series_;  // parallel to sources_
  std::vector<StationTrack> stations_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_TELEMETRY_SAMPLER_H_
