#include "telemetry/timeseries.h"

#include <algorithm>
#include <utility>

namespace blockoptr {

TimeSeries::TimeSeries(std::string name, size_t capacity)
    : name_(std::move(name)), capacity_(std::max<size_t>(capacity, 2)) {
  if (capacity_ % 2 != 0) ++capacity_;
  points_.reserve(capacity_);
}

void TimeSeries::Record(double t, double v) {
  ++raw_count_;
  last_value_ = v;
  pending_sum_ += v;
  if (++pending_count_ < merge_factor_) return;

  if (points_.size() == capacity_) {
    // A new point is ready but the buffer is full: halve the resolution
    // by merging adjacent pairs, keeping the later timestamp so every
    // point still marks the *end* of the interval it covers (capacity_
    // is even, so no half-merged point is left over). The pending
    // aggregate keeps accumulating toward the doubled factor, so every
    // stored point always covers exactly merge_factor_ samples and
    // Mean() stays exact.
    size_t half = points_.size() / 2;
    for (size_t i = 0; i < half; ++i) {
      points_[i] = {points_[2 * i + 1].t,
                    (points_[2 * i].v + points_[2 * i + 1].v) / 2.0};
    }
    points_.resize(half);
    merge_factor_ *= 2;
    return;
  }

  points_.push_back({t, pending_sum_ / static_cast<double>(pending_count_)});
  pending_sum_ = 0;
  pending_count_ = 0;
}

double TimeSeries::Max() const {
  double best = 0;
  for (const Point& p : points_) best = std::max(best, p.v);
  return best;
}

double TimeSeries::Mean() const {
  if (points_.empty()) return 0;
  double sum = 0;
  for (const Point& p : points_) sum += p.v;
  return sum / static_cast<double>(points_.size());
}

TimeSeries::Window TimeSeries::LongestWindowAbove(double threshold) const {
  Window best;
  Window cur;
  size_t cur_len = 0;
  size_t best_len = 0;
  double cur_sum = 0;
  for (size_t i = 0; i < points_.size(); ++i) {
    const Point& p = points_[i];
    if (p.v >= threshold) {
      if (cur_len == 0) {
        cur.found = true;
        cur.start = i == 0 ? 0 : points_[i - 1].t;
        cur.peak = p.v;
        cur_sum = 0;
      }
      cur.end = p.t;
      cur.peak = std::max(cur.peak, p.v);
      cur_sum += p.v;
      ++cur_len;
      if (cur_len > best_len) {
        best_len = cur_len;
        best = cur;
        best.mean = cur_sum / static_cast<double>(cur_len);
      }
    } else {
      cur_len = 0;
    }
  }
  return best;
}

JsonValue TimeSeries::ToJson() const {
  JsonValue::Object obj;
  obj["samples_per_point"] = JsonValue(samples_per_point());
  JsonValue::Array ts;
  JsonValue::Array vs;
  for (const Point& p : points_) {
    ts.push_back(JsonValue(p.t));
    vs.push_back(JsonValue(p.v));
  }
  obj["t"] = JsonValue(std::move(ts));
  obj["v"] = JsonValue(std::move(vs));
  return JsonValue(std::move(obj));
}

}  // namespace blockoptr
