#ifndef BLOCKOPTR_TELEMETRY_TELEMETRY_H_
#define BLOCKOPTR_TELEMETRY_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace blockoptr {

/// Bundles the per-run observability state: one trace recorder plus one
/// metrics registry, shared by every simulated component of a network.
///
/// Components hold a nullable `Telemetry*` and guard every recording site
/// with a null check — the disabled path does no work and allocates
/// nothing, so telemetry-off runs behave exactly like the uninstrumented
/// simulator.
class Telemetry {
 public:
  /// `sim` must outlive all recording calls (exports may happen later).
  explicit Telemetry(Simulator* sim) : tracer_(sim) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  TraceRecorder& tracer() { return tracer_; }
  const TraceRecorder& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  TraceRecorder tracer_;
  MetricsRegistry metrics_;
};

/// Latency summary of one pipeline stage (one span category).
struct StageLatency {
  std::string stage;
  uint64_t count = 0;
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
  double max_s = 0;
};

/// Groups finished spans by category and summarizes their durations, in
/// pipeline order (submit, endorse, assemble, order, raft, validate,
/// commit) followed by any other categories alphabetically.
std::vector<StageLatency> ComputeStageBreakdown(const TraceRecorder& tracer);

/// Paper-style fixed-width table of a stage breakdown; "" when empty.
std::string FormatStageBreakdownTable(const std::vector<StageLatency>& stages);

}  // namespace blockoptr

#endif  // BLOCKOPTR_TELEMETRY_TELEMETRY_H_
