#ifndef BLOCKOPTR_TELEMETRY_TELEMETRY_H_
#define BLOCKOPTR_TELEMETRY_TELEMETRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "telemetry/trace.h"
#include "telemetry/txtrace.h"

namespace blockoptr {

/// Which aspects of a telemetry-enabled run are recorded. The three
/// aspects are independent so high-frequency runs can keep the cheap
/// continuous sampler while shedding the per-transaction costs:
///   - tracing:       per-transaction lifecycle spans (string-keyed; the
///                    most expensive aspect at ~6 spans per transaction).
///   - event_metrics: per-event counter/gauge updates at every pipeline
///                    touch point (map lookups by dotted name).
///   - sampling:      the continuous Sampler — one tick per period
///                    regardless of load, so its cost is O(sim-time), not
///                    O(transactions).
///   - txtrace:       the per-transaction flight recorder (Observability
///                    v3): packed lifecycle events in a fixed ring, with
///                    critical-path extraction and tail-latency exemplars.
struct TelemetryOptions {
  bool tracing = true;
  bool event_metrics = true;
  /// Sampler period in virtual seconds; <= 0 disables the sampler.
  double sample_period_s = 0.5;
  /// Point capacity of each sampled TimeSeries.
  size_t series_capacity = 512;
  /// Flight-recorder knobs; `txtrace.enabled` is off by default (the
  /// disabled path is one null check per hook and allocates nothing).
  TxTraceOptions txtrace;

  /// Continuous monitoring only: spans and per-event metrics off, sampler
  /// on. The always-on low-overhead profile.
  static TelemetryOptions SamplerOnly() {
    TelemetryOptions opts;
    opts.tracing = false;
    opts.event_metrics = false;
    return opts;
  }

  /// Flight recorder only: the causal-tracing profile behind --txtrace.
  static TelemetryOptions TxTraceOnly() {
    TelemetryOptions opts;
    opts.tracing = false;
    opts.event_metrics = false;
    opts.sample_period_s = 0;
    opts.txtrace.enabled = true;
    return opts;
  }
};

/// Bundles the per-run observability state: one trace recorder, one
/// metrics registry, and one continuous sampler, shared by every simulated
/// component of a network.
///
/// Components hold a nullable `Telemetry*` and cache per-aspect pointers
/// (`TraceRecorder*` / `MetricsRegistry*`, null when that aspect is
/// disabled), guarding every recording site with a null check — the
/// disabled path does no work and allocates nothing, so telemetry-off runs
/// behave exactly like the uninstrumented simulator.
class Telemetry {
 public:
  /// `sim` must outlive all recording calls (exports may happen later).
  explicit Telemetry(Simulator* sim, TelemetryOptions options = {})
      : options_(options), tracer_(sim) {
    if (options_.sample_period_s > 0) {
      sampler_ = std::make_unique<Sampler>(
          sim, SamplerConfig{options_.sample_period_s,
                             options_.series_capacity});
    }
    if (options_.txtrace.enabled) {
      txtrace_ = std::make_unique<TxTraceRecorder>(sim, options_.txtrace);
    }
  }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  const TelemetryOptions& options() const { return options_; }

  TraceRecorder& tracer() { return tracer_; }
  const TraceRecorder& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The per-aspect accessors components cache: null when disabled.
  TraceRecorder* tracing() {
    return options_.tracing ? &tracer_ : nullptr;
  }
  MetricsRegistry* event_metrics() {
    return options_.event_metrics ? &metrics_ : nullptr;
  }
  /// Null when `sample_period_s <= 0`.
  Sampler* sampler() { return sampler_.get(); }
  const Sampler* sampler() const { return sampler_.get(); }
  /// Null unless `txtrace.enabled`.
  TxTraceRecorder* txtrace() { return txtrace_.get(); }
  const TxTraceRecorder* txtrace() const { return txtrace_.get(); }

 private:
  TelemetryOptions options_;
  TraceRecorder tracer_;
  MetricsRegistry metrics_;
  std::unique_ptr<Sampler> sampler_;
  std::unique_ptr<TxTraceRecorder> txtrace_;
};

/// Latency summary of one pipeline stage (one span category).
struct StageLatency {
  std::string stage;
  uint64_t count = 0;
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
  double max_s = 0;
};

/// Groups finished spans by category and summarizes their durations, in
/// pipeline order (submit, endorse, assemble, order, raft, validate,
/// commit) followed by any other categories alphabetically.
std::vector<StageLatency> ComputeStageBreakdown(const TraceRecorder& tracer);

/// Histogram-backed variant: reads the `stage.<category>.seconds`
/// histograms (recorded by the experiment driver after a traced run) and
/// derives p50/p95 via Histogram::Quantile. max_s is the upper bound of
/// the highest occupied bucket — a bucket-resolution estimate, unlike the
/// exact span-derived value.
std::vector<StageLatency> ComputeStageBreakdown(
    const MetricsRegistry& metrics);

/// Paper-style fixed-width table of a stage breakdown; "" when empty.
std::string FormatStageBreakdownTable(const std::vector<StageLatency>& stages);

}  // namespace blockoptr

#endif  // BLOCKOPTR_TELEMETRY_TELEMETRY_H_
