#include "telemetry/metrics.h"

#include <algorithm>
#include <utility>

namespace blockoptr {

void Gauge::Set(double v) {
  value_ = v;
  if (!seen_) {
    min_ = max_ = v;
    seen_ = true;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  size_t i = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  // upper_bound gives the first bound strictly greater than v; a value
  // exactly on a bound belongs to that bound's (inclusive) bucket.
  if (i > 0 && v == bounds_[i - 1]) --i;
  ++counts_[i];
  ++count_;
  sum_ += v;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil): the value below which
  // at least q of the mass lies.
  double target = q * static_cast<double>(count_);
  if (target < 1.0) target = 1.0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    uint64_t in_bucket = counts_[i];
    if (in_bucket == 0) continue;
    double reached = static_cast<double>(cumulative + in_bucket);
    if (reached + 1e-9 < target) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds_.size()) {
      // Overflow bucket: unbounded above, clamp to the last finite bound
      // (or the mean for a degenerate bounds-free histogram).
      return bounds_.empty() ? Mean() : bounds_.back();
    }
    double lower = i == 0 ? 0.0 : bounds_[i - 1];
    double upper = bounds_[i];
    double frac = (target - static_cast<double>(cumulative)) /
                  static_cast<double>(in_bucket);
    return lower + (upper - lower) * frac;
  }
  return bounds_.empty() ? Mean() : bounds_.back();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
  }
  return it->second;
}

std::vector<double> MetricsRegistry::DefaultLatencyBounds() {
  return {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
          0.2,   0.5,   1.0,   2.0,  5.0,  10.0};
}

std::vector<double> MetricsRegistry::RatioBounds() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

JsonValue MetricsRegistry::SnapshotJson() const {
  JsonValue::Object counters;
  for (const auto& [name, c] : counters_) {
    counters[name] = JsonValue(c.value());
  }
  JsonValue::Object gauges;
  for (const auto& [name, g] : gauges_) {
    JsonValue::Object entry;
    entry["value"] = JsonValue(g.value());
    // A gauge that was never set has no extremes: emit null, not 0.0, so
    // consumers can tell "absent" from "observed zero".
    entry["min"] = g.seen() ? JsonValue(g.min()) : JsonValue();
    entry["max"] = g.seen() ? JsonValue(g.max()) : JsonValue();
    gauges[name] = JsonValue(std::move(entry));
  }
  JsonValue::Object histograms;
  for (const auto& [name, h] : histograms_) {
    JsonValue::Object entry;
    entry["count"] = JsonValue(h.count());
    entry["sum"] = JsonValue(h.sum());
    entry["mean"] = JsonValue(h.Mean());
    JsonValue::Array bounds;
    for (double b : h.bounds()) bounds.push_back(JsonValue(b));
    entry["bounds"] = JsonValue(std::move(bounds));
    JsonValue::Array buckets;
    for (uint64_t c : h.bucket_counts()) buckets.push_back(JsonValue(c));
    entry["buckets"] = JsonValue(std::move(buckets));
    histograms[name] = JsonValue(std::move(entry));
  }
  JsonValue::Object root;
  root["counters"] = JsonValue(std::move(counters));
  root["gauges"] = JsonValue(std::move(gauges));
  root["histograms"] = JsonValue(std::move(histograms));
  return JsonValue(std::move(root));
}

}  // namespace blockoptr
