#ifndef BLOCKOPTR_TELEMETRY_METRICS_H_
#define BLOCKOPTR_TELEMETRY_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace blockoptr {

/// Monotonically increasing event count (e.g. `endorser.proposals_total`).
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// A point-in-time measurement (e.g. `endorser.queue_depth`). Tracks the
/// last set value plus the observed extremes so a snapshot still shows
/// transient peaks.
class Gauge {
 public:
  void Set(double v);
  void Add(double delta) { Set(value_ + delta); }

  double value() const { return value_; }
  double min() const { return seen_ ? min_ : 0.0; }
  double max() const { return seen_ ? max_ : 0.0; }
  /// Whether the gauge was ever set. Snapshots emit `min`/`max` as JSON
  /// null for never-set gauges, so "absent" and "genuinely zero" differ.
  bool seen() const { return seen_; }

 private:
  double value_ = 0;
  double min_ = 0;
  double max_ = 0;
  bool seen_ = false;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// first N buckets; one implicit overflow bucket catches everything above
/// the last bound (Prometheus-style cumulative-free layout).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Bucket-interpolated quantile estimate, `q` in [0, 1]: finds the
  /// bucket holding the q-th observation and interpolates linearly within
  /// its [lower, upper] bound range (Prometheus `histogram_quantile`
  /// semantics; the first bucket's lower bound is 0 for these
  /// non-negative latency/ratio histograms). Quantiles that land in the
  /// unbounded overflow bucket clamp to the last finite bound. Returns 0
  /// for an empty histogram.
  double Quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0;
};

/// Named metric registry shared by all simulated components. Components
/// register/look up metrics by dotted name (`orderer.block_fill_ratio`);
/// repeated lookups return the same instance, so hot paths can cache the
/// reference.
///
/// Thread-safety contract: a registry is *single-threaded by design* — it
/// holds no locks and no static mutable state. The parallel experiment
/// engine (driver/sweep.h) relies on exactly this: each concurrent run
/// instantiates its own registry (inside its own Telemetry), so distinct
/// instances may be used from distinct threads freely, while one instance
/// must never be shared across threads.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Creates the histogram with `bounds` on first use; later lookups
  /// ignore `bounds`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = DefaultLatencyBounds());

  /// Upper bounds suited to the simulator's sub-second stage latencies.
  static std::vector<double> DefaultLatencyBounds();
  /// Upper bounds for ratios in [0, 1] (e.g. block fill ratio).
  static std::vector<double> RatioBounds();

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Full snapshot: {"counters": {...}, "gauges": {...}, "histograms":
  /// {...}}, deterministic key order.
  JsonValue SnapshotJson() const;

 private:
  // std::map: node-based, so references handed out stay valid.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_TELEMETRY_METRICS_H_
