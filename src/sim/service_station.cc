#include "sim/service_station.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace blockoptr {

ServiceStation::ServiceStation(Simulator* sim, std::string name, int servers)
    : sim_(sim), name_(std::move(name)) {
  assert(servers >= 1);
  server_free_at_.assign(static_cast<size_t>(servers), 0.0);
}

void ServiceStation::set_servers(int servers) {
  assert(servers >= 1);
  server_free_at_.resize(static_cast<size_t>(servers), sim_->Now());
}

SimTime ServiceStation::EarliestFree() const {
  return *std::min_element(server_free_at_.begin(), server_free_at_.end());
}

double ServiceStation::CurrentDelay() const {
  return std::max(0.0, EarliestFree() - sim_->Now());
}

void ServiceStation::Submit(double service_time, Simulator::Callback done) {
  assert(service_time >= 0);
  auto it = std::min_element(server_free_at_.begin(), server_free_at_.end());
  SimTime start = std::max(sim_->Now(), *it);
  SimTime finish = start + service_time;
  *it = finish;
  wait_stats_.Add(start - sim_->Now());
  busy_time_ += service_time;
  // Park the completion callback and schedule a thin event; both pools
  // recycle, so a warm station submits with zero allocations.
  uint32_t job;
  if (!free_jobs_.empty()) {
    job = free_jobs_.back();
    free_jobs_.pop_back();
  } else {
    job = static_cast<uint32_t>(jobs_.emplace_back());
  }
  jobs_[job] = std::move(done);
  sim_->ScheduleAt(finish, [this, job]() {
    ++jobs_completed_;
    // In-place invocation, mirroring Simulator::Step: the deque reference
    // survives pool growth, and the slot is recycled only afterwards.
    Simulator::Callback& cb = jobs_[job];
    cb();
    cb.Reset();
    free_jobs_.push_back(job);
  });
}

}  // namespace blockoptr
