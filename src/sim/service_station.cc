#include "sim/service_station.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace blockoptr {

ServiceStation::ServiceStation(Simulator* sim, std::string name, int servers)
    : sim_(sim), name_(std::move(name)) {
  assert(servers >= 1);
  server_free_at_.assign(static_cast<size_t>(servers), 0.0);
}

void ServiceStation::set_servers(int servers) {
  assert(servers >= 1);
  server_free_at_.resize(static_cast<size_t>(servers), sim_->Now());
}

SimTime ServiceStation::EarliestFree() const {
  return *std::min_element(server_free_at_.begin(), server_free_at_.end());
}

double ServiceStation::CurrentDelay() const {
  return std::max(0.0, EarliestFree() - sim_->Now());
}

void ServiceStation::Submit(double service_time, std::function<void()> done) {
  assert(service_time >= 0);
  auto it = std::min_element(server_free_at_.begin(), server_free_at_.end());
  SimTime start = std::max(sim_->Now(), *it);
  SimTime finish = start + service_time;
  *it = finish;
  wait_stats_.Add(start - sim_->Now());
  busy_time_ += service_time;
  sim_->ScheduleAt(finish, [this, done = std::move(done)]() {
    ++jobs_completed_;
    done();
  });
}

}  // namespace blockoptr
