#ifndef BLOCKOPTR_SIM_SIMULATOR_H_
#define BLOCKOPTR_SIM_SIMULATOR_H_

#include <cstdint>
#include <type_traits>
#include <utility>

#include "common/chunk_pool.h"
#include "common/inline_callback.h"
#include "sim/event_heap.h"

namespace blockoptr {

/// Virtual time in seconds. All latencies in the Fabric model are expressed
/// in these units; wall-clock time never enters the simulation.
using SimTime = double;

/// A deterministic discrete-event simulator. Events are executed in
/// (time, insertion-sequence) order so that equal-time events fire in the
/// order they were scheduled — this makes whole experiments reproducible
/// bit-for-bit from a workload seed.
///
/// Engine layout (the whole-experiment hot path):
///   - The priority queue is a `FourAryEventHeap` of 16-byte packed
///     handles (time bits, seq|slot) — sift operations compare integers,
///     touch one cache line per child group, and never touch callback
///     bytes.
///   - Callbacks live in a free-list slot pool as `InlineCallback`s
///     (fixed inline capacity, no heap fallback). Scheduling emplaces the
///     closure directly into its slot (one move, no intermediate hops)
///     and Step() invokes it *in place* (zero copies at pop — the pool is
///     a deque, so slot references stay stable even when a callback grows
///     the pool mid-invocation). Steady-state scheduling therefore
///     performs zero heap allocations: once the pool and heap have grown
///     to the run's high-water mark, schedule/fire cycles only recycle
///     slots.
class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. 0 before any event has run.
  SimTime Now() const { return now_; }

  /// Schedules `f` at absolute virtual time `at`. Scheduling in the past
  /// clamps to `Now()` (the event fires next, after already-queued events
  /// at the current time). The callable is emplaced directly into its
  /// pool slot — one move, however large the closure.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback>>>
  void ScheduleAt(SimTime at, F&& f) {
    uint32_t slot = AcquireVacantSlot();
    slots_[slot].cb.Emplace(std::forward<F>(f));
    Commit(at, slot);
  }

  /// Overload for a pre-built Callback (e.g. one recycled from a pool).
  void ScheduleAt(SimTime at, Callback cb);

  /// Schedules after `delay` seconds of virtual time (delay >= 0).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback>>>
  void ScheduleAfter(SimTime delay, F&& f) {
    ScheduleAt(now_ + delay, std::forward<F>(f));
  }

  void ScheduleAfter(SimTime delay, Callback cb);

  /// Pre-sizes the event heap and the callback slot pool for a run with
  /// up to `events` simultaneously pending events, so the warm-up
  /// allocations happen here instead of mid-run.
  void Reserve(size_t events);

  /// Runs until the event queue is empty. Careful: components with
  /// self-re-arming timers (e.g. Raft heartbeats) keep the queue non-empty
  /// forever — drive those with RunUntil() or a completion predicate.
  void Run();

  /// Runs events with time <= `until`. Advances `Now()` to `until` if the
  /// queue drains earlier.
  void RunUntil(SimTime until);

  /// Executes at most one event. Returns false if the queue is empty.
  bool Step();

  /// Executes the next event only if its fire time is <= `until`; returns
  /// false (without advancing `Now()`) when the queue is empty or the next
  /// event lies beyond `until`. This is the sharded runner's primitive: it
  /// lets an external driver advance the simulator in bounded time windows
  /// while a separate completion predicate decides when to stop, without
  /// the drain-to-`until` semantics of RunUntil().
  bool StepIfBefore(SimTime until);

  /// Fire time of the next pending event; meaningless when the queue is
  /// empty (check num_pending() first).
  SimTime NextEventTime() const;

  size_t num_pending() const { return queue_.size(); }
  uint64_t num_processed() const { return processed_; }

  /// High-water mark of the pending-event queue over the simulator's
  /// lifetime (exported as the `sim.queue_peak` gauge).
  size_t queue_peak() const { return queue_peak_; }

 private:
  /// What the heap orders — packed to 16 bytes so a 4-ary child group is
  /// exactly one cache line:
  ///   - `time` holds the IEEE-754 bit pattern of the (non-negative,
  ///     canonicalized) fire time: for non-negative doubles, unsigned
  ///     bit-pattern order equals numeric order, so double comparisons
  ///     become integer comparisons with the identical result.
  ///   - `seq` packs (insertion sequence << kSlotBits) | slot. Sequence
  ///     numbers are unique, so the slot bits never influence ordering;
  ///     the (time, seq) contract is preserved bit-for-bit.
  struct EventRef {
    uint64_t time;
    uint64_t seq;
  };
  static_assert(sizeof(EventRef) == 16, "EventRef must stay 16 bytes");

  /// 24 slot bits bound the pool at ~16.7M simultaneously pending events
  /// (checked on pool growth); the remaining 40 sequence bits allow ~1.1
  /// trillion events per simulator lifetime.
  static constexpr int kSlotBits = 24;
  static constexpr uint32_t kSlotMask = (uint32_t{1} << kSlotBits) - 1;

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  /// One parked callback. `next_free` links vacant slots into the free
  /// list (only meaningful while the slot is vacant).
  struct Slot {
    Callback cb;
    uint32_t next_free = kNoSlot;
  };

  /// Pops a vacant slot off the free list (or grows the pool); the slot's
  /// callback is empty and ready to be emplaced or assigned.
  uint32_t AcquireVacantSlot();

  /// Pushes the heap handle for an already-filled slot (clamping `at` to
  /// the past-scheduling rule) and updates the queue high-water mark.
  void Commit(SimTime at, uint32_t slot);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  size_t queue_peak_ = 0;
  FourAryEventHeap<EventRef> queue_;
  /// Chunked, not a vector: Step() invokes callbacks in place, and a
  /// callback that schedules may grow the pool mid-invocation — chunk
  /// growth never relocates existing slots (and, unlike a deque of
  /// 500-byte elements, costs one allocation per 1024 slots, not one
  /// scattered node per slot).
  ChunkPool<Slot> slots_;
  uint32_t free_head_ = kNoSlot;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_SIM_SIMULATOR_H_
