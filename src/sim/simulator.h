#ifndef BLOCKOPTR_SIM_SIMULATOR_H_
#define BLOCKOPTR_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace blockoptr {

/// Virtual time in seconds. All latencies in the Fabric model are expressed
/// in these units; wall-clock time never enters the simulation.
using SimTime = double;

/// A deterministic discrete-event simulator. Events are executed in
/// (time, insertion-sequence) order so that equal-time events fire in the
/// order they were scheduled — this makes whole experiments reproducible
/// bit-for-bit from a workload seed.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. 0 before any event has run.
  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute virtual time `at`. Scheduling in the past
  /// clamps to `Now()` (the event fires next, after already-queued events
  /// at the current time).
  void ScheduleAt(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` seconds of virtual time (delay >= 0).
  void ScheduleAfter(SimTime delay, Callback cb);

  /// Runs until the event queue is empty. Careful: components with
  /// self-re-arming timers (e.g. Raft heartbeats) keep the queue non-empty
  /// forever — drive those with RunUntil() or a completion predicate.
  void Run();

  /// Runs events with time <= `until`. Advances `Now()` to `until` if the
  /// queue drains earlier.
  void RunUntil(SimTime until);

  /// Executes at most one event. Returns false if the queue is empty.
  bool Step();

  size_t num_pending() const { return queue_.size(); }
  uint64_t num_processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_SIM_SIMULATOR_H_
