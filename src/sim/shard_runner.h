#ifndef BLOCKOPTR_SIM_SHARD_RUNNER_H_
#define BLOCKOPTR_SIM_SHARD_RUNNER_H_

// The parallel shard core of the multi-channel simulator: K independent
// discrete-event shards advanced in lockstep time epochs by up to N worker
// threads, with a serial cross-shard synchronization point at every epoch
// boundary.
//
// Conservative time-window synchronization: within one epoch no shard may
// observe another shard's state — all cross-shard coupling happens in the
// `sync` hook, which runs with every worker quiescent (inside the barrier
// completion, exactly once per epoch, shards visited in index order).
// Because each shard's event stream is a pure function of its own state
// plus the epoch-boundary sync decisions, the run is field-for-field
// identical for every thread count, including the inline serial path.

#include <functional>
#include <vector>

#include "common/status.h"
#include "sim/simulator.h"

namespace blockoptr {

/// One shard the runner drives. Implementations own all of their mutable
/// state; the runner guarantees AdvanceUntil is never called concurrently
/// for the same shard and that `sync` never overlaps any AdvanceUntil.
class Shard {
 public:
  virtual ~Shard() = default;

  /// Runs the shard's events with fire time <= `epoch_end`. Returns an
  /// error to abort the whole run (e.g. the shard's event queue drained
  /// before its workload completed). Must be re-entrant across epochs but
  /// is only ever invoked from one thread at a time.
  virtual Status AdvanceUntil(SimTime epoch_end) = 0;

  /// True once the shard has no more work (the runner stops scheduling
  /// epochs for it; other shards keep running).
  virtual bool done() const = 0;

  /// Fire time of the shard's earliest pending event, or +infinity when
  /// none is queued. Only read at epoch boundaries (all workers parked);
  /// lets the runner fast-forward across epochs in which every shard is
  /// idle instead of spinning the barrier through empty windows.
  virtual SimTime NextTime() const = 0;
};

struct ShardRunnerOptions {
  /// Worker threads advancing shards. 1 (the default) runs every epoch
  /// inline on the calling thread; <= 0 selects all hardware threads.
  /// More threads than shards are clamped to the shard count.
  int threads = 1;

  /// Epoch (lockstep window) length in virtual seconds. Cross-shard
  /// coupling decisions take effect at epoch boundaries, so this is the
  /// model's coupling latency; it must be > 0.
  double epoch_s = 0.05;

  /// Abort guard: the run fails once the epoch clock passes this.
  double max_time = 36000;
};

/// Advances every shard to successive epoch boundaries until all report
/// done(). After each epoch, `sync(epoch_end)` runs serially (pass nullptr
/// for uncoupled shards). Shards are statically assigned to workers
/// (shard i -> worker i % threads) so no scheduling decision can leak into
/// results. Returns the lowest-indexed shard error, or an Internal error
/// when `max_time` is exceeded.
Status RunShards(const std::vector<Shard*>& shards,
                 const ShardRunnerOptions& options,
                 const std::function<void(SimTime epoch_end)>& sync);

}  // namespace blockoptr

#endif  // BLOCKOPTR_SIM_SHARD_RUNNER_H_
