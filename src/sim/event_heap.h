#ifndef BLOCKOPTR_SIM_EVENT_HEAP_H_
#define BLOCKOPTR_SIM_EVENT_HEAP_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace blockoptr {

/// An implicit 4-ary min-heap specialized for discrete-event handles —
/// any type with `time` and `seq` members, ordered by (time, seq)
/// ascending. This is the exact ordering contract of the simulator's old
/// `std::priority_queue<Event>`: earlier time first, and among equal
/// times, insertion order (seq) first.
///
/// Why 4-ary instead of binary:
///   - Sift-down, the pop hot path, does fewer levels (log4 vs log2) and
///     the four children of a node are contiguous — one cache line for
///     16-to-24-byte handles — so the extra comparisons per level are
///     cheaper than the extra levels.
///   - Sift-up (the push path) is strictly shallower.
/// Unlike `std::priority_queue`, the heap exposes `Reserve()` so a run of
/// known size never reallocates, and `PopMin()` *moves* the minimum out
/// instead of forcing the top()-copy-then-pop dance.
template <typename Handle>
class FourAryEventHeap {
 public:
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  size_t capacity() const { return heap_.capacity(); }
  void Reserve(size_t n) { heap_.reserve(n); }

  /// The (time, seq)-minimum handle. Undefined when empty.
  const Handle& Min() const { return heap_.front(); }

  void Push(Handle h) {
    size_t i = heap_.size();
    heap_.push_back(std::move(h));
    // Sift up: move the hole toward the root until the parent is not
    // later than the new handle.
    while (i > 0) {
      size_t parent = (i - 1) / 4;
      if (!Before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  /// Removes and returns the minimum, moved out (never copied).
  Handle PopMin() {
    Handle min = std::move(heap_.front());
    if (heap_.size() == 1) {
      heap_.pop_back();
      return min;
    }
    Handle last = std::move(heap_.back());
    heap_.pop_back();
    {
      // Sift down: walk the hole toward the leaves, pulling up the
      // earliest of each node's (up to four, contiguous) children.
      size_t i = 0;
      const size_t n = heap_.size();
      for (;;) {
        size_t first_child = 4 * i + 1;
        if (first_child >= n) break;
        size_t best = first_child;
        size_t end = first_child + 4 < n ? first_child + 4 : n;
        for (size_t c = first_child + 1; c < end; ++c) {
          if (Before(heap_[c], heap_[best])) best = c;
        }
        if (!Before(heap_[best], last)) break;
        heap_[i] = std::move(heap_[best]);
        i = best;
      }
      heap_[i] = std::move(last);
    }
    return min;
  }

 private:
  static bool Before(const Handle& a, const Handle& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::vector<Handle> heap_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_SIM_EVENT_HEAP_H_
