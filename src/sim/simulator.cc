#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace blockoptr {

void Simulator::ScheduleAt(SimTime at, Callback cb) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(cb)});
}

void Simulator::ScheduleAfter(SimTime delay, Callback cb) {
  assert(delay >= 0);
  ScheduleAt(now_ + delay, std::move(cb));
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the callback is moved out via a copy of
  // the handle before pop. Events are small (one std::function).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.cb();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    Step();
  }
  if (now_ < until) now_ = until;
}

}  // namespace blockoptr
