#include "sim/simulator.h"

#include <bit>
#include <cassert>
#include <cstdlib>
#include <utility>

namespace blockoptr {

uint32_t Simulator::AcquireVacantSlot() {
  if (free_head_ != kNoSlot) {
    uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  uint32_t slot = static_cast<uint32_t>(slots_.emplace_back());
  if (slot > kSlotMask) std::abort();  // > ~16.7M pending events
  return slot;
}

void Simulator::Commit(SimTime at, uint32_t slot) {
  if (at < now_) at = now_;
  // +0.0 canonicalizes a negative zero, keeping the bit-pattern order of
  // non-negative doubles identical to their numeric order.
  uint64_t time_bits = std::bit_cast<uint64_t>(at + 0.0);
  queue_.Push(EventRef{time_bits, (next_seq_++ << kSlotBits) | slot});
  if (queue_.size() > queue_peak_) queue_peak_ = queue_.size();
}

void Simulator::ScheduleAt(SimTime at, Callback cb) {
  uint32_t slot = AcquireVacantSlot();
  slots_[slot].cb = std::move(cb);
  Commit(at, slot);
}

void Simulator::ScheduleAfter(SimTime delay, Callback cb) {
  assert(delay >= 0);
  ScheduleAt(now_ + delay, std::move(cb));
}

void Simulator::Reserve(size_t events) {
  queue_.Reserve(events);
  // Pre-grow the slot pool and chain the new slots into the free list.
  while (slots_.size() < events) {
    uint32_t slot = static_cast<uint32_t>(slots_.emplace_back());
    slots_[slot].next_free = free_head_;
    free_head_ = slot;
  }
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  EventRef ref = queue_.PopMin();
  now_ = std::bit_cast<double>(ref.time);
  ++processed_;
  // Invoke in place — no move-out, however large the closure. The slot
  // reference stays valid even if the callback schedules (chunk-pool
  // growth never relocates slots), and the slot is recycled only
  // afterwards, so nothing can overwrite the callback while it runs.
  uint32_t index = static_cast<uint32_t>(ref.seq) & kSlotMask;
  Slot& slot = slots_[index];
  slot.cb();
  slot.cb.Reset();
  slot.next_free = free_head_;
  free_head_ = index;
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

bool Simulator::StepIfBefore(SimTime until) {
  if (queue_.empty() ||
      std::bit_cast<double>(queue_.Min().time) > until) {
    return false;
  }
  return Step();
}

SimTime Simulator::NextEventTime() const {
  return std::bit_cast<double>(queue_.Min().time);
}

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() &&
         std::bit_cast<double>(queue_.Min().time) <= until) {
    Step();
  }
  if (now_ < until) now_ = until;
}

}  // namespace blockoptr
