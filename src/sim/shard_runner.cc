#include "sim/shard_runner.h"

#include <barrier>
#include <cmath>
#include <cstdint>
#include <exception>
#include <limits>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace blockoptr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shared lockstep state. Workers only touch it between barrier phases
/// (the barrier provides the happens-before edges), so no atomics are
/// needed beyond the barrier itself.
struct LockstepState {
  uint64_t epoch_index = 1;  // epoch_end = epoch_index * epoch_s
  SimTime epoch_end = 0;
  bool stop = false;
  std::vector<Status> status;  // per shard; only its owner writes
};

/// The epoch-boundary decision, shared by the serial and threaded paths:
/// resolves errors (lowest shard index wins), completion, the max-time
/// guard, the serial sync hook, and the next epoch boundary — skipping
/// straight to the grid point before the earliest pending event when every
/// shard is quiescent for longer than one epoch (the latency-tail /
/// sparse-heartbeat fast-forward; a pure function of shard state, so it is
/// identical for every thread count).
void EpochBoundary(const std::vector<Shard*>& shards,
                   const ShardRunnerOptions& options, LockstepState& state,
                   const std::function<void(SimTime)>& sync) {
  for (const Status& st : state.status) {
    if (!st.ok()) {
      state.stop = true;
      return;
    }
  }
  bool all_done = true;
  for (Shard* shard : shards) {
    if (!shard->done()) {
      all_done = false;
      break;
    }
  }
  if (all_done) {
    state.stop = true;
    return;
  }
  if (state.epoch_end > options.max_time) {
    state.status[0] =
        Status::Internal("sharded simulation exceeded max_sim_time");
    state.stop = true;
    return;
  }
  if (sync) sync(state.epoch_end);

  SimTime next = kInf;
  for (Shard* shard : shards) {
    if (!shard->done()) next = std::min(next, shard->NextTime());
  }
  uint64_t next_index = state.epoch_index + 1;
  const double ratio = next / options.epoch_s;
  if (next < kInf && ratio < 9e18) {
    // Fast-forward: the smallest grid index whose window covers the
    // earliest pending event (epoch k processes events <= k*epoch_s).
    // Integer epoch indices keep the grid drift-free, so a jump lands on
    // exactly the boundary that stepping epoch-by-epoch would reach, for
    // any thread count. A rounding miss just costs one extra epoch.
    uint64_t covering = static_cast<uint64_t>(std::ceil(ratio));
    if (covering > next_index) next_index = covering;
  }
  state.epoch_index = next_index;
  state.epoch_end = static_cast<double>(state.epoch_index) * options.epoch_s;
}

void AdvanceOwned(const std::vector<Shard*>& shards, LockstepState& state,
                  size_t worker, size_t stride) {
  for (size_t i = worker; i < shards.size(); i += stride) {
    if (shards[i]->done() || !state.status[i].ok()) continue;
    try {
      state.status[i] = shards[i]->AdvanceUntil(state.epoch_end);
    } catch (const std::exception& e) {
      state.status[i] =
          Status::Internal(std::string("shard threw: ") + e.what());
    }
  }
}

Status FirstError(const LockstepState& state) {
  for (const Status& st : state.status) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace

Status RunShards(const std::vector<Shard*>& shards,
                 const ShardRunnerOptions& options,
                 const std::function<void(SimTime epoch_end)>& sync) {
  if (shards.empty()) return Status::OK();
  if (options.epoch_s <= 0) {
    return Status::InvalidArgument("shard epoch must be > 0");
  }
  LockstepState state;
  state.status.assign(shards.size(), Status::OK());
  state.epoch_end = options.epoch_s;

  const size_t workers = std::min<size_t>(
      static_cast<size_t>(ThreadPool::ResolveThreads(options.threads)),
      shards.size());

  if (workers <= 1) {
    // Inline serial path: same epoch grid, same boundary decisions, no
    // threading machinery at all — the reference the determinism tests
    // compare the threaded path against.
    for (;;) {
      AdvanceOwned(shards, state, 0, 1);
      EpochBoundary(shards, options, state, sync);
      if (state.stop) return FirstError(state);
    }
  }

  // Threaded path: static shard->worker assignment, one barrier per epoch.
  // The completion function runs the epoch boundary on exactly one thread
  // while every other worker is parked inside the barrier, which makes the
  // sync hook a true serial section.
  std::barrier barrier(static_cast<std::ptrdiff_t>(workers), [&]() noexcept {
    EpochBoundary(shards, options, state, sync);
  });
  auto worker_loop = [&](size_t w) {
    for (;;) {
      AdvanceOwned(shards, state, w, workers);
      barrier.arrive_and_wait();
      if (state.stop) return;
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (auto& t : threads) t.join();
  return FirstError(state);
}

}  // namespace blockoptr
