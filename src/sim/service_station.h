#ifndef BLOCKOPTR_SIM_SERVICE_STATION_H_
#define BLOCKOPTR_SIM_SERVICE_STATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/chunk_pool.h"
#include "common/stats.h"
#include "sim/simulator.h"

namespace blockoptr {

/// A FIFO multi-server queueing station on top of the event simulator.
/// Endorsers, clients, the orderer, and validating peers are all modeled as
/// stations: work arrives, waits for a free server, occupies it for the
/// job's service time, then fires a completion callback.
///
/// Queueing at stations is what turns overload into latency in the model:
/// when the offered rate exceeds `servers / mean_service_time`, waiting
/// times grow without bound, which widens the endorsement-to-commit window
/// and mechanically raises MVCC failure rates (paper §6.1.4).
class ServiceStation {
 public:
  /// `sim` must outlive the station. `servers` >= 1.
  ServiceStation(Simulator* sim, std::string name, int servers = 1);

  ServiceStation(const ServiceStation&) = delete;
  ServiceStation& operator=(const ServiceStation&) = delete;

  /// Enqueues a job taking `service_time` seconds. `done` fires when the
  /// job completes. Jobs are served in submission order (FIFO).
  ///
  /// `done` is an InlineCallback like every simulator event; it is parked
  /// in a per-station free-list pool and the scheduled completion event
  /// captures only {station, slot index}. This keeps large completion
  /// closures (endorsement results, assembled transactions) out of the
  /// event they ride on — and out of InlineCallback's capacity math,
  /// which could otherwise never close (an event wrapping a callback of
  /// the same capacity needs strictly more than that capacity).
  void Submit(double service_time, Simulator::Callback done);

  const std::string& name() const { return name_; }
  int servers() const { return static_cast<int>(server_free_at_.size()); }

  /// Changes the number of servers. Only affects jobs submitted afterwards.
  /// Used to model client-resource scaling (paper §6.1.2).
  void set_servers(int servers);

  uint64_t jobs_completed() const { return jobs_completed_; }

  /// Waiting time (queue delay before service) statistics.
  const RunningStats& wait_stats() const { return wait_stats_; }

  /// Total busy time across servers (for utilization estimates).
  double busy_time() const { return busy_time_; }

  /// Virtual time at which the earliest server becomes free.
  SimTime EarliestFree() const;

  /// Current backlog estimate: how far ahead of `Now()` the earliest free
  /// server is (0 when a server is idle).
  double CurrentDelay() const;

 private:
  Simulator* sim_;
  std::string name_;
  std::vector<SimTime> server_free_at_;
  /// Parked completion callbacks; vacant indices in `free_jobs_`. Chunked
  /// for the same reason as the simulator's slot pool: completions are
  /// invoked in place, and a completion that submits again may grow the
  /// pool mid-invocation (chunk growth never relocates parked jobs).
  ChunkPool<Simulator::Callback> jobs_;
  std::vector<uint32_t> free_jobs_;
  uint64_t jobs_completed_ = 0;
  RunningStats wait_stats_;
  double busy_time_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_SIM_SERVICE_STATION_H_
