#ifndef BLOCKOPTR_STATEDB_VERSIONED_STORE_H_
#define BLOCKOPTR_STATEDB_VERSIONED_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/interner.h"

namespace blockoptr {

/// The version of a committed key: the (block, tx-in-block) coordinates of
/// the transaction that last wrote it. Fabric's MVCC validation compares
/// the version recorded in a transaction's read set against the current
/// committed version — a mismatch is an MVCC read conflict.
struct Version {
  uint64_t block_num = 0;
  uint32_t tx_num = 0;

  friend bool operator==(const Version&, const Version&) = default;
  friend auto operator<=>(const Version&, const Version&) = default;

  std::string ToString() const;
};

/// A committed value together with its version.
struct VersionedValue {
  std::string value;
  Version version;
};

/// The world-state database of a single peer: the latest committed value
/// and version per key, with ordered iteration for range queries. Each peer
/// in the simulated network owns one store; peers may lag behind the chain
/// tip (they apply blocks with queueing delay), which is what creates
/// endorsement-time staleness.
///
/// Two indexes share one copy of the data:
///  * an ordered map (key -> VersionedValue) backing Range()/RangeVisit(),
///    the same trade RocksDB's sorted memtable makes for iterator support;
///  * a KeyId-direct point-read index (Peek()/Get()/Contains()), because
///    the point read is the MVCC inner loop. KeyIds are dense (the
///    interner assigns 0,1,2,...), so the index is a flat
///    vector<VersionedValue*> subscripted by id — one string hash in the
///    interner, one array load, instead of O(log n) string comparisons
///    over shared-prefix keys. Slots for keys this store never held are
///    nullptr; memory is bounded by the process-wide distinct-key count
///    (8 bytes per key).
/// Apply() keeps both in sync; the index holds pointers into the
/// ordered map's nodes (node-based, so stable until erased).
class VersionedStore {
 public:
  VersionedStore() = default;
  // Copies rebuild the hash index: copied pointers would refer into the
  // source map's nodes. Moves keep it: map nodes survive a move.
  VersionedStore(const VersionedStore& other);
  VersionedStore& operator=(const VersionedStore& other);
  VersionedStore(VersionedStore&&) = default;
  VersionedStore& operator=(VersionedStore&&) = default;

  /// Latest committed entry for `key` without copying the value, or
  /// nullptr if absent. The pointer is valid until the key is deleted or
  /// the store destroyed. This is the validation hot path.
  const VersionedValue* Peek(std::string_view key) const;

  /// Peek() for a caller that already holds the key's interned id (e.g.
  /// cached on a ReadItem): a single bounds-checked array load, no string
  /// hash. Passing kInvalidKeyId is allowed and returns nullptr.
  const VersionedValue* PeekById(KeyId id) const {
    return id < index_.size() ? index_[id] : nullptr;
  }

  /// Latest committed value for `key`, or nullopt if absent (copies the
  /// value; prefer Peek() in hot loops).
  std::optional<VersionedValue> Get(std::string_view key) const;

  /// True if the key currently exists.
  bool Contains(std::string_view key) const;

  /// All keys in [start_key, end_key) in lexicographic order. An empty
  /// `end_key` means "to the end". Mirrors Fabric's GetStateByRange.
  std::vector<std::pair<std::string, VersionedValue>> Range(
      std::string_view start_key, std::string_view end_key) const;

  /// Copy-free ordered scan of [start_key, end_key): calls
  /// `visit(key, versioned_value)` per entry until it returns false or the
  /// range is exhausted. Phantom re-validation and endorsement-time range
  /// simulation use this instead of materializing Range() vectors.
  template <typename Visitor>
  void RangeVisit(std::string_view start_key, std::string_view end_key,
                  Visitor&& visit) const {
    auto it = map_.lower_bound(start_key);
    auto end = end_key.empty() ? map_.end() : map_.lower_bound(end_key);
    for (; it != end; ++it) {
      if (!visit(std::string_view(it->first), it->second)) return;
    }
  }

  /// RangeVisit() narrowed to versions: `visit(key, version)`. The MVCC
  /// phantom check only compares versions, so no value ever gets touched.
  template <typename Visitor>
  void RangeVersions(std::string_view start_key, std::string_view end_key,
                     Visitor&& visit) const {
    RangeVisit(start_key, end_key,
               [&](std::string_view key, const VersionedValue& vv) {
                 return visit(key, vv.version);
               });
  }

  /// Writes or deletes a single key at `version` (used by block commit).
  void Apply(std::string_view key, std::string_view value, bool is_delete,
             Version version);

  /// Apply() for a caller that already interned `key` as `id` — skips the
  /// interner probe. `id` MUST be the interned id of `key`.
  void ApplyById(KeyId id, std::string_view key, std::string_view value,
                 bool is_delete, Version version);

  /// Height of the last block applied via MarkBlockApplied.
  uint64_t applied_height() const { return applied_height_; }
  void MarkBlockApplied(uint64_t block_num) { applied_height_ = block_num; }

  size_t size() const { return map_.size(); }

 private:
  void RebuildIndex();
  // Grows index_ so `id` is addressable (geometric growth: appending n
  // distinct keys costs O(n) total, not O(n^2) of per-id resizes).
  void EnsureIndexSlot(KeyId id);

  std::map<std::string, VersionedValue, std::less<>> map_;
  std::vector<VersionedValue*> index_;  // subscript: KeyId; nullptr = absent
  uint64_t applied_height_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_STATEDB_VERSIONED_STORE_H_
