#ifndef BLOCKOPTR_STATEDB_VERSIONED_STORE_H_
#define BLOCKOPTR_STATEDB_VERSIONED_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace blockoptr {

/// The version of a committed key: the (block, tx-in-block) coordinates of
/// the transaction that last wrote it. Fabric's MVCC validation compares
/// the version recorded in a transaction's read set against the current
/// committed version — a mismatch is an MVCC read conflict.
struct Version {
  uint64_t block_num = 0;
  uint32_t tx_num = 0;

  friend bool operator==(const Version&, const Version&) = default;
  friend auto operator<=>(const Version&, const Version&) = default;

  std::string ToString() const;
};

/// A committed value together with its version.
struct VersionedValue {
  std::string value;
  Version version;
};

/// The world-state database of a single peer: the latest committed value
/// and version per key, with ordered iteration for range queries. Each peer
/// in the simulated network owns one store; peers may lag behind the chain
/// tip (they apply blocks with queueing delay), which is what creates
/// endorsement-time staleness.
class VersionedStore {
 public:
  VersionedStore() = default;

  /// Latest committed value for `key`, or nullopt if absent.
  std::optional<VersionedValue> Get(std::string_view key) const;

  /// True if the key currently exists.
  bool Contains(std::string_view key) const;

  /// All keys in [start_key, end_key) in lexicographic order. An empty
  /// `end_key` means "to the end". Mirrors Fabric's GetStateByRange.
  std::vector<std::pair<std::string, VersionedValue>> Range(
      std::string_view start_key, std::string_view end_key) const;

  /// Writes or deletes a single key at `version` (used by block commit).
  void Apply(std::string_view key, std::string_view value, bool is_delete,
             Version version);

  /// Height of the last block applied via MarkBlockApplied.
  uint64_t applied_height() const { return applied_height_; }
  void MarkBlockApplied(uint64_t block_num) { applied_height_ = block_num; }

  size_t size() const { return map_.size(); }

 private:
  // std::map (not unordered) so Range() is a simple ordered scan — the
  // same trade RocksDB's sorted memtable makes for iterator support.
  std::map<std::string, VersionedValue, std::less<>> map_;
  uint64_t applied_height_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_STATEDB_VERSIONED_STORE_H_
