#include "statedb/versioned_store.h"

namespace blockoptr {

std::string Version::ToString() const {
  return std::to_string(block_num) + ":" + std::to_string(tx_num);
}

std::optional<VersionedValue> VersionedStore::Get(std::string_view key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool VersionedStore::Contains(std::string_view key) const {
  return map_.find(key) != map_.end();
}

std::vector<std::pair<std::string, VersionedValue>> VersionedStore::Range(
    std::string_view start_key, std::string_view end_key) const {
  std::vector<std::pair<std::string, VersionedValue>> out;
  auto it = map_.lower_bound(start_key);
  auto end = end_key.empty() ? map_.end() : map_.lower_bound(end_key);
  for (; it != end; ++it) out.emplace_back(it->first, it->second);
  return out;
}

void VersionedStore::Apply(std::string_view key, std::string_view value,
                           bool is_delete, Version version) {
  if (is_delete) {
    map_.erase(std::string(key));
    return;
  }
  auto [it, inserted] = map_.try_emplace(std::string(key));
  it->second.value = std::string(value);
  it->second.version = version;
}

}  // namespace blockoptr
