#include "statedb/versioned_store.h"

#include <algorithm>

namespace blockoptr {

std::string Version::ToString() const {
  return std::to_string(block_num) + ":" + std::to_string(tx_num);
}

VersionedStore::VersionedStore(const VersionedStore& other)
    : map_(other.map_), applied_height_(other.applied_height_) {
  RebuildIndex();
}

VersionedStore& VersionedStore::operator=(const VersionedStore& other) {
  if (this == &other) return *this;
  map_ = other.map_;
  applied_height_ = other.applied_height_;
  RebuildIndex();
  return *this;
}

void VersionedStore::EnsureIndexSlot(KeyId id) {
  if (id < index_.size()) return;
  size_t target = static_cast<size_t>(id) + 1;
  if (target > index_.capacity()) {
    index_.reserve(std::max(target, index_.capacity() * 2));
  }
  index_.resize(target, nullptr);
}

void VersionedStore::RebuildIndex() {
  index_.assign(index_.size(), nullptr);
  Interner& interner = GlobalKeyInterner();
  for (auto& [key, vv] : map_) {
    KeyId id = interner.Intern(key);
    EnsureIndexSlot(id);
    index_[id] = &vv;
  }
}

const VersionedValue* VersionedStore::Peek(std::string_view key) const {
  // A key never interned was never applied to any store, so an interner
  // miss already proves absence without touching the map.
  KeyId id = GlobalKeyInterner().Lookup(key);
  if (id >= index_.size()) return nullptr;  // covers kInvalidKeyId too
  return index_[id];
}

std::optional<VersionedValue> VersionedStore::Get(std::string_view key) const {
  const VersionedValue* vv = Peek(key);
  if (vv == nullptr) return std::nullopt;
  return *vv;
}

bool VersionedStore::Contains(std::string_view key) const {
  return Peek(key) != nullptr;
}

std::vector<std::pair<std::string, VersionedValue>> VersionedStore::Range(
    std::string_view start_key, std::string_view end_key) const {
  std::vector<std::pair<std::string, VersionedValue>> out;
  RangeVisit(start_key, end_key,
             [&](std::string_view key, const VersionedValue& vv) {
               out.emplace_back(std::string(key), vv);
               return true;
             });
  return out;
}

void VersionedStore::Apply(std::string_view key, std::string_view value,
                           bool is_delete, Version version) {
  ApplyById(GlobalKeyInterner().Intern(key), key, value, is_delete, version);
}

void VersionedStore::ApplyById(KeyId id, std::string_view key,
                               std::string_view value, bool is_delete,
                               Version version) {
  EnsureIndexSlot(id);
  VersionedValue*& slot = index_[id];
  if (is_delete) {
    if (slot == nullptr) return;
    slot = nullptr;
    map_.erase(map_.find(key));
    return;
  }
  if (slot != nullptr) {
    // Overwrite in place: no map lookup, no temporary key string.
    slot->value.assign(value);
    slot->version = version;
    return;
  }
  auto mit = map_.try_emplace(std::string(key)).first;
  mit->second.value = std::string(value);
  mit->second.version = version;
  slot = &mit->second;
}

}  // namespace blockoptr
