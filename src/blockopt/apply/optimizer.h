#ifndef BLOCKOPTR_BLOCKOPT_APPLY_OPTIMIZER_H_
#define BLOCKOPTR_BLOCKOPT_APPLY_OPTIMIZER_H_

#include <map>
#include <string>
#include <vector>

#include "blockopt/recommend/recommender.h"
#include "driver/experiment.h"

namespace blockoptr {

/// How the optimizer realizes contract-level recommendations: which
/// optimized contract variant replaces the original, and how the schedule
/// is rewritten. These correspond to the "update smart contract" rows of
/// the paper's Table 4 and require the use-case knowledge the paper notes
/// a user must supply (§7 Limitations).
struct ContractVariants {
  /// Pruned variant per contract (process model pruning).
  std::map<std::string, std::string> pruned;
  /// Delta-write variant per contract.
  std::map<std::string, std::string> delta;
  /// Data-model-altered variant per contract.
  std::map<std::string, std::string> altered;
  /// Partitioning: contract -> (function -> partition contract). All
  /// partitions are installed; the schedule routes per function.
  std::map<std::string, std::map<std::string, std::string>> partitions;

  /// The built-in mapping covering every contract shipped in
  /// src/contracts (scm->scm_pruned, drm->drm_delta/drmplay+drmmeta,
  /// ehr->ehr_pruned, dv->dv_voter, lap->lap_app).
  static const ContractVariants& Builtin();
};

/// Settings for applying recommendations (Table 4).
struct ApplySettings {
  ContractVariants variants = ContractVariants::Builtin();
  /// Endorsement-policy preset used for endorser restructuring (P4).
  int restructure_policy_preset = 4;
  /// Client multiplication factor for the boost (paper: double).
  int client_boost_factor = 2;
};

/// Applies the given recommendations to an experiment configuration and
/// returns the optimized configuration, per the paper's Table 4:
///
///   Activity reordering          -> client manager reorders the workload
///   Transaction rate control     -> send rate capped (default 100 TPS)
///   Process model pruning        -> pruned contract variant
///   Delta writes                 -> delta contract variant
///   Smart contract partitioning  -> split contracts + schedule rerouting
///   Data model alteration        -> re-keyed contract variant
///   Block size adaptation        -> block count := derived rate
///   Endorser restructuring       -> policy := P4, even distribution
///   Client resource boost        -> double the flagged orgs' clients
Result<ExperimentConfig> ApplyOptimizations(
    const ExperimentConfig& base, const std::vector<Recommendation>& recs,
    const ApplySettings& settings = ApplySettings());

/// One what-if re-run: the performance the base experiment reaches with
/// only this recommendation applied (a per-optimization bar of the
/// paper's Figures 7-11).
struct WhatIfEntry {
  Recommendation recommendation;
  PerformanceReport report;
};

/// The full what-if evaluation of a recommendation set.
struct WhatIfReport {
  /// One entry per input recommendation, in input order.
  std::vector<WhatIfEntry> individual;
  /// All recommendations applied at once (the paper's "combined" bar).
  PerformanceReport combined;
};

struct WhatIfOptions {
  ApplySettings apply;
  /// Worker threads for the re-runs (SweepOptions::jobs convention:
  /// 1 = serial, <= 0 = all hardware threads). The re-runs are fully
  /// independent experiments, so results are identical for any value.
  int jobs = 1;
};

/// Re-runs `base` once per recommendation (each applied alone) plus once
/// with all of them, distributing the runs over `options.jobs` threads.
/// Deterministic: the report for each entry is byte-identical to a serial
/// ApplyOptimizations + RunExperiment of that subset.
Result<WhatIfReport> EvaluateWhatIf(
    const ExperimentConfig& base, const std::vector<Recommendation>& recs,
    const WhatIfOptions& options = WhatIfOptions());

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_APPLY_OPTIMIZER_H_
