#include "blockopt/apply/optimizer.h"

#include <algorithm>
#include <utility>

#include "driver/sweep.h"

namespace blockoptr {

const ContractVariants& ContractVariants::Builtin() {
  static const ContractVariants* kBuiltin = [] {
    auto* v = new ContractVariants();
    v->pruned = {{"scm", "scm_pruned"}, {"ehr", "ehr_pruned"}};
    v->delta = {{"drm", "drm_delta"}};
    v->altered = {{"dv", "dv_voter"}, {"lap", "lap_app"}};
    v->partitions["drm"] = {{"Play", "drmplay"},
                            {"CalcRevenue", "drmplay"},
                            {"Create", "drmplay"},
                            {"ViewMetaData", "drmmeta"},
                            {"QueryRightHolders", "drmmeta"}};
    return v;
  }();
  return *kBuiltin;
}

namespace {

/// Swaps every reference to chaincode `from` (installation, seeds,
/// schedule) for `to`.
void ReplaceChaincode(ExperimentConfig& config, const std::string& from,
                      const std::string& to) {
  for (auto& name : config.chaincodes) {
    if (name == from) name = to;
  }
  for (auto& seed : config.seeds) {
    if (seed.chaincode == from) seed.chaincode = to;
  }
  for (auto& req : config.schedule) {
    if (req.chaincode == from) req.chaincode = to;
  }
}

/// Splits chaincode `from` into partitions per the function->partition
/// map: installs every partition, routes the schedule by function, and
/// replicates the seeds into every partition's namespace.
void PartitionChaincode(ExperimentConfig& config, const std::string& from,
                        const std::map<std::string, std::string>& routing) {
  config.chaincodes.erase(std::remove(config.chaincodes.begin(),
                                      config.chaincodes.end(), from),
                          config.chaincodes.end());
  std::vector<std::string> partitions;
  for (const auto& [fn, cc] : routing) {
    (void)fn;
    if (std::find(partitions.begin(), partitions.end(), cc) ==
        partitions.end()) {
      partitions.push_back(cc);
    }
  }
  for (const auto& cc : partitions) {
    if (std::find(config.chaincodes.begin(), config.chaincodes.end(), cc) ==
        config.chaincodes.end()) {
      config.chaincodes.push_back(cc);
    }
  }
  std::vector<SeedEntry> extra_seeds;
  for (auto& seed : config.seeds) {
    if (seed.chaincode != from) continue;
    // The primary key is duplicated across both partitions (paper §4.4.2:
    // "the underlying database is split into two by duplicating the
    // primary key across both").
    seed.chaincode = partitions.front();
    for (size_t i = 1; i < partitions.size(); ++i) {
      extra_seeds.push_back(SeedEntry{partitions[i], seed.key, seed.value});
    }
  }
  config.seeds.insert(config.seeds.end(), extra_seeds.begin(),
                      extra_seeds.end());
  for (auto& req : config.schedule) {
    if (req.chaincode != from) continue;
    auto it = routing.find(req.function);
    req.chaincode = it != routing.end() ? it->second : partitions.front();
  }
}

int OrgIndex(const std::string& org_name) {
  if (org_name.rfind("Org", 0) != 0) return 0;
  return std::atoi(org_name.c_str() + 3);
}

}  // namespace

Result<ExperimentConfig> ApplyOptimizations(
    const ExperimentConfig& base, const std::vector<Recommendation>& recs,
    const ApplySettings& settings) {
  ExperimentConfig config = base;

  const bool delta_recommended =
      HasRecommendation(recs, RecommendationType::kDeltaWrites);

  for (const auto& rec : recs) {
    switch (rec.type) {
      case RecommendationType::kActivityReordering: {
        // Reschedule the conflicting activities to run after the rest of
        // the traffic (the paper's DRM/SCM redesigns; equivalent in
        // effect to running reads first in the synthetic experiments).
        for (const auto& a : rec.activities) {
          if (std::find(config.client_manager.activities_last.begin(),
                        config.client_manager.activities_last.end(),
                        a) == config.client_manager.activities_last.end()) {
            config.client_manager.activities_last.push_back(a);
          }
        }
        break;
      }
      case RecommendationType::kTransactionRateControl:
        config.client_manager.rate_cap_tps =
            rec.suggested_rate_tps > 0 ? rec.suggested_rate_tps : 100;
        break;
      case RecommendationType::kProcessModelPruning:
        for (const auto& [from, to] : settings.variants.pruned) {
          ReplaceChaincode(config, from, to);
        }
        break;
      case RecommendationType::kDeltaWrites:
        for (const auto& [from, to] : settings.variants.delta) {
          ReplaceChaincode(config, from, to);
        }
        break;
      case RecommendationType::kSmartContractPartitioning:
        // When delta writes are applied too, they already remove the
        // counter dependency partitioning targets; applying both would
        // need a combined variant, so delta wins (see header comment).
        if (delta_recommended) break;
        for (const auto& [from, routing] : settings.variants.partitions) {
          bool installed =
              std::find(config.chaincodes.begin(), config.chaincodes.end(),
                        from) != config.chaincodes.end();
          if (installed) PartitionChaincode(config, from, routing);
        }
        break;
      case RecommendationType::kDataModelAlteration:
        for (const auto& [from, to] : settings.variants.altered) {
          ReplaceChaincode(config, from, to);
        }
        break;
      case RecommendationType::kBlockSizeAdaptation:
        if (rec.suggested_block_count > 0) {
          config.network.block_cutting.max_tx_count =
              rec.suggested_block_count;
        }
        break;
      case RecommendationType::kEndorserRestructuring:
        config.network.endorsement_policy = EndorsementPolicy::Preset(
            settings.restructure_policy_preset, config.network.num_orgs);
        config.network.endorser_dist_skew = 0;
        break;
      case RecommendationType::kClientResourceBoost: {
        auto& extra = config.network.extra_clients_per_org;
        extra.resize(static_cast<size_t>(config.network.num_orgs), 0);
        for (const auto& org : rec.orgs) {
          int idx = OrgIndex(org);
          if (idx < 1 || idx > config.network.num_orgs) {
            return Status::InvalidArgument(
                "client boost recommendation names unknown org '" + org +
                "'");
          }
          // Double (by default) the organization's client pool.
          NetworkConfig probe = base.network;
          int current = probe.ClientsOfOrg(idx);
          extra[static_cast<size_t>(idx - 1)] +=
              current * (settings.client_boost_factor - 1);
        }
        break;
      }
    }
  }
  return config;
}

Result<WhatIfReport> EvaluateWhatIf(const ExperimentConfig& base,
                                    const std::vector<Recommendation>& recs,
                                    const WhatIfOptions& options) {
  // Materialize every optimized configuration up front (cheap, and any
  // invalid recommendation fails before a single run starts), then hand
  // the batch to the sweep engine: one config per single-recommendation
  // run plus the all-recommendations config last.
  std::vector<ExperimentConfig> configs;
  configs.reserve(recs.size() + 1);
  for (const auto& rec : recs) {
    BLOCKOPTR_ASSIGN_OR_RETURN(
        auto cfg, ApplyOptimizations(base, {rec}, options.apply));
    configs.push_back(std::move(cfg));
  }
  BLOCKOPTR_ASSIGN_OR_RETURN(auto combined_cfg,
                             ApplyOptimizations(base, recs, options.apply));
  configs.push_back(std::move(combined_cfg));

  SweepRunner runner(SweepOptions{options.jobs});
  auto outputs = runner.Run(configs);

  WhatIfReport report;
  report.individual.reserve(recs.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    if (!outputs[i].ok()) return outputs[i].status();
    report.individual.push_back(
        WhatIfEntry{recs[i], std::move(outputs[i]->report)});
  }
  if (!outputs.back().ok()) return outputs.back().status();
  report.combined = std::move(outputs.back()->report);
  return report;
}

}  // namespace blockoptr
