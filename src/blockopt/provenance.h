#ifndef BLOCKOPTR_BLOCKOPT_PROVENANCE_H_
#define BLOCKOPTR_BLOCKOPT_PROVENANCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "blockopt/log/blockchain_log.h"

namespace blockoptr {

/// Provenance analysis of process deviations (paper §3): the *reason* the
/// base smart-contract design commits illogical activity paths as
/// read-only transactions is that the immutable record lets one "track,
/// for example, individuals or organizations who deviated from the
/// expected process model". This module performs exactly that tracking on
/// the blockchain log.
///
/// A deviation is a committed transaction whose transaction type differs
/// from its activity's dominant type — e.g. a Ship that committed
/// read-only because its PushASN precondition did not hold (the
/// Table 1 pruning condition, attributed to invokers).
struct Deviation {
  uint64_t commit_order = 0;
  std::string activity;
  TxType observed_type;
  TxType expected_type;
  std::string invoker_client;
  std::string invoker_org;
  double commit_timestamp = 0;
};

struct ProvenanceReport {
  std::vector<Deviation> deviations;
  /// Deviations per invoking organization / client — the accountability
  /// view an enterprise would act on (incentives/penalties, §3).
  std::map<std::string, uint64_t> by_org;
  std::map<std::string, uint64_t> by_client;
  std::map<std::string, uint64_t> by_activity;

  bool empty() const { return deviations.empty(); }
};

/// Options for deviation detection.
struct ProvenanceOptions {
  /// An activity participates only if observed at least this often.
  uint64_t min_activity_occurrences = 10;
  /// The dominant type must cover at least this fraction of the
  /// activity's transactions for the others to count as deviations
  /// (prevents flagging genuinely polymorphic activities).
  double dominant_type_fraction = 0.6;
  /// Include failed transactions (they also deviate; default true).
  bool include_failed = true;
};

/// Scans the log and returns every detected deviation with its invoker.
ProvenanceReport TrackDeviations(
    const BlockchainLog& log,
    const ProvenanceOptions& options = ProvenanceOptions());

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_PROVENANCE_H_
