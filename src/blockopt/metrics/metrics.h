#ifndef BLOCKOPTR_BLOCKOPT_METRICS_METRICS_H_
#define BLOCKOPTR_BLOCKOPT_METRICS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "blockopt/log/blockchain_log.h"
#include "common/interner.h"
#include "common/stats.h"

namespace blockoptr {

/// Tuning knobs for metric derivation (paper §4.3).
struct MetricsOptions {
  /// Interval size `ins` for the rate/failure distributions (seconds).
  double interval_s = 1.0;

  /// A key is hot when at least this many failed transactions access it
  /// AND it accounts for at least this fraction of all failures.
  uint64_t hotkey_min_failures = 30;
  double hotkey_failure_fraction = 0.15;
};

/// One detected data-value-correlated conflict: a failed transaction and
/// the committed transaction that invalidated its read (corDV(x,y) == 1).
struct ConflictPair {
  uint64_t failed_commit_order = 0;   // x
  uint64_t cause_commit_order = 0;    // y
  std::string failed_activity;        // A(x)
  std::string cause_activity;         // A(y)
  std::string key;                    // the contended key
  uint64_t distance = 0;              // corP(x, y): commit-order distance
  bool same_block = false;            // intra-block vs inter-block failure
  bool reorderable = false;           // WS(x) ∩ WS(y) == ∅ (Table 1)
  bool same_activity = false;         // A(x) == A(y)
  bool delta_candidate = false;       // single-key ±1 counter update
};

/// All metrics derived from one blockchain log (paper §4.3).
struct LogMetrics {
  // -- Rate metrics ----------------------------------------------------
  uint64_t total_txs = 0;
  double duration_s = 0;       // span of client timestamps
  double tr = 0;               // transaction rate Tr
  std::vector<double> trd;     // Trd_i (per interval, client timestamps)

  // -- Failure metrics -------------------------------------------------
  uint64_t failed_txs = 0;
  uint64_t mvcc_failures = 0;
  uint64_t phantom_failures = 0;
  uint64_t endorsement_failures = 0;
  double tfr = 0;              // total failure rate TFr
  std::vector<double> frd;     // Frd_i

  // -- Block size metrics ----------------------------------------------
  uint64_t num_blocks = 0;
  double b_sizeavg = 0;        // average transactions per block

  // -- Endorser / invoker significance ----------------------------------
  std::map<std::string, uint64_t> endorser_sig;     // EDsig per org
  std::map<std::string, uint64_t> invoker_sig;      // IVsig per client
  std::map<std::string, uint64_t> invoker_org_sig;  // IVsig per org

  // -- Key metrics -------------------------------------------------------
  std::map<std::string, uint64_t> key_freq;                // Kfreq
  std::map<std::string, std::set<std::string>> key_activities;  // Ksig
  std::vector<std::string> hot_keys;                        // HK

  /// Per-key, per-activity access statistics (drives the partitioning /
  /// data-model-alteration distinction: which activities fail on a hotkey
  /// and whether they write it).
  struct KeyAccessorStats {
    uint64_t accesses = 0;
    uint64_t failures = 0;
    bool writes = false;
  };
  std::map<std::string, std::map<std::string, KeyAccessorStats>>
      key_accessors;

  // -- Correlation metrics ----------------------------------------------
  std::vector<ConflictPair> conflicts;  // corDV instances with corP
  /// Aggregated conflicting activity pairs: (failed activity, cause
  /// activity) -> count.
  std::map<std::pair<std::string, std::string>, uint64_t> activity_conflicts;
  uint64_t intra_block_conflicts = 0;
  uint64_t inter_block_conflicts = 0;
  /// Same-activity adjacent-conflict count with unit distance (corPA==1).
  uint64_t adjacent_same_activity_conflicts = 0;
  uint64_t delta_candidates = 0;
  uint64_t reorderable_conflicts = 0;

  /// Per-activity transaction-type counts (for process-model pruning:
  /// the same activity committing with different TT values).
  std::map<std::string, std::map<TxType, uint64_t>> activity_tx_types;

  /// Number of activities (distinct smart-contract functions) observed.
  size_t num_activities = 0;

  double SuccessRate() const {
    if (total_txs == 0) return 0;
    return 1.0 - static_cast<double>(failed_txs) /
                     static_cast<double>(total_txs);
  }
};

/// Derives every §4.3 metric from a preprocessed blockchain log.
LogMetrics ComputeMetrics(const BlockchainLog& log,
                          const MetricsOptions& options = MetricsOptions());

/// Merges per-channel metric sets into the whole-experiment view of a
/// multi-channel run: counts, significance maps, key statistics, and
/// interval distributions sum; durations take the span maximum (channels
/// run concurrently); the derived rates (tr, tfr, b_sizeavg) and the hot
/// set are recomputed from the merged state with the same thresholds as
/// the per-log derivation. Conflict pairs concatenate in channel order —
/// their commit orders stay channel-local (channels have independent
/// ledgers), which the pairwise counters already account for. Returns an
/// empty LogMetrics for an empty input.
LogMetrics AggregateMetrics(const std::vector<LogMetrics>& per_channel,
                            const MetricsOptions& options = MetricsOptions());

/// Id-interned projection of one log row: exactly the attributes metric
/// derivation reads, with every repeated string — activity, invoker,
/// endorser orgs, state keys — replaced by an interner id (keys in
/// GlobalKeyInterner, names in GlobalNameInterner). The streaming engine
/// builds rows directly from committed transactions, so its commit hot
/// path materializes no strings; the batch pass converts each
/// BlockchainLogEntry. Both feed MetricsAccumulator::OnRow — one
/// implementation, so streaming and batch metrics agree by construction.
struct MetricsRow {
  double client_timestamp = 0;
  double commit_timestamp = 0;
  uint64_t commit_order = 0;
  uint64_t block_num = 0;
  TxStatus status = TxStatus::kValid;
  TxType tx_type = TxType::kRead;

  KeyId activity = kInvalidKeyId;        // name id
  KeyId invoker_client = kInvalidKeyId;  // name id
  KeyId invoker_org = kInvalidKeyId;     // name id
  std::vector<KeyId> endorsers;          // name ids, one per signature

  std::vector<KeyId> read_ids;      // RS(x): sorted by id, deduped
  std::vector<KeyId> write_ids;     // WS(x) incl. deletes: sorted, deduped
  std::vector<KeyId> accessed_ids;  // RWS(x): sorted by id, deduped
  std::vector<KeyId> value_write_ids;  // non-delete write keys, rwset order
  std::vector<KeyId> delete_ids;       // deleted keys, rwset order
  /// Range-query bounds. Bounds are arbitrary strings (not necessarily
  /// live keys), so they are kept as-is; range queries are sparse enough
  /// that the copies stay off the common path.
  std::vector<std::pair<std::string, std::string>> range_bounds;

  uint32_t num_value_writes = 0;
  bool has_deletes = false;
  /// The written value when num_value_writes == 1 (delta-write analysis).
  std::string single_write_value;

  bool failed() const {
    return status == TxStatus::kMvccReadConflict ||
           status == TxStatus::kPhantomReadConflict ||
           status == TxStatus::kEndorsementPolicyFailure;
  }
};

/// Converts a batch log row into the id-interned form.
MetricsRow RowFromEntry(const BlockchainLogEntry& entry);

/// Builds a row straight from a committed transaction, reusing the
/// rwset's cached KeyId views — no string materialization. The caller
/// stamps `commit_order` (the streaming engine numbers non-config rows
/// densely, the same numbering the batch log cleaner assigns).
MetricsRow RowFromTransaction(const Block& block, const Transaction& tx);

/// In-place variant: clears and refills `row`, keeping its vectors'
/// capacity. Feeding a recycled row makes steady-state streaming
/// derivation allocation-free.
void RowFromTransactionInto(const Block& block, const Transaction& tx,
                            MetricsRow& row);

/// Incremental metric derivation: feed log rows one at a time, in commit
/// order, and snapshot the full §4.3 metric set at any point. This is the
/// single implementation of the metric semantics — `ComputeMetrics` is a
/// loop over `OnEntry` plus one `Snapshot()` — so the streaming analysis
/// engine (fed at block-commit time) and the batch pipeline (fed from the
/// finished ledger) agree field-for-field by construction.
///
/// Memory is O(live keys + conflicts), the same order as the batch pass's
/// working state; it does not retain the log rows themselves. Key
/// aggregation runs on interned KeyIds (no per-entry string
/// materialization); strings are materialized once, in `Snapshot()`.
class MetricsAccumulator {
 public:
  explicit MetricsAccumulator(const MetricsOptions& options = MetricsOptions());

  /// Folds one row into the accumulator. Rows must arrive in commit order
  /// (the correlation metrics attribute each failure to the most recent
  /// committed writer seen so far). Equivalent to
  /// `OnRow(RowFromEntry(entry))`.
  void OnEntry(const BlockchainLogEntry& entry);

  /// Folds one id-interned row (same ordering contract as OnEntry). This
  /// is the implementation both pipelines share; the streaming engine
  /// calls it directly with rows built from committed transactions.
  void OnRow(const MetricsRow& row);

  /// Materializes the full metric set over everything seen so far.
  /// Field-for-field identical to `ComputeMetrics` over the same rows.
  LogMetrics Snapshot() const;

  // Cheap cumulative counters for continuous monitoring (no snapshot
  // needed): the streaming engine's windowed series read these per tick.
  uint64_t total_txs() const { return total_txs_; }
  uint64_t failed_txs() const { return failed_txs_; }
  uint64_t mvcc_failures() const { return mvcc_failures_; }
  uint64_t phantom_failures() const { return phantom_failures_; }
  uint64_t endorsement_failures() const { return endorsement_failures_; }
  uint64_t conflicts_detected() const { return conflicts_.size(); }
  uint64_t intra_block_conflicts() const { return intra_block_conflicts_; }
  uint64_t inter_block_conflicts() const { return inter_block_conflicts_; }
  uint64_t reorderable_conflicts() const { return reorderable_conflicts_; }
  uint64_t delta_candidates() const { return delta_candidates_; }

 private:
  /// Compact record of the latest committed writer of a key: everything
  /// the correlation metrics need from the cause transaction y without
  /// retaining the log row itself. Shared between all keys y wrote.
  struct CauseRecord {
    uint64_t seq = 0;  // arrival index; orders "most recent" comparisons
    uint64_t commit_order = 0;
    uint64_t block_num = 0;
    KeyId activity = kInvalidKeyId;  // name id
    std::vector<KeyId> write_ids;    // sorted-unique WS(y) view
    size_t num_writes = 0;           // writes (value-carrying, no deletes)
    bool has_deletes = false;
    KeyId single_write_key = kInvalidKeyId;  // set when num_writes == 1
    std::string single_write_value;
  };

  MetricsOptions options_;

  // Rate / failure / significance state (loop-1 of the batch pass).
  uint64_t total_txs_ = 0;
  double min_ts_ = 0;
  double max_ts_ = 0;
  IntervalCounter tx_intervals_;
  IntervalCounter fail_intervals_;
  // Per-row state is hash-keyed (O(1) per row); Snapshot() resolves ids
  // and rebuilds the string-ordered output maps, so ordering cost is
  // paid once per snapshot, never per row.
  std::unordered_set<uint64_t> blocks_;
  std::unordered_set<KeyId> activities_;  // name ids
  std::unordered_map<KeyId, std::map<TxType, uint64_t>> activity_tx_types_;
  uint64_t failed_txs_ = 0;
  uint64_t mvcc_failures_ = 0;
  uint64_t phantom_failures_ = 0;
  uint64_t endorsement_failures_ = 0;
  std::unordered_map<KeyId, uint64_t> endorser_sig_;     // name-id keyed
  std::unordered_map<KeyId, uint64_t> invoker_sig_;
  std::unordered_map<KeyId, uint64_t> invoker_org_sig_;

  // Key aggregation by interned id (loop-2 of the batch pass).
  struct KeyAgg {
    uint64_t fail_freq = 0;
    std::unordered_map<KeyId, LogMetrics::KeyAccessorStats>
        accessors;  // by activity name id
  };
  std::unordered_map<KeyId, KeyAgg> key_agg_;

  // Correlation replay state (loop-3 of the batch pass). Keyed by the
  // interned key's string_view — stable for the process lifetime
  // (interner storage is append-only) — so the map stays ordered by key
  // *string* (id order is not lexicographic: phantom range scans must
  // see the same candidates in the same order as a string-keyed map)
  // while each map operation resolves the id exactly once.
  std::map<std::string_view, std::shared_ptr<CauseRecord>> last_writer_;
  uint64_t next_seq_ = 0;
  std::vector<ConflictPair> conflicts_;
  std::map<std::pair<std::string, std::string>, uint64_t> activity_conflicts_;
  uint64_t intra_block_conflicts_ = 0;
  uint64_t inter_block_conflicts_ = 0;
  uint64_t adjacent_same_activity_conflicts_ = 0;
  uint64_t delta_candidates_ = 0;
  uint64_t reorderable_conflicts_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_METRICS_METRICS_H_
