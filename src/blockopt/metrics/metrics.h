#ifndef BLOCKOPTR_BLOCKOPT_METRICS_METRICS_H_
#define BLOCKOPTR_BLOCKOPT_METRICS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "blockopt/log/blockchain_log.h"
#include "common/interner.h"
#include "common/stats.h"

namespace blockoptr {

/// Tuning knobs for metric derivation (paper §4.3).
struct MetricsOptions {
  /// Interval size `ins` for the rate/failure distributions (seconds).
  double interval_s = 1.0;

  /// A key is hot when at least this many failed transactions access it
  /// AND it accounts for at least this fraction of all failures.
  uint64_t hotkey_min_failures = 30;
  double hotkey_failure_fraction = 0.15;
};

/// One detected data-value-correlated conflict: a failed transaction and
/// the committed transaction that invalidated its read (corDV(x,y) == 1).
struct ConflictPair {
  uint64_t failed_commit_order = 0;   // x
  uint64_t cause_commit_order = 0;    // y
  std::string failed_activity;        // A(x)
  std::string cause_activity;         // A(y)
  std::string key;                    // the contended key
  uint64_t distance = 0;              // corP(x, y): commit-order distance
  bool same_block = false;            // intra-block vs inter-block failure
  bool reorderable = false;           // WS(x) ∩ WS(y) == ∅ (Table 1)
  bool same_activity = false;         // A(x) == A(y)
  bool delta_candidate = false;       // single-key ±1 counter update
};

/// All metrics derived from one blockchain log (paper §4.3).
struct LogMetrics {
  // -- Rate metrics ----------------------------------------------------
  uint64_t total_txs = 0;
  double duration_s = 0;       // span of client timestamps
  double tr = 0;               // transaction rate Tr
  std::vector<double> trd;     // Trd_i (per interval, client timestamps)

  // -- Failure metrics -------------------------------------------------
  uint64_t failed_txs = 0;
  uint64_t mvcc_failures = 0;
  uint64_t phantom_failures = 0;
  uint64_t endorsement_failures = 0;
  double tfr = 0;              // total failure rate TFr
  std::vector<double> frd;     // Frd_i

  // -- Block size metrics ----------------------------------------------
  uint64_t num_blocks = 0;
  double b_sizeavg = 0;        // average transactions per block

  // -- Endorser / invoker significance ----------------------------------
  std::map<std::string, uint64_t> endorser_sig;     // EDsig per org
  std::map<std::string, uint64_t> invoker_sig;      // IVsig per client
  std::map<std::string, uint64_t> invoker_org_sig;  // IVsig per org

  // -- Key metrics -------------------------------------------------------
  std::map<std::string, uint64_t> key_freq;                // Kfreq
  std::map<std::string, std::set<std::string>> key_activities;  // Ksig
  std::vector<std::string> hot_keys;                        // HK

  /// Per-key, per-activity access statistics (drives the partitioning /
  /// data-model-alteration distinction: which activities fail on a hotkey
  /// and whether they write it).
  struct KeyAccessorStats {
    uint64_t accesses = 0;
    uint64_t failures = 0;
    bool writes = false;
  };
  std::map<std::string, std::map<std::string, KeyAccessorStats>>
      key_accessors;

  // -- Correlation metrics ----------------------------------------------
  std::vector<ConflictPair> conflicts;  // corDV instances with corP
  /// Aggregated conflicting activity pairs: (failed activity, cause
  /// activity) -> count.
  std::map<std::pair<std::string, std::string>, uint64_t> activity_conflicts;
  uint64_t intra_block_conflicts = 0;
  uint64_t inter_block_conflicts = 0;
  /// Same-activity adjacent-conflict count with unit distance (corPA==1).
  uint64_t adjacent_same_activity_conflicts = 0;
  uint64_t delta_candidates = 0;
  uint64_t reorderable_conflicts = 0;

  /// Per-activity transaction-type counts (for process-model pruning:
  /// the same activity committing with different TT values).
  std::map<std::string, std::map<TxType, uint64_t>> activity_tx_types;

  /// Number of activities (distinct smart-contract functions) observed.
  size_t num_activities = 0;

  double SuccessRate() const {
    if (total_txs == 0) return 0;
    return 1.0 - static_cast<double>(failed_txs) /
                     static_cast<double>(total_txs);
  }
};

/// Derives every §4.3 metric from a preprocessed blockchain log.
LogMetrics ComputeMetrics(const BlockchainLog& log,
                          const MetricsOptions& options = MetricsOptions());

/// Merges per-channel metric sets into the whole-experiment view of a
/// multi-channel run: counts, significance maps, key statistics, and
/// interval distributions sum; durations take the span maximum (channels
/// run concurrently); the derived rates (tr, tfr, b_sizeavg) and the hot
/// set are recomputed from the merged state with the same thresholds as
/// the per-log derivation. Conflict pairs concatenate in channel order —
/// their commit orders stay channel-local (channels have independent
/// ledgers), which the pairwise counters already account for. Returns an
/// empty LogMetrics for an empty input.
LogMetrics AggregateMetrics(const std::vector<LogMetrics>& per_channel,
                            const MetricsOptions& options = MetricsOptions());

/// Id-interned projection of one log row: exactly the attributes metric
/// derivation reads, with every repeated string — activity, invoker,
/// endorser orgs, state keys — replaced by an interner id (keys in
/// GlobalKeyInterner, names in GlobalNameInterner). The streaming engine
/// builds rows directly from committed transactions, so its commit hot
/// path materializes no strings; the batch pass converts each
/// BlockchainLogEntry. Both feed MetricsAccumulator::OnRow — one
/// implementation, so streaming and batch metrics agree by construction.
struct MetricsRow {
  double client_timestamp = 0;
  double commit_timestamp = 0;
  uint64_t commit_order = 0;
  uint64_t block_num = 0;
  TxStatus status = TxStatus::kValid;
  TxType tx_type = TxType::kRead;

  KeyId activity = kInvalidKeyId;        // name id
  KeyId invoker_client = kInvalidKeyId;  // name id
  KeyId invoker_org = kInvalidKeyId;     // name id
  std::vector<KeyId> endorsers;          // name ids, one per signature

  std::vector<KeyId> read_ids;      // RS(x): sorted by id, deduped
  std::vector<KeyId> write_ids;     // WS(x) incl. deletes: sorted, deduped
  std::vector<KeyId> accessed_ids;  // RWS(x): sorted by id, deduped
  std::vector<KeyId> value_write_ids;  // non-delete write keys, rwset order
  std::vector<KeyId> delete_ids;       // deleted keys, rwset order
  /// Range-query bounds. Bounds are arbitrary strings (not necessarily
  /// live keys), so they are kept as-is; range queries are sparse enough
  /// that the copies stay off the common path.
  std::vector<std::pair<std::string, std::string>> range_bounds;

  uint32_t num_value_writes = 0;
  bool has_deletes = false;
  /// The written value when num_value_writes == 1 (delta-write analysis).
  std::string single_write_value;

  bool failed() const {
    return status == TxStatus::kMvccReadConflict ||
           status == TxStatus::kPhantomReadConflict ||
           status == TxStatus::kEndorsementPolicyFailure;
  }
};

/// Converts a batch log row into the id-interned form.
MetricsRow RowFromEntry(const BlockchainLogEntry& entry);

/// Builds a row straight from a committed transaction, reusing the
/// rwset's cached KeyId views — no string materialization. The caller
/// stamps `commit_order` (the streaming engine numbers non-config rows
/// densely, the same numbering the batch log cleaner assigns).
MetricsRow RowFromTransaction(const Block& block, const Transaction& tx);

/// In-place variant: clears and refills `row`, keeping its vectors'
/// capacity. Feeding a recycled row makes steady-state streaming
/// derivation allocation-free.
void RowFromTransactionInto(const Block& block, const Transaction& tx,
                            MetricsRow& row);

/// Incremental metric derivation: feed log rows one at a time, in commit
/// order, and snapshot the full §4.3 metric set at any point. This is the
/// single implementation of the metric semantics — `ComputeMetrics` is a
/// loop over `OnEntry` plus one `Snapshot()` — so the streaming analysis
/// engine (fed at block-commit time) and the batch pipeline (fed from the
/// finished ledger) agree field-for-field by construction.
///
/// Memory is O(live keys + conflicts), the same order as the batch pass's
/// working state; it does not retain the log rows themselves. Key
/// aggregation runs on interned KeyIds (no per-entry string
/// materialization); strings are materialized once, in `Snapshot()`.
///
/// Accumulators are *mergeable*: splitting a row stream at arbitrary
/// points into panes, feeding each pane its own accumulator, and folding
/// the panes left-to-right with `Merge` yields state identical to one
/// accumulator fed every row (see Merge for the causality mechanics).
/// The streaming engine exploits this to evaluate sliding windows from
/// O(1) sealed-pane merges instead of re-feeding O(window) rows.
class MetricsAccumulator {
 public:
  explicit MetricsAccumulator(const MetricsOptions& options = MetricsOptions());

  /// Folds one row into the accumulator. Rows must arrive in commit order
  /// (the correlation metrics attribute each failure to the most recent
  /// committed writer seen so far). Equivalent to
  /// `OnRow(RowFromEntry(entry))`.
  void OnEntry(const BlockchainLogEntry& entry);

  /// Folds one id-interned row (same ordering contract as OnEntry). This
  /// is the implementation both pipelines share; the streaming engine
  /// calls it directly with rows built from committed transactions.
  void OnRow(const MetricsRow& row);

  /// Folds a whole right-hand pane into this accumulator. Precondition:
  /// every row `right` saw comes after (in commit order) every row this
  /// accumulator saw, and both were built with the same MetricsOptions.
  /// Postcondition: `*this` is field-for-field identical — Snapshot(),
  /// counters, and future OnRow/Merge behavior — to an accumulator that
  /// consumed this's rows followed by right's rows one at a time.
  ///
  /// Counters and per-key/per-activity maps merge by addition. Failure
  /// causality spans the seam: each accumulator carries (a) its final
  /// per-key writer frontier, (b) tombstones for keys whose net effect is
  /// a delete, and (c) its *unresolved prefix* — failures whose cause, if
  /// any, precedes its first row. Merging rebases right's frontier onto
  /// this one, masks this frontier with right's tombstones, and resolves
  /// right's unresolved prefix against this frontier exactly as OnRow
  /// would have (lexicographic candidate order, most-recent-writer wins,
  /// range scans honoring deletes), splicing resolved conflict pairs into
  /// their original stream positions.
  void Merge(const MetricsAccumulator& right);

  /// How much of the per-key detail Snapshot() materializes. The per-key
  /// string maps (key_activities / key_accessors / key_freq) dominate
  /// snapshot cost — one string materialization and ordered-map insert
  /// per distinct key — yet every consumer of a *window* snapshot (the
  /// streaming engine's per-evaluation recommender pass) reads them only
  /// by `.find()` on members of the hot set. kHotKeysOnly skips
  /// key_activities entirely and restricts key_accessors / key_freq to
  /// the hot keys, leaving every scalar, conflict, and hot-set field
  /// byte-identical to kFull.
  enum class SnapshotDetail { kFull, kHotKeysOnly };

  /// Materializes the full metric set over everything seen so far.
  /// Field-for-field identical to `ComputeMetrics` over the same rows
  /// (with kHotKeysOnly, identical outside the cold-key map entries).
  LogMetrics Snapshot(SnapshotDetail detail = SnapshotDetail::kFull) const;

  /// Returns the accumulator to its just-constructed state (same
  /// MetricsOptions) while keeping container capacities and hash-table
  /// buckets, so a caller that repeatedly builds short-lived
  /// accumulators — the streaming engine's per-evaluation window fold
  /// and pane recycling — stays off the allocator in steady state.
  void Reset();

  // Cheap cumulative counters for continuous monitoring (no snapshot
  // needed): the streaming engine's windowed series read these per tick.
  uint64_t total_txs() const { return total_txs_; }
  uint64_t failed_txs() const { return failed_txs_; }
  uint64_t mvcc_failures() const { return mvcc_failures_; }
  uint64_t phantom_failures() const { return phantom_failures_; }
  uint64_t endorsement_failures() const { return endorsement_failures_; }
  uint64_t conflicts_detected() const { return conflicts_.size(); }
  uint64_t intra_block_conflicts() const { return intra_block_conflicts_; }
  uint64_t inter_block_conflicts() const { return inter_block_conflicts_; }
  uint64_t reorderable_conflicts() const { return reorderable_conflicts_; }
  uint64_t delta_candidates() const { return delta_candidates_; }
  /// Failures whose cause (if any) precedes this accumulator's first row
  /// — resolvable only by merging onto a left pane.
  size_t unresolved_prefix_size() const { return pending_.size(); }

 private:
  /// Compact record of the latest committed writer of a key: everything
  /// the correlation metrics need from the cause transaction y without
  /// retaining the log row itself. Shared between all keys y wrote, and
  /// immutable once built so merged accumulators can alias it.
  struct CauseRecord {
    uint64_t commit_order = 0;
    uint64_t block_num = 0;
    KeyId activity = kInvalidKeyId;  // name id
    std::vector<KeyId> write_ids;    // sorted-unique WS(y) view
    size_t num_writes = 0;           // writes (value-carrying, no deletes)
    bool has_deletes = false;
    KeyId single_write_key = kInvalidKeyId;  // set when num_writes == 1
    std::string single_write_value;
  };

  /// One per-key frontier slot. `seq` (this accumulator's arrival index
  /// of the writer) lives here rather than in the shared CauseRecord so
  /// Merge can rebase right-pane entries onto this pane's sequence space
  /// without cloning the records they point at.
  struct FrontierEntry {
    uint64_t seq = 0;  // arrival index; orders "most recent" comparisons
    std::shared_ptr<const CauseRecord> record;
  };

  /// A failed read (MVCC/phantom) whose candidate search found no writer
  /// in this accumulator: everything needed to re-run the search against
  /// a left pane's frontier at merge time and, on a hit, emit the exact
  /// ConflictPair OnRow would have.
  struct PendingConflict {
    uint64_t commit_order = 0;
    uint64_t block_num = 0;
    KeyId activity = kInvalidKeyId;  // name id
    TxStatus status = TxStatus::kValid;
    std::vector<KeyId> write_ids;  // sorted-unique WS(x) view
    uint32_t num_value_writes = 0;
    bool has_deletes = false;
    KeyId single_write_key = kInvalidKeyId;  // set when num_value_writes == 1
    std::string single_write_value;
    /// Read keys still eligible for a left-pane cause, in lexicographic
    /// order: keys this pane wrote before x resolved x locally, and keys
    /// it deleted before x mask any left-pane writer. Views point into
    /// the process-lifetime interner storage.
    std::vector<std::string_view> eligible_reads;
    /// Range queries with the keys this pane had deleted (net) before x —
    /// a left-pane writer of a masked key is not a candidate.
    struct RangeProbe {
      std::string start, end;
      std::vector<std::string_view> masked;
    };
    std::vector<RangeProbe> ranges;
    /// Splice position: number of resolved conflicts this accumulator
    /// held when x arrived, so merge-time resolution lands the pair in
    /// stream order.
    size_t slot = 0;
  };

  /// Id-based internal form of ConflictPair: activity names stay interned
  /// and the contended key is a view into the interner's process-lifetime
  /// storage, so recording a conflict and copying it across a pane merge
  /// are allocation-free. Snapshot() materializes the strings once.
  struct ConflictRec {
    uint64_t failed_commit_order = 0;
    uint64_t cause_commit_order = 0;
    KeyId failed_activity = kInvalidKeyId;  // name id
    KeyId cause_activity = kInvalidKeyId;   // name id
    std::string_view key;
    uint64_t distance = 0;
    bool same_block = false;
    bool reorderable = false;
    bool same_activity = false;
    bool delta_candidate = false;
  };

  /// Re-runs the candidate search for `pending` against this frontier
  /// and, on a hit, appends the conflict record (updating every
  /// correlation counter). Returns true when resolved.
  bool ResolvePending(const PendingConflict& pending);

  /// Appends the conflict record for failed reader x (the scalar arguments)
  /// against `cause`, updating every correlation counter — the one
  /// emission path shared by OnRow and merge-time resolution.
  void RecordConflict(uint64_t x_commit_order, uint64_t x_block_num,
                      KeyId x_activity, TxStatus x_status,
                      const std::vector<KeyId>& x_write_ids,
                      uint32_t x_num_value_writes, bool x_has_deletes,
                      KeyId x_single_write_key,
                      const std::string& x_single_write_value,
                      const CauseRecord& cause,
                      std::string_view contended_key);

  MetricsOptions options_;

  // Rate / failure / significance state (loop-1 of the batch pass).
  uint64_t total_txs_ = 0;
  double min_ts_ = 0;
  double max_ts_ = 0;
  IntervalCounter tx_intervals_;
  IntervalCounter fail_intervals_;
  // Per-row state is hash-keyed (O(1) per row); Snapshot() resolves ids
  // and rebuilds the string-ordered output maps, so ordering cost is
  // paid once per snapshot, never per row.
  std::unordered_set<uint64_t> blocks_;
  std::unordered_set<KeyId> activities_;  // name ids
  std::unordered_map<KeyId, std::map<TxType, uint64_t>> activity_tx_types_;
  uint64_t failed_txs_ = 0;
  uint64_t mvcc_failures_ = 0;
  uint64_t phantom_failures_ = 0;
  uint64_t endorsement_failures_ = 0;
  std::unordered_map<KeyId, uint64_t> endorser_sig_;     // name-id keyed
  std::unordered_map<KeyId, uint64_t> invoker_sig_;
  std::unordered_map<KeyId, uint64_t> invoker_org_sig_;

  // Key aggregation by interned id (loop-2 of the batch pass).
  struct KeyAgg {
    uint64_t fail_freq = 0;
    /// Per-activity stats as a tiny flat array — a key is touched by a
    /// handful of activities, so a linear scan beats a nested hash map's
    /// per-key bucket allocation in the per-row hot path and in pane
    /// merges. Order is insertion order; Snapshot() re-sorts by name.
    struct Accessor {
      KeyId activity = kInvalidKeyId;  // name id
      LogMetrics::KeyAccessorStats stats;
    };
    std::vector<Accessor> accessors;

    LogMetrics::KeyAccessorStats& StatsFor(KeyId activity) {
      for (Accessor& a : accessors) {
        if (a.activity == activity) return a.stats;
      }
      accessors.push_back(Accessor{activity, {}});
      return accessors.back().stats;
    }
  };
  std::unordered_map<KeyId, KeyAgg> key_agg_;

  // Correlation replay state (loop-3 of the batch pass). Keyed by the
  // interned key's string_view — stable for the process lifetime
  // (interner storage is append-only) — so the map stays ordered by key
  // *string* (id order is not lexicographic: phantom range scans must
  // see the same candidates in the same order as a string-keyed map)
  // while each map operation resolves the id exactly once.
  std::map<std::string_view, FrontierEntry> last_writer_;
  // Keys whose net effect in this accumulator is a delete: they erase a
  // left pane's frontier entry at merge time. Ordered for range masking.
  std::set<std::string_view> tombstones_;
  // Unresolved prefix, ascending by slot (capture order).
  std::vector<PendingConflict> pending_;
  uint64_t next_seq_ = 0;
  std::vector<ConflictRec> conflicts_;
  // (failed activity, cause activity) name-id pairs; resolved to the
  // string-pair-keyed output map in Snapshot().
  std::map<std::pair<KeyId, KeyId>, uint64_t> activity_conflicts_;
  uint64_t intra_block_conflicts_ = 0;
  uint64_t inter_block_conflicts_ = 0;
  uint64_t adjacent_same_activity_conflicts_ = 0;
  uint64_t delta_candidates_ = 0;
  uint64_t reorderable_conflicts_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_METRICS_METRICS_H_
