#ifndef BLOCKOPTR_BLOCKOPT_METRICS_METRICS_H_
#define BLOCKOPTR_BLOCKOPT_METRICS_METRICS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "blockopt/log/blockchain_log.h"

namespace blockoptr {

/// Tuning knobs for metric derivation (paper §4.3).
struct MetricsOptions {
  /// Interval size `ins` for the rate/failure distributions (seconds).
  double interval_s = 1.0;

  /// A key is hot when at least this many failed transactions access it
  /// AND it accounts for at least this fraction of all failures.
  uint64_t hotkey_min_failures = 30;
  double hotkey_failure_fraction = 0.15;
};

/// One detected data-value-correlated conflict: a failed transaction and
/// the committed transaction that invalidated its read (corDV(x,y) == 1).
struct ConflictPair {
  uint64_t failed_commit_order = 0;   // x
  uint64_t cause_commit_order = 0;    // y
  std::string failed_activity;        // A(x)
  std::string cause_activity;         // A(y)
  std::string key;                    // the contended key
  uint64_t distance = 0;              // corP(x, y): commit-order distance
  bool same_block = false;            // intra-block vs inter-block failure
  bool reorderable = false;           // WS(x) ∩ WS(y) == ∅ (Table 1)
  bool same_activity = false;         // A(x) == A(y)
  bool delta_candidate = false;       // single-key ±1 counter update
};

/// All metrics derived from one blockchain log (paper §4.3).
struct LogMetrics {
  // -- Rate metrics ----------------------------------------------------
  uint64_t total_txs = 0;
  double duration_s = 0;       // span of client timestamps
  double tr = 0;               // transaction rate Tr
  std::vector<double> trd;     // Trd_i (per interval, client timestamps)

  // -- Failure metrics -------------------------------------------------
  uint64_t failed_txs = 0;
  uint64_t mvcc_failures = 0;
  uint64_t phantom_failures = 0;
  uint64_t endorsement_failures = 0;
  double tfr = 0;              // total failure rate TFr
  std::vector<double> frd;     // Frd_i

  // -- Block size metrics ----------------------------------------------
  uint64_t num_blocks = 0;
  double b_sizeavg = 0;        // average transactions per block

  // -- Endorser / invoker significance ----------------------------------
  std::map<std::string, uint64_t> endorser_sig;     // EDsig per org
  std::map<std::string, uint64_t> invoker_sig;      // IVsig per client
  std::map<std::string, uint64_t> invoker_org_sig;  // IVsig per org

  // -- Key metrics -------------------------------------------------------
  std::map<std::string, uint64_t> key_freq;                // Kfreq
  std::map<std::string, std::set<std::string>> key_activities;  // Ksig
  std::vector<std::string> hot_keys;                        // HK

  /// Per-key, per-activity access statistics (drives the partitioning /
  /// data-model-alteration distinction: which activities fail on a hotkey
  /// and whether they write it).
  struct KeyAccessorStats {
    uint64_t accesses = 0;
    uint64_t failures = 0;
    bool writes = false;
  };
  std::map<std::string, std::map<std::string, KeyAccessorStats>>
      key_accessors;

  // -- Correlation metrics ----------------------------------------------
  std::vector<ConflictPair> conflicts;  // corDV instances with corP
  /// Aggregated conflicting activity pairs: (failed activity, cause
  /// activity) -> count.
  std::map<std::pair<std::string, std::string>, uint64_t> activity_conflicts;
  uint64_t intra_block_conflicts = 0;
  uint64_t inter_block_conflicts = 0;
  /// Same-activity adjacent-conflict count with unit distance (corPA==1).
  uint64_t adjacent_same_activity_conflicts = 0;
  uint64_t delta_candidates = 0;
  uint64_t reorderable_conflicts = 0;

  /// Per-activity transaction-type counts (for process-model pruning:
  /// the same activity committing with different TT values).
  std::map<std::string, std::map<TxType, uint64_t>> activity_tx_types;

  /// Number of activities (distinct smart-contract functions) observed.
  size_t num_activities = 0;

  double SuccessRate() const {
    if (total_txs == 0) return 0;
    return 1.0 - static_cast<double>(failed_txs) /
                     static_cast<double>(total_txs);
  }
};

/// Derives every §4.3 metric from a preprocessed blockchain log.
LogMetrics ComputeMetrics(const BlockchainLog& log,
                          const MetricsOptions& options = MetricsOptions());

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_METRICS_METRICS_H_
