// Row conversion and the batch entry points. The per-row fold itself —
// MetricsAccumulator — lives in accumulator.cc alongside its pane-merge
// machinery.
#include <algorithm>

#include "blockopt/metrics/metrics.h"
#include "common/interner.h"

namespace blockoptr {

MetricsRow RowFromEntry(const BlockchainLogEntry& e) {
  Interner& keys = GlobalKeyInterner();
  Interner& names = GlobalNameInterner();
  MetricsRow r;
  r.client_timestamp = e.client_timestamp;
  r.commit_timestamp = e.commit_timestamp;
  r.commit_order = e.commit_order;
  r.block_num = e.block_num;
  r.status = e.status;
  r.tx_type = e.tx_type;
  r.activity = names.Intern(e.activity);
  r.invoker_client = names.Intern(e.invoker_client);
  r.invoker_org = names.Intern(e.invoker_org);
  r.endorsers.reserve(e.endorsers.size());
  for (const auto& org : e.endorsers) r.endorsers.push_back(names.Intern(org));
  r.read_ids.reserve(e.read_keys.size());
  for (const auto& k : e.read_keys) r.read_ids.push_back(keys.Intern(k));
  std::sort(r.read_ids.begin(), r.read_ids.end());  // already deduped
  r.write_ids = e.WriteKeyIds();
  r.accessed_ids = e.AccessedKeyIds();
  r.value_write_ids.reserve(e.writes.size());
  for (const auto& [k, v] : e.writes) {
    (void)v;
    r.value_write_ids.push_back(keys.Intern(k));
  }
  r.delete_ids.reserve(e.delete_keys.size());
  for (const auto& k : e.delete_keys) r.delete_ids.push_back(keys.Intern(k));
  r.range_bounds = e.range_bounds;
  r.num_value_writes = static_cast<uint32_t>(e.writes.size());
  r.has_deletes = !e.delete_keys.empty();
  if (e.writes.size() == 1) r.single_write_value = e.writes[0].second;
  return r;
}

MetricsRow RowFromTransaction(const Block& block, const Transaction& tx) {
  MetricsRow row;
  RowFromTransactionInto(block, tx, row);
  return row;
}

void RowFromTransactionInto(const Block& block, const Transaction& tx,
                            MetricsRow& r) {
  Interner& keys = GlobalKeyInterner();
  Interner& names = GlobalNameInterner();
  r.endorsers.clear();
  r.value_write_ids.clear();
  r.delete_ids.clear();
  r.range_bounds.clear();
  r.num_value_writes = 0;
  r.has_deletes = false;
  r.single_write_value.clear();
  r.commit_order = 0;
  r.client_timestamp = tx.client_timestamp;
  r.commit_timestamp = tx.commit_timestamp;
  r.block_num = block.block_num;
  r.status = tx.status;
  r.tx_type = DeriveTxType(tx.rwset);
  r.activity = names.Intern(tx.activity);
  r.invoker_client = names.Intern(tx.invoker.client_id);
  r.invoker_org = names.Intern(tx.invoker.org);
  r.endorsers.reserve(tx.endorsers.size());
  for (const auto& org : tx.endorsers) {
    r.endorsers.push_back(names.Intern(org));
  }
  r.read_ids = tx.rwset.ReadKeyIds();
  r.write_ids = tx.rwset.WriteKeyIds();
  r.accessed_ids = tx.rwset.AccessedKeyIds();
  for (const auto& w : tx.rwset.writes) {
    if (w.cached_id == kInvalidKeyId) w.cached_id = keys.Intern(w.key);
    if (w.is_delete) {
      r.delete_ids.push_back(w.cached_id);
      r.has_deletes = true;
    } else {
      r.value_write_ids.push_back(w.cached_id);
      ++r.num_value_writes;
    }
  }
  if (r.num_value_writes == 1) {
    for (const auto& w : tx.rwset.writes) {
      if (!w.is_delete) {
        r.single_write_value = w.value;
        break;
      }
    }
  }
  for (const auto& rq : tx.rwset.range_queries) {
    r.range_bounds.emplace_back(rq.start_key, rq.end_key);
  }
}

LogMetrics ComputeMetrics(const BlockchainLog& log,
                          const MetricsOptions& options) {
  MetricsAccumulator acc(options);
  for (const auto& e : log.entries()) acc.OnEntry(e);
  return acc.Snapshot();
}

LogMetrics AggregateMetrics(const std::vector<LogMetrics>& per_channel,
                            const MetricsOptions& options) {
  LogMetrics m;
  if (per_channel.empty()) return m;

  for (const LogMetrics& ch : per_channel) {
    m.total_txs += ch.total_txs;
    m.duration_s = std::max(m.duration_s, ch.duration_s);
    if (ch.trd.size() > m.trd.size()) m.trd.resize(ch.trd.size(), 0.0);
    for (size_t i = 0; i < ch.trd.size(); ++i) m.trd[i] += ch.trd[i];

    m.failed_txs += ch.failed_txs;
    m.mvcc_failures += ch.mvcc_failures;
    m.phantom_failures += ch.phantom_failures;
    m.endorsement_failures += ch.endorsement_failures;
    if (ch.frd.size() > m.frd.size()) m.frd.resize(ch.frd.size(), 0.0);
    for (size_t i = 0; i < ch.frd.size(); ++i) m.frd[i] += ch.frd[i];

    m.num_blocks += ch.num_blocks;

    for (const auto& [org, n] : ch.endorser_sig) m.endorser_sig[org] += n;
    for (const auto& [cl, n] : ch.invoker_sig) m.invoker_sig[cl] += n;
    for (const auto& [org, n] : ch.invoker_org_sig) {
      m.invoker_org_sig[org] += n;
    }

    for (const auto& [key, freq] : ch.key_freq) m.key_freq[key] += freq;
    for (const auto& [key, acts] : ch.key_activities) {
      m.key_activities[key].insert(acts.begin(), acts.end());
    }
    for (const auto& [key, accessors] : ch.key_accessors) {
      auto& merged = m.key_accessors[key];
      for (const auto& [activity, stats] : accessors) {
        auto& s = merged[activity];
        s.accesses += stats.accesses;
        s.failures += stats.failures;
        s.writes = s.writes || stats.writes;
      }
    }

    m.conflicts.insert(m.conflicts.end(), ch.conflicts.begin(),
                       ch.conflicts.end());
    for (const auto& [pair, n] : ch.activity_conflicts) {
      m.activity_conflicts[pair] += n;
    }
    m.intra_block_conflicts += ch.intra_block_conflicts;
    m.inter_block_conflicts += ch.inter_block_conflicts;
    m.adjacent_same_activity_conflicts +=
        ch.adjacent_same_activity_conflicts;
    m.delta_candidates += ch.delta_candidates;
    m.reorderable_conflicts += ch.reorderable_conflicts;

    for (const auto& [activity, types] : ch.activity_tx_types) {
      auto& merged = m.activity_tx_types[activity];
      for (const auto& [type, n] : types) merged[type] += n;
    }
  }
  m.frd.resize(m.trd.size(), 0.0);  // align interval vectors

  // Derived rates over the merged state, with the batch formulas.
  m.tr = m.duration_s > 0 ? static_cast<double>(m.total_txs) / m.duration_s
                          : static_cast<double>(m.total_txs);
  m.tfr = m.duration_s > 0
              ? static_cast<double>(m.failed_txs) / m.duration_s
              : static_cast<double>(m.failed_txs);
  m.b_sizeavg = m.num_blocks > 0 ? static_cast<double>(m.total_txs) /
                                       static_cast<double>(m.num_blocks)
                                 : 0;
  m.num_activities = m.activity_tx_types.size();

  // Re-apply the hot-key rule to merged per-key failure frequencies: a
  // key hot on no individual channel can still be hot experiment-wide.
  const uint64_t hot_threshold = std::max<uint64_t>(
      options.hotkey_min_failures,
      static_cast<uint64_t>(options.hotkey_failure_fraction *
                            static_cast<double>(m.failed_txs)));
  for (const auto& [key, freq] : m.key_freq) {
    if (freq >= hot_threshold) m.hot_keys.push_back(key);
  }
  std::sort(m.hot_keys.begin(), m.hot_keys.end(),
            [&](const std::string& a, const std::string& b) {
              uint64_t fa = m.key_freq.at(a);
              uint64_t fb = m.key_freq.at(b);
              if (fa != fb) return fa > fb;
              return a < b;
            });
  return m;
}

}  // namespace blockoptr
