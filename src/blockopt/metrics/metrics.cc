#include "blockopt/metrics/metrics.h"

#include <algorithm>
#include <cstdlib>

#include "common/interner.h"

namespace blockoptr {

namespace {

/// True when both values are counter-like — an integer prefix followed by
/// identical payloads — and the counters differ by at most one. Catches
/// both plain counters ("41" vs "42") and embedded ones
/// ("41|meta|artist" vs "42|meta|artist", the DRM play count).
bool IsIntegerDelta(const std::string& a, const std::string& b) {
  char* end_a = nullptr;
  char* end_b = nullptr;
  long va = std::strtol(a.c_str(), &end_a, 10);
  long vb = std::strtol(b.c_str(), &end_b, 10);
  if (end_a == a.c_str() || end_b == b.c_str()) return false;
  // The non-numeric remainder must match (same record, different count).
  if (std::string_view(end_a) != std::string_view(end_b)) return false;
  long d = va - vb;
  return d >= -1 && d <= 1;
}

/// Merge walk over two sorted ID views: no allocation, and the first
/// common element exits early.
bool SortedIdsDisjoint(const std::vector<KeyId>& wx,
                       const std::vector<KeyId>& wy) {
  auto i = wx.begin();
  auto j = wy.begin();
  while (i != wx.end() && j != wy.end()) {
    if (*i < *j) {
      ++i;
    } else if (*j < *i) {
      ++j;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

MetricsRow RowFromEntry(const BlockchainLogEntry& e) {
  Interner& keys = GlobalKeyInterner();
  Interner& names = GlobalNameInterner();
  MetricsRow r;
  r.client_timestamp = e.client_timestamp;
  r.commit_timestamp = e.commit_timestamp;
  r.commit_order = e.commit_order;
  r.block_num = e.block_num;
  r.status = e.status;
  r.tx_type = e.tx_type;
  r.activity = names.Intern(e.activity);
  r.invoker_client = names.Intern(e.invoker_client);
  r.invoker_org = names.Intern(e.invoker_org);
  r.endorsers.reserve(e.endorsers.size());
  for (const auto& org : e.endorsers) r.endorsers.push_back(names.Intern(org));
  r.read_ids.reserve(e.read_keys.size());
  for (const auto& k : e.read_keys) r.read_ids.push_back(keys.Intern(k));
  std::sort(r.read_ids.begin(), r.read_ids.end());  // already deduped
  r.write_ids = e.WriteKeyIds();
  r.accessed_ids = e.AccessedKeyIds();
  r.value_write_ids.reserve(e.writes.size());
  for (const auto& [k, v] : e.writes) {
    (void)v;
    r.value_write_ids.push_back(keys.Intern(k));
  }
  r.delete_ids.reserve(e.delete_keys.size());
  for (const auto& k : e.delete_keys) r.delete_ids.push_back(keys.Intern(k));
  r.range_bounds = e.range_bounds;
  r.num_value_writes = static_cast<uint32_t>(e.writes.size());
  r.has_deletes = !e.delete_keys.empty();
  if (e.writes.size() == 1) r.single_write_value = e.writes[0].second;
  return r;
}

MetricsRow RowFromTransaction(const Block& block, const Transaction& tx) {
  MetricsRow row;
  RowFromTransactionInto(block, tx, row);
  return row;
}

void RowFromTransactionInto(const Block& block, const Transaction& tx,
                            MetricsRow& r) {
  Interner& keys = GlobalKeyInterner();
  Interner& names = GlobalNameInterner();
  r.endorsers.clear();
  r.value_write_ids.clear();
  r.delete_ids.clear();
  r.range_bounds.clear();
  r.num_value_writes = 0;
  r.has_deletes = false;
  r.single_write_value.clear();
  r.commit_order = 0;
  r.client_timestamp = tx.client_timestamp;
  r.commit_timestamp = tx.commit_timestamp;
  r.block_num = block.block_num;
  r.status = tx.status;
  r.tx_type = DeriveTxType(tx.rwset);
  r.activity = names.Intern(tx.activity);
  r.invoker_client = names.Intern(tx.invoker.client_id);
  r.invoker_org = names.Intern(tx.invoker.org);
  r.endorsers.reserve(tx.endorsers.size());
  for (const auto& org : tx.endorsers) {
    r.endorsers.push_back(names.Intern(org));
  }
  r.read_ids = tx.rwset.ReadKeyIds();
  r.write_ids = tx.rwset.WriteKeyIds();
  r.accessed_ids = tx.rwset.AccessedKeyIds();
  for (const auto& w : tx.rwset.writes) {
    if (w.cached_id == kInvalidKeyId) w.cached_id = keys.Intern(w.key);
    if (w.is_delete) {
      r.delete_ids.push_back(w.cached_id);
      r.has_deletes = true;
    } else {
      r.value_write_ids.push_back(w.cached_id);
      ++r.num_value_writes;
    }
  }
  if (r.num_value_writes == 1) {
    for (const auto& w : tx.rwset.writes) {
      if (!w.is_delete) {
        r.single_write_value = w.value;
        break;
      }
    }
  }
  for (const auto& rq : tx.rwset.range_queries) {
    r.range_bounds.emplace_back(rq.start_key, rq.end_key);
  }
}

MetricsAccumulator::MetricsAccumulator(const MetricsOptions& options)
    : options_(options),
      tx_intervals_(options.interval_s),
      fail_intervals_(options.interval_s) {}

void MetricsAccumulator::OnEntry(const BlockchainLogEntry& e) {
  OnRow(RowFromEntry(e));
}

void MetricsAccumulator::OnRow(const MetricsRow& e) {
  // ---- Rate and failure metrics --------------------------------------
  if (total_txs_ == 0) {
    min_ts_ = e.client_timestamp;
    max_ts_ = e.client_timestamp;
  } else {
    min_ts_ = std::min(min_ts_, e.client_timestamp);
    max_ts_ = std::max(max_ts_, e.client_timestamp);
  }
  ++total_txs_;
  tx_intervals_.Add(e.client_timestamp);
  blocks_.insert(e.block_num);
  activities_.insert(e.activity);
  ++activity_tx_types_[e.activity][e.tx_type];

  switch (e.status) {
    case TxStatus::kMvccReadConflict:
      ++mvcc_failures_;
      break;
    case TxStatus::kPhantomReadConflict:
      ++phantom_failures_;
      break;
    case TxStatus::kEndorsementPolicyFailure:
      ++endorsement_failures_;
      break;
    default:
      break;
  }
  if (e.failed()) {
    ++failed_txs_;
    fail_intervals_.Add(e.client_timestamp);
  }

  for (const auto& org : e.endorsers) ++endorser_sig_[org];
  ++invoker_sig_[e.invoker_client];
  ++invoker_org_sig_[e.invoker_org];

  // ---- Key metrics (Kfreq over failures, Ksig over activities) --------
  // Accumulate per KeyId in a hash map (one O(1) probe per access, no
  // per-entry re-sort or key-vector allocation); strings materialize in
  // Snapshot(). The results are order-insensitive.
  const std::vector<KeyId>& write_ids = e.write_ids;
  for (KeyId id : e.accessed_ids) {
    KeyAgg& agg = key_agg_[id];
    if (e.failed()) ++agg.fail_freq;
    auto& stats = agg.accessors[e.activity];
    ++stats.accesses;
    if (e.failed()) ++stats.failures;
    if (std::binary_search(write_ids.begin(), write_ids.end(), id)) {
      stats.writes = true;
    }
  }

  // ---- Correlation metrics: replay in commit order --------------------
  // For every failed transaction x, the cause y is the most recent valid
  // transaction (by arrival order) whose write invalidated one of x's
  // reads — including a write into one of x's queried ranges (phantom).
  const uint64_t seq = next_seq_++;
  if (e.failed() && (e.status == TxStatus::kMvccReadConflict ||
                     e.status == TxStatus::kPhantomReadConflict)) {
    // Candidate causes over x's read keys, visited in lexicographic key
    // order (ties between keys last written by the same transaction must
    // resolve to the lexicographically first key, as a string-keyed walk
    // would).
    const Interner& interner = GlobalKeyInterner();
    std::vector<std::pair<std::string_view, KeyId>> reads_by_name;
    reads_by_name.reserve(e.read_ids.size());
    for (KeyId id : e.read_ids) {
      reads_by_name.emplace_back(interner.KeyForId(id), id);
    }
    std::sort(reads_by_name.begin(), reads_by_name.end());
    const CauseRecord* cause = nullptr;
    std::string_view contended_key;
    for (const auto& [key, id] : reads_by_name) {
      auto it = last_writer_.find(key);
      if (it == last_writer_.end()) continue;
      if (cause == nullptr || it->second->seq > cause->seq) {
        cause = it->second.get();
        contended_key = key;
      }
    }
    // …and over writes that landed inside x's queried ranges (the map is
    // ordered by key string, so bound strings locate directly).
    for (const auto& [start, end] : e.range_bounds) {
      auto it = last_writer_.lower_bound(std::string_view(start));
      auto stop = end.empty()
                      ? last_writer_.end()
                      : last_writer_.lower_bound(std::string_view(end));
      for (; it != stop; ++it) {
        if (cause == nullptr || it->second->seq > cause->seq) {
          cause = it->second.get();
          contended_key = it->first;
        }
      }
    }
    if (cause != nullptr) {
      const Interner& names = GlobalNameInterner();
      ConflictPair pair;
      pair.failed_commit_order = e.commit_order;
      pair.cause_commit_order = cause->commit_order;
      pair.failed_activity = std::string(names.KeyForId(e.activity));
      pair.cause_activity = std::string(names.KeyForId(cause->activity));
      pair.key = std::string(contended_key);
      pair.distance = e.commit_order - cause->commit_order;
      pair.same_block = e.block_num == cause->block_num;
      pair.reorderable = SortedIdsDisjoint(e.write_ids, cause->write_ids);
      pair.same_activity = e.activity == cause->activity;

      // Delta-write candidate (Table 1): adjacent same-activity
      // conflict, MVCC status, both single-key counter writes with a
      // ±1 value difference.
      if (pair.same_activity && e.status == TxStatus::kMvccReadConflict &&
          e.num_value_writes == 1 && !e.has_deletes &&
          cause->num_writes == 1 && !cause->has_deletes &&
          e.value_write_ids[0] == cause->single_write_key &&
          IsIntegerDelta(e.single_write_value, cause->single_write_value)) {
        pair.delta_candidate = true;
        ++delta_candidates_;
      }
      if (pair.same_activity && pair.distance == 1) {
        ++adjacent_same_activity_conflicts_;
      }
      if (pair.same_block) {
        ++intra_block_conflicts_;
      } else {
        ++inter_block_conflicts_;
      }
      if (pair.reorderable) ++reorderable_conflicts_;
      ++activity_conflicts_[{pair.failed_activity, pair.cause_activity}];
      conflicts_.push_back(std::move(pair));
    }
  }
  if (e.status == TxStatus::kValid && e.num_value_writes > 0) {
    // One shared cause record per committing transaction, referenced by
    // every key it wrote — O(live keys) memory, no log retention.
    auto record = std::make_shared<CauseRecord>();
    record->seq = seq;
    record->commit_order = e.commit_order;
    record->block_num = e.block_num;
    record->activity = e.activity;
    record->write_ids = e.write_ids;
    record->num_writes = e.num_value_writes;
    record->has_deletes = e.has_deletes;
    if (e.num_value_writes == 1) {
      record->single_write_key = e.value_write_ids[0];
      record->single_write_value = e.single_write_value;
    }
    const Interner& keys = GlobalKeyInterner();
    for (KeyId id : e.value_write_ids) {
      last_writer_[keys.KeyForId(id)] = record;
    }
  }
  if (e.status == TxStatus::kValid && !e.delete_ids.empty()) {
    const Interner& keys = GlobalKeyInterner();
    for (KeyId id : e.delete_ids) last_writer_.erase(keys.KeyForId(id));
  }
}

LogMetrics MetricsAccumulator::Snapshot() const {
  LogMetrics m;
  if (total_txs_ == 0) return m;

  m.total_txs = total_txs_;
  m.failed_txs = failed_txs_;
  m.mvcc_failures = mvcc_failures_;
  m.phantom_failures = phantom_failures_;
  m.endorsement_failures = endorsement_failures_;
  // Name ids resolve to strings here, once per snapshot — never per row.
  const Interner& names = GlobalNameInterner();
  for (const auto& [sym, per_type] : activity_tx_types_) {
    m.activity_tx_types[std::string(names.KeyForId(sym))] = per_type;
  }
  for (const auto& [sym, n] : endorser_sig_) {
    m.endorser_sig[std::string(names.KeyForId(sym))] = n;
  }
  for (const auto& [sym, n] : invoker_sig_) {
    m.invoker_sig[std::string(names.KeyForId(sym))] = n;
  }
  for (const auto& [sym, n] : invoker_org_sig_) {
    m.invoker_org_sig[std::string(names.KeyForId(sym))] = n;
  }

  m.duration_s = max_ts_ - min_ts_;
  m.tr = m.duration_s > 0 ? static_cast<double>(m.total_txs) / m.duration_s
                          : static_cast<double>(m.total_txs);
  m.tfr = m.duration_s > 0 ? static_cast<double>(m.failed_txs) / m.duration_s
                           : static_cast<double>(m.failed_txs);
  for (size_t i = 0; i < tx_intervals_.num_intervals(); ++i) {
    m.trd.push_back(tx_intervals_.RateAt(i));
  }
  for (size_t i = 0; i < fail_intervals_.num_intervals(); ++i) {
    m.frd.push_back(fail_intervals_.RateAt(i));
  }
  m.frd.resize(m.trd.size(), 0.0);  // align interval vectors

  m.num_blocks = blocks_.size();
  m.b_sizeavg = m.num_blocks > 0 ? static_cast<double>(m.total_txs) /
                                       static_cast<double>(m.num_blocks)
                                 : 0;
  m.num_activities = activities_.size();

  const Interner& interner = GlobalKeyInterner();
  for (const auto& [id, agg] : key_agg_) {
    std::string key(interner.KeyForId(id));
    auto& activities_of_key = m.key_activities[key];
    auto& accessors_of_key = m.key_accessors[key];
    for (const auto& [activity_sym, stats] : agg.accessors) {
      std::string activity(names.KeyForId(activity_sym));
      activities_of_key.insert(activity);
      accessors_of_key[std::move(activity)] = stats;
    }
    if (agg.fail_freq > 0) m.key_freq[key] = agg.fail_freq;
  }
  // A key is hot when its failure frequency clears both the absolute
  // floor and the fraction-of-all-failures threshold (user-configurable,
  // paper §4.3 metric 6).
  const uint64_t hot_threshold = std::max<uint64_t>(
      options_.hotkey_min_failures,
      static_cast<uint64_t>(options_.hotkey_failure_fraction *
                            static_cast<double>(m.failed_txs)));
  for (const auto& [key, freq] : m.key_freq) {
    if (freq >= hot_threshold) m.hot_keys.push_back(key);
  }
  std::sort(m.hot_keys.begin(), m.hot_keys.end(),
            [&](const std::string& a, const std::string& b) {
              uint64_t fa = m.key_freq.at(a);
              uint64_t fb = m.key_freq.at(b);
              if (fa != fb) return fa > fb;
              return a < b;
            });

  m.conflicts = conflicts_;
  m.activity_conflicts = activity_conflicts_;
  m.intra_block_conflicts = intra_block_conflicts_;
  m.inter_block_conflicts = inter_block_conflicts_;
  m.adjacent_same_activity_conflicts = adjacent_same_activity_conflicts_;
  m.delta_candidates = delta_candidates_;
  m.reorderable_conflicts = reorderable_conflicts_;

  return m;
}

LogMetrics ComputeMetrics(const BlockchainLog& log,
                          const MetricsOptions& options) {
  MetricsAccumulator acc(options);
  for (const auto& e : log.entries()) acc.OnEntry(e);
  return acc.Snapshot();
}

LogMetrics AggregateMetrics(const std::vector<LogMetrics>& per_channel,
                            const MetricsOptions& options) {
  LogMetrics m;
  if (per_channel.empty()) return m;

  for (const LogMetrics& ch : per_channel) {
    m.total_txs += ch.total_txs;
    m.duration_s = std::max(m.duration_s, ch.duration_s);
    if (ch.trd.size() > m.trd.size()) m.trd.resize(ch.trd.size(), 0.0);
    for (size_t i = 0; i < ch.trd.size(); ++i) m.trd[i] += ch.trd[i];

    m.failed_txs += ch.failed_txs;
    m.mvcc_failures += ch.mvcc_failures;
    m.phantom_failures += ch.phantom_failures;
    m.endorsement_failures += ch.endorsement_failures;
    if (ch.frd.size() > m.frd.size()) m.frd.resize(ch.frd.size(), 0.0);
    for (size_t i = 0; i < ch.frd.size(); ++i) m.frd[i] += ch.frd[i];

    m.num_blocks += ch.num_blocks;

    for (const auto& [org, n] : ch.endorser_sig) m.endorser_sig[org] += n;
    for (const auto& [cl, n] : ch.invoker_sig) m.invoker_sig[cl] += n;
    for (const auto& [org, n] : ch.invoker_org_sig) {
      m.invoker_org_sig[org] += n;
    }

    for (const auto& [key, freq] : ch.key_freq) m.key_freq[key] += freq;
    for (const auto& [key, acts] : ch.key_activities) {
      m.key_activities[key].insert(acts.begin(), acts.end());
    }
    for (const auto& [key, accessors] : ch.key_accessors) {
      auto& merged = m.key_accessors[key];
      for (const auto& [activity, stats] : accessors) {
        auto& s = merged[activity];
        s.accesses += stats.accesses;
        s.failures += stats.failures;
        s.writes = s.writes || stats.writes;
      }
    }

    m.conflicts.insert(m.conflicts.end(), ch.conflicts.begin(),
                       ch.conflicts.end());
    for (const auto& [pair, n] : ch.activity_conflicts) {
      m.activity_conflicts[pair] += n;
    }
    m.intra_block_conflicts += ch.intra_block_conflicts;
    m.inter_block_conflicts += ch.inter_block_conflicts;
    m.adjacent_same_activity_conflicts +=
        ch.adjacent_same_activity_conflicts;
    m.delta_candidates += ch.delta_candidates;
    m.reorderable_conflicts += ch.reorderable_conflicts;

    for (const auto& [activity, types] : ch.activity_tx_types) {
      auto& merged = m.activity_tx_types[activity];
      for (const auto& [type, n] : types) merged[type] += n;
    }
  }
  m.frd.resize(m.trd.size(), 0.0);  // align interval vectors

  // Derived rates over the merged state, with the batch formulas.
  m.tr = m.duration_s > 0 ? static_cast<double>(m.total_txs) / m.duration_s
                          : static_cast<double>(m.total_txs);
  m.tfr = m.duration_s > 0
              ? static_cast<double>(m.failed_txs) / m.duration_s
              : static_cast<double>(m.failed_txs);
  m.b_sizeavg = m.num_blocks > 0 ? static_cast<double>(m.total_txs) /
                                       static_cast<double>(m.num_blocks)
                                 : 0;
  m.num_activities = m.activity_tx_types.size();

  // Re-apply the hot-key rule to merged per-key failure frequencies: a
  // key hot on no individual channel can still be hot experiment-wide.
  const uint64_t hot_threshold = std::max<uint64_t>(
      options.hotkey_min_failures,
      static_cast<uint64_t>(options.hotkey_failure_fraction *
                            static_cast<double>(m.failed_txs)));
  for (const auto& [key, freq] : m.key_freq) {
    if (freq >= hot_threshold) m.hot_keys.push_back(key);
  }
  std::sort(m.hot_keys.begin(), m.hot_keys.end(),
            [&](const std::string& a, const std::string& b) {
              uint64_t fa = m.key_freq.at(a);
              uint64_t fb = m.key_freq.at(b);
              if (fa != fb) return fa > fb;
              return a < b;
            });
  return m;
}

}  // namespace blockoptr
