#include "blockopt/metrics/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "common/interner.h"
#include "common/stats.h"

namespace blockoptr {

namespace {

/// Tracks the latest committed writer of each key while replaying the log
/// in commit order, to attribute each failure to its cause (corDV).
struct LastWriter {
  size_t entry_index;
  std::string value;  // written value (for delta detection)
};

/// True when both values are counter-like — an integer prefix followed by
/// identical payloads — and the counters differ by at most one. Catches
/// both plain counters ("41" vs "42") and embedded ones
/// ("41|meta|artist" vs "42|meta|artist", the DRM play count).
bool IsIntegerDelta(const std::string& a, const std::string& b) {
  char* end_a = nullptr;
  char* end_b = nullptr;
  long va = std::strtol(a.c_str(), &end_a, 10);
  long vb = std::strtol(b.c_str(), &end_b, 10);
  if (end_a == a.c_str() || end_b == b.c_str()) return false;
  // The non-numeric remainder must match (same record, different count).
  if (std::string_view(end_a) != std::string_view(end_b)) return false;
  long d = va - vb;
  return d >= -1 && d <= 1;
}

bool WriteSetsDisjoint(const BlockchainLogEntry& x,
                       const BlockchainLogEntry& y) {
  // Merge walk over the cached sorted ID views: no allocation, and the
  // first common element exits early (the old version materialized the
  // whole intersection just to check emptiness).
  const std::vector<KeyId>& wx = x.WriteKeyIds();
  const std::vector<KeyId>& wy = y.WriteKeyIds();
  auto i = wx.begin();
  auto j = wy.begin();
  while (i != wx.end() && j != wy.end()) {
    if (*i < *j) {
      ++i;
    } else if (*j < *i) {
      ++j;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

LogMetrics ComputeMetrics(const BlockchainLog& log,
                          const MetricsOptions& options) {
  LogMetrics m;
  if (log.empty()) return m;

  // ---- Rate and failure metrics --------------------------------------
  double min_ts = log[0].client_timestamp;
  double max_ts = log[0].client_timestamp;
  IntervalCounter tx_intervals(options.interval_s);
  IntervalCounter fail_intervals(options.interval_s);
  std::set<uint64_t> blocks;
  std::set<std::string> activities;

  for (const auto& e : log.entries()) {
    ++m.total_txs;
    min_ts = std::min(min_ts, e.client_timestamp);
    max_ts = std::max(max_ts, e.client_timestamp);
    tx_intervals.Add(e.client_timestamp);
    blocks.insert(e.block_num);
    activities.insert(e.activity);
    ++m.activity_tx_types[e.activity][e.tx_type];

    switch (e.status) {
      case TxStatus::kMvccReadConflict:
        ++m.mvcc_failures;
        break;
      case TxStatus::kPhantomReadConflict:
        ++m.phantom_failures;
        break;
      case TxStatus::kEndorsementPolicyFailure:
        ++m.endorsement_failures;
        break;
      default:
        break;
    }
    if (e.failed()) {
      ++m.failed_txs;
      fail_intervals.Add(e.client_timestamp);
    }

    for (const auto& org : e.endorsers) ++m.endorser_sig[org];
    ++m.invoker_sig[e.invoker_client];
    ++m.invoker_org_sig[e.invoker_org];
  }

  m.duration_s = max_ts - min_ts;
  m.tr = m.duration_s > 0
             ? static_cast<double>(m.total_txs) / m.duration_s
             : static_cast<double>(m.total_txs);
  m.tfr = m.duration_s > 0
              ? static_cast<double>(m.failed_txs) / m.duration_s
              : static_cast<double>(m.failed_txs);
  for (size_t i = 0; i < tx_intervals.num_intervals(); ++i) {
    m.trd.push_back(tx_intervals.RateAt(i));
  }
  for (size_t i = 0; i < fail_intervals.num_intervals(); ++i) {
    m.frd.push_back(fail_intervals.RateAt(i));
  }
  m.frd.resize(m.trd.size(), 0.0);  // align interval vectors

  m.num_blocks = blocks.size();
  m.b_sizeavg = m.num_blocks > 0 ? static_cast<double>(m.total_txs) /
                                       static_cast<double>(m.num_blocks)
                                 : 0;
  m.num_activities = activities.size();

  // ---- Key metrics (Kfreq over failures, Ksig over activities) --------
  // Accumulate per KeyId in a hash map (one O(1) probe per access, no
  // per-entry re-sort or key-vector allocation), then materialize the
  // string-keyed result maps in a single pass. The results are
  // order-insensitive, so walking in ID order changes nothing.
  struct KeyAgg {
    uint64_t fail_freq = 0;
    std::map<std::string, LogMetrics::KeyAccessorStats> accessors;
  };
  std::unordered_map<KeyId, KeyAgg> key_agg;
  for (const auto& e : log.entries()) {
    const std::vector<KeyId>& write_ids = e.WriteKeyIds();
    for (KeyId id : e.AccessedKeyIds()) {
      KeyAgg& agg = key_agg[id];
      if (e.failed()) ++agg.fail_freq;
      auto& stats = agg.accessors[e.activity];
      ++stats.accesses;
      if (e.failed()) ++stats.failures;
      if (std::binary_search(write_ids.begin(), write_ids.end(), id)) {
        stats.writes = true;
      }
    }
  }
  const Interner& interner = GlobalKeyInterner();
  for (auto& [id, agg] : key_agg) {
    std::string key(interner.KeyForId(id));
    auto& activities_of_key = m.key_activities[key];
    for (const auto& [activity, stats] : agg.accessors) {
      activities_of_key.insert(activity);
    }
    if (agg.fail_freq > 0) m.key_freq[key] = agg.fail_freq;
    m.key_accessors[key] = std::move(agg.accessors);
  }
  // A key is hot when its failure frequency clears both the absolute
  // floor and the fraction-of-all-failures threshold (user-configurable,
  // paper §4.3 metric 6).
  const uint64_t hot_threshold = std::max<uint64_t>(
      options.hotkey_min_failures,
      static_cast<uint64_t>(options.hotkey_failure_fraction *
                            static_cast<double>(m.failed_txs)));
  for (const auto& [key, freq] : m.key_freq) {
    if (freq >= hot_threshold) m.hot_keys.push_back(key);
  }
  std::sort(m.hot_keys.begin(), m.hot_keys.end(),
            [&](const std::string& a, const std::string& b) {
              uint64_t fa = m.key_freq.at(a);
              uint64_t fb = m.key_freq.at(b);
              if (fa != fb) return fa > fb;
              return a < b;
            });

  // ---- Correlation metrics: replay in commit order --------------------
  // For every failed transaction x, the cause y is the most recent valid
  // transaction (by commit order) whose write invalidated one of x's
  // reads — including a write into one of x's queried ranges (phantom).
  std::map<std::string, LastWriter> last_writer;
  for (size_t i = 0; i < log.size(); ++i) {
    const BlockchainLogEntry& e = log[i];
    if (e.failed() && (e.status == TxStatus::kMvccReadConflict ||
                       e.status == TxStatus::kPhantomReadConflict)) {
      // Candidate causes over x's read keys…
      const LastWriter* cause = nullptr;
      std::string contended_key;
      for (const auto& key : e.read_keys) {
        auto it = last_writer.find(key);
        if (it == last_writer.end()) continue;
        if (cause == nullptr ||
            it->second.entry_index > cause->entry_index) {
          cause = &it->second;
          contended_key = key;
        }
      }
      // …and over writes that landed inside x's queried ranges.
      for (const auto& [start, end] : e.range_bounds) {
        auto it = last_writer.lower_bound(start);
        auto stop = end.empty() ? last_writer.end()
                                : last_writer.lower_bound(end);
        for (; it != stop; ++it) {
          if (cause == nullptr ||
              it->second.entry_index > cause->entry_index) {
            cause = &it->second;
            contended_key = it->first;
          }
        }
      }
      if (cause != nullptr) {
        const BlockchainLogEntry& y = log[cause->entry_index];
        ConflictPair pair;
        pair.failed_commit_order = e.commit_order;
        pair.cause_commit_order = y.commit_order;
        pair.failed_activity = e.activity;
        pair.cause_activity = y.activity;
        pair.key = contended_key;
        pair.distance = e.commit_order - y.commit_order;
        pair.same_block = e.block_num == y.block_num;
        pair.reorderable = WriteSetsDisjoint(e, y);
        pair.same_activity = e.activity == y.activity;

        // Delta-write candidate (Table 1): adjacent same-activity
        // conflict, MVCC status, both single-key counter writes with a
        // ±1 value difference.
        if (pair.same_activity && e.status == TxStatus::kMvccReadConflict &&
            e.writes.size() == 1 && e.delete_keys.empty() &&
            y.writes.size() == 1 && y.delete_keys.empty() &&
            e.writes[0].first == y.writes[0].first &&
            IsIntegerDelta(e.writes[0].second, y.writes[0].second)) {
          pair.delta_candidate = true;
          ++m.delta_candidates;
        }
        if (pair.same_activity && pair.distance == 1) {
          ++m.adjacent_same_activity_conflicts;
        }
        if (pair.same_block) {
          ++m.intra_block_conflicts;
        } else {
          ++m.inter_block_conflicts;
        }
        if (pair.reorderable) ++m.reorderable_conflicts;
        ++m.activity_conflicts[{pair.failed_activity, pair.cause_activity}];
        m.conflicts.push_back(std::move(pair));
      }
    }
    if (e.status == TxStatus::kValid) {
      for (const auto& [key, value] : e.writes) {
        last_writer[key] = LastWriter{i, value};
      }
      for (const auto& key : e.delete_keys) last_writer.erase(key);
    }
  }

  return m;
}

}  // namespace blockoptr
