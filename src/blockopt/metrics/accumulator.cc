// MetricsAccumulator: the single implementation of the §4.3 metric
// semantics, split out of metrics.cc so the merge machinery (pane
// frontiers, tombstones, unresolved-prefix resolution) lives next to the
// per-row fold it must mirror exactly.
#include <algorithm>
#include <cstdlib>

#include "blockopt/metrics/metrics.h"
#include "common/interner.h"

namespace blockoptr {

namespace {

/// True when both values are counter-like — an integer prefix followed by
/// identical payloads — and the counters differ by at most one. Catches
/// both plain counters ("41" vs "42") and embedded ones
/// ("41|meta|artist" vs "42|meta|artist", the DRM play count).
bool IsIntegerDelta(const std::string& a, const std::string& b) {
  char* end_a = nullptr;
  char* end_b = nullptr;
  long va = std::strtol(a.c_str(), &end_a, 10);
  long vb = std::strtol(b.c_str(), &end_b, 10);
  if (end_a == a.c_str() || end_b == b.c_str()) return false;
  // The non-numeric remainder must match (same record, different count).
  if (std::string_view(end_a) != std::string_view(end_b)) return false;
  long d = va - vb;
  return d >= -1 && d <= 1;
}

/// Merge walk over two sorted ID views: no allocation, and the first
/// common element exits early.
bool SortedIdsDisjoint(const std::vector<KeyId>& wx,
                       const std::vector<KeyId>& wy) {
  auto i = wx.begin();
  auto j = wy.begin();
  while (i != wx.end() && j != wy.end()) {
    if (*i < *j) {
      ++i;
    } else if (*j < *i) {
      ++j;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

MetricsAccumulator::MetricsAccumulator(const MetricsOptions& options)
    : options_(options),
      tx_intervals_(options.interval_s),
      fail_intervals_(options.interval_s) {}

void MetricsAccumulator::OnEntry(const BlockchainLogEntry& e) {
  OnRow(RowFromEntry(e));
}

void MetricsAccumulator::RecordConflict(
    uint64_t x_commit_order, uint64_t x_block_num, KeyId x_activity,
    TxStatus x_status, const std::vector<KeyId>& x_write_ids,
    uint32_t x_num_value_writes, bool x_has_deletes, KeyId x_single_write_key,
    const std::string& x_single_write_value, const CauseRecord& cause,
    std::string_view contended_key) {
  ConflictRec rec;
  rec.failed_commit_order = x_commit_order;
  rec.cause_commit_order = cause.commit_order;
  rec.failed_activity = x_activity;
  rec.cause_activity = cause.activity;
  rec.key = contended_key;  // views interner storage, stable for life
  rec.distance = x_commit_order - cause.commit_order;
  rec.same_block = x_block_num == cause.block_num;
  rec.reorderable = SortedIdsDisjoint(x_write_ids, cause.write_ids);
  rec.same_activity = x_activity == cause.activity;

  // Delta-write candidate (Table 1): adjacent same-activity conflict,
  // MVCC status, both single-key counter writes with a ±1 value
  // difference.
  if (rec.same_activity && x_status == TxStatus::kMvccReadConflict &&
      x_num_value_writes == 1 && !x_has_deletes && cause.num_writes == 1 &&
      !cause.has_deletes && x_single_write_key == cause.single_write_key &&
      IsIntegerDelta(x_single_write_value, cause.single_write_value)) {
    rec.delta_candidate = true;
    ++delta_candidates_;
  }
  if (rec.same_activity && rec.distance == 1) {
    ++adjacent_same_activity_conflicts_;
  }
  if (rec.same_block) {
    ++intra_block_conflicts_;
  } else {
    ++inter_block_conflicts_;
  }
  if (rec.reorderable) ++reorderable_conflicts_;
  ++activity_conflicts_[{rec.failed_activity, rec.cause_activity}];
  conflicts_.push_back(rec);
}

void MetricsAccumulator::OnRow(const MetricsRow& e) {
  // ---- Rate and failure metrics --------------------------------------
  if (total_txs_ == 0) {
    min_ts_ = e.client_timestamp;
    max_ts_ = e.client_timestamp;
  } else {
    min_ts_ = std::min(min_ts_, e.client_timestamp);
    max_ts_ = std::max(max_ts_, e.client_timestamp);
  }
  ++total_txs_;
  tx_intervals_.Add(e.client_timestamp);
  blocks_.insert(e.block_num);
  activities_.insert(e.activity);
  ++activity_tx_types_[e.activity][e.tx_type];

  switch (e.status) {
    case TxStatus::kMvccReadConflict:
      ++mvcc_failures_;
      break;
    case TxStatus::kPhantomReadConflict:
      ++phantom_failures_;
      break;
    case TxStatus::kEndorsementPolicyFailure:
      ++endorsement_failures_;
      break;
    default:
      break;
  }
  if (e.failed()) {
    ++failed_txs_;
    fail_intervals_.Add(e.client_timestamp);
  }

  for (const auto& org : e.endorsers) ++endorser_sig_[org];
  ++invoker_sig_[e.invoker_client];
  ++invoker_org_sig_[e.invoker_org];

  // ---- Key metrics (Kfreq over failures, Ksig over activities) --------
  // Accumulate per KeyId in a hash map (one O(1) probe per access, no
  // per-entry re-sort or key-vector allocation); strings materialize in
  // Snapshot(). The results are order-insensitive.
  const std::vector<KeyId>& write_ids = e.write_ids;
  for (KeyId id : e.accessed_ids) {
    KeyAgg& agg = key_agg_[id];
    if (e.failed()) ++agg.fail_freq;
    auto& stats = agg.StatsFor(e.activity);
    ++stats.accesses;
    if (e.failed()) ++stats.failures;
    if (std::binary_search(write_ids.begin(), write_ids.end(), id)) {
      stats.writes = true;
    }
  }

  // ---- Correlation metrics: replay in commit order --------------------
  // For every failed transaction x, the cause y is the most recent valid
  // transaction (by arrival order) whose write invalidated one of x's
  // reads — including a write into one of x's queried ranges (phantom).
  const uint64_t seq = next_seq_++;
  if (e.failed() && (e.status == TxStatus::kMvccReadConflict ||
                     e.status == TxStatus::kPhantomReadConflict)) {
    // Candidate causes over x's read keys, visited in lexicographic key
    // order (ties between keys last written by the same transaction must
    // resolve to the lexicographically first key, as a string-keyed walk
    // would).
    const Interner& interner = GlobalKeyInterner();
    std::vector<std::string_view> reads_by_name;
    reads_by_name.reserve(e.read_ids.size());
    for (KeyId id : e.read_ids) {
      reads_by_name.push_back(interner.KeyForId(id));
    }
    std::sort(reads_by_name.begin(), reads_by_name.end());
    const CauseRecord* cause = nullptr;
    uint64_t cause_seq = 0;
    std::string_view contended_key;
    for (std::string_view key : reads_by_name) {
      auto it = last_writer_.find(key);
      if (it == last_writer_.end()) continue;
      if (cause == nullptr || it->second.seq > cause_seq) {
        cause = it->second.record.get();
        cause_seq = it->second.seq;
        contended_key = key;
      }
    }
    // …and over writes that landed inside x's queried ranges (the map is
    // ordered by key string, so bound strings locate directly).
    for (const auto& [start, end] : e.range_bounds) {
      auto it = last_writer_.lower_bound(std::string_view(start));
      auto stop = end.empty()
                      ? last_writer_.end()
                      : last_writer_.lower_bound(std::string_view(end));
      for (; it != stop; ++it) {
        if (cause == nullptr || it->second.seq > cause_seq) {
          cause = it->second.record.get();
          cause_seq = it->second.seq;
          contended_key = it->first;
        }
      }
    }
    const KeyId single_write_key =
        e.num_value_writes == 1 ? e.value_write_ids[0] : kInvalidKeyId;
    if (cause != nullptr) {
      RecordConflict(e.commit_order, e.block_num, e.activity, e.status,
                     e.write_ids, e.num_value_writes, e.has_deletes,
                     single_write_key, e.single_write_value, *cause,
                     contended_key);
    } else {
      // No writer seen by this accumulator: the cause, if one exists,
      // precedes our first row. Capture everything a left pane needs to
      // finish the search at merge time — in particular which candidates
      // our own deletes have already masked.
      PendingConflict p;
      p.commit_order = e.commit_order;
      p.block_num = e.block_num;
      p.activity = e.activity;
      p.status = e.status;
      p.write_ids = e.write_ids;
      p.num_value_writes = e.num_value_writes;
      p.has_deletes = e.has_deletes;
      p.single_write_key = single_write_key;
      p.single_write_value = e.single_write_value;
      p.eligible_reads.reserve(reads_by_name.size());
      for (std::string_view key : reads_by_name) {
        if (tombstones_.count(key) == 0) p.eligible_reads.push_back(key);
      }
      p.ranges.reserve(e.range_bounds.size());
      for (const auto& [start, end] : e.range_bounds) {
        PendingConflict::RangeProbe probe;
        probe.start = start;
        probe.end = end;
        auto it = tombstones_.lower_bound(std::string_view(start));
        auto stop = end.empty()
                        ? tombstones_.end()
                        : tombstones_.lower_bound(std::string_view(end));
        probe.masked.assign(it, stop);  // set order: already lex-sorted
        p.ranges.push_back(std::move(probe));
      }
      p.slot = conflicts_.size();
      pending_.push_back(std::move(p));
    }
  }
  if (e.status == TxStatus::kValid && e.num_value_writes > 0) {
    // One shared cause record per committing transaction, referenced by
    // every key it wrote — O(live keys) memory, no log retention.
    auto record = std::make_shared<CauseRecord>();
    record->commit_order = e.commit_order;
    record->block_num = e.block_num;
    record->activity = e.activity;
    record->write_ids = e.write_ids;
    record->num_writes = e.num_value_writes;
    record->has_deletes = e.has_deletes;
    if (e.num_value_writes == 1) {
      record->single_write_key = e.value_write_ids[0];
      record->single_write_value = e.single_write_value;
    }
    const Interner& keys = GlobalKeyInterner();
    for (KeyId id : e.value_write_ids) {
      const std::string_view key = keys.KeyForId(id);
      last_writer_[key] = FrontierEntry{seq, record};
      if (!tombstones_.empty()) tombstones_.erase(key);
    }
  }
  if (e.status == TxStatus::kValid && !e.delete_ids.empty()) {
    const Interner& keys = GlobalKeyInterner();
    for (KeyId id : e.delete_ids) {
      const std::string_view key = keys.KeyForId(id);
      last_writer_.erase(key);
      tombstones_.insert(key);
    }
  }
}

bool MetricsAccumulator::ResolvePending(const PendingConflict& p) {
  const CauseRecord* cause = nullptr;
  uint64_t cause_seq = 0;
  std::string_view contended_key;
  // Identical search order to OnRow: read keys in lexicographic order,
  // then each range in query order scanning the frontier lexicographically
  // — with the right pane's masked keys (its own deletes before x)
  // excluded, exactly as they would be absent from a single-pass map.
  for (std::string_view key : p.eligible_reads) {
    auto it = last_writer_.find(key);
    if (it == last_writer_.end()) continue;
    if (cause == nullptr || it->second.seq > cause_seq) {
      cause = it->second.record.get();
      cause_seq = it->second.seq;
      contended_key = key;
    }
  }
  for (const auto& range : p.ranges) {
    auto it = last_writer_.lower_bound(std::string_view(range.start));
    auto stop = range.end.empty()
                    ? last_writer_.end()
                    : last_writer_.lower_bound(std::string_view(range.end));
    for (; it != stop; ++it) {
      if (std::binary_search(range.masked.begin(), range.masked.end(),
                             it->first)) {
        continue;
      }
      if (cause == nullptr || it->second.seq > cause_seq) {
        cause = it->second.record.get();
        cause_seq = it->second.seq;
        contended_key = it->first;
      }
    }
  }
  if (cause == nullptr) return false;
  RecordConflict(p.commit_order, p.block_num, p.activity, p.status,
                 p.write_ids, p.num_value_writes, p.has_deletes,
                 p.single_write_key, p.single_write_value, *cause,
                 contended_key);
  return true;
}

void MetricsAccumulator::Merge(const MetricsAccumulator& o) {
  if (o.total_txs_ == 0) return;

  // ---- Correlation state first: resolution must see *this* frontier as
  // it stood before the right pane's writers land on top of it.
  //
  // Splice the right pane's conflicts in stream order: each pending
  // failure carries the conflict count at its capture (`slot`), so the
  // walk interleaves merge-resolved pairs with pane-resolved ones exactly
  // where a single pass would have emitted them.
  size_t pi = 0;
  std::vector<PendingConflict> carried;
  conflicts_.reserve(conflicts_.size() + o.conflicts_.size());
  for (size_t ci = 0; ci <= o.conflicts_.size(); ++ci) {
    while (pi < o.pending_.size() && o.pending_[pi].slot == ci) {
      const PendingConflict& p = o.pending_[pi++];
      if (ResolvePending(p)) continue;
      // Still unresolved: the cause (if any) precedes *our* first row
      // too. Keep it pending, with our deletes folded into its masks and
      // its splice position rebased into the merged stream.
      carried.push_back(p);
      PendingConflict& c = carried.back();
      if (!tombstones_.empty()) {
        c.eligible_reads.erase(
            std::remove_if(c.eligible_reads.begin(), c.eligible_reads.end(),
                           [&](std::string_view key) {
                             return tombstones_.count(key) != 0;
                           }),
            c.eligible_reads.end());
        for (auto& range : c.ranges) {
          auto it = tombstones_.lower_bound(std::string_view(range.start));
          auto stop =
              range.end.empty()
                  ? tombstones_.end()
                  : tombstones_.lower_bound(std::string_view(range.end));
          if (it == stop) continue;
          const size_t old_size = range.masked.size();
          range.masked.insert(range.masked.end(), it, stop);
          std::inplace_merge(range.masked.begin(),
                             range.masked.begin() +
                                 static_cast<ptrdiff_t>(old_size),
                             range.masked.end());
        }
      }
      c.slot = conflicts_.size();
    }
    if (ci < o.conflicts_.size()) conflicts_.push_back(o.conflicts_[ci]);
  }

  // ---- Additive state: monotonic counters and per-key/per-activity
  // maps merge by addition.
  if (total_txs_ == 0) {
    min_ts_ = o.min_ts_;
    max_ts_ = o.max_ts_;
  } else {
    min_ts_ = std::min(min_ts_, o.min_ts_);
    max_ts_ = std::max(max_ts_, o.max_ts_);
  }
  total_txs_ += o.total_txs_;
  failed_txs_ += o.failed_txs_;
  mvcc_failures_ += o.mvcc_failures_;
  phantom_failures_ += o.phantom_failures_;
  endorsement_failures_ += o.endorsement_failures_;
  tx_intervals_.Merge(o.tx_intervals_);
  fail_intervals_.Merge(o.fail_intervals_);
  blocks_.insert(o.blocks_.begin(), o.blocks_.end());
  activities_.insert(o.activities_.begin(), o.activities_.end());
  for (const auto& [activity, per_type] : o.activity_tx_types_) {
    auto& merged = activity_tx_types_[activity];
    for (const auto& [type, n] : per_type) merged[type] += n;
  }
  for (const auto& [org, n] : o.endorser_sig_) endorser_sig_[org] += n;
  for (const auto& [client, n] : o.invoker_sig_) invoker_sig_[client] += n;
  for (const auto& [org, n] : o.invoker_org_sig_) invoker_org_sig_[org] += n;
  for (const auto& [id, agg] : o.key_agg_) {
    KeyAgg& merged = key_agg_[id];
    merged.fail_freq += agg.fail_freq;
    for (const auto& a : agg.accessors) {
      auto& s = merged.StatsFor(a.activity);
      s.accesses += a.stats.accesses;
      s.failures += a.stats.failures;
      s.writes = s.writes || a.stats.writes;
    }
  }
  intra_block_conflicts_ += o.intra_block_conflicts_;
  inter_block_conflicts_ += o.inter_block_conflicts_;
  adjacent_same_activity_conflicts_ += o.adjacent_same_activity_conflicts_;
  delta_candidates_ += o.delta_candidates_;
  reorderable_conflicts_ += o.reorderable_conflicts_;
  for (const auto& [pair, n] : o.activity_conflicts_) {
    activity_conflicts_[pair] += n;
  }

  // ---- Writer frontier: the right pane's entries override ours key for
  // key (its rows are newer), rebased into our sequence space so future
  // most-recent comparisons still order left-era vs right-era writers.
  // Shared CauseRecords are aliased, never cloned — seq lives in the
  // frontier entry precisely so this stays O(frontier), not O(records).
  // Both frontiers iterate in key order, so a walking hint turns the
  // common sparse-overlap case into amortized-O(1) inserts.
  const uint64_t seq_base = next_seq_;
  auto hint = last_writer_.begin();
  for (const auto& [key, entry] : o.last_writer_) {
    hint = last_writer_.insert_or_assign(
        hint, key, FrontierEntry{seq_base + entry.seq, entry.record});
    ++hint;
    if (!tombstones_.empty()) tombstones_.erase(key);
  }
  for (std::string_view key : o.tombstones_) {
    last_writer_.erase(key);
    tombstones_.insert(key);
  }
  next_seq_ += o.next_seq_;

  for (auto& c : carried) pending_.push_back(std::move(c));
}

void MetricsAccumulator::Reset() {
  total_txs_ = 0;
  min_ts_ = 0;
  max_ts_ = 0;
  tx_intervals_.Clear();
  fail_intervals_.Clear();
  blocks_.clear();
  activities_.clear();
  activity_tx_types_.clear();
  failed_txs_ = 0;
  mvcc_failures_ = 0;
  phantom_failures_ = 0;
  endorsement_failures_ = 0;
  endorser_sig_.clear();
  invoker_sig_.clear();
  invoker_org_sig_.clear();
  key_agg_.clear();
  last_writer_.clear();
  tombstones_.clear();
  pending_.clear();
  next_seq_ = 0;
  conflicts_.clear();
  activity_conflicts_.clear();
  intra_block_conflicts_ = 0;
  inter_block_conflicts_ = 0;
  adjacent_same_activity_conflicts_ = 0;
  delta_candidates_ = 0;
  reorderable_conflicts_ = 0;
}

LogMetrics MetricsAccumulator::Snapshot(SnapshotDetail detail) const {
  LogMetrics m;
  if (total_txs_ == 0) return m;

  m.total_txs = total_txs_;
  m.failed_txs = failed_txs_;
  m.mvcc_failures = mvcc_failures_;
  m.phantom_failures = phantom_failures_;
  m.endorsement_failures = endorsement_failures_;
  // Name ids resolve to strings here, once per snapshot — never per row.
  const Interner& names = GlobalNameInterner();
  for (const auto& [sym, per_type] : activity_tx_types_) {
    m.activity_tx_types[std::string(names.KeyForId(sym))] = per_type;
  }
  for (const auto& [sym, n] : endorser_sig_) {
    m.endorser_sig[std::string(names.KeyForId(sym))] = n;
  }
  for (const auto& [sym, n] : invoker_sig_) {
    m.invoker_sig[std::string(names.KeyForId(sym))] = n;
  }
  for (const auto& [sym, n] : invoker_org_sig_) {
    m.invoker_org_sig[std::string(names.KeyForId(sym))] = n;
  }

  m.duration_s = max_ts_ - min_ts_;
  m.tr = m.duration_s > 0 ? static_cast<double>(m.total_txs) / m.duration_s
                          : static_cast<double>(m.total_txs);
  m.tfr = m.duration_s > 0 ? static_cast<double>(m.failed_txs) / m.duration_s
                           : static_cast<double>(m.failed_txs);
  for (size_t i = 0; i < tx_intervals_.num_intervals(); ++i) {
    m.trd.push_back(tx_intervals_.RateAt(i));
  }
  for (size_t i = 0; i < fail_intervals_.num_intervals(); ++i) {
    m.frd.push_back(fail_intervals_.RateAt(i));
  }
  m.frd.resize(m.trd.size(), 0.0);  // align interval vectors

  m.num_blocks = blocks_.size();
  m.b_sizeavg = m.num_blocks > 0 ? static_cast<double>(m.total_txs) /
                                       static_cast<double>(m.num_blocks)
                                 : 0;
  m.num_activities = activities_.size();

  // A key is hot when its failure frequency clears both the absolute
  // floor and the fraction-of-all-failures threshold (user-configurable,
  // paper §4.3 metric 6). Computed before the key maps so kHotKeysOnly
  // can drop cold keys without materializing their strings at all.
  const uint64_t hot_threshold = std::max<uint64_t>(
      options_.hotkey_min_failures,
      static_cast<uint64_t>(options_.hotkey_failure_fraction *
                            static_cast<double>(m.failed_txs)));

  // Sort the key aggregates by key string once, then build the three
  // string-ordered output maps with end-position hints: every insert is
  // amortized O(1) instead of a fresh O(log n) descent with string
  // comparisons at each level.
  const Interner& interner = GlobalKeyInterner();
  std::vector<std::pair<std::string_view, const KeyAgg*>> sorted_keys;
  sorted_keys.reserve(key_agg_.size());
  for (const auto& [id, agg] : key_agg_) {
    if (detail == SnapshotDetail::kHotKeysOnly &&
        agg.fail_freq < hot_threshold) {
      continue;  // cold key: no window-snapshot consumer ever reads it
    }
    sorted_keys.emplace_back(interner.KeyForId(id), &agg);
  }
  std::sort(sorted_keys.begin(), sorted_keys.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key_view, aggp] : sorted_keys) {
    const KeyAgg& agg = *aggp;
    std::string key(key_view);
    auto& accessors_of_key =
        m.key_accessors
            .emplace_hint(m.key_accessors.end(), key,
                          std::map<std::string, LogMetrics::KeyAccessorStats>{})
            ->second;
    if (detail == SnapshotDetail::kFull) {
      auto& activities_of_key =
          m.key_activities.emplace_hint(m.key_activities.end(), key,
                                        std::set<std::string>{})
              ->second;
      for (const auto& a : agg.accessors) {
        std::string activity(names.KeyForId(a.activity));
        activities_of_key.insert(activity);
        accessors_of_key[std::move(activity)] = a.stats;
      }
    } else {
      for (const auto& a : agg.accessors) {
        accessors_of_key[std::string(names.KeyForId(a.activity))] = a.stats;
      }
    }
    if (agg.fail_freq > 0) {
      m.key_freq.emplace_hint(m.key_freq.end(), std::move(key), agg.fail_freq);
    }
  }
  for (const auto& [key, freq] : m.key_freq) {
    if (freq >= hot_threshold) m.hot_keys.push_back(key);
  }
  std::sort(m.hot_keys.begin(), m.hot_keys.end(),
            [&](const std::string& a, const std::string& b) {
              uint64_t fa = m.key_freq.at(a);
              uint64_t fb = m.key_freq.at(b);
              if (fa != fb) return fa > fb;
              return a < b;
            });

  m.conflicts.reserve(conflicts_.size());
  for (const ConflictRec& r : conflicts_) {
    ConflictPair pair;
    pair.failed_commit_order = r.failed_commit_order;
    pair.cause_commit_order = r.cause_commit_order;
    pair.failed_activity = std::string(names.KeyForId(r.failed_activity));
    pair.cause_activity = std::string(names.KeyForId(r.cause_activity));
    pair.key = std::string(r.key);
    pair.distance = r.distance;
    pair.same_block = r.same_block;
    pair.reorderable = r.reorderable;
    pair.same_activity = r.same_activity;
    pair.delta_candidate = r.delta_candidate;
    m.conflicts.push_back(std::move(pair));
  }
  // Name-id pairs map bijectively onto string pairs, so each internal
  // entry lands on a distinct output entry; the map re-sorts itself into
  // string order.
  for (const auto& [syms, n] : activity_conflicts_) {
    m.activity_conflicts[{std::string(names.KeyForId(syms.first)),
                          std::string(names.KeyForId(syms.second))}] = n;
  }
  m.intra_block_conflicts = intra_block_conflicts_;
  m.inter_block_conflicts = inter_block_conflicts_;
  m.adjacent_same_activity_conflicts = adjacent_same_activity_conflicts_;
  m.delta_candidates = delta_candidates_;
  m.reorderable_conflicts = reorderable_conflicts_;

  return m;
}

}  // namespace blockoptr
