#ifndef BLOCKOPTR_BLOCKOPT_STREAM_STREAM_ENGINE_H_
#define BLOCKOPTR_BLOCKOPT_STREAM_STREAM_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "blockopt/metrics/metrics.h"
#include "blockopt/recommend/recommender.h"
#include "blockopt/stream/conflict_window.h"
#include "blockopt/stream/online_recommender.h"
#include "blockopt/stream/topk.h"
#include "ledger/block.h"
#include "telemetry/timeseries.h"

namespace blockoptr {

/// Configuration for the streaming analysis engine. Every buffer is
/// capacity-bounded, so engine memory is O(panes + top-K + series +
/// events) regardless of run length.
struct StreamOptions {
  bool enabled = false;
  /// Sliding evidence window (simulated seconds) for the online
  /// recommender; also the evaluation cadence.
  double window_s = 5.0;
  /// Apply the top active recommendation mid-run via the driver's
  /// live-reconfig hook (at most once per run).
  bool apply = false;
  /// Max rows covered by retained sealed panes — the window-evidence
  /// budget (rows beyond it are folded into the cumulative view early,
  /// truncating the window, counted by ring_overflow()).
  size_t ring_capacity = 8192;
  /// Target rows per metrics pane. Each window evaluation merges the
  /// sealed sub-accumulators fully inside the window and re-feeds only
  /// the straddling pane's in-window rows; smaller panes shrink that
  /// re-fed suffix, larger panes amortize merge and seal cost (see the
  /// pane-size ablation in bench_streaming_analysis). Panes also seal at
  /// every evaluation boundary, so this only caps intra-window
  /// granularity. Clamped to ring_capacity.
  size_t pane_rows = 1024;
  /// Space-saving counters for the hot-key sketch.
  size_t topk_capacity = 32;
  /// Max transactions in the incremental conflict graph window. Per-key
  /// posting lists (and so per-commit scan cost) grow with this, which
  /// is why the default stays at a few blocks' worth.
  size_t conflict_window = 256;
  /// Point capacity per stream time series.
  size_t series_capacity = 512;
  /// Max retained recommendation events.
  size_t max_events = 256;
  RecommenderOptions recommender;
};

/// Online BlockOptR: the batch ledger → log → metrics → recommendations
/// pipeline run continuously while the experiment executes. The peer's
/// commit path feeds every committed block in; the engine incrementally
/// derives log rows (same semantics as ExtractBlockchainLog: config
/// transactions occupy a block position but never a commit order),
/// folds them into the open MetricsPane, a hot-key space-saving sketch,
/// and a windowed conflict graph, and periodically re-runs the nine
/// recommendation rules over the sliding window — emitting events when
/// advice appears, changes, or withdraws, and optionally applying the
/// top recommendation through a driver-supplied hook.
///
/// Each row is folded into exactly one accumulator: the open pane. Panes
/// seal at block boundaries once they reach their row target; a window
/// evaluation merges the sealed panes lying fully inside the window
/// (O(distinct keys) per pane, independent of row count) and re-feeds
/// only the in-window row suffix of the one pane straddling the window
/// start — so window metrics are row-exact while the steady-state
/// evaluation cost is O(panes + one pane's rows), not O(window) rows.
/// The same sealed panes fold into the cumulative whole-run accumulator,
/// whose state is then field-for-field identical to one accumulator fed
/// every row (MetricsAccumulator::Merge). Sealed panes are retained
/// until they age out of every reachable window, so a short-gap final
/// evaluation still sees full evidence. Pane boundaries fall only
/// between blocks, and all transactions of a block share one commit
/// timestamp, so panes are pure in window time.
///
/// The engine is passive and allocation-bounded: it schedules no
/// simulator events and its state depends only on the committed block
/// sequence, so streaming exports inherit the sweep-determinism
/// contract.
class StreamEngine {
 public:
  explicit StreamEngine(const StreamOptions& options);

  /// Driver-supplied applier: receives an active recommendation and
  /// returns true if it was applied (the engine stops trying after the
  /// first success). Must be released before the target network dies —
  /// Finalize() does that.
  void set_apply_hook(std::function<bool(const Recommendation&)> hook) {
    apply_hook_ = std::move(hook);
  }

  /// Feeds one committed block (called from the peer commit path).
  void OnBlockCommit(const Block& block);

  /// Runs a final window evaluation at `end_time`, folds every
  /// outstanding pane into the cumulative view, and drops the apply
  /// hook. Idempotent.
  void Finalize(double end_time);

  // ---- Inspection ----------------------------------------------------
  const StreamOptions& options() const { return options_; }
  /// Cumulative whole-run metrics (field-for-field equal to the batch
  /// pipeline over the same ledger). Complete as of the last evaluation;
  /// Finalize() folds in any open remainder.
  const MetricsAccumulator& cumulative() const { return cumulative_; }
  LogMetrics CumulativeSnapshot() const { return cumulative_.Snapshot(); }
  const OnlineRecommender& recommender() const { return recommender_; }
  const WindowedConflictGraph& conflict_graph() const { return graph_; }
  const SpaceSavingTopK& hot_keys() const { return topk_; }

  uint64_t blocks_seen() const { return blocks_seen_; }
  uint64_t entries_seen() const { return entries_seen_; }
  /// Rows folded into the cumulative view while still inside the
  /// evidence window, because retained panes hit ring_capacity (the
  /// window was truncated).
  uint64_t ring_overflow() const { return ring_overflow_; }
  uint64_t evaluations() const { return recommender_.evaluations(); }

  // Pane bookkeeping (exported with the stream state).
  /// Rows in the open (not yet sealed) pane.
  uint64_t open_pane_rows() const { return open_.rows; }
  /// Retained sealed panes / the rows they cover.
  size_t sealed_pane_count() const { return sealed_.size(); }
  uint64_t sealed_rows() const { return sealed_rows_; }
  /// Lifetime counts: panes sealed, and accumulator merges performed
  /// (window assembly + cumulative folds).
  uint64_t panes_sealed() const { return panes_sealed_; }
  uint64_t pane_merges() const { return pane_merges_; }

  bool applied() const { return applied_; }
  double apply_time() const { return apply_time_; }
  /// The recommendation that was applied (valid only when applied()).
  const Recommendation& applied_recommendation() const {
    return applied_rec_;
  }

  /// All stream time series, for export (stable order).
  std::vector<const TimeSeries*> AllSeries() const;

  const TimeSeries& commit_tps() const { return commit_tps_; }
  const TimeSeries& block_fill() const { return block_fill_; }
  const TimeSeries& conflict_edges() const { return conflict_edges_; }

 private:
  /// One pane: a sub-accumulator over a contiguous row range, plus the
  /// commit-timestamp span it covers. The pane keeps its rows
  /// (id-interned, built in place, capacity recycled across pane reuse)
  /// so a window boundary falling inside the pane can be honored exactly
  /// by re-feeding just the in-window suffix. `flushed` panes have
  /// already been folded into cumulative_ but stay retained while a
  /// future window can still reach them.
  struct Pane {
    MetricsAccumulator acc;
    /// Row storage; only the first `rows` elements are live (the rest
    /// are retained husks whose vector capacity the next fill reuses).
    std::vector<MetricsRow> row_store;
    double start_ts = 0;
    double end_ts = 0;
    uint64_t rows = 0;
    bool flushed = false;
  };

  void Evaluate(double t);
  /// Moves the open pane (if nonempty) onto the sealed deque.
  void SealOpen();
  /// Parks a retired pane in the reuse pool (if there is room) so the
  /// next SealOpen inherits its accumulator and row-storage capacities
  /// instead of allocating fresh ones.
  void RecyclePane(Pane& retired);
  /// Folds every unflushed sealed pane into cumulative_, in order.
  void FlushSealed();
  /// Drops retained panes from the front until the covered rows fit
  /// ring_capacity, folding unflushed victims into cumulative_ first and
  /// counting still-in-window rows as overflow.
  void EvictOverCapacity(double now);

  StreamOptions options_;
  size_t effective_pane_rows_;
  std::function<bool(const Recommendation&)> apply_hook_;

  MetricsAccumulator cumulative_;
  OnlineRecommender recommender_;
  WindowedConflictGraph graph_;
  SpaceSavingTopK topk_;
  Pane open_;
  std::deque<Pane> sealed_;
  /// Reused per-evaluation window fold (Reset between evaluations), so
  /// each evaluation starts with warm container capacities instead of a
  /// fresh accumulator's cold allocations.
  MetricsAccumulator window_scratch_;
  /// Retired panes parked for reuse as future open panes — a
  /// steady-state pane cycle allocates nothing. Bounded (kPanePoolMax).
  std::vector<Pane> pane_pool_;
  static constexpr size_t kPanePoolMax = 8;

  /// Blocks committed since the last evaluation; the first
  /// kPostEvalMicroPanes of them seal as single-block panes so the next
  /// window start (which lands just past the last evaluation) falls on
  /// or near a pane boundary, minimizing the re-fed straddle suffix.
  uint32_t blocks_since_eval_ = 0;
  static constexpr uint32_t kPostEvalMicroPanes = 2;

  uint64_t next_commit_order_ = 0;
  uint64_t blocks_seen_ = 0;
  uint64_t entries_seen_ = 0;
  uint64_t ring_overflow_ = 0;
  uint64_t sealed_rows_ = 0;
  uint64_t panes_sealed_ = 0;
  uint64_t pane_merges_ = 0;

  bool have_anchor_ = false;
  double last_eval_t_ = 0;
  double latency_sum_ = 0;
  uint64_t latency_count_ = 0;

  // Cumulative counter values at the previous evaluation, for per-window
  // rate deltas.
  struct EvalSnapshot {
    uint64_t total = 0;
    uint64_t failed = 0;
    uint64_t mvcc = 0;
    uint64_t phantom = 0;
    uint64_t endorsement = 0;
    uint64_t conflicts = 0;
    double latency_sum = 0;
    uint64_t latency_count = 0;
  };
  EvalSnapshot prev_;

  bool applied_ = false;
  double apply_time_ = 0;
  Recommendation applied_rec_;
  bool finalized_ = false;

  // Windowed series (bounded; see StreamOptions::series_capacity).
  TimeSeries commit_tps_;
  TimeSeries failures_per_s_;
  TimeSeries mvcc_per_s_;
  TimeSeries phantom_per_s_;
  TimeSeries endorsement_per_s_;
  TimeSeries conflicts_per_s_;
  TimeSeries window_failure_rate_;
  TimeSeries hot_key_count_;
  TimeSeries commit_latency_s_;
  TimeSeries active_recommendations_;
  TimeSeries block_fill_;
  TimeSeries conflict_edges_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_STREAM_STREAM_ENGINE_H_
