#ifndef BLOCKOPTR_BLOCKOPT_STREAM_STREAM_ENGINE_H_
#define BLOCKOPTR_BLOCKOPT_STREAM_STREAM_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "blockopt/metrics/metrics.h"
#include "blockopt/recommend/recommender.h"
#include "blockopt/stream/conflict_window.h"
#include "blockopt/stream/online_recommender.h"
#include "blockopt/stream/topk.h"
#include "ledger/block.h"
#include "telemetry/timeseries.h"

namespace blockoptr {

/// Configuration for the streaming analysis engine. Every buffer is
/// capacity-bounded, so engine memory is O(ring + window + top-K +
/// series + events) regardless of run length.
struct StreamOptions {
  bool enabled = false;
  /// Sliding evidence window (simulated seconds) for the online
  /// recommender; also the evaluation cadence.
  double window_s = 5.0;
  /// Apply the top active recommendation mid-run via the driver's
  /// live-reconfig hook (at most once per run).
  bool apply = false;
  /// Max log rows retained for window re-analysis.
  size_t ring_capacity = 8192;
  /// Space-saving counters for the hot-key sketch.
  size_t topk_capacity = 32;
  /// Max transactions in the incremental conflict graph window. Per-key
  /// posting lists (and so per-commit scan cost) grow with this, which
  /// is why the default stays at a few blocks' worth.
  size_t conflict_window = 256;
  /// Point capacity per stream time series.
  size_t series_capacity = 512;
  /// Max retained recommendation events.
  size_t max_events = 256;
  RecommenderOptions recommender;
};

/// Online BlockOptR: the batch ledger → log → metrics → recommendations
/// pipeline run continuously while the experiment executes. The peer's
/// commit path feeds every committed block in; the engine incrementally
/// derives log rows (same semantics as ExtractBlockchainLog: config
/// transactions occupy a block position but never a commit order),
/// folds them into a cumulative MetricsAccumulator, a hot-key
/// space-saving sketch, and a windowed conflict graph, and periodically
/// re-runs the nine recommendation rules over the sliding window —
/// emitting events when advice appears, changes, or withdraws, and
/// optionally applying the top recommendation through a driver-supplied
/// hook.
///
/// The engine is passive and allocation-bounded: it schedules no
/// simulator events and its state depends only on the committed block
/// sequence, so streaming exports inherit the sweep-determinism
/// contract.
class StreamEngine {
 public:
  explicit StreamEngine(const StreamOptions& options);

  /// Driver-supplied applier: receives an active recommendation and
  /// returns true if it was applied (the engine stops trying after the
  /// first success). Must be released before the target network dies —
  /// Finalize() does that.
  void set_apply_hook(std::function<bool(const Recommendation&)> hook) {
    apply_hook_ = std::move(hook);
  }

  /// Feeds one committed block (called from the peer commit path).
  void OnBlockCommit(const Block& block);

  /// Runs a final window evaluation at `end_time` and drops the apply
  /// hook. Idempotent.
  void Finalize(double end_time);

  // ---- Inspection ----------------------------------------------------
  const StreamOptions& options() const { return options_; }
  /// Cumulative whole-run metrics (field-for-field equal to the batch
  /// pipeline over the same ledger).
  const MetricsAccumulator& cumulative() const { return cumulative_; }
  LogMetrics CumulativeSnapshot() const { return cumulative_.Snapshot(); }
  const OnlineRecommender& recommender() const { return recommender_; }
  const WindowedConflictGraph& conflict_graph() const { return graph_; }
  const SpaceSavingTopK& hot_keys() const { return topk_; }
  /// Id-interned rows currently retained for window re-analysis.
  const std::deque<MetricsRow>& window_entries() const { return ring_; }

  uint64_t blocks_seen() const { return blocks_seen_; }
  uint64_t entries_seen() const { return entries_seen_; }
  /// Rows evicted because the ring hit capacity while still inside the
  /// evidence window (the window was truncated).
  uint64_t ring_overflow() const { return ring_overflow_; }
  uint64_t evaluations() const { return recommender_.evaluations(); }

  bool applied() const { return applied_; }
  double apply_time() const { return apply_time_; }
  /// The recommendation that was applied (valid only when applied()).
  const Recommendation& applied_recommendation() const {
    return applied_rec_;
  }

  /// All stream time series, for export (stable order).
  std::vector<const TimeSeries*> AllSeries() const;

  const TimeSeries& commit_tps() const { return commit_tps_; }
  const TimeSeries& block_fill() const { return block_fill_; }
  const TimeSeries& conflict_edges() const { return conflict_edges_; }

 private:
  void Evaluate(double t);

  StreamOptions options_;
  std::function<bool(const Recommendation&)> apply_hook_;

  MetricsAccumulator cumulative_;
  OnlineRecommender recommender_;
  WindowedConflictGraph graph_;
  SpaceSavingTopK topk_;
  std::deque<MetricsRow> ring_;

  uint64_t next_commit_order_ = 0;
  uint64_t blocks_seen_ = 0;
  uint64_t entries_seen_ = 0;
  uint64_t ring_overflow_ = 0;

  bool have_anchor_ = false;
  double last_eval_t_ = 0;
  double latency_sum_ = 0;
  uint64_t latency_count_ = 0;

  // Cumulative counter values at the previous evaluation, for per-window
  // rate deltas.
  struct EvalSnapshot {
    uint64_t total = 0;
    uint64_t failed = 0;
    uint64_t mvcc = 0;
    uint64_t phantom = 0;
    uint64_t endorsement = 0;
    uint64_t conflicts = 0;
    double latency_sum = 0;
    uint64_t latency_count = 0;
  };
  EvalSnapshot prev_;

  bool applied_ = false;
  double apply_time_ = 0;
  Recommendation applied_rec_;
  bool finalized_ = false;

  // Windowed series (bounded; see StreamOptions::series_capacity).
  TimeSeries commit_tps_;
  TimeSeries failures_per_s_;
  TimeSeries mvcc_per_s_;
  TimeSeries phantom_per_s_;
  TimeSeries endorsement_per_s_;
  TimeSeries conflicts_per_s_;
  TimeSeries window_failure_rate_;
  TimeSeries hot_key_count_;
  TimeSeries commit_latency_s_;
  TimeSeries active_recommendations_;
  TimeSeries block_fill_;
  TimeSeries conflict_edges_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_STREAM_STREAM_ENGINE_H_
