#ifndef BLOCKOPTR_BLOCKOPT_STREAM_EXPORT_H_
#define BLOCKOPTR_BLOCKOPT_STREAM_EXPORT_H_

#include <ostream>
#include <string>

#include "blockopt/stream/stream_engine.h"
#include "common/json.h"

namespace blockoptr {

/// The engine's full machine-readable state: configuration, cumulative
/// counters, windowed series, active recommendations, the bounded event
/// log, hot-key sketch, conflict-window stats, and the applied
/// recommendation (if any). This becomes the "stream" section of
/// --metrics-out. Byte-deterministic for a given committed block
/// sequence.
JsonValue StreamStateJson(const StreamEngine& engine);

/// Appends the stream families to a Prometheus text exposition:
/// counters/gauges for the engine state, one gauge per series last
/// value, per-recommendation-type active gauges (labelled), and the
/// hot-key sketch (key label, escaped).
void AppendStreamPrometheus(const StreamEngine& engine, std::ostream& out);

/// The "Streaming analysis" HTML report section (h2 blocks: summary,
/// active recommendations, event log, series charts). Pass the result as
/// WriteHtmlReport's extra_sections_html.
std::string StreamHtmlSection(const StreamEngine& engine);

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_STREAM_EXPORT_H_
