#ifndef BLOCKOPTR_BLOCKOPT_STREAM_CONFLICT_WINDOW_H_
#define BLOCKOPTR_BLOCKOPT_STREAM_CONFLICT_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/interner.h"

namespace blockoptr {

/// Incrementally maintained conflict graph over a sliding window of
/// transactions. Same edge semantics as `reorder::ConflictGraph`: an edge
/// i -> j exists when i *writes* a key that j *reads* (range results
/// included), i != j. Instead of rebuilding the flat sorted (key, tx)
/// arrays per batch, per-key reader/writer posting lists are updated as
/// each transaction arrives and trimmed as the oldest falls out of the
/// window — O(keys + touched postings) per add/evict rather than
/// O(window log window) per block.
///
/// Adjacency lists and postings are append-only sorted vectors, not
/// trees: node sequence numbers only grow, so every insertion lands at
/// the back, and the evicted node always holds the globally smallest
/// live seq, so every removal pops the front. That keeps the per-edge
/// cost at one vector append (no per-edge tree-node allocation), which
/// is what makes the graph cheap enough for the always-on streaming
/// profile.
///
/// Capacity-bounded: at most `max_nodes` live transactions; adding beyond
/// that evicts the oldest (FIFO). `Adjacency()` returns window-relative
/// indices directly comparable to a from-scratch `ConflictGraph` built
/// over the same transactions in arrival order.
class WindowedConflictGraph {
 public:
  explicit WindowedConflictGraph(size_t max_nodes);

  /// Adds one transaction with its sorted-unique RS/WS id views (the
  /// cached `ReadKeyIds()`/`WriteKeyIds()` of a ReadWriteSet or log
  /// entry). Returns the node's stable sequence number. Evicts the oldest
  /// node first when the window is full.
  uint64_t AddNode(const std::vector<KeyId>& read_ids,
                   const std::vector<KeyId>& write_ids);

  /// Removes the oldest live node and every edge incident to it.
  void EvictOldest();

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  size_t max_nodes() const { return max_nodes_; }
  /// Directed edges currently live.
  size_t EdgeCount() const { return edge_count_; }
  /// Sequence number of the oldest live node (0 when empty).
  uint64_t OldestSeq() const { return nodes_.empty() ? 0 : nodes_.front().seq; }
  uint64_t NextSeq() const { return next_seq_; }

  /// Window-relative adjacency (index 0 = oldest live node), each list
  /// sorted ascending — field-for-field comparable to
  /// `ConflictGraph::InvalidatedBy` over the same transactions.
  std::vector<std::vector<int>> Adjacency() const;

 private:
  struct Node {
    uint64_t seq = 0;
    // Kept so eviction knows which postings to trim.
    std::vector<KeyId> read_ids;
    std::vector<KeyId> write_ids;
    // Sorted ascending: edges to newer nodes are appended as they
    // arrive, and eviction only ever removes the minimum seq.
    std::vector<uint64_t> out;  // this node's writes invalidate these readers
    std::vector<uint64_t> in;   // these writers invalidate this node's reads
  };

  /// Per-key posting list of live node seqs, ascending. A flat vector
  /// with a consumed-prefix cursor instead of a deque: push_back on add,
  /// head advance on evict, periodic compaction to bound memory.
  struct Posting {
    std::vector<uint64_t> seqs;
    size_t head = 0;

    bool empty() const { return head == seqs.size(); }
    uint64_t front() const { return seqs[head]; }
    void push_back(uint64_t seq) { seqs.push_back(seq); }
    void pop_front() {
      ++head;
      if (head >= 64 && head * 2 >= seqs.size()) {
        seqs.erase(seqs.begin(), seqs.begin() + static_cast<long>(head));
        head = 0;
      }
    }
  };

  Node& NodeForSeq(uint64_t seq) {
    // Seqs are consecutive across the deque (evictions only pop the
    // front), so the offset from the front seq is the index.
    return nodes_[static_cast<size_t>(seq - nodes_.front().seq)];
  }

  /// Removes `seq` from a sorted edge list. The caller only ever removes
  /// the oldest live node, so the hit is at the front.
  static void EraseSeq(std::vector<uint64_t>& sorted, uint64_t seq);

  /// Grows `side` to cover `id` and returns its posting. Key ids are
  /// dense (interned sequentially from zero), so direct indexing replaces
  /// hashing on the two lookups every transaction key pays; an id never
  /// seen by this graph costs one empty Posting slot.
  static Posting& PostingFor(std::vector<Posting>& side, KeyId id) {
    if (id >= side.size()) side.resize(static_cast<size_t>(id) + 1);
    return side[id];
  }

  size_t max_nodes_;
  uint64_t next_seq_ = 0;
  std::deque<Node> nodes_;
  std::vector<Posting> readers_;  // indexed by KeyId
  std::vector<Posting> writers_;  // indexed by KeyId
  size_t edge_count_ = 0;
  // AddNode scratch (member to avoid per-call allocation).
  std::vector<uint64_t> scratch_;
  // Evicted nodes parked for reuse so a steady-state window recycles
  // its id/edge vector buffers instead of reallocating them per node.
  std::vector<Node> pool_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_STREAM_CONFLICT_WINDOW_H_
