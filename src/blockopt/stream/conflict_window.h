#ifndef BLOCKOPTR_BLOCKOPT_STREAM_CONFLICT_WINDOW_H_
#define BLOCKOPTR_BLOCKOPT_STREAM_CONFLICT_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/interner.h"

namespace blockoptr {

/// Incrementally maintained conflict graph over a sliding window of
/// transactions. Same edge semantics as `reorder::ConflictGraph`: an edge
/// i -> j exists when i *writes* a key that j *reads* (range results
/// included), i != j. Instead of rebuilding the flat sorted (key, tx)
/// arrays per batch, per-key reader/writer posting lists are updated as
/// each transaction arrives and trimmed as the oldest falls out of the
/// window — O(keys + touched postings) per add/evict rather than
/// O(window log window) per block.
///
/// Capacity-bounded: at most `max_nodes` live transactions; adding beyond
/// that evicts the oldest (FIFO). `Adjacency()` returns window-relative
/// indices directly comparable to a from-scratch `ConflictGraph` built
/// over the same transactions in arrival order.
class WindowedConflictGraph {
 public:
  explicit WindowedConflictGraph(size_t max_nodes);

  /// Adds one transaction with its sorted-unique RS/WS id views (the
  /// cached `ReadKeyIds()`/`WriteKeyIds()` of a ReadWriteSet or log
  /// entry). Returns the node's stable sequence number. Evicts the oldest
  /// node first when the window is full.
  uint64_t AddNode(const std::vector<KeyId>& read_ids,
                   const std::vector<KeyId>& write_ids);

  /// Removes the oldest live node and every edge incident to it.
  void EvictOldest();

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  size_t max_nodes() const { return max_nodes_; }
  /// Directed edges currently live.
  size_t EdgeCount() const { return edge_count_; }
  /// Sequence number of the oldest live node (0 when empty).
  uint64_t OldestSeq() const { return nodes_.empty() ? 0 : nodes_.front().seq; }
  uint64_t NextSeq() const { return next_seq_; }

  /// Window-relative adjacency (index 0 = oldest live node), each list
  /// sorted ascending — field-for-field comparable to
  /// `ConflictGraph::InvalidatedBy` over the same transactions.
  std::vector<std::vector<int>> Adjacency() const;

 private:
  struct Node {
    uint64_t seq = 0;
    // Kept so eviction knows which postings to trim.
    std::vector<KeyId> read_ids;
    std::vector<KeyId> write_ids;
    std::set<uint64_t> out;  // this node's writes invalidate these readers
    std::set<uint64_t> in;   // these writers invalidate this node's reads
  };

  Node& NodeForSeq(uint64_t seq) {
    // Seqs are consecutive across the deque (evictions only pop the
    // front), so the offset from the front seq is the index.
    return nodes_[static_cast<size_t>(seq - nodes_.front().seq)];
  }

  size_t max_nodes_;
  uint64_t next_seq_ = 0;
  std::deque<Node> nodes_;
  // Per-key posting lists of live node seqs, ascending (push_back on add,
  // pop_front on evict).
  std::unordered_map<KeyId, std::deque<uint64_t>> readers_;
  std::unordered_map<KeyId, std::deque<uint64_t>> writers_;
  size_t edge_count_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_STREAM_CONFLICT_WINDOW_H_
