#include "blockopt/stream/online_recommender.h"

#include <utility>

namespace blockoptr {

namespace {

bool SameAdvice(const Recommendation& a, const Recommendation& b) {
  return a.type == b.type && a.detail == b.detail &&
         a.activities == b.activities && a.keys == b.keys &&
         a.orgs == b.orgs &&
         a.suggested_block_count == b.suggested_block_count &&
         a.suggested_rate_tps == b.suggested_rate_tps;
}

}  // namespace

std::string_view RecommendationEventKindName(RecommendationEventKind k) {
  switch (k) {
    case RecommendationEventKind::kAppeared:
      return "appeared";
    case RecommendationEventKind::kUpdated:
      return "updated";
    case RecommendationEventKind::kWithdrawn:
      return "withdrawn";
  }
  return "unknown";
}

OnlineRecommender::OnlineRecommender(const RecommenderOptions& options,
                                     size_t max_events)
    : options_(options), max_events_(max_events == 0 ? 1 : max_events) {}

const std::vector<Recommendation>& OnlineRecommender::Evaluate(
    const LogMetrics& window_metrics, double window_start,
    double window_end) {
  ++evaluations_;
  std::vector<Recommendation> next = Recommend(window_metrics, options_);

  // Diff against the previous active set by type. `Recommend` emits at
  // most one recommendation per type, ordered by type value, so a single
  // merge walk finds every appearance, change, and withdrawal.
  auto MakeEvent = [&](RecommendationEventKind kind,
                       const Recommendation& rec) {
    RecommendationEvent event;
    event.kind = kind;
    event.sim_time = window_end;
    event.window_start = window_start;
    event.window_end = window_end;
    event.recommendation = rec;
    PushEvent(std::move(event));
  };

  size_t i = 0;  // over active_ (old)
  size_t j = 0;  // over next (new)
  while (i < active_.size() || j < next.size()) {
    if (j == next.size() ||
        (i < active_.size() && active_[i].type < next[j].type)) {
      MakeEvent(RecommendationEventKind::kWithdrawn, active_[i]);
      ++i;
    } else if (i == active_.size() || next[j].type < active_[i].type) {
      MakeEvent(RecommendationEventKind::kAppeared, next[j]);
      ++j;
    } else {
      if (!SameAdvice(active_[i], next[j])) {
        MakeEvent(RecommendationEventKind::kUpdated, next[j]);
      }
      ++i;
      ++j;
    }
  }

  active_ = std::move(next);
  return active_;
}

void OnlineRecommender::PushEvent(RecommendationEvent event) {
  if (events_.size() >= max_events_) {
    events_.pop_front();
    ++events_dropped_;
  }
  events_.push_back(std::move(event));
}

}  // namespace blockoptr
