#include "blockopt/stream/export.h"

#include <cstdio>
#include <sstream>

#include "common/interner.h"
#include "telemetry/export.h"

namespace blockoptr {

namespace {

JsonValue RecommendationJson(const Recommendation& rec) {
  JsonValue::Object o;
  o["type"] = std::string(RecommendationTypeName(rec.type));
  o["detail"] = rec.detail;
  if (!rec.activities.empty()) {
    JsonValue::Array a;
    for (const auto& s : rec.activities) a.emplace_back(s);
    o["activities"] = std::move(a);
  }
  if (!rec.keys.empty()) {
    JsonValue::Array a;
    for (const auto& s : rec.keys) a.emplace_back(s);
    o["keys"] = std::move(a);
  }
  if (!rec.orgs.empty()) {
    JsonValue::Array a;
    for (const auto& s : rec.orgs) a.emplace_back(s);
    o["orgs"] = std::move(a);
  }
  if (rec.suggested_block_count > 0) {
    o["suggested_block_count"] = static_cast<uint64_t>(
        rec.suggested_block_count);
  }
  if (rec.suggested_rate_tps > 0) {
    o["suggested_rate_tps"] = rec.suggested_rate_tps;
  }
  return JsonValue(std::move(o));
}

std::string FmtDouble(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

JsonValue StreamStateJson(const StreamEngine& engine) {
  const StreamOptions& opts = engine.options();
  JsonValue::Object root;

  JsonValue::Object config;
  config["window_s"] = opts.window_s;
  config["apply"] = opts.apply;
  config["ring_capacity"] = static_cast<uint64_t>(opts.ring_capacity);
  config["pane_rows"] = static_cast<uint64_t>(opts.pane_rows);
  config["topk_capacity"] = static_cast<uint64_t>(opts.topk_capacity);
  config["conflict_window"] = static_cast<uint64_t>(opts.conflict_window);
  config["series_capacity"] = static_cast<uint64_t>(opts.series_capacity);
  config["max_events"] = static_cast<uint64_t>(opts.max_events);
  root["config"] = std::move(config);

  const MetricsAccumulator& acc = engine.cumulative();
  JsonValue::Object cumulative;
  cumulative["total_txs"] = acc.total_txs();
  cumulative["failed_txs"] = acc.failed_txs();
  cumulative["mvcc_failures"] = acc.mvcc_failures();
  cumulative["phantom_failures"] = acc.phantom_failures();
  cumulative["endorsement_failures"] = acc.endorsement_failures();
  cumulative["conflicts"] = acc.conflicts_detected();
  cumulative["intra_block_conflicts"] = acc.intra_block_conflicts();
  cumulative["inter_block_conflicts"] = acc.inter_block_conflicts();
  cumulative["reorderable_conflicts"] = acc.reorderable_conflicts();
  cumulative["delta_candidates"] = acc.delta_candidates();
  root["cumulative"] = std::move(cumulative);

  root["blocks_seen"] = engine.blocks_seen();
  root["entries_seen"] = engine.entries_seen();
  root["ring_overflow"] = engine.ring_overflow();
  root["evaluations"] = engine.evaluations();

  JsonValue::Object panes;
  panes["sealed"] = engine.panes_sealed();
  panes["merges"] = engine.pane_merges();
  panes["retained"] = static_cast<uint64_t>(engine.sealed_pane_count());
  panes["retained_rows"] = engine.sealed_rows();
  panes["open_rows"] = engine.open_pane_rows();
  root["panes"] = std::move(panes);

  root["applied"] = engine.applied();
  if (engine.applied()) {
    root["apply_time"] = engine.apply_time();
    root["applied_recommendation"] =
        RecommendationJson(engine.applied_recommendation());
  }

  JsonValue::Array active;
  for (const Recommendation& rec : engine.recommender().active()) {
    active.push_back(RecommendationJson(rec));
  }
  root["active_recommendations"] = std::move(active);

  JsonValue::Array events;
  for (const RecommendationEvent& event : engine.recommender().events()) {
    JsonValue::Object e;
    e["kind"] = std::string(RecommendationEventKindName(event.kind));
    e["sim_time"] = event.sim_time;
    e["window_start"] = event.window_start;
    e["window_end"] = event.window_end;
    e["recommendation"] = RecommendationJson(event.recommendation);
    events.emplace_back(std::move(e));
  }
  root["events"] = std::move(events);
  root["events_dropped"] = engine.recommender().events_dropped();

  const Interner& interner = GlobalKeyInterner();
  JsonValue::Array hot;
  for (const SpaceSavingTopK::Counter& c : engine.hot_keys().Entries()) {
    JsonValue::Object h;
    h["key"] = std::string(interner.KeyForId(c.id));
    h["count"] = c.count;
    h["error"] = c.error;
    hot.emplace_back(std::move(h));
  }
  root["hot_keys"] = std::move(hot);

  JsonValue::Object graph;
  graph["nodes"] = static_cast<uint64_t>(engine.conflict_graph().size());
  graph["edges"] =
      static_cast<uint64_t>(engine.conflict_graph().EdgeCount());
  graph["capacity"] =
      static_cast<uint64_t>(engine.conflict_graph().max_nodes());
  root["conflict_window"] = std::move(graph);

  JsonValue::Object series;
  for (const TimeSeries* s : engine.AllSeries()) {
    series[s->name()] = s->ToJson();
  }
  root["series"] = std::move(series);

  return JsonValue(std::move(root));
}

void AppendStreamPrometheus(const StreamEngine& engine, std::ostream& out) {
  const auto counter = [&](const std::string& name, uint64_t v) {
    const std::string p = PrometheusMetricName(name);
    out << "# HELP " << p << ' ' << name << "\n# TYPE " << p
        << " counter\n" << p << ' ' << v << '\n';
  };
  const auto gauge = [&](const std::string& name, double v) {
    const std::string p = PrometheusMetricName(name);
    out << "# HELP " << p << ' ' << name << "\n# TYPE " << p << " gauge\n"
        << p << ' ' << FmtDouble("%.10g", v) << '\n';
  };

  const MetricsAccumulator& acc = engine.cumulative();
  counter("stream.total_txs", acc.total_txs());
  counter("stream.failed_txs", acc.failed_txs());
  counter("stream.mvcc_failures", acc.mvcc_failures());
  counter("stream.phantom_failures", acc.phantom_failures());
  counter("stream.endorsement_failures", acc.endorsement_failures());
  counter("stream.conflicts", acc.conflicts_detected());
  counter("stream.blocks_seen", engine.blocks_seen());
  counter("stream.evaluations", engine.evaluations());
  counter("stream.ring_overflow", engine.ring_overflow());
  counter("stream.panes_sealed", engine.panes_sealed());
  counter("stream.pane_merges", engine.pane_merges());
  counter("stream.events_dropped", engine.recommender().events_dropped());
  gauge("stream.applied", engine.applied() ? 1 : 0);
  gauge("stream.conflict_window_nodes",
        static_cast<double>(engine.conflict_graph().size()));
  gauge("stream.conflict_window_edges",
        static_cast<double>(engine.conflict_graph().EdgeCount()));

  // Last value of every stream series (same convention as the sampler's
  // `ts.*` gauges).
  for (const TimeSeries* s : engine.AllSeries()) {
    gauge("ts." + s->name(), s->Last());
  }

  // One labelled gauge per recommendation type: 1 while active. The
  // label set is the currently active types only, so a scrape diff shows
  // advice flips.
  {
    const std::string name = "stream.recommendation_active";
    const std::string p = PrometheusMetricName(name);
    out << "# HELP " << p << ' ' << name << "\n# TYPE " << p << " gauge\n";
    for (const Recommendation& rec : engine.recommender().active()) {
      out << p << "{type=\""
          << PrometheusEscapeLabel(
                 std::string(RecommendationTypeName(rec.type)))
          << "\"} 1\n";
    }
  }

  // Hot-key sketch: one labelled gauge per counter (keys are workload
  // strings — escaping is load-bearing here).
  {
    const std::string name = "stream.hot_key_failures";
    const std::string p = PrometheusMetricName(name);
    out << "# HELP " << p << ' ' << name << "\n# TYPE " << p << " gauge\n";
    const Interner& interner = GlobalKeyInterner();
    for (const SpaceSavingTopK::Counter& c : engine.hot_keys().Entries()) {
      out << p << "{key=\""
          << PrometheusEscapeLabel(std::string(interner.KeyForId(c.id)))
          << "\"} " << c.count << '\n';
    }
  }
}

std::string StreamHtmlSection(const StreamEngine& engine) {
  std::ostringstream out;
  out << "<h2>Streaming analysis</h2>\n<table>\n";
  const auto row = [&](const std::string& k, const std::string& v) {
    out << "<tr><td>" << HtmlEscapeText(k) << "</td><td>"
        << HtmlEscapeText(v) << "</td></tr>\n";
  };
  const MetricsAccumulator& acc = engine.cumulative();
  row("window (s)", FmtDouble("%.3g", engine.options().window_s));
  row("blocks seen", std::to_string(engine.blocks_seen()));
  row("transactions seen", std::to_string(engine.entries_seen()));
  row("window evaluations", std::to_string(engine.evaluations()));
  row("panes sealed / merges",
      std::to_string(engine.panes_sealed()) + " / " +
          std::to_string(engine.pane_merges()));
  row("failed transactions", std::to_string(acc.failed_txs()));
  row("conflicts detected", std::to_string(acc.conflicts_detected()));
  row("conflict window (nodes/edges)",
      std::to_string(engine.conflict_graph().size()) + " / " +
          std::to_string(engine.conflict_graph().EdgeCount()));
  if (engine.applied()) {
    row("applied mid-run",
        std::string(RecommendationTypeName(
            engine.applied_recommendation().type)) +
            " at t=" + FmtDouble("%.3f", engine.apply_time()) + "s");
  }
  out << "</table>\n";

  const auto& active = engine.recommender().active();
  if (!active.empty()) {
    out << "<h2>Active recommendations (last window)</h2>\n"
           "<table>\n<tr><th>type</th><th>detail</th></tr>\n";
    for (const Recommendation& rec : active) {
      out << "<tr><td>"
          << HtmlEscapeText(std::string(RecommendationTypeName(rec.type)))
          << "</td><td>" << HtmlEscapeText(rec.detail) << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  const auto& events = engine.recommender().events();
  if (!events.empty()) {
    out << "<h2>Recommendation events</h2>\n"
           "<table>\n<tr><th>t (s)</th><th>kind</th><th>type</th>"
           "<th>evidence window</th></tr>\n";
    for (const RecommendationEvent& event : events) {
      out << "<tr><td>" << FmtDouble("%.3f", event.sim_time) << "</td><td>"
          << HtmlEscapeText(
                 std::string(RecommendationEventKindName(event.kind)))
          << "</td><td>"
          << HtmlEscapeText(std::string(
                 RecommendationTypeName(event.recommendation.type)))
          << "</td><td>[" << FmtDouble("%.3f", event.window_start) << ", "
          << FmtDouble("%.3f", event.window_end) << "]</td></tr>\n";
    }
    out << "</table>\n";
  }

  out << "<h2>Stream time series</h2>\n";
  for (const TimeSeries* s : engine.AllSeries()) {
    WriteTimeSeriesChart(out, s->name(), *s);
  }
  return out.str();
}

}  // namespace blockoptr
