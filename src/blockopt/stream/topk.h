#ifndef BLOCKOPTR_BLOCKOPT_STREAM_TOPK_H_
#define BLOCKOPTR_BLOCKOPT_STREAM_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/interner.h"

namespace blockoptr {

/// Space-saving heavy-hitter sketch (Metwally et al.) over interned key
/// ids: at most `capacity` counters, O(1) expected update, deterministic
/// eviction (smallest count, then smallest id — no hashing order leaks
/// into results, so the sweep-determinism contract holds). Each counter
/// carries the classic overestimation bound `error`: the true frequency
/// of `id` lies in [count - error, count].
class SpaceSavingTopK {
 public:
  struct Counter {
    KeyId id = kInvalidKeyId;
    uint64_t count = 0;
    uint64_t error = 0;  // overestimation bound inherited on eviction
  };

  explicit SpaceSavingTopK(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    slots_.reserve(capacity_);
    index_.reserve(capacity_);
  }

  /// Observes one occurrence of `id` (weight defaults to 1).
  void Offer(KeyId id, uint64_t weight = 1) {
    auto it = index_.find(id);
    if (it != index_.end()) {
      slots_[it->second].count += weight;
      return;
    }
    if (slots_.size() < capacity_) {
      index_[id] = slots_.size();
      slots_.push_back(Counter{id, weight, 0});
      return;
    }
    // Evict the (min count, min id) counter; the newcomer inherits its
    // count as the error bound.
    size_t victim = 0;
    for (size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].count < slots_[victim].count ||
          (slots_[i].count == slots_[victim].count &&
           slots_[i].id < slots_[victim].id)) {
        victim = i;
      }
    }
    index_.erase(slots_[victim].id);
    const uint64_t floor = slots_[victim].count;
    slots_[victim] = Counter{id, floor + weight, floor};
    index_[id] = victim;
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return slots_.size(); }
  uint64_t total_offered() const {
    uint64_t t = 0;
    for (const Counter& c : slots_) t += c.count - c.error;
    return t;
  }

  /// Counters sorted by (count desc, id asc) — deterministic.
  std::vector<Counter> Entries() const {
    std::vector<Counter> out = slots_;
    std::sort(out.begin(), out.end(), [](const Counter& a, const Counter& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.id < b.id;
    });
    return out;
  }

  void Clear() {
    slots_.clear();
    index_.clear();
  }

 private:
  size_t capacity_;
  std::vector<Counter> slots_;
  std::unordered_map<KeyId, size_t> index_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_STREAM_TOPK_H_
