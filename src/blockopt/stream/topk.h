#ifndef BLOCKOPTR_BLOCKOPT_STREAM_TOPK_H_
#define BLOCKOPTR_BLOCKOPT_STREAM_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/interner.h"

namespace blockoptr {

/// Space-saving heavy-hitter sketch (Metwally et al.) over interned key
/// ids: at most `capacity` counters, deterministic eviction (smallest
/// count, then smallest id — no hashing order leaks into results, so the
/// sweep-determinism contract holds). Each counter carries the classic
/// overestimation bound `error`: the true frequency of `id` lies in
/// [count - error, count].
///
/// Counters live in parallel flat arrays (ids / counts / errors) scanned
/// linearly — a sketch is small by design (default capacity 32), and the
/// hot-path id scan then touches two cache lines instead of a dozen
/// interleaved structs, which matters because the always-on failure path
/// re-warms the sketch from cache on every offer.
class SpaceSavingTopK {
 public:
  struct Counter {
    KeyId id = kInvalidKeyId;
    uint64_t count = 0;
    uint64_t error = 0;  // overestimation bound inherited on eviction
  };

  explicit SpaceSavingTopK(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ids_.reserve(capacity_);
    counts_.reserve(capacity_);
    errors_.reserve(capacity_);
  }

  /// Observes one occurrence of `id` (weight defaults to 1). One fused
  /// pass serves both outcomes: it looks for a tracked `id` (a hit
  /// transposes the counter one slot forward so frequent ids cluster
  /// near the front and exit early) while simultaneously tracking the
  /// eviction victim, so a miss — the common case when the key stream
  /// has no heavy hitters and every offer evicts — costs one scan, not a
  /// failed hit scan followed by a victim scan. Slot order is internal
  /// only — every read path (Entries, Merge, eviction) is
  /// order-insensitive, so the sweep-determinism contract holds.
  void Offer(KeyId id, uint64_t weight = 1) {
    size_t victim = 0;
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (ids_[i] == id) {
        counts_[i] += weight;
        if (i > 0) {
          std::swap(ids_[i - 1], ids_[i]);
          std::swap(counts_[i - 1], counts_[i]);
          std::swap(errors_[i - 1], errors_[i]);
        }
        return;
      }
      if (counts_[i] < counts_[victim] ||
          (counts_[i] == counts_[victim] && ids_[i] < ids_[victim])) {
        victim = i;
      }
    }
    if (ids_.size() < capacity_) {
      ids_.push_back(id);
      counts_.push_back(weight);
      errors_.push_back(0);
      return;
    }
    // Evict the (min count, min id) counter; the newcomer inherits its
    // count as the error bound.
    const uint64_t floor = counts_[victim];
    ids_[victim] = id;
    counts_[victim] = floor + weight;
    errors_[victim] = floor;
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return ids_.size(); }
  uint64_t total_offered() const {
    uint64_t t = 0;
    for (size_t i = 0; i < ids_.size(); ++i) t += counts_[i] - errors_[i];
    return t;
  }

  /// Counters sorted by (count desc, id asc) — deterministic.
  std::vector<Counter> Entries() const {
    std::vector<Counter> out;
    out.reserve(ids_.size());
    for (size_t i = 0; i < ids_.size(); ++i) {
      out.push_back(Counter{ids_[i], counts_[i], errors_[i]});
    }
    std::sort(out.begin(), out.end(), [](const Counter& a, const Counter& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.id < b.id;
    });
    return out;
  }

  /// Merges another sketch into this one (mergeable-summaries union):
  /// per-id counts and error bounds sum, and an id tracked by only one
  /// sketch inherits the other sketch's eviction floor (its minimum
  /// counter when at capacity — an upper bound on anything it absorbed)
  /// as both count and error contribution, preserving the overestimate
  /// invariant: the true combined frequency stays in [count - error,
  /// count]. The union then keeps the top `capacity` counters, ordered
  /// by (count desc, id asc) over the full union before truncation, so
  /// the result is deterministic regardless of merge order.
  void Merge(const SpaceSavingTopK& other) {
    if (other.ids_.empty()) return;
    const uint64_t floor_this = FloorBound();
    const uint64_t floor_other = other.FloorBound();
    std::vector<Counter> merged;
    merged.reserve(ids_.size() + other.ids_.size());
    for (size_t i = 0; i < ids_.size(); ++i) {
      const size_t oi = other.Find(ids_[i]);
      if (oi != kNotFound) {
        merged.push_back(Counter{ids_[i], counts_[i] + other.counts_[oi],
                                 errors_[i] + other.errors_[oi]});
      } else {
        merged.push_back(Counter{ids_[i], counts_[i] + floor_other,
                                 errors_[i] + floor_other});
      }
    }
    for (size_t oi = 0; oi < other.ids_.size(); ++oi) {
      if (Find(other.ids_[oi]) != kNotFound) continue;  // already paired
      merged.push_back(Counter{other.ids_[oi], other.counts_[oi] + floor_this,
                               other.errors_[oi] + floor_this});
    }
    std::sort(merged.begin(), merged.end(),
              [](const Counter& a, const Counter& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.id < b.id;
              });
    if (merged.size() > capacity_) merged.resize(capacity_);
    ids_.clear();
    counts_.clear();
    errors_.clear();
    for (const Counter& c : merged) {
      ids_.push_back(c.id);
      counts_.push_back(c.count);
      errors_.push_back(c.error);
    }
  }

  void Clear() {
    ids_.clear();
    counts_.clear();
    errors_.clear();
  }

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  size_t Find(KeyId id) const {
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (ids_[i] == id) return i;
    }
    return kNotFound;
  }

  /// Upper bound on the count any evicted (untracked) id may have
  /// absorbed: the minimum counter once the sketch is at capacity, 0
  /// before (nothing has ever been evicted).
  uint64_t FloorBound() const {
    if (ids_.size() < capacity_) return 0;
    uint64_t floor = counts_.front();
    for (const uint64_t c : counts_) floor = std::min(floor, c);
    return floor;
  }

  size_t capacity_;
  std::vector<KeyId> ids_;
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> errors_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_STREAM_TOPK_H_
