#include "blockopt/stream/stream_engine.h"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace blockoptr {

StreamEngine::StreamEngine(const StreamOptions& options)
    : options_(options),
      effective_pane_rows_(std::max<size_t>(
          1, std::min(options.pane_rows,
                      std::max<size_t>(1, options.ring_capacity)))),
      cumulative_(options.recommender.metrics),
      recommender_(options.recommender, options.max_events),
      graph_(options.conflict_window),
      topk_(options.topk_capacity),
      open_{MetricsAccumulator(options.recommender.metrics)},
      window_scratch_(options.recommender.metrics),
      commit_tps_("stream.commit_tps", options.series_capacity),
      failures_per_s_("stream.failures_per_s", options.series_capacity),
      mvcc_per_s_("stream.mvcc_per_s", options.series_capacity),
      phantom_per_s_("stream.phantom_per_s", options.series_capacity),
      endorsement_per_s_("stream.endorsement_per_s",
                         options.series_capacity),
      conflicts_per_s_("stream.conflicts_per_s", options.series_capacity),
      window_failure_rate_("stream.window_failure_rate",
                           options.series_capacity),
      hot_key_count_("stream.hot_key_count", options.series_capacity),
      commit_latency_s_("stream.commit_latency_s", options.series_capacity),
      active_recommendations_("stream.active_recommendations",
                              options.series_capacity),
      block_fill_("stream.block_fill", options.series_capacity),
      conflict_edges_("stream.conflict_edges", options.series_capacity) {}

void StreamEngine::SealOpen() {
  if (open_.rows == 0) return;
  ++panes_sealed_;
  sealed_rows_ += open_.rows;
  sealed_.push_back(std::move(open_));
  if (!pane_pool_.empty()) {
    open_ = std::move(pane_pool_.back());
    pane_pool_.pop_back();
  } else {
    open_ = Pane{MetricsAccumulator(options_.recommender.metrics)};
  }
}

void StreamEngine::RecyclePane(Pane& retired) {
  if (pane_pool_.size() >= kPanePoolMax) return;
  retired.acc.Reset();
  // Rows stay as husks: the next fill overwrites them in place, reusing
  // their inner vector capacities.
  retired.rows = 0;
  retired.start_ts = 0;
  retired.end_ts = 0;
  retired.flushed = false;
  pane_pool_.push_back(std::move(retired));
}

void StreamEngine::FlushSealed() {
  // Flushed panes always form a prefix of the deque: folds happen in
  // order here, and eviction only ever removes the front.
  for (Pane& pane : sealed_) {
    if (pane.flushed) continue;
    cumulative_.Merge(pane.acc);
    ++pane_merges_;
    pane.flushed = true;
  }
}

void StreamEngine::EvictOverCapacity(double now) {
  while (!sealed_.empty() && sealed_rows_ > options_.ring_capacity) {
    Pane& victim = sealed_.front();
    if (!victim.flushed) {
      cumulative_.Merge(victim.acc);
      ++pane_merges_;
    }
    // Rows that could still have served a window ending now (or later)
    // are lost evidence — the classic ring-overflow signal.
    if (victim.end_ts >= now - options_.window_s) {
      ring_overflow_ += victim.rows;
    }
    sealed_rows_ -= victim.rows;
    RecyclePane(victim);
    sealed_.pop_front();
  }
}

void StreamEngine::OnBlockCommit(const Block& block) {
  ++blocks_seen_;
  uint32_t non_config = 0;
  for (const Transaction& tx : block.transactions) {
    if (tx.is_config || tx.status == TxStatus::kConfig) continue;
    // Id-interned row built in place in the open pane's row storage
    // (reusing the rwset's cached KeyId views) — the commit hot path
    // materializes no strings, and pane recycling reuses the row's
    // vector capacities so the steady-state feed is allocation-free as
    // well. The pane keeps its rows so a window boundary falling inside
    // it can be honored exactly at evaluation time.
    MetricsRow& row = open_.row_store.size() > open_.rows
                          ? open_.row_store[open_.rows]
                          : open_.row_store.emplace_back();
    RowFromTransactionInto(block, tx, row);
    // Dense commit order over non-config rows — the same numbering
    // CleanLog assigns post-mortem.
    row.commit_order = next_commit_order_++;
    ++entries_seen_;
    ++non_config;

    latency_sum_ += row.commit_timestamp - row.client_timestamp;
    ++latency_count_;

    // The row feeds exactly one accumulator: the open pane. The
    // cumulative view is maintained by folding sealed panes in
    // (MetricsAccumulator::Merge), never by a second per-row feed.
    if (open_.rows == 0) open_.start_ts = row.commit_timestamp;
    open_.end_ts = row.commit_timestamp;
    ++open_.rows;
    open_.acc.OnRow(row);

    if (row.failed()) {
      for (KeyId id : row.accessed_ids) topk_.Offer(id);
    }
    // Conflict-graph nodes use the transaction's rwset views (RS needs
    // read-only keys, which the log row folds into RWS).
    graph_.AddNode(tx.rwset.ReadKeyIds(), tx.rwset.WriteKeyIds());
  }

  const double t = block.commit_timestamp;
  block_fill_.Record(t, static_cast<double>(non_config));
  conflict_edges_.Record(t, static_cast<double>(graph_.EdgeCount()));

  // Pane boundaries fall only between blocks (all of a block's rows
  // share its commit timestamp, keeping panes pure in window time).
  //
  // The first few blocks after an evaluation seal as single-block
  // micro-panes: the next evaluation fires at the first block past
  // last_eval + window_s, so its window start lands just after the
  // current evaluation — inside these micro-panes. A boundary there
  // means the straddling pane whose suffix must be re-fed row by row is
  // about one block, not a nearly full pane.
  if (open_.rows >= effective_pane_rows_ ||
      (open_.rows > 0 && blocks_since_eval_ < kPostEvalMicroPanes)) {
    SealOpen();
    EvictOverCapacity(t);
  }
  ++blocks_since_eval_;

  if (!have_anchor_) {
    have_anchor_ = true;
    last_eval_t_ = t;
  } else if (t - last_eval_t_ >= options_.window_s) {
    Evaluate(t);
  }
}

void StreamEngine::Evaluate(double t) {
  const double dt = t - last_eval_t_;
  if (dt <= 0) return;

  SealOpen();

  // Retire panes no window ending at or after `t` can reach. (Not
  // overflow: they aged out naturally.)
  const double window_start = std::max(0.0, t - options_.window_s);
  while (!sealed_.empty() && sealed_.front().end_ts < window_start) {
    Pane& victim = sealed_.front();
    if (!victim.flushed) {
      cumulative_.Merge(victim.acc);
      ++pane_merges_;
    }
    sealed_rows_ -= victim.rows;
    RecyclePane(victim);
    sealed_.pop_front();
  }

  // Window metrics: panes fully inside the window fold in as O(distinct
  // keys + conflicts) merges, independent of row count; the one pane
  // straddling window_start contributes only its in-window row suffix,
  // re-fed row by row. The result is row-exact — identical to feeding
  // every retained row with commit_timestamp >= window_start — at
  // O(panes + one pane's rows) per evaluation instead of O(window).
  window_scratch_.Reset();
  for (const Pane& pane : sealed_) {
    if (pane.start_ts >= window_start) {
      window_scratch_.Merge(pane.acc);
      ++pane_merges_;
      continue;
    }
    const auto begin = pane.row_store.begin();
    auto it = std::partition_point(
        begin, begin + static_cast<ptrdiff_t>(pane.rows),
        [&](const MetricsRow& r) { return r.commit_timestamp < window_start; });
    for (auto end = begin + static_cast<ptrdiff_t>(pane.rows); it != end;
         ++it) {
      window_scratch_.OnRow(*it);
    }
  }
  // Hot-keys-only detail: the recommender pass below reads the per-key
  // maps exclusively by hot-key lookup, so the snapshot skips cold-key
  // string materialization (the dominant snapshot cost at high key
  // cardinality) without changing a single recommendation.
  const LogMetrics wm = window_scratch_.Snapshot(
      MetricsAccumulator::SnapshotDetail::kHotKeysOnly);

  // Bring the cumulative view up to `t` before reading its counters.
  FlushSealed();
  EvictOverCapacity(t);

  const auto rate = [&](uint64_t now, uint64_t before) {
    return static_cast<double>(now - before) / dt;
  };
  commit_tps_.Record(t, rate(cumulative_.total_txs(), prev_.total));
  failures_per_s_.Record(t, rate(cumulative_.failed_txs(), prev_.failed));
  mvcc_per_s_.Record(t, rate(cumulative_.mvcc_failures(), prev_.mvcc));
  phantom_per_s_.Record(t,
                        rate(cumulative_.phantom_failures(), prev_.phantom));
  endorsement_per_s_.Record(
      t, rate(cumulative_.endorsement_failures(), prev_.endorsement));
  conflicts_per_s_.Record(
      t, rate(cumulative_.conflicts_detected(), prev_.conflicts));

  const uint64_t lat_n = latency_count_ - prev_.latency_count;
  commit_latency_s_.Record(
      t, lat_n > 0 ? (latency_sum_ - prev_.latency_sum) /
                         static_cast<double>(lat_n)
                   : 0.0);

  window_failure_rate_.Record(
      t, wm.total_txs > 0 ? static_cast<double>(wm.failed_txs) /
                                static_cast<double>(wm.total_txs)
                          : 0.0);
  hot_key_count_.Record(t, static_cast<double>(wm.hot_keys.size()));

  const std::vector<Recommendation>& active =
      recommender_.Evaluate(wm, window_start, t);
  active_recommendations_.Record(t, static_cast<double>(active.size()));

  if (options_.apply && !applied_ && apply_hook_) {
    for (const Recommendation& rec : active) {
      if (apply_hook_(rec)) {
        applied_ = true;
        apply_time_ = t;
        applied_rec_ = rec;
        break;
      }
    }
  }

  prev_.total = cumulative_.total_txs();
  prev_.failed = cumulative_.failed_txs();
  prev_.mvcc = cumulative_.mvcc_failures();
  prev_.phantom = cumulative_.phantom_failures();
  prev_.endorsement = cumulative_.endorsement_failures();
  prev_.conflicts = cumulative_.conflicts_detected();
  prev_.latency_sum = latency_sum_;
  prev_.latency_count = latency_count_;
  last_eval_t_ = t;
  blocks_since_eval_ = 0;
}

void StreamEngine::Finalize(double end_time) {
  if (finalized_) return;
  finalized_ = true;
  if (have_anchor_ && end_time > last_eval_t_) Evaluate(end_time);
  // Fold any remainder (open rows, or sealed panes when no final
  // evaluation fired) so the cumulative view covers the whole run.
  SealOpen();
  FlushSealed();
  apply_hook_ = nullptr;
}

std::vector<const TimeSeries*> StreamEngine::AllSeries() const {
  return {&commit_tps_,          &failures_per_s_,
          &mvcc_per_s_,          &phantom_per_s_,
          &endorsement_per_s_,   &conflicts_per_s_,
          &window_failure_rate_, &hot_key_count_,
          &commit_latency_s_,    &active_recommendations_,
          &block_fill_,          &conflict_edges_};
}

}  // namespace blockoptr
