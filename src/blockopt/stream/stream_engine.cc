#include "blockopt/stream/stream_engine.h"

#include <algorithm>

namespace blockoptr {

StreamEngine::StreamEngine(const StreamOptions& options)
    : options_(options),
      cumulative_(options.recommender.metrics),
      recommender_(options.recommender, options.max_events),
      graph_(options.conflict_window),
      topk_(options.topk_capacity),
      commit_tps_("stream.commit_tps", options.series_capacity),
      failures_per_s_("stream.failures_per_s", options.series_capacity),
      mvcc_per_s_("stream.mvcc_per_s", options.series_capacity),
      phantom_per_s_("stream.phantom_per_s", options.series_capacity),
      endorsement_per_s_("stream.endorsement_per_s",
                         options.series_capacity),
      conflicts_per_s_("stream.conflicts_per_s", options.series_capacity),
      window_failure_rate_("stream.window_failure_rate",
                           options.series_capacity),
      hot_key_count_("stream.hot_key_count", options.series_capacity),
      commit_latency_s_("stream.commit_latency_s", options.series_capacity),
      active_recommendations_("stream.active_recommendations",
                              options.series_capacity),
      block_fill_("stream.block_fill", options.series_capacity),
      conflict_edges_("stream.conflict_edges", options.series_capacity) {}

void StreamEngine::OnBlockCommit(const Block& block) {
  ++blocks_seen_;
  uint32_t non_config = 0;
  for (const Transaction& tx : block.transactions) {
    if (tx.is_config || tx.status == TxStatus::kConfig) continue;
    // Id-interned row straight from the transaction (reusing the rwset's
    // cached KeyId views) — the commit hot path materializes no strings.
    // Recycling the evicted row's vector capacity makes the steady-state
    // feed allocation-free as well.
    MetricsRow row;
    if (ring_.size() >= options_.ring_capacity) {
      row = std::move(ring_.front());
      ring_.pop_front();
      ++ring_overflow_;
    }
    RowFromTransactionInto(block, tx, row);
    // Dense commit order over non-config rows — the same numbering
    // CleanLog assigns post-mortem.
    row.commit_order = next_commit_order_++;
    ++entries_seen_;
    ++non_config;

    latency_sum_ += row.commit_timestamp - row.client_timestamp;
    ++latency_count_;

    cumulative_.OnRow(row);
    if (row.failed()) {
      for (KeyId id : row.accessed_ids) topk_.Offer(id);
    }
    // Conflict-graph nodes use the transaction's rwset views (RS needs
    // read-only keys, which the log row folds into RWS).
    graph_.AddNode(tx.rwset.ReadKeyIds(), tx.rwset.WriteKeyIds());

    ring_.push_back(std::move(row));
  }

  const double t = block.commit_timestamp;
  block_fill_.Record(t, static_cast<double>(non_config));
  conflict_edges_.Record(t, static_cast<double>(graph_.EdgeCount()));

  if (!have_anchor_) {
    have_anchor_ = true;
    last_eval_t_ = t;
  } else if (t - last_eval_t_ >= options_.window_s) {
    Evaluate(t);
  }
}

void StreamEngine::Evaluate(double t) {
  const double dt = t - last_eval_t_;
  if (dt <= 0) return;

  const auto rate = [&](uint64_t now, uint64_t before) {
    return static_cast<double>(now - before) / dt;
  };
  commit_tps_.Record(t, rate(cumulative_.total_txs(), prev_.total));
  failures_per_s_.Record(t, rate(cumulative_.failed_txs(), prev_.failed));
  mvcc_per_s_.Record(t, rate(cumulative_.mvcc_failures(), prev_.mvcc));
  phantom_per_s_.Record(t,
                        rate(cumulative_.phantom_failures(), prev_.phantom));
  endorsement_per_s_.Record(
      t, rate(cumulative_.endorsement_failures(), prev_.endorsement));
  conflicts_per_s_.Record(
      t, rate(cumulative_.conflicts_detected(), prev_.conflicts));

  const uint64_t lat_n = latency_count_ - prev_.latency_count;
  commit_latency_s_.Record(
      t, lat_n > 0 ? (latency_sum_ - prev_.latency_sum) /
                         static_cast<double>(lat_n)
                   : 0.0);

  // Age out rows that left the evidence window, then re-derive window
  // metrics from the retained rows. O(window) per evaluation, not per
  // commit.
  const double window_start = std::max(0.0, t - options_.window_s);
  while (!ring_.empty() && ring_.front().commit_timestamp < window_start) {
    ring_.pop_front();
  }
  MetricsAccumulator window_acc(options_.recommender.metrics);
  for (const MetricsRow& e : ring_) {
    if (e.commit_timestamp <= t) window_acc.OnRow(e);
  }
  const LogMetrics wm = window_acc.Snapshot();

  window_failure_rate_.Record(
      t, wm.total_txs > 0 ? static_cast<double>(wm.failed_txs) /
                                static_cast<double>(wm.total_txs)
                          : 0.0);
  hot_key_count_.Record(t, static_cast<double>(wm.hot_keys.size()));

  const std::vector<Recommendation>& active =
      recommender_.Evaluate(wm, window_start, t);
  active_recommendations_.Record(t, static_cast<double>(active.size()));

  if (options_.apply && !applied_ && apply_hook_) {
    for (const Recommendation& rec : active) {
      if (apply_hook_(rec)) {
        applied_ = true;
        apply_time_ = t;
        applied_rec_ = rec;
        break;
      }
    }
  }

  prev_.total = cumulative_.total_txs();
  prev_.failed = cumulative_.failed_txs();
  prev_.mvcc = cumulative_.mvcc_failures();
  prev_.phantom = cumulative_.phantom_failures();
  prev_.endorsement = cumulative_.endorsement_failures();
  prev_.conflicts = cumulative_.conflicts_detected();
  prev_.latency_sum = latency_sum_;
  prev_.latency_count = latency_count_;
  last_eval_t_ = t;
}

void StreamEngine::Finalize(double end_time) {
  if (finalized_) return;
  finalized_ = true;
  if (have_anchor_ && end_time > last_eval_t_) Evaluate(end_time);
  apply_hook_ = nullptr;
}

std::vector<const TimeSeries*> StreamEngine::AllSeries() const {
  return {&commit_tps_,          &failures_per_s_,
          &mvcc_per_s_,          &phantom_per_s_,
          &endorsement_per_s_,   &conflicts_per_s_,
          &window_failure_rate_, &hot_key_count_,
          &commit_latency_s_,    &active_recommendations_,
          &block_fill_,          &conflict_edges_};
}

}  // namespace blockoptr
