#ifndef BLOCKOPTR_BLOCKOPT_STREAM_ONLINE_RECOMMENDER_H_
#define BLOCKOPTR_BLOCKOPT_STREAM_ONLINE_RECOMMENDER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string_view>
#include <vector>

#include "blockopt/recommend/recommender.h"

namespace blockoptr {

/// What changed about a recommendation between two window evaluations.
enum class RecommendationEventKind {
  kAppeared = 0,  // type newly fired
  kUpdated,       // type still firing, but the advice changed
  kWithdrawn,     // type stopped firing
};

std::string_view RecommendationEventKindName(RecommendationEventKind k);

/// One recommendation state change, with the evidence window that
/// produced it.
struct RecommendationEvent {
  RecommendationEventKind kind = RecommendationEventKind::kAppeared;
  double sim_time = 0;      // evaluation time (window end)
  double window_start = 0;  // evidence window
  double window_end = 0;
  /// The recommendation after the change (for kWithdrawn: the last
  /// active one before it disappeared).
  Recommendation recommendation;
};

/// Re-evaluates the nine §4.4 recommendation rules over sliding-window
/// metrics and turns the resulting advice into a bounded event stream:
/// instead of one batch verdict at the end of the run, each evaluation
/// diffs the firing set against the previous one and emits
/// appeared/updated/withdrawn events with their evidence windows.
class OnlineRecommender {
 public:
  OnlineRecommender(const RecommenderOptions& options, size_t max_events);

  /// Runs the batch rules against one window's metrics and diffs the
  /// result against the currently active set. Returns the active
  /// recommendations after the update (ordered by level then type, same
  /// as `Recommend`).
  const std::vector<Recommendation>& Evaluate(const LogMetrics& window_metrics,
                                              double window_start,
                                              double window_end);

  const std::vector<Recommendation>& active() const { return active_; }
  const std::deque<RecommendationEvent>& events() const { return events_; }
  uint64_t evaluations() const { return evaluations_; }
  /// Events discarded because the bounded buffer was full (oldest first).
  uint64_t events_dropped() const { return events_dropped_; }
  size_t max_events() const { return max_events_; }

 private:
  void PushEvent(RecommendationEvent event);

  RecommenderOptions options_;
  size_t max_events_;
  std::vector<Recommendation> active_;
  std::deque<RecommendationEvent> events_;
  uint64_t evaluations_ = 0;
  uint64_t events_dropped_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_STREAM_ONLINE_RECOMMENDER_H_
