#include "blockopt/stream/conflict_window.h"

#include <algorithm>

namespace blockoptr {

WindowedConflictGraph::WindowedConflictGraph(size_t max_nodes)
    : max_nodes_(max_nodes == 0 ? 1 : max_nodes) {}

uint64_t WindowedConflictGraph::AddNode(const std::vector<KeyId>& read_ids,
                                        const std::vector<KeyId>& write_ids) {
  if (nodes_.size() >= max_nodes_) EvictOldest();

  const uint64_t seq = next_seq_++;
  Node node;
  if (!pool_.empty()) {
    node = std::move(pool_.back());
    pool_.pop_back();
  }
  node.seq = seq;
  node.read_ids = read_ids;
  node.write_ids = write_ids;
  node.in.clear();
  node.out.clear();

  // Existing writers of keys this node reads invalidate it: w -> seq. A
  // writer reached through several keys must count once, so the posting
  // union is deduped first; `seq` is then appended to each writer's out
  // list (it is the largest live seq, so the list stays sorted).
  scratch_.clear();
  for (KeyId id : read_ids) {
    if (id >= writers_.size()) continue;
    const Posting& p = writers_[id];
    scratch_.insert(scratch_.end(), p.seqs.begin() + static_cast<long>(p.head),
                    p.seqs.end());
  }
  if (!scratch_.empty()) {
    std::sort(scratch_.begin(), scratch_.end());
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
    for (uint64_t w : scratch_) NodeForSeq(w).out.push_back(seq);
    node.in = scratch_;
    edge_count_ += scratch_.size();
  }

  // This node's writes invalidate existing readers: seq -> r. The node is
  // not yet registered in any posting, so no self-edge can form.
  scratch_.clear();
  for (KeyId id : write_ids) {
    if (id >= readers_.size()) continue;
    const Posting& p = readers_[id];
    scratch_.insert(scratch_.end(), p.seqs.begin() + static_cast<long>(p.head),
                    p.seqs.end());
  }
  if (!scratch_.empty()) {
    std::sort(scratch_.begin(), scratch_.end());
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
    for (uint64_t r : scratch_) NodeForSeq(r).in.push_back(seq);
    node.out = scratch_;
    edge_count_ += scratch_.size();
  }

  for (KeyId id : node.read_ids) PostingFor(readers_, id).push_back(seq);
  for (KeyId id : node.write_ids) PostingFor(writers_, id).push_back(seq);
  nodes_.push_back(std::move(node));
  return seq;
}

void WindowedConflictGraph::EraseSeq(std::vector<uint64_t>& sorted,
                                     uint64_t seq) {
  if (!sorted.empty() && sorted.front() == seq) {
    sorted.erase(sorted.begin());
    return;
  }
  auto it = std::lower_bound(sorted.begin(), sorted.end(), seq);
  if (it != sorted.end() && *it == seq) sorted.erase(it);
}

void WindowedConflictGraph::EvictOldest() {
  if (nodes_.empty()) return;
  Node& victim = nodes_.front();
  const uint64_t seq = victim.seq;

  // The oldest live node has the globally smallest seq, so its posting
  // entries sit at the front of each ascending list.
  for (KeyId id : victim.read_ids) {
    if (id >= readers_.size()) continue;
    Posting& p = readers_[id];
    if (!p.empty() && p.front() == seq) p.pop_front();
  }
  for (KeyId id : victim.write_ids) {
    if (id >= writers_.size()) continue;
    Posting& p = writers_[id];
    if (!p.empty() && p.front() == seq) p.pop_front();
  }

  edge_count_ -= victim.out.size() + victim.in.size();
  for (uint64_t t : victim.out) EraseSeq(NodeForSeq(t).in, seq);
  for (uint64_t s : victim.in) EraseSeq(NodeForSeq(s).out, seq);
  pool_.push_back(std::move(victim));
  nodes_.pop_front();
}

std::vector<std::vector<int>> WindowedConflictGraph::Adjacency() const {
  std::vector<std::vector<int>> adj(nodes_.size());
  if (nodes_.empty()) return adj;
  const uint64_t base = nodes_.front().seq;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    adj[i].reserve(nodes_[i].out.size());
    for (uint64_t t : nodes_[i].out) {
      adj[i].push_back(static_cast<int>(t - base));
    }
  }
  return adj;
}

}  // namespace blockoptr
