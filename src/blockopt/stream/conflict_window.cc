#include "blockopt/stream/conflict_window.h"

namespace blockoptr {

WindowedConflictGraph::WindowedConflictGraph(size_t max_nodes)
    : max_nodes_(max_nodes == 0 ? 1 : max_nodes) {}

uint64_t WindowedConflictGraph::AddNode(const std::vector<KeyId>& read_ids,
                                        const std::vector<KeyId>& write_ids) {
  if (nodes_.size() >= max_nodes_) EvictOldest();

  const uint64_t seq = next_seq_++;
  Node node;
  node.seq = seq;
  node.read_ids = read_ids;
  node.write_ids = write_ids;

  // Existing writers of keys this node reads invalidate it: w -> seq.
  for (KeyId id : read_ids) {
    auto it = writers_.find(id);
    if (it == writers_.end()) continue;
    for (uint64_t w : it->second) {
      if (NodeForSeq(w).out.insert(seq).second) {
        node.in.insert(w);
        ++edge_count_;
      }
    }
  }
  // This node's writes invalidate existing readers: seq -> r. The node is
  // not yet registered in any posting, so no self-edge can form.
  for (KeyId id : write_ids) {
    auto it = readers_.find(id);
    if (it == readers_.end()) continue;
    for (uint64_t r : it->second) {
      if (node.out.insert(r).second) {
        NodeForSeq(r).in.insert(seq);
        ++edge_count_;
      }
    }
  }

  for (KeyId id : node.read_ids) readers_[id].push_back(seq);
  for (KeyId id : node.write_ids) writers_[id].push_back(seq);
  nodes_.push_back(std::move(node));
  return seq;
}

void WindowedConflictGraph::EvictOldest() {
  if (nodes_.empty()) return;
  Node& victim = nodes_.front();
  const uint64_t seq = victim.seq;

  // The oldest live node has the globally smallest seq, so its posting
  // entries sit at the front of each ascending list.
  for (KeyId id : victim.read_ids) {
    auto it = readers_.find(id);
    if (it != readers_.end() && !it->second.empty() &&
        it->second.front() == seq) {
      it->second.pop_front();
      if (it->second.empty()) readers_.erase(it);
    }
  }
  for (KeyId id : victim.write_ids) {
    auto it = writers_.find(id);
    if (it != writers_.end() && !it->second.empty() &&
        it->second.front() == seq) {
      it->second.pop_front();
      if (it->second.empty()) writers_.erase(it);
    }
  }

  edge_count_ -= victim.out.size() + victim.in.size();
  for (uint64_t t : victim.out) NodeForSeq(t).in.erase(seq);
  for (uint64_t s : victim.in) NodeForSeq(s).out.erase(seq);
  nodes_.pop_front();
}

std::vector<std::vector<int>> WindowedConflictGraph::Adjacency() const {
  std::vector<std::vector<int>> adj(nodes_.size());
  if (nodes_.empty()) return adj;
  const uint64_t base = nodes_.front().seq;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    adj[i].reserve(nodes_[i].out.size());
    for (uint64_t t : nodes_[i].out) {
      adj[i].push_back(static_cast<int>(t - base));
    }
  }
  return adj;
}

}  // namespace blockoptr
