#include "blockopt/log/blockchain_log.h"

#include <algorithm>

namespace blockoptr {

std::vector<std::string> BlockchainLogEntry::WriteKeys() const {
  std::vector<std::string> keys;
  keys.reserve(writes.size() + delete_keys.size());
  for (const auto& [k, v] : writes) {
    (void)v;
    keys.push_back(k);
  }
  for (const auto& k : delete_keys) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<std::string> BlockchainLogEntry::AccessedKeys() const {
  std::vector<std::string> keys = WriteKeys();
  keys.insert(keys.end(), read_keys.begin(), read_keys.end());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

void BlockchainLogEntry::EnsureIdViews() const {
  KeyIdViews& c = id_views;
  if (c.reads_seen == read_keys.size() && c.writes_seen == writes.size() &&
      c.deletes_seen == delete_keys.size()) {
    return;
  }
  Interner& interner = GlobalKeyInterner();
  c.write_ids.clear();
  c.write_ids.reserve(writes.size() + delete_keys.size());
  for (const auto& [k, v] : writes) {
    (void)v;
    c.write_ids.push_back(interner.Intern(k));
  }
  for (const auto& k : delete_keys) c.write_ids.push_back(interner.Intern(k));
  std::sort(c.write_ids.begin(), c.write_ids.end());
  c.write_ids.erase(std::unique(c.write_ids.begin(), c.write_ids.end()),
                    c.write_ids.end());
  c.accessed_ids = c.write_ids;
  c.accessed_ids.reserve(c.write_ids.size() + read_keys.size());
  for (const auto& k : read_keys) {
    c.accessed_ids.push_back(interner.Intern(k));
  }
  std::sort(c.accessed_ids.begin(), c.accessed_ids.end());
  c.accessed_ids.erase(
      std::unique(c.accessed_ids.begin(), c.accessed_ids.end()),
      c.accessed_ids.end());
  c.reads_seen = read_keys.size();
  c.writes_seen = writes.size();
  c.deletes_seen = delete_keys.size();
}

const std::vector<KeyId>& BlockchainLogEntry::WriteKeyIds() const {
  EnsureIdViews();
  return id_views.write_ids;
}

const std::vector<KeyId>& BlockchainLogEntry::AccessedKeyIds() const {
  EnsureIdViews();
  return id_views.accessed_ids;
}

BlockchainLogEntry BlockchainLog::EntryFromTransaction(const Block& block,
                                                       uint32_t tx_pos,
                                                       const Transaction& tx) {
  BlockchainLogEntry e;
  e.client_timestamp = tx.client_timestamp;
  e.activity = tx.activity;
  e.args = tx.args;
  e.endorsers = tx.endorsers;
  e.invoker_client = tx.invoker.client_id;
  e.invoker_org = tx.invoker.org;
  for (const auto& r : tx.rwset.reads) e.read_keys.push_back(r.key);
  for (const auto& rq : tx.rwset.range_queries) {
    e.range_bounds.emplace_back(rq.start_key, rq.end_key);
    for (const auto& r : rq.results) e.read_keys.push_back(r.key);
  }
  std::sort(e.read_keys.begin(), e.read_keys.end());
  e.read_keys.erase(std::unique(e.read_keys.begin(), e.read_keys.end()),
                    e.read_keys.end());
  for (const auto& w : tx.rwset.writes) {
    if (w.is_delete) {
      e.delete_keys.push_back(w.key);
    } else {
      e.writes.emplace_back(w.key, w.value);
    }
  }
  e.status = tx.status;
  e.tx_type = DeriveTxType(tx.rwset);
  e.chaincode = tx.chaincode;
  e.tx_id = tx.tx_id;
  e.block_num = block.block_num;
  e.tx_pos = tx_pos;
  e.commit_timestamp = tx.commit_timestamp;
  e.is_config = tx.is_config;
  return e;
}

}  // namespace blockoptr
