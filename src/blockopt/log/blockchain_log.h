#ifndef BLOCKOPTR_BLOCKOPT_LOG_BLOCKCHAIN_LOG_H_
#define BLOCKOPTR_BLOCKOPT_LOG_BLOCKCHAIN_LOG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "ledger/ledger.h"
#include "ledger/transaction.h"

namespace blockoptr {

/// One row of the preprocessed blockchain log: the nine attributes of
/// paper §4.1 plus block coordinates used by the proximity metrics.
struct BlockchainLogEntry {
  // (1) Client timestamp: when the client generated the transaction.
  double client_timestamp = 0;
  // (2) Activity name A(x): the smart-contract function.
  std::string activity;
  // (3) Function arguments.
  std::vector<std::string> args;
  // (4) Endorsers: organizations whose signatures cover the payload.
  std::vector<std::string> endorsers;
  // (5) Invoker: client and organization.
  std::string invoker_client;
  std::string invoker_org;
  // (6) Read-write set. Reads include range-query results (RS(x));
  //     writes carry values for the delta-write analysis (WS(x)).
  std::vector<std::string> read_keys;
  std::vector<std::pair<std::string, std::string>> writes;  // key -> value
  std::vector<std::string> delete_keys;
  std::vector<std::pair<std::string, std::string>> range_bounds;
  // (7) Transaction status ST(x).
  TxStatus status = TxStatus::kValid;
  // (8) Transaction type TT(x), derived from the read-write set.
  TxType tx_type = TxType::kRead;
  // (9) Commit order: position in the cleaned log.
  uint64_t commit_order = 0;

  // Auxiliary attributes (available in the raw ledger data).
  std::string chaincode;
  uint64_t tx_id = 0;
  uint64_t block_num = 0;
  uint32_t tx_pos = 0;
  double commit_timestamp = 0;
  bool is_config = false;

  bool failed() const {
    return status == TxStatus::kMvccReadConflict ||
           status == TxStatus::kPhantomReadConflict ||
           status == TxStatus::kEndorsementPolicyFailure;
  }

  /// Write keys only (WS(x) as a key set).
  std::vector<std::string> WriteKeys() const;

  /// All accessed keys (RWS(x)).
  std::vector<std::string> AccessedKeys() const;

  /// Interned-ID views of WS(x)/RWS(x): sorted by KeyId, deduped, cached
  /// across calls (the string accessors re-sort and allocate per call —
  /// inside ComputeMetrics' per-entry loops that dominated the pass).
  /// Same contract as ReadWriteSet's views: rebuilt when any source
  /// container's size changed; ID order is not lexicographic order.
  const std::vector<KeyId>& WriteKeyIds() const;
  const std::vector<KeyId>& AccessedKeyIds() const;

  struct KeyIdViews {
    std::vector<KeyId> write_ids;
    std::vector<KeyId> accessed_ids;
    size_t reads_seen = static_cast<size_t>(-1);
    size_t writes_seen = static_cast<size_t>(-1);
    size_t deletes_seen = static_cast<size_t>(-1);
  };
  mutable KeyIdViews id_views;

 private:
  void EnsureIdViews() const;
};

/// The preprocessed blockchain log: BlockOptR's primary analysis input.
class BlockchainLog {
 public:
  BlockchainLog() = default;
  explicit BlockchainLog(std::vector<BlockchainLogEntry> entries)
      : entries_(std::move(entries)) {}

  const std::vector<BlockchainLogEntry>& entries() const { return entries_; }
  std::vector<BlockchainLogEntry>& mutable_entries() { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const BlockchainLogEntry& operator[](size_t i) const { return entries_[i]; }

  /// Converts a committed transaction into a log row.
  static BlockchainLogEntry EntryFromTransaction(const Block& block,
                                                 uint32_t tx_pos,
                                                 const Transaction& tx);

 private:
  std::vector<BlockchainLogEntry> entries_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_LOG_BLOCKCHAIN_LOG_H_
