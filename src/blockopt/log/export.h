#ifndef BLOCKOPTR_BLOCKOPT_LOG_EXPORT_H_
#define BLOCKOPTR_BLOCKOPT_LOG_EXPORT_H_

#include <ostream>

#include "blockopt/log/blockchain_log.h"
#include "common/json.h"
#include "common/result.h"

namespace blockoptr {

/// Serialization of the preprocessed blockchain log — the analysis-ready
/// CSV/JSON artefacts BlockOptR publishes (paper §4.1, contribution 3).

/// Writes the log as CSV with a header row. Multi-valued attributes
/// (args, endorsers, keys) are '|'-joined inside one field.
void WriteLogCsv(const BlockchainLog& log, std::ostream& out);

/// Full-fidelity JSON export (round-trips through ParseLogJson).
JsonValue LogToJson(const BlockchainLog& log);

/// Parses a JSON export back into a log.
Result<BlockchainLog> ParseLogJson(const JsonValue& json);

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_LOG_EXPORT_H_
