#include "blockopt/log/export.h"

#include "common/csv.h"
#include "common/string_util.h"

namespace blockoptr {

namespace {

std::string JoinPairs(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    char inner, char outer) {
  std::string out;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0) out += outer;
    out += pairs[i].first;
    out += inner;
    out += pairs[i].second;
  }
  return out;
}

TxStatus StatusFromName(const std::string& name) {
  if (name == "VALID") return TxStatus::kValid;
  if (name == "MVCC_READ_CONFLICT") return TxStatus::kMvccReadConflict;
  if (name == "PHANTOM_READ_CONFLICT") return TxStatus::kPhantomReadConflict;
  if (name == "ENDORSEMENT_POLICY_FAILURE") {
    return TxStatus::kEndorsementPolicyFailure;
  }
  return TxStatus::kConfig;
}

TxType TypeFromName(const std::string& name) {
  if (name == "read") return TxType::kRead;
  if (name == "write") return TxType::kWrite;
  if (name == "update") return TxType::kUpdate;
  if (name == "range_read") return TxType::kRangeRead;
  return TxType::kDelete;
}

JsonValue::Array StringsToJson(const std::vector<std::string>& v) {
  JsonValue::Array arr;
  arr.reserve(v.size());
  for (const auto& s : v) arr.emplace_back(s);
  return arr;
}

std::vector<std::string> StringsFromJson(const JsonValue& v) {
  std::vector<std::string> out;
  if (!v.is_array()) return out;
  for (const auto& e : v.as_array()) {
    if (e.is_string()) out.push_back(e.as_string());
  }
  return out;
}

}  // namespace

void WriteLogCsv(const BlockchainLog& log, std::ostream& out) {
  CsvWriter writer(out);
  writer.WriteRow({"commit_order", "client_timestamp", "activity", "args",
                   "endorsers", "invoker_client", "invoker_org", "read_keys",
                   "writes", "delete_keys", "status", "tx_type", "chaincode",
                   "block_num", "tx_pos", "commit_timestamp"});
  for (const auto& e : log.entries()) {
    std::vector<std::string> endorsers = e.endorsers;
    writer.WriteRow({
        std::to_string(e.commit_order),
        FormatDouble(e.client_timestamp, 6),
        e.activity,
        Join(e.args, "|"),
        Join(endorsers, "|"),
        e.invoker_client,
        e.invoker_org,
        Join(e.read_keys, "|"),
        JoinPairs(e.writes, '=', '|'),
        Join(e.delete_keys, "|"),
        std::string(TxStatusName(e.status)),
        std::string(TxTypeName(e.tx_type)),
        e.chaincode,
        std::to_string(e.block_num),
        std::to_string(e.tx_pos),
        FormatDouble(e.commit_timestamp, 6),
    });
  }
}

JsonValue LogToJson(const BlockchainLog& log) {
  JsonValue::Array rows;
  rows.reserve(log.size());
  for (const auto& e : log.entries()) {
    JsonValue::Object row;
    row["commit_order"] = JsonValue(e.commit_order);
    row["client_timestamp"] = JsonValue(e.client_timestamp);
    row["activity"] = JsonValue(e.activity);
    row["args"] = JsonValue(StringsToJson(e.args));
    row["endorsers"] = JsonValue(StringsToJson(e.endorsers));
    row["invoker_client"] = JsonValue(e.invoker_client);
    row["invoker_org"] = JsonValue(e.invoker_org);
    row["read_keys"] = JsonValue(StringsToJson(e.read_keys));
    JsonValue::Array writes;
    for (const auto& [k, v] : e.writes) {
      JsonValue::Object w;
      w["key"] = JsonValue(k);
      w["value"] = JsonValue(v);
      writes.emplace_back(std::move(w));
    }
    row["writes"] = JsonValue(std::move(writes));
    row["delete_keys"] = JsonValue(StringsToJson(e.delete_keys));
    JsonValue::Array ranges;
    for (const auto& [s, t] : e.range_bounds) {
      JsonValue::Object r;
      r["start"] = JsonValue(s);
      r["end"] = JsonValue(t);
      ranges.emplace_back(std::move(r));
    }
    row["range_bounds"] = JsonValue(std::move(ranges));
    row["status"] = JsonValue(std::string(TxStatusName(e.status)));
    row["tx_type"] = JsonValue(std::string(TxTypeName(e.tx_type)));
    row["chaincode"] = JsonValue(e.chaincode);
    row["tx_id"] = JsonValue(e.tx_id);
    row["block_num"] = JsonValue(e.block_num);
    row["tx_pos"] = JsonValue(static_cast<uint64_t>(e.tx_pos));
    row["commit_timestamp"] = JsonValue(e.commit_timestamp);
    rows.emplace_back(std::move(row));
  }
  JsonValue::Object doc;
  doc["entries"] = JsonValue(std::move(rows));
  return JsonValue(std::move(doc));
}

Result<BlockchainLog> ParseLogJson(const JsonValue& json) {
  if (!json.is_object() || !json["entries"].is_array()) {
    return Status::InvalidArgument("log JSON must have an 'entries' array");
  }
  std::vector<BlockchainLogEntry> entries;
  for (const auto& row : json["entries"].as_array()) {
    if (!row.is_object()) {
      return Status::InvalidArgument("log entry must be an object");
    }
    BlockchainLogEntry e;
    e.commit_order = static_cast<uint64_t>(row["commit_order"].as_number());
    e.client_timestamp = row["client_timestamp"].as_number();
    e.activity = row["activity"].as_string();
    e.args = StringsFromJson(row["args"]);
    e.endorsers = StringsFromJson(row["endorsers"]);
    e.invoker_client = row["invoker_client"].as_string();
    e.invoker_org = row["invoker_org"].as_string();
    e.read_keys = StringsFromJson(row["read_keys"]);
    if (row["writes"].is_array()) {
      for (const auto& w : row["writes"].as_array()) {
        e.writes.emplace_back(w["key"].as_string(), w["value"].as_string());
      }
    }
    e.delete_keys = StringsFromJson(row["delete_keys"]);
    if (row["range_bounds"].is_array()) {
      for (const auto& r : row["range_bounds"].as_array()) {
        e.range_bounds.emplace_back(r["start"].as_string(),
                                    r["end"].as_string());
      }
    }
    e.status = StatusFromName(row["status"].as_string());
    e.tx_type = TypeFromName(row["tx_type"].as_string());
    e.chaincode = row["chaincode"].as_string();
    e.tx_id = static_cast<uint64_t>(row["tx_id"].as_number());
    e.block_num = static_cast<uint64_t>(row["block_num"].as_number());
    e.tx_pos = static_cast<uint32_t>(row["tx_pos"].as_number());
    e.commit_timestamp = row["commit_timestamp"].as_number();
    entries.push_back(std::move(e));
  }
  return BlockchainLog(std::move(entries));
}

}  // namespace blockoptr
