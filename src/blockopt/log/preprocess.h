#ifndef BLOCKOPTR_BLOCKOPT_LOG_PREPROCESS_H_
#define BLOCKOPTR_BLOCKOPT_LOG_PREPROCESS_H_

#include "blockopt/log/blockchain_log.h"
#include "ledger/ledger.h"

namespace blockoptr {

/// Blockchain-data preprocessing (paper §4.1): BlockOptR reads the entire
/// chain, removes configuration/setup transactions, derives the
/// transaction type, and assigns the commit order.

/// Step 1 — raw extraction: every transaction in every block, including
/// configuration transactions (what the paper saves as JSON files).
BlockchainLog ExtractRawLog(const Ledger& ledger);

/// Step 2 — cleaning: drops configuration and lifecycle transactions and
/// renumbers `commit_order` densely over the remaining entries.
void CleanLog(BlockchainLog& log);

/// Convenience: extraction + cleaning in one call. This is the log every
/// downstream component (metrics, event log, recommender) consumes.
BlockchainLog ExtractBlockchainLog(const Ledger& ledger);

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_LOG_PREPROCESS_H_
