#include "blockopt/log/preprocess.h"

#include <algorithm>

namespace blockoptr {

BlockchainLog ExtractRawLog(const Ledger& ledger) {
  std::vector<BlockchainLogEntry> entries;
  entries.reserve(ledger.NumTransactions());
  for (const auto& block : ledger.blocks()) {
    uint32_t pos = 0;
    for (const auto& tx : block.transactions) {
      entries.push_back(
          BlockchainLog::EntryFromTransaction(block, pos++, tx));
    }
  }
  // Raw commit order includes config transactions.
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].commit_order = i;
  }
  return BlockchainLog(std::move(entries));
}

void CleanLog(BlockchainLog& log) {
  auto& entries = log.mutable_entries();
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [](const BlockchainLogEntry& e) {
                                 return e.is_config ||
                                        e.status == TxStatus::kConfig;
                               }),
                entries.end());
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].commit_order = i;
  }
}

BlockchainLog ExtractBlockchainLog(const Ledger& ledger) {
  BlockchainLog log = ExtractRawLog(ledger);
  CleanLog(log);
  return log;
}

}  // namespace blockoptr
