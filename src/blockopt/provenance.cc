#include "blockopt/provenance.h"

namespace blockoptr {

ProvenanceReport TrackDeviations(const BlockchainLog& log,
                                 const ProvenanceOptions& options) {
  // Pass 1: per-activity transaction-type histogram.
  std::map<std::string, std::map<TxType, uint64_t>> histograms;
  std::map<std::string, uint64_t> totals;
  for (const auto& e : log.entries()) {
    if (e.is_config) continue;
    if (!options.include_failed && e.failed()) continue;
    ++histograms[e.activity][e.tx_type];
    ++totals[e.activity];
  }

  // Determine the dominant (expected) type per qualifying activity.
  std::map<std::string, TxType> expected;
  for (const auto& [activity, histogram] : histograms) {
    uint64_t total = totals[activity];
    if (total < options.min_activity_occurrences) continue;
    TxType dominant = TxType::kRead;
    uint64_t dominant_count = 0;
    for (const auto& [type, count] : histogram) {
      if (count > dominant_count) {
        dominant = type;
        dominant_count = count;
      }
    }
    if (static_cast<double>(dominant_count) >=
        options.dominant_type_fraction * static_cast<double>(total)) {
      expected[activity] = dominant;
    }
  }

  // Pass 2: attribute every off-type transaction to its invoker.
  ProvenanceReport report;
  for (const auto& e : log.entries()) {
    if (e.is_config) continue;
    if (!options.include_failed && e.failed()) continue;
    auto it = expected.find(e.activity);
    if (it == expected.end() || e.tx_type == it->second) continue;
    Deviation d;
    d.commit_order = e.commit_order;
    d.activity = e.activity;
    d.observed_type = e.tx_type;
    d.expected_type = it->second;
    d.invoker_client = e.invoker_client;
    d.invoker_org = e.invoker_org;
    d.commit_timestamp = e.commit_timestamp;
    ++report.by_org[d.invoker_org];
    ++report.by_client[d.invoker_client];
    ++report.by_activity[d.activity];
    report.deviations.push_back(std::move(d));
  }
  return report;
}

}  // namespace blockoptr
