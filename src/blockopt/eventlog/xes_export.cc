#include "blockopt/eventlog/xes_export.h"

#include <cmath>
#include <cstdio>

namespace blockoptr {

namespace {

/// Escapes XML attribute/text content.
std::string XmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders a virtual-time offset as an ISO-8601 timestamp anchored at an
/// arbitrary epoch (XES requires xs:dateTime).
std::string XesTimestamp(double seconds) {
  double whole = std::floor(seconds);
  int millis = static_cast<int>(std::round((seconds - whole) * 1000));
  long total = static_cast<long>(whole);
  int hour = static_cast<int>(total / 3600) % 24;
  int day = 1 + static_cast<int>(total / 86400);
  int min = static_cast<int>(total / 60) % 60;
  int sec = static_cast<int>(total % 60);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "2026-01-%02dT%02d:%02d:%02d.%03d+00:00",
                std::min(day, 28), hour, min, sec, millis);
  return buf;
}

}  // namespace

void WriteXes(const EventLog& log, std::ostream& out) {
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out << "<log xes.version=\"1.0\" xmlns=\"http://www.xes-standard.org/\">\n";
  out << "  <extension name=\"Concept\" prefix=\"concept\" "
         "uri=\"http://www.xes-standard.org/concept.xesext\"/>\n";
  out << "  <extension name=\"Time\" prefix=\"time\" "
         "uri=\"http://www.xes-standard.org/time.xesext\"/>\n";
  out << "  <string key=\"concept:name\" value=\"blockoptr-event-log\"/>\n";

  for (const auto& [case_id, indices] : log.cases()) {
    out << "  <trace>\n";
    out << "    <string key=\"concept:name\" value=\"" << XmlEscape(case_id)
        << "\"/>\n";
    for (size_t i : indices) {
      const Event& ev = log.events()[i];
      out << "    <event>\n";
      out << "      <string key=\"concept:name\" value=\""
          << XmlEscape(ev.activity) << "\"/>\n";
      out << "      <date key=\"time:timestamp\" value=\""
          << XesTimestamp(ev.commit_timestamp) << "\"/>\n";
      out << "      <int key=\"blockoptr:commit_order\" value=\""
          << ev.commit_order << "\"/>\n";
      out << "      <string key=\"blockoptr:status\" value=\""
          << TxStatusName(ev.status) << "\"/>\n";
      out << "    </event>\n";
    }
    out << "  </trace>\n";
  }
  out << "</log>\n";
}

}  // namespace blockoptr
