#include "blockopt/eventlog/case_id.h"

#include <set>

namespace blockoptr {

Result<CaseIdDerivation> DeriveCaseIdColumn(const BlockchainLog& log,
                                            double min_coverage) {
  if (log.empty()) {
    return Status::FailedPrecondition("cannot derive CaseID of an empty log");
  }
  size_t max_args = 0;
  for (const auto& e : log.entries()) {
    max_args = std::max(max_args, e.args.size());
  }
  if (max_args == 0) {
    return Status::FailedPrecondition(
        "log has no function arguments to derive a CaseID from");
  }

  CaseIdDerivation best;
  bool found = false;
  for (size_t col = 0; col < max_args; ++col) {
    size_t covered = 0;
    std::set<std::string> values;
    for (const auto& e : log.entries()) {
      if (e.args.size() > col) {
        ++covered;
        values.insert(e.args[col]);
      }
    }
    double coverage =
        static_cast<double>(covered) / static_cast<double>(log.size());
    if (coverage < min_coverage) continue;
    // Higher cardinality partitions the log into more, finer cases; a
    // column that is constant across the log still qualifies (one case)
    // but loses against any finer column.
    if (!found || values.size() > best.cardinality) {
      best.arg_index = static_cast<int>(col);
      best.coverage = coverage;
      best.cardinality = values.size();
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound(
        "no argument column is common to all activities; supply the CaseID "
        "column from domain knowledge");
  }
  return best;
}

}  // namespace blockoptr
