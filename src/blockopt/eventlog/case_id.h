#ifndef BLOCKOPTR_BLOCKOPT_EVENTLOG_CASE_ID_H_
#define BLOCKOPTR_BLOCKOPT_EVENTLOG_CASE_ID_H_

#include "blockopt/log/blockchain_log.h"
#include "common/result.h"

namespace blockoptr {

/// Result of the automated common-element (CaseID) derivation of paper
/// §4.2: which argument column identifies process instances.
struct CaseIdDerivation {
  /// Argument index used as the common element.
  int arg_index = 0;
  /// Fraction of log entries that have this argument.
  double coverage = 0;
  /// Number of distinct values — the number of cases.
  size_t cardinality = 0;
};

/// Derives the common-element column from the function arguments, as the
/// paper does per use case: the argument present in (almost) every
/// activity whose values best partition the log into process instances.
/// Among full-coverage columns the highest-cardinality one wins (e.g. for
/// the loan process the applicationID beats the employeeID), matching the
/// domain-knowledge choices in the paper.
///
/// Fails when the log is empty or no argument column covers at least
/// `min_coverage` of the entries.
Result<CaseIdDerivation> DeriveCaseIdColumn(const BlockchainLog& log,
                                            double min_coverage = 0.999);

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_EVENTLOG_CASE_ID_H_
