#ifndef BLOCKOPTR_BLOCKOPT_EVENTLOG_EVENT_LOG_H_
#define BLOCKOPTR_BLOCKOPT_EVENTLOG_EVENT_LOG_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "blockopt/log/blockchain_log.h"
#include "common/result.h"

namespace blockoptr {

/// One process-mining event: CaseID + activity + ordering attributes.
/// Following paper §4.2, the *commit order* stands in for the timestamp,
/// because client send order is not guaranteed to match commit order.
struct Event {
  std::string case_id;
  std::string activity;
  uint64_t commit_order = 0;
  double commit_timestamp = 0;
  TxStatus status = TxStatus::kValid;
  TxType tx_type = TxType::kRead;
};

/// Options for event-log construction.
struct EventLogOptions {
  /// CaseID argument column; -1 = derive automatically (§4.2).
  int case_arg_index = -1;
  /// Include failed transactions as events (they are part of observed
  /// behaviour; the illogical branches of Figure 2 come from them).
  bool include_failed = true;
};

/// An event log ready for process mining. Events are ordered by commit
/// order; cases index into the event vector.
class EventLog {
 public:
  /// Builds the event log from a preprocessed blockchain log.
  static Result<EventLog> FromBlockchainLog(const BlockchainLog& log,
                                            const EventLogOptions& options);

  const std::vector<Event>& events() const { return events_; }
  size_t num_cases() const { return cases_.size(); }

  /// Case -> indices into events(), each in commit order.
  const std::map<std::string, std::vector<size_t>>& cases() const {
    return cases_;
  }

  /// Activity sequences per case — the traces process mining consumes.
  std::vector<std::vector<std::string>> Traces() const;

  /// Distinct traces with their frequencies, most frequent first.
  std::vector<std::pair<std::vector<std::string>, size_t>> Variants() const;

  /// CSV export (case_id, activity, commit_order, timestamp, status).
  void WriteCsv(std::ostream& out) const;

  int case_arg_index() const { return case_arg_index_; }

 private:
  std::vector<Event> events_;
  std::map<std::string, std::vector<size_t>> cases_;
  int case_arg_index_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_EVENTLOG_EVENT_LOG_H_
