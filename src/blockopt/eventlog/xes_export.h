#ifndef BLOCKOPTR_BLOCKOPT_EVENTLOG_XES_EXPORT_H_
#define BLOCKOPTR_BLOCKOPT_EVENTLOG_XES_EXPORT_H_

#include <ostream>

#include "blockopt/eventlog/event_log.h"

namespace blockoptr {

/// Exports an event log as XES (IEEE 1849-2016), the interchange format
/// consumed by ProM, Disco, and Celonis — the tools the paper's §2.2
/// surveys and the ProM plugin its §9 future work targets. Traces are
/// grouped by case; each event carries concept:name (the activity),
/// the commit order, a synthetic timestamp derived from the commit
/// timestamp, and the transaction status as a custom attribute.
void WriteXes(const EventLog& log, std::ostream& out);

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_EVENTLOG_XES_EXPORT_H_
