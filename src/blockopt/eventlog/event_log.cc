#include "blockopt/eventlog/event_log.h"

#include <algorithm>

#include "blockopt/eventlog/case_id.h"
#include "common/csv.h"
#include "common/string_util.h"

namespace blockoptr {

Result<EventLog> EventLog::FromBlockchainLog(const BlockchainLog& log,
                                             const EventLogOptions& options) {
  int col = options.case_arg_index;
  if (col < 0) {
    auto derived = DeriveCaseIdColumn(log);
    if (!derived.ok()) return derived.status();
    col = derived->arg_index;
  }

  EventLog out;
  out.case_arg_index_ = col;
  for (const auto& e : log.entries()) {
    if (e.is_config) continue;
    if (!options.include_failed && e.failed()) continue;
    if (e.args.size() <= static_cast<size_t>(col)) continue;
    Event ev;
    ev.case_id = e.args[static_cast<size_t>(col)];
    ev.activity = e.activity;
    ev.commit_order = e.commit_order;
    ev.commit_timestamp = e.commit_timestamp;
    ev.status = e.status;
    ev.tx_type = e.tx_type;
    out.events_.push_back(std::move(ev));
  }
  std::sort(out.events_.begin(), out.events_.end(),
            [](const Event& a, const Event& b) {
              return a.commit_order < b.commit_order;
            });
  for (size_t i = 0; i < out.events_.size(); ++i) {
    out.cases_[out.events_[i].case_id].push_back(i);
  }
  return out;
}

std::vector<std::vector<std::string>> EventLog::Traces() const {
  std::vector<std::vector<std::string>> traces;
  traces.reserve(cases_.size());
  for (const auto& [case_id, indices] : cases_) {
    (void)case_id;
    std::vector<std::string> trace;
    trace.reserve(indices.size());
    for (size_t i : indices) trace.push_back(events_[i].activity);
    traces.push_back(std::move(trace));
  }
  return traces;
}

std::vector<std::pair<std::vector<std::string>, size_t>> EventLog::Variants()
    const {
  std::map<std::vector<std::string>, size_t> counts;
  for (auto& trace : Traces()) ++counts[trace];
  std::vector<std::pair<std::vector<std::string>, size_t>> out(counts.begin(),
                                                               counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

void EventLog::WriteCsv(std::ostream& out) const {
  CsvWriter writer(out);
  writer.WriteRow(
      {"case_id", "activity", "commit_order", "commit_timestamp", "status"});
  for (const auto& ev : events_) {
    writer.WriteRow({ev.case_id, ev.activity, std::to_string(ev.commit_order),
                     FormatDouble(ev.commit_timestamp, 6),
                     std::string(TxStatusName(ev.status))});
  }
}

}  // namespace blockoptr
