#include "blockopt/recommend/autotune.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace blockoptr {

namespace {

/// The lowest candidate rate above which intervals fail at least twice as
/// often (relative to their traffic) as the intervals below it; 0 when no
/// such knee exists.
double FindRateKnee(const std::vector<double>& trd,
                    const std::vector<double>& frd) {
  if (trd.size() < 4 || frd.size() < trd.size()) return 0;
  std::vector<double> rates = trd;
  std::sort(rates.begin(), rates.end());
  // Candidate thresholds: deciles of the observed interval rates.
  for (size_t d = 3; d <= 9; ++d) {
    double candidate = rates[rates.size() * d / 10];
    if (candidate <= 0) continue;
    double above_fail = 0, above_tx = 0, below_fail = 0, below_tx = 0;
    for (size_t i = 0; i < trd.size(); ++i) {
      if (trd[i] >= candidate) {
        above_fail += frd[i];
        above_tx += trd[i];
      } else {
        below_fail += frd[i];
        below_tx += trd[i];
      }
    }
    if (above_tx <= 0 || below_tx <= 0) continue;
    double above_share = above_fail / above_tx;
    double below_share = below_fail / below_tx;
    if (below_share <= 0) {
      if (above_share > 0.02) return candidate;
      continue;
    }
    if (above_share >= 2.0 * below_share && above_share > 0.02) {
      return candidate;
    }
  }
  return 0;
}

}  // namespace

RecommenderOptions AutoTuneThresholds(const LogMetrics& metrics,
                                      const RecommenderOptions& base) {
  RecommenderOptions tuned = base;

  // --- rt1: the knee of the rate/failure relation -----------------------
  double knee = FindRateKnee(metrics.trd, metrics.frd);
  if (knee > 0) {
    tuned.rt1 = knee;
  } else if (!metrics.trd.empty()) {
    std::vector<double> rates = metrics.trd;
    std::sort(rates.begin(), rates.end());
    tuned.rt1 = rates[rates.size() * 3 / 4];
  }

  // --- et: relative to the policy-implied fair share --------------------
  if (!metrics.endorser_sig.empty() && metrics.total_txs > 0) {
    double mean = 0;
    for (const auto& [org, count] : metrics.endorser_sig) {
      (void)org;
      mean += static_cast<double>(count);
    }
    mean /= static_cast<double>(metrics.endorser_sig.size());
    double fair_share = mean / static_cast<double>(metrics.total_txs);
    tuned.et = std::clamp(1.25 * fair_share, 0.2, 0.95);
  }

  // --- it: relative to the per-org fair invocation share ----------------
  if (!metrics.invoker_org_sig.empty()) {
    double fair =
        1.0 / static_cast<double>(metrics.invoker_org_sig.size());
    tuned.it = std::max(base.it, 1.25 * fair);
    tuned.it = std::min(tuned.it, 0.95);
  }

  return tuned;
}

}  // namespace blockoptr
