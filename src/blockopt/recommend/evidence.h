#ifndef BLOCKOPTR_BLOCKOPT_RECOMMEND_EVIDENCE_H_
#define BLOCKOPTR_BLOCKOPT_RECOMMEND_EVIDENCE_H_

#include <string>
#include <vector>

#include "blockopt/recommend/recommender.h"
#include "telemetry/bottleneck.h"

namespace blockoptr {

/// The observed telemetry evidence supporting one recommendation: the
/// station / series / window in the BottleneckReport that the
/// recommendation's detection rule corresponds to, e.g.
/// "peer/Org2/endorser util 0.97 over [40.0s,80.0s]". Returns "" when the
/// report carries no evidence relevant to this recommendation type (e.g.
/// the sampler was disabled).
std::string TelemetryEvidenceFor(const Recommendation& rec,
                                 const BottleneckReport& report);

/// Appends the evidence ("— observed: ...") to every recommendation's
/// rationale in place. Recommendations with no relevant evidence are left
/// untouched.
void AttachTelemetryEvidence(std::vector<Recommendation>& recs,
                             const BottleneckReport& report);

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_RECOMMEND_EVIDENCE_H_
