#include "blockopt/recommend/report.h"

#include <algorithm>

#include "common/string_util.h"

namespace blockoptr {

std::string FormatRecommendationReport(
    const LogMetrics& metrics, const std::vector<Recommendation>& recs) {
  std::string out;
  out += "== BlockOptR report ==\n";
  out += "transactions: " + std::to_string(metrics.total_txs);
  out += "  rate: " + FormatDouble(metrics.tr, 1) + " TPS";
  out += "  success: " + FormatPercent(metrics.SuccessRate()) + "\n";
  out += "failures: mvcc=" + std::to_string(metrics.mvcc_failures);
  out += " phantom=" + std::to_string(metrics.phantom_failures);
  out += " endorsement=" + std::to_string(metrics.endorsement_failures);
  out += " (intra-block=" + std::to_string(metrics.intra_block_conflicts);
  out += ", inter-block=" + std::to_string(metrics.inter_block_conflicts);
  out += ")\n";
  out += "blocks: " + std::to_string(metrics.num_blocks);
  out += "  avg size: " + FormatDouble(metrics.b_sizeavg, 1) + "\n";
  if (!metrics.hot_keys.empty()) {
    out += "hot keys: " +
           Join(std::vector<std::string>(
                    metrics.hot_keys.begin(),
                    metrics.hot_keys.begin() +
                        std::min<size_t>(metrics.hot_keys.size(), 5)),
                ", ") +
           "\n";
  }

  const char* level_names[] = {"User level", "Data level", "System level"};
  for (int level = 0; level < 3; ++level) {
    bool header_written = false;
    for (const auto& rec : recs) {
      if (static_cast<int>(LevelOf(rec.type)) != level) continue;
      if (!header_written) {
        out += std::string("-- ") + level_names[level] + " --\n";
        header_written = true;
      }
      out += "  * ";
      out += RecommendationTypeName(rec.type);
      out += ": ";
      out += rec.detail;
      out += "\n";
    }
  }
  if (recs.empty()) {
    out += "no optimizations recommended\n";
  }
  return out;
}

std::string RecommendationNames(const std::vector<Recommendation>& recs) {
  std::vector<std::string> names;
  names.reserve(recs.size());
  for (const auto& r : recs) {
    names.emplace_back(RecommendationTypeName(r.type));
  }
  return Join(names, ", ");
}

}  // namespace blockoptr
