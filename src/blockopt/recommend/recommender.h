#ifndef BLOCKOPTR_BLOCKOPT_RECOMMEND_RECOMMENDER_H_
#define BLOCKOPTR_BLOCKOPT_RECOMMEND_RECOMMENDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "blockopt/log/blockchain_log.h"
#include "blockopt/metrics/metrics.h"

namespace blockoptr {

/// The nine optimization recommendations of paper §4.4, across the three
/// abstraction levels (user / data / system).
enum class RecommendationType {
  // User level.
  kActivityReordering = 0,
  kProcessModelPruning,
  kTransactionRateControl,
  // Data level.
  kDeltaWrites,
  kSmartContractPartitioning,
  kDataModelAlteration,
  // System level.
  kBlockSizeAdaptation,
  kEndorserRestructuring,
  kClientResourceBoost,
};

std::string_view RecommendationTypeName(RecommendationType t);

/// Which abstraction level a recommendation belongs to.
enum class RecommendationLevel { kUser, kData, kSystem };
RecommendationLevel LevelOf(RecommendationType t);

/// One emitted recommendation with the evidence that triggered it.
struct Recommendation {
  RecommendationType type;
  /// Human-readable rationale (key names, activities, rates involved).
  std::string detail;
  /// Activities involved (reordering: the activities to reschedule;
  /// pruning: the anomalous activities).
  std::vector<std::string> activities;
  /// Keys involved (hotkeys for the data-level recommendations).
  std::vector<std::string> keys;
  /// Organizations involved (endorser bottlenecks / client boost target).
  std::vector<std::string> orgs;
  /// Suggested block count for block-size adaptation (min{B_count,
  /// Tr*B_timeout} == Tr, paper §4.4.3).
  uint32_t suggested_block_count = 0;
  /// Suggested client cap for rate control (TPS).
  double suggested_rate_tps = 0;
};

/// Detection thresholds, with the paper's defaults (§6: Et=0.5, Rt1=300,
/// Rt2=0.3, Bt=0.6, It=0.5; reordering fires when >= 40% of MVCC failures
/// are reorderable).
struct RecommenderOptions {
  double rt1 = 300;   // rate threshold (TPS) for rate control
  double rt2 = 0.3;   // failure fraction threshold for rate control
  double bt = 0.6;    // block-size deviation threshold
  double et = 0.5;    // endorser significance threshold
  double it = 0.5;    // invoker significance threshold
  /// Reordering fires when at least this fraction of the MVCC/phantom
  /// failures are reorderable. (The paper tuned 0.4 for its deployment;
  /// the simulator's default network separates the reorderable use cases
  /// from the self-dependent ones at 0.3.)
  double reorderable_mvcc_fraction = 0.3;
  /// Additional imbalance guard for endorser restructuring: an endorser
  /// must also exceed this multiple of the mean endorsement load. (The
  /// paper's TX*Et formula presumes the 4-org/2-signature setting; the
  /// guard generalizes "detect whether all the endorsers participate
  /// equally" to policies where every org legitimately signs everything.)
  double endorser_imbalance_factor = 1.25;
  /// Minimum number of delta-write candidate conflicts to recommend
  /// delta writes.
  uint64_t min_delta_candidates = 20;
  /// Minimum failed transactions before any failure-driven rule fires.
  uint64_t min_failures = 10;
  /// Rate control suggestion (Table 4: 100 TPS).
  double rate_control_target_tps = 100;
  MetricsOptions metrics;
};

/// Runs all nine detection rules against the metrics and returns the
/// recommendations, ordered by level (user, data, system) then type.
std::vector<Recommendation> Recommend(const LogMetrics& metrics,
                                      const RecommenderOptions& options);

/// Convenience: metrics + recommendations straight from a log.
std::vector<Recommendation> RecommendFromLog(const BlockchainLog& log,
                                             const RecommenderOptions& options);

/// True if `recs` contains a recommendation of type `t`.
bool HasRecommendation(const std::vector<Recommendation>& recs,
                       RecommendationType t);

/// Returns the first recommendation of type `t`, or nullptr.
const Recommendation* FindRecommendation(
    const std::vector<Recommendation>& recs, RecommendationType t);

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_RECOMMEND_RECOMMENDER_H_
