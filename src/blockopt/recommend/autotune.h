#ifndef BLOCKOPTR_BLOCKOPT_RECOMMEND_AUTOTUNE_H_
#define BLOCKOPTR_BLOCKOPT_RECOMMEND_AUTOTUNE_H_

#include "blockopt/metrics/metrics.h"
#include "blockopt/recommend/recommender.h"

namespace blockoptr {

/// Automatic threshold tuning — the extension the paper's §9 names as
/// future work ("the threshold settings of BlockOptR depend on the
/// business network setup … tuning these thresholds automatically could
/// be a future extension"). Derives deployment-specific thresholds from
/// the observed log instead of the paper's hand-picked defaults:
///
///  * `rt1` (the "high traffic" bar for rate control) is set to the knee
///    of the rate/failure relation: the lowest interval rate above which
///    the failure share at least doubles compared to the quieter
///    intervals. Falls back to the 75th percentile of the interval rates
///    when no knee exists (uniform failure behaviour).
///  * `et` (endorser significance) is set relative to the *fair share*
///    implied by the observed endorsement pattern: mean share × 1.25, so
///    "equal participation" is judged against what the policy actually
///    requires rather than a fixed 50%.
///  * `it` (invoker significance) is set to 1.25 × the fair per-org share
///    (1/#orgs), floored at the paper's 0.5 so a 2-org network behaves
///    like the paper's default.
///
/// `bt` and the reorderable fraction are left at their configured values —
/// they encode intent (tolerance), not deployment scale.
RecommenderOptions AutoTuneThresholds(
    const LogMetrics& metrics,
    const RecommenderOptions& base = RecommenderOptions());

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_RECOMMEND_AUTOTUNE_H_
