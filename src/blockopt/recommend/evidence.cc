#include "blockopt/recommend/evidence.h"

#include <cstdio>

#include "telemetry/trace.h"

namespace blockoptr {

namespace {

std::string StationEvidence(const StationAttribution& st) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s util %.2f over %s",
                st.station.c_str(), st.utilization,
                FormatEvidenceWindow(st.window_start, st.window_end).c_str());
  return buf;
}

/// Flight-recorder citation for `stage`: how much of committed end-to-end
/// latency the stage occupies on the causal chain, and how much of that
/// was queueing. "" when txtrace was off or the stage never appeared.
std::string CriticalPathEvidence(const BottleneckReport& report,
                                 const std::string& stage) {
  for (const auto& cps : report.critical_path) {
    if (cps.stage != stage || cps.share <= 0) continue;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "; critical-path share %.0f%% (wait %.0f%%)",
                  100.0 * cps.share, 100.0 * cps.wait_share);
    return buf;
  }
  return "";
}

const SeriesSummary* FindSeries(const BottleneckReport& report,
                                const std::string& name) {
  for (const auto& s : report.series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

/// Highest-utilization station of `stage` whose name mentions one of the
/// recommendation's orgs (falls back to the stage's top station).
const StationAttribution* StationForOrgs(const BottleneckReport& report,
                                         const std::string& stage,
                                         const std::vector<std::string>& orgs) {
  for (const auto& st : report.stations) {  // sorted by utilization desc
    if (st.stage != stage) continue;
    for (const auto& org : orgs) {
      if (st.station.find(org) != std::string::npos) return &st;
    }
  }
  return report.ForStage(stage);
}

std::string ConflictEvidence(const BottleneckReport& report) {
  const SeriesSummary* s =
      FindSeries(report, "pipeline.mvcc_conflicts_per_s");
  if (s == nullptr || s->peak <= 0) return "";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "MVCC+phantom conflict rate peaked at %.1f/s over %s",
                s->peak,
                FormatEvidenceWindow(s->window_start, s->window_end).c_str());
  return buf;
}

}  // namespace

std::string TelemetryEvidenceFor(const Recommendation& rec,
                                 const BottleneckReport& report) {
  char buf[200];
  switch (rec.type) {
    case RecommendationType::kEndorserRestructuring:
    case RecommendationType::kSmartContractPartitioning: {
      const StationAttribution* st =
          StationForOrgs(report, trace_category::kEndorse, rec.orgs);
      if (st != nullptr) {
        return StationEvidence(*st) +
               CriticalPathEvidence(report, st->stage);
      }
      break;
    }
    case RecommendationType::kClientResourceBoost: {
      const StationAttribution* st =
          StationForOrgs(report, trace_category::kSubmit, rec.orgs);
      if (st != nullptr) {
        return StationEvidence(*st) +
               CriticalPathEvidence(report, st->stage);
      }
      break;
    }
    case RecommendationType::kBlockSizeAdaptation: {
      const SeriesSummary* fill = FindSeries(report, "orderer.block_fill");
      const StationAttribution* orderer =
          report.ForStage(trace_category::kOrder);
      if (fill != nullptr && orderer != nullptr) {
        std::snprintf(buf, sizeof(buf),
                      "block fill mean %.2f; %s", fill->mean,
                      StationEvidence(*orderer).c_str());
        return buf + CriticalPathEvidence(report, orderer->stage);
      }
      if (orderer != nullptr) {
        return StationEvidence(*orderer) +
               CriticalPathEvidence(report, orderer->stage);
      }
      break;
    }
    case RecommendationType::kTransactionRateControl: {
      std::string conflicts = ConflictEvidence(report);
      const StationAttribution* top = report.Top();
      if (top != nullptr && !conflicts.empty()) {
        std::snprintf(buf, sizeof(buf), "%s; %s",
                      StationEvidence(*top).c_str(), conflicts.c_str());
        return buf;
      }
      if (top != nullptr) return StationEvidence(*top);
      return conflicts;
    }
    case RecommendationType::kActivityReordering:
    case RecommendationType::kProcessModelPruning:
    case RecommendationType::kDeltaWrites:
    case RecommendationType::kDataModelAlteration: {
      // Conflict-driven rules: cite the conflict-rate peak window.
      std::string conflicts = ConflictEvidence(report);
      if (!conflicts.empty()) return conflicts;
      break;
    }
  }
  // Fallback: the run's overall bottleneck, if any was attributed.
  if (!report.bottleneck_station.empty()) {
    std::snprintf(
        buf, sizeof(buf), "bottleneck %s util %.2f over %s",
        report.bottleneck_station.c_str(), report.bottleneck_utilization,
        FormatEvidenceWindow(report.window_start, report.window_end)
            .c_str());
    return buf;
  }
  return "";
}

void AttachTelemetryEvidence(std::vector<Recommendation>& recs,
                             const BottleneckReport& report) {
  for (auto& rec : recs) {
    std::string evidence = TelemetryEvidenceFor(rec, report);
    if (evidence.empty()) continue;
    if (!rec.detail.empty()) rec.detail += " — ";
    rec.detail += "observed: " + evidence;
  }
}

}  // namespace blockoptr
