#include "blockopt/recommend/recommender.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace blockoptr {

std::string_view RecommendationTypeName(RecommendationType t) {
  switch (t) {
    case RecommendationType::kActivityReordering:
      return "Activity reordering";
    case RecommendationType::kProcessModelPruning:
      return "Process model pruning";
    case RecommendationType::kTransactionRateControl:
      return "Transaction rate control";
    case RecommendationType::kDeltaWrites:
      return "Delta writes";
    case RecommendationType::kSmartContractPartitioning:
      return "Smart contract partitioning";
    case RecommendationType::kDataModelAlteration:
      return "Data model alteration";
    case RecommendationType::kBlockSizeAdaptation:
      return "Block size adaptation";
    case RecommendationType::kEndorserRestructuring:
      return "Endorser restructuring";
    case RecommendationType::kClientResourceBoost:
      return "Client resource boost";
  }
  return "Unknown";
}

RecommendationLevel LevelOf(RecommendationType t) {
  switch (t) {
    case RecommendationType::kActivityReordering:
    case RecommendationType::kProcessModelPruning:
    case RecommendationType::kTransactionRateControl:
      return RecommendationLevel::kUser;
    case RecommendationType::kDeltaWrites:
    case RecommendationType::kSmartContractPartitioning:
    case RecommendationType::kDataModelAlteration:
      return RecommendationLevel::kData;
    default:
      return RecommendationLevel::kSystem;
  }
}

namespace {

/// Significant failed accessors of a hotkey: activities carrying at least
/// max(3, 5%) of the key's failures.
std::vector<std::pair<std::string, LogMetrics::KeyAccessorStats>>
SignificantAccessors(const LogMetrics& m, const std::string& key) {
  std::vector<std::pair<std::string, LogMetrics::KeyAccessorStats>> out;
  auto it = m.key_accessors.find(key);
  if (it == m.key_accessors.end()) return out;
  uint64_t key_failures = 0;
  auto freq = m.key_freq.find(key);
  if (freq != m.key_freq.end()) key_failures = freq->second;
  const uint64_t threshold = std::max<uint64_t>(
      3, static_cast<uint64_t>(0.05 * static_cast<double>(key_failures)));
  for (const auto& [activity, stats] : it->second) {
    if (stats.failures >= threshold) out.emplace_back(activity, stats);
  }
  return out;
}

// ---- User level ------------------------------------------------------

void DetectActivityReordering(const LogMetrics& m,
                              const RecommenderOptions& opt,
                              std::vector<Recommendation>& out) {
  const uint64_t read_conflicts = m.mvcc_failures + m.phantom_failures;
  if (read_conflicts < opt.min_failures) return;
  if (static_cast<double>(m.reorderable_conflicts) <
      opt.reorderable_mvcc_fraction * static_cast<double>(read_conflicts)) {
    return;
  }
  // Rank the failing activities of reorderable pairs; those are the
  // activities to reschedule (their write sets are disjoint from their
  // conflict partners', Table 1).
  std::map<std::string, uint64_t> failing;
  std::map<std::string, uint64_t> causes;
  for (const auto& c : m.conflicts) {
    if (!c.reorderable) continue;
    ++failing[c.failed_activity];
    ++causes[c.cause_activity];
  }
  Recommendation rec;
  rec.type = RecommendationType::kActivityReordering;
  std::vector<std::pair<uint64_t, std::string>> ranked;
  for (const auto& [activity, count] : failing) {
    ranked.emplace_back(count, activity);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  const uint64_t activity_threshold =
      std::max<uint64_t>(1, m.reorderable_conflicts / 10);
  for (const auto& [count, activity] : ranked) {
    if (count >= activity_threshold) rec.activities.push_back(activity);
  }
  if (rec.activities.empty()) return;
  rec.detail = std::to_string(m.reorderable_conflicts) + " of " +
               std::to_string(read_conflicts) +
               " read conflicts are reorderable; reschedule {" +
               Join(rec.activities, ", ") + "}";
  out.push_back(std::move(rec));
}

void DetectProcessModelPruning(const LogMetrics& m,
                               const RecommenderOptions& opt,
                               std::vector<Recommendation>& out) {
  (void)opt;
  Recommendation rec;
  rec.type = RecommendationType::kProcessModelPruning;
  for (const auto& [activity, type_counts] : m.activity_tx_types) {
    if (type_counts.size() < 2) continue;
    // The anomaly is the minority transaction type (e.g. a normally
    // updating activity committing read-only when its precondition did
    // not hold). Require a non-trivial number of deviations.
    uint64_t total = 0;
    uint64_t max_count = 0;
    for (const auto& [type, count] : type_counts) {
      (void)type;
      total += count;
      max_count = std::max(max_count, count);
    }
    uint64_t deviations = total - max_count;
    if (deviations >= 5) rec.activities.push_back(activity);
  }
  if (rec.activities.empty()) return;
  rec.detail = "activities {" + Join(rec.activities, ", ") +
               "} commit with inconsistent transaction types — candidate "
               "illogical paths to prune";
  out.push_back(std::move(rec));
}

void DetectTransactionRateControl(const LogMetrics& m,
                                  const RecommenderOptions& opt,
                                  std::vector<Recommendation>& out) {
  size_t hot_intervals = 0;
  for (size_t i = 0; i < m.trd.size(); ++i) {
    if (m.trd[i] >= opt.rt1 && m.frd[i] >= m.trd[i] * opt.rt2) {
      ++hot_intervals;
    }
  }
  if (hot_intervals == 0) return;
  Recommendation rec;
  rec.type = RecommendationType::kTransactionRateControl;
  rec.suggested_rate_tps = opt.rate_control_target_tps;
  rec.detail = std::to_string(hot_intervals) +
               " interval(s) combine rate >= " + FormatDouble(opt.rt1, 0) +
               " TPS with failure share >= " + FormatPercent(opt.rt2) +
               "; cap the client send rate at " +
               FormatDouble(opt.rate_control_target_tps, 0) + " TPS";
  out.push_back(std::move(rec));
}

// ---- Data level ------------------------------------------------------

void DetectDeltaWrites(const LogMetrics& m, const RecommenderOptions& opt,
                       const std::vector<std::string>& alteration_keys,
                       std::vector<Recommendation>& out) {
  if (m.delta_candidates < opt.min_delta_candidates) return;
  Recommendation rec;
  rec.type = RecommendationType::kDeltaWrites;
  std::map<std::string, uint64_t> keys;
  std::map<std::string, uint64_t> activities;
  uint64_t candidates = 0;
  for (const auto& c : m.conflicts) {
    if (!c.delta_candidate) continue;
    // A key already slated for data-model alteration gets the stronger
    // fix — re-keying removes the dependency entirely (e.g. the voting
    // tally is also a ±1 counter, but the paper's remedy is the voterID
    // key, not delta writes).
    if (std::find(alteration_keys.begin(), alteration_keys.end(), c.key) !=
        alteration_keys.end()) {
      continue;
    }
    ++candidates;
    ++keys[c.key];
    ++activities[c.failed_activity];
  }
  if (candidates < opt.min_delta_candidates) return;
  for (const auto& [key, count] : keys) {
    (void)count;
    rec.keys.push_back(key);
  }
  for (const auto& [activity, count] : activities) {
    (void)count;
    rec.activities.push_back(activity);
  }
  rec.detail =
      std::to_string(candidates) +
      " failed single-key counter updates (increment/decrement); convert {" +
      Join(rec.activities, ", ") + "} to delta writes";
  out.push_back(std::move(rec));
}

void DetectPartitioningAndAlteration(const LogMetrics& m,
                                     const RecommenderOptions& opt,
                                     std::vector<Recommendation>& out) {
  (void)opt;
  Recommendation partition;
  partition.type = RecommendationType::kSmartContractPartitioning;
  Recommendation alter;
  alter.type = RecommendationType::kDataModelAlteration;

  for (const auto& key : m.hot_keys) {
    auto accessors = SignificantAccessors(m, key);
    if (accessors.empty()) continue;
    bool has_read_only = std::any_of(
        accessors.begin(), accessors.end(),
        [](const auto& a) { return !a.second.writes; });
    if (accessors.size() >= 2 && has_read_only) {
      // Different functions need different aspects of the key: split the
      // contract so each partition holds its own copy (paper §4.4.2).
      partition.keys.push_back(key);
      for (const auto& [activity, stats] : accessors) {
        (void)stats;
        if (std::find(partition.activities.begin(),
                      partition.activities.end(),
                      activity) == partition.activities.end()) {
          partition.activities.push_back(activity);
        }
      }
    } else {
      // A single activity depends on itself (or every accessor writes the
      // key): only a different primary key removes the dependency.
      alter.keys.push_back(key);
      for (const auto& [activity, stats] : accessors) {
        (void)stats;
        if (std::find(alter.activities.begin(), alter.activities.end(),
                      activity) == alter.activities.end()) {
          alter.activities.push_back(activity);
        }
      }
    }
  }

  if (!partition.keys.empty()) {
    partition.detail = "hotkey(s) {" + Join(partition.keys, ", ") +
                       "} are accessed by multiple functions ({" +
                       Join(partition.activities, ", ") +
                       "}); split the smart contract";
    out.push_back(std::move(partition));
  }
  if (!alter.keys.empty()) {
    alter.detail = "hotkey(s) {" + Join(alter.keys, ", ") +
                   "} are self-dependent via {" +
                   Join(alter.activities, ", ") +
                   "}; re-key the data model";
    out.push_back(std::move(alter));
  }
}

// ---- System level ----------------------------------------------------

void DetectBlockSizeAdaptation(const LogMetrics& m,
                               const RecommenderOptions& opt,
                               std::vector<Recommendation>& out) {
  if (m.num_blocks < 2 || m.tr <= 0) return;
  if (std::abs(m.tr - m.b_sizeavg) <= opt.bt * m.tr) return;
  Recommendation rec;
  rec.type = RecommendationType::kBlockSizeAdaptation;
  rec.suggested_block_count =
      static_cast<uint32_t>(std::max(1.0, std::round(m.tr)));
  rec.detail = "average block size " + FormatDouble(m.b_sizeavg, 1) +
               " deviates from the transaction rate " +
               FormatDouble(m.tr, 1) +
               " TPS by more than " + FormatPercent(opt.bt) +
               "; set block count to " +
               std::to_string(rec.suggested_block_count);
  out.push_back(std::move(rec));
}

void DetectEndorserRestructuring(const LogMetrics& m,
                                 const RecommenderOptions& opt,
                                 std::vector<Recommendation>& out) {
  if (m.endorser_sig.empty() || m.total_txs == 0) return;
  double mean = 0;
  for (const auto& [org, count] : m.endorser_sig) {
    (void)org;
    mean += static_cast<double>(count);
  }
  mean /= static_cast<double>(m.endorser_sig.size());

  Recommendation rec;
  rec.type = RecommendationType::kEndorserRestructuring;
  for (const auto& [org, count] : m.endorser_sig) {
    if (static_cast<double>(count) >
            static_cast<double>(m.total_txs) * opt.et &&
        static_cast<double>(count) > opt.endorser_imbalance_factor * mean) {
      rec.orgs.push_back(org);
    }
  }
  if (rec.orgs.empty()) return;
  rec.detail = "endorser(s) {" + Join(rec.orgs, ", ") +
               "} carry a disproportionate share of endorsements; "
               "restructure the endorsement policy / distribute proposals";
  out.push_back(std::move(rec));
}

void DetectClientResourceBoost(const LogMetrics& m,
                               const RecommenderOptions& opt,
                               std::vector<Recommendation>& out) {
  if (m.total_txs == 0) return;
  Recommendation rec;
  rec.type = RecommendationType::kClientResourceBoost;
  for (const auto& [org, count] : m.invoker_org_sig) {
    if (static_cast<double>(count) >
        static_cast<double>(m.total_txs) * opt.it) {
      rec.orgs.push_back(org);
    }
  }
  if (rec.orgs.empty()) return;
  rec.detail = "organization(s) {" + Join(rec.orgs, ", ") +
               "} invoke the majority of transactions; scale their client "
               "resources";
  out.push_back(std::move(rec));
}

}  // namespace

std::vector<Recommendation> Recommend(const LogMetrics& metrics,
                                      const RecommenderOptions& options) {
  std::vector<Recommendation> out;
  DetectActivityReordering(metrics, options, out);
  DetectProcessModelPruning(metrics, options, out);
  DetectTransactionRateControl(metrics, options, out);
  DetectPartitioningAndAlteration(metrics, options, out);
  std::vector<std::string> alteration_keys;
  if (const Recommendation* alter = FindRecommendation(
          out, RecommendationType::kDataModelAlteration)) {
    alteration_keys = alter->keys;
  }
  DetectDeltaWrites(metrics, options, alteration_keys, out);
  DetectBlockSizeAdaptation(metrics, options, out);
  DetectEndorserRestructuring(metrics, options, out);
  DetectClientResourceBoost(metrics, options, out);

  // Present by abstraction level (user, data, system), as the tool's
  // report does.
  std::stable_sort(out.begin(), out.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return static_cast<int>(a.type) <
                            static_cast<int>(b.type);
                   });
  return out;
}

std::vector<Recommendation> RecommendFromLog(
    const BlockchainLog& log, const RecommenderOptions& options) {
  return Recommend(ComputeMetrics(log, options.metrics), options);
}

bool HasRecommendation(const std::vector<Recommendation>& recs,
                       RecommendationType t) {
  return FindRecommendation(recs, t) != nullptr;
}

const Recommendation* FindRecommendation(
    const std::vector<Recommendation>& recs, RecommendationType t) {
  for (const auto& r : recs) {
    if (r.type == t) return &r;
  }
  return nullptr;
}

}  // namespace blockoptr
