#ifndef BLOCKOPTR_BLOCKOPT_RECOMMEND_REPORT_H_
#define BLOCKOPTR_BLOCKOPT_RECOMMEND_REPORT_H_

#include <string>
#include <vector>

#include "blockopt/metrics/metrics.h"
#include "blockopt/recommend/recommender.h"

namespace blockoptr {

/// Renders a human-readable BlockOptR report: headline metrics followed by
/// the recommendations grouped by abstraction level (user / data /
/// system), as the tool would present them to an operator.
std::string FormatRecommendationReport(
    const LogMetrics& metrics, const std::vector<Recommendation>& recs);

/// One-line comma-separated recommendation list ("Activity reordering,
/// Transaction rate control"), as in the paper's Table 3 rows.
std::string RecommendationNames(const std::vector<Recommendation>& recs);

}  // namespace blockoptr

#endif  // BLOCKOPTR_BLOCKOPT_RECOMMEND_REPORT_H_
