#ifndef BLOCKOPTR_FABRIC_ORDERER_H_
#define BLOCKOPTR_FABRIC_ORDERER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fabric/config.h"
#include "ledger/block.h"
#include "raft/raft_cluster.h"
#include "sim/service_station.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

namespace blockoptr {

/// Interface for transaction-reordering schedulers plugged into the block
/// cutter (the FabricSharp / Fabric++ baselines live in src/reorder). The
/// scheduler may permute the batch and may early-abort transactions by
/// setting `pre_aborted` + a failure status.
class BlockReorderer {
 public:
  virtual ~BlockReorderer() = default;

  virtual std::string name() const = 0;

  /// Reorders / early-aborts the batch in place before the block is cut.
  virtual void ProcessBatch(std::vector<Transaction>& batch) = 0;

  /// Additional per-block ordering cost in seconds (dependency-graph
  /// construction is not free; both papers report ordering overhead).
  virtual double ExtraBlockCost(size_t batch_size) const {
    (void)batch_size;
    return 0;
  }
};

/// The Fabric ordering service: a service station that batches incoming
/// transactions, cuts blocks by count / bytes / timeout (paper §2.1), and
/// replicates each cut block through a Raft cluster before delivery.
class OrderingService {
 public:
  /// `sim` must outlive the service.
  OrderingService(Simulator* sim, const NetworkConfig& config, Rng rng);

  /// Blocks are handed to this callback in Raft commit order, numbered
  /// starting from `first_block_num`.
  void set_on_block_committed(std::function<void(Block)> cb) {
    on_block_committed_ = std::move(cb);
  }

  void set_reorderer(std::unique_ptr<BlockReorderer> reorderer) {
    reorderer_ = std::move(reorderer);
  }
  const BlockReorderer* reorderer() const { return reorderer_.get(); }

  /// Attaches tracing + metrics (also wires the Raft cluster's metrics);
  /// nullptr disables. `telemetry` must outlive the service.
  void set_telemetry(Telemetry* telemetry);

  /// Starts the Raft cluster (elects the first leader).
  void Start();

  /// Accepts a transaction envelope (already endorsed and assembled).
  void Submit(Transaction tx, uint64_t tx_bytes);

  /// Accepts a channel-config update transaction. Per Fabric semantics
  /// the pending batch is cut immediately and the config transaction is
  /// placed alone in its own block.
  void SubmitConfig(Transaction tx);

  /// Cuts any partially filled batch immediately (end-of-run drain).
  void Flush();

  uint64_t blocks_cut() const { return blocks_cut_; }
  const RaftCluster& raft() const { return raft_; }
  /// Mutable access for failure injection (crash/restart orderer nodes).
  RaftCluster& mutable_raft() { return raft_; }
  ServiceStation& station() { return station_; }
  const BlockCuttingConfig& cutting() const { return cutting_; }

  /// Live reconfiguration of the block-cutting parameters (Fabric's
  /// channel-config update transaction, paper §4.5).
  void UpdateBlockCutting(const BlockCuttingConfig& cutting) {
    cutting_ = cutting;
  }

 private:
  void AddToBatch(Transaction tx, uint64_t tx_bytes);
  void CutBlock();

  Simulator* sim_;
  BlockCuttingConfig cutting_;
  LatencyModel latency_;
  ServiceStation station_;
  RaftCluster raft_;
  std::unique_ptr<BlockReorderer> reorderer_;
  std::function<void(Block)> on_block_committed_;

  std::vector<Transaction> batch_;
  uint64_t batch_bytes_ = 0;
  uint64_t timeout_gen_ = 0;

  // Per-aspect telemetry handles, cached from Telemetry::options() (null
  // when disabled — see FabricNetwork's pointer-guard discipline).
  TraceRecorder* tracer_ = nullptr;    // optional, not owned
  MetricsRegistry* metrics_ = nullptr;  // optional, not owned
  TxTraceRecorder* txtrace_ = nullptr;  // optional, not owned
  std::map<uint64_t, uint64_t> order_spans_;  // tx_id -> open span
  std::map<uint64_t, uint64_t> raft_spans_;   // payload -> open span

  std::map<uint64_t, Block> inflight_;
  uint64_t next_payload_id_ = 1;
  uint64_t blocks_cut_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_FABRIC_ORDERER_H_
