#ifndef BLOCKOPTR_FABRIC_NETWORK_H_
#define BLOCKOPTR_FABRIC_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chaincode/chaincode.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "fabric/client.h"
#include "fabric/config.h"
#include "fabric/endorser.h"
#include "fabric/orderer.h"
#include "fabric/peer.h"
#include "fabric/validator.h"
#include "ledger/ledger.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "workload/spec.h"

namespace blockoptr {

/// A complete simulated Fabric network on one channel: client processes,
/// one endorsing/committing peer per organization, a Raft-backed ordering
/// service, and the shared ledger. Implements the execute-order-validate
/// transaction flow (paper §2.1):
///
///   client proposal -> endorsers execute (against their own, possibly
///   stale, stores) -> client assembles the envelope -> ordering service
///   batches and cuts blocks -> Raft replication -> every peer validates
///   (endorsement policy, MVCC, phantom) and commits.
///
/// All transactions — failed or not — are appended to the ledger, which is
/// the input to BlockOptR's analysis.
class FabricNetwork {
 public:
  using CommitCallback = std::function<void(const Transaction&)>;
  using BlockCommitCallback = std::function<void(const Block&)>;
  using EarlyAbortCallback =
      std::function<void(const ClientRequest&, const Status&)>;

  /// `sim` must outlive the network.
  FabricNetwork(Simulator* sim, NetworkConfig config);

  FabricNetwork(const FabricNetwork&) = delete;
  FabricNetwork& operator=(const FabricNetwork&) = delete;

  /// Installs a chaincode on every peer. Fails on duplicate names.
  Status InstallChaincode(std::unique_ptr<Chaincode> chaincode);

  /// Pre-populates world state (all peers + the committed state) with a
  /// key in `chaincode`'s namespace, bypassing the transaction flow —
  /// the experiment-setup analogue of an init transaction.
  void SeedState(const std::string& chaincode, const std::string& key,
                 const std::string& value);

  /// Plugs a reordering scheduler (FabricSharp / Fabric++ baselines) into
  /// the ordering service.
  void SetReorderer(std::unique_ptr<BlockReorderer> reorderer);

  /// Attaches transaction-lifecycle tracing, metrics, and the continuous
  /// sampler (registering pipeline series + every ServiceStation as
  /// sampler sources). `telemetry` must outlive the network; pass nullptr
  /// (the default state) to disable — the off path does no recording work
  /// at all. Individual aspects follow `telemetry->options()`: the
  /// network caches per-aspect pointers, so a disabled aspect costs one
  /// null check per site. Call before Start().
  void set_telemetry(Telemetry* telemetry);
  Telemetry* telemetry() { return telemetry_; }

  /// Always-on cumulative pipeline outcome counts (cheap integer adds per
  /// block): the sampler's throughput / conflict-rate sources read these,
  /// and they are maintained even with telemetry off.
  struct PipelineTotals {
    uint64_t valid_txs = 0;
    uint64_t mvcc_conflicts = 0;
    uint64_t phantom_conflicts = 0;
    uint64_t endorsement_failures = 0;
    uint64_t blocks_committed = 0;
    double block_fill_sum = 0;  // sum of per-block fill ratios
  };
  const PipelineTotals& totals() const { return totals_; }

  /// Live endorsement-policy change, applied immediately (used at setup;
  /// for an in-band change use SubmitPolicyUpdate).
  void UpdateEndorsementPolicy(const EndorsementPolicy& policy);

  /// Submits a channel-config update *transaction* (paper §4.5: "using a
  /// configuration update transaction"): the change is ordered, committed
  /// in its own config block, and takes effect when that block is
  /// delivered — a live reconfiguration with no restart. The config
  /// transaction is recorded on the ledger (and later removed by
  /// BlockOptR's preprocessing like any config transaction).
  void SubmitBlockCuttingUpdate(const BlockCuttingConfig& cutting);
  void SubmitPolicyUpdate(const EndorsementPolicy& policy);

  /// Starts the ordering service's Raft cluster. Call once before running
  /// the simulator.
  void Start();

  /// Submits a client request at the current virtual time. The request is
  /// processed by a client of its target organization (round-robin).
  Status Submit(const ClientRequest& request);

  /// Fires for every transaction when its block is committed on all peers.
  void set_on_commit(CommitCallback cb) { on_commit_ = std::move(cb); }

  /// Fires once per committed block (after ledger append, before the
  /// per-transaction on_commit callbacks), with the appended block —
  /// config blocks included. This is the streaming-analysis feed.
  void set_on_block_commit(BlockCommitCallback cb) {
    on_block_commit_ = std::move(cb);
  }

  /// Fires when every endorser rejected the proposal (chaincode early
  /// abort) and the transaction never entered ordering.
  void set_on_early_abort(EarlyAbortCallback cb) {
    on_early_abort_ = std::move(cb);
  }

  const Ledger& ledger() const { return ledger_; }
  const NetworkConfig& config() const { return config_; }
  OrderingService& orderer() { return *orderer_; }
  Simulator& sim() { return *sim_; }

  int num_clients() const { return static_cast<int>(clients_.size()); }
  ClientProcess& client(int i) { return *clients_[static_cast<size_t>(i)]; }
  OrgPeer& peer(int org_index) {
    return *peers_[static_cast<size_t>(org_index - 1)];
  }

  /// Fault-injection hooks (driver/faults.h). A slowdown scales one
  /// organization's endorsement execution cost (straggler endorser); an
  /// outage black-holes the endorser: proposals sent to it time out
  /// (latency.endorse_timeout_s) and come back as refusals, so the
  /// transaction proceeds with fewer signatures — failing
  /// endorsement-policy validation when too few — or early-aborts when no
  /// endorser answered. Failures are always attributed, never silently
  /// dropped. Out-of-range orgs are ignored.
  void SetEndorserSlowdown(int org, double factor);
  void SetEndorserOutage(int org, bool down);
  double endorser_slowdown(int org) const;
  bool endorser_down(int org) const;

  /// Cross-channel load coupling (driver/sharded.h): in a multi-channel
  /// experiment the channels share one client population, so client-side
  /// work on other channels slows this channel's clients down. The sharded
  /// driver measures per-epoch client busy time on every channel and sets
  /// each channel's scale to 1 / (1 - other_channels_busy_share); both
  /// client service costs (proposal creation, envelope assembly) are
  /// multiplied by it. The default 1.0 multiplies exactly (IEEE), so a
  /// single-channel run is bit-identical to a network without the hook.
  /// Factors <= 0 are ignored.
  void SetClientLoadScale(double scale);
  double client_load_scale() const { return client_load_scale_; }

  /// Cumulative busy time across all of this network's client stations —
  /// the coupling signal the sharded driver differentiates per epoch.
  double client_busy_time() const;

  /// Transactions endorsed per organization so far (requested, i.e. the
  /// proposals each endorser executed).
  const std::map<std::string, uint64_t>& endorsement_counts() const {
    return endorsement_counts_;
  }

  uint64_t early_aborts() const { return early_aborts_; }

 private:
  /// The per-block commit payload shared by every org's delivery and
  /// validation event: the validated block plus the all-peers countdown in
  /// one allocation. The block is immutable during the fan-out; the last
  /// peer to commit stamps timestamps and moves it into the ledger.
  struct CommitFanout {
    Block block;
    int remaining;
  };

  struct PendingTx {
    ClientRequest request;
    int client_index = 0;
    SimTime client_timestamp = 0;
    std::vector<std::pair<std::string, EndorseResult>> responses;
    size_t expected_responses = 0;
    uint64_t submit_span = 0;  // open tracing span id (0 when disabled)
  };

  double NetworkDelay();
  void ApplyConfigTransaction(const Transaction& tx);
  int PickClient(const ClientRequest& request);
  std::vector<int> SelectEndorsingOrgs();
  void StartEndorsement(uint64_t pending_id);
  void OnEndorsementsComplete(uint64_t pending_id);
  void DeliverBlock(Block block);
  Chaincode* FindChaincode(const std::string& name);

  Simulator* sim_;
  NetworkConfig config_;
  Rng rng_;
  double peer_scale_ = 1.0;  // cluster resource contention (see config.h)
  double client_load_scale_ = 1.0;  // cross-channel coupling (see above)
  Telemetry* telemetry_ = nullptr;  // optional, not owned
  // Cached per-aspect handles (null when the aspect is disabled), so
  // recording sites pay one pointer check and sampler-only runs skip the
  // per-transaction span/metric work entirely.
  TraceRecorder* tracer_ = nullptr;         // not owned
  MetricsRegistry* event_metrics_ = nullptr;  // not owned
  TxTraceRecorder* txtrace_ = nullptr;        // not owned

  std::vector<std::unique_ptr<ClientProcess>> clients_;
  std::vector<std::vector<int>> org_client_indices_;  // per org (0-based)
  std::vector<int> org_rr_;                           // round-robin cursors
  int global_org_rr_ = 0;

  std::vector<std::unique_ptr<OrgPeer>> peers_;
  std::map<std::string, std::unique_ptr<Chaincode>> chaincodes_;
  std::unique_ptr<OrderingService> orderer_;

  EndorsementPolicy policy_;
  std::vector<std::set<std::string>> minimal_sets_;
  std::vector<double> minimal_set_weights_;
  double total_set_weight_ = 0;

  VersionedStore committed_state_;  // the canonical validation state
  std::vector<SimTime> org_delivery_horizon_;  // FIFO block delivery per org
  Ledger ledger_;
  uint64_t next_block_num_ = 1;  // 0 is the genesis config block
  uint32_t seed_counter_ = 0;

  std::map<uint64_t, PendingTx> pending_;
  uint64_t next_tx_id_ = 1;

  std::map<std::string, uint64_t> endorsement_counts_;
  uint64_t early_aborts_ = 0;
  PipelineTotals totals_;

  // Per-org endorser fault state (1.0 / false when healthy).
  std::vector<double> endorser_slowdown_;
  std::vector<char> endorser_down_;

  CommitCallback on_commit_;
  BlockCommitCallback on_block_commit_;
  EarlyAbortCallback on_early_abort_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_FABRIC_NETWORK_H_
