#include "fabric/orderer.h"

#include <algorithm>
#include <utility>

namespace blockoptr {

namespace {

RaftCluster::Options RaftOptionsFrom(const NetworkConfig& config, Rng& rng) {
  RaftCluster::Options opts;
  opts.num_nodes = config.num_orderers;
  opts.network_delay = config.latency.network_delay_s;
  opts.network_jitter = config.latency.network_jitter_s;
  opts.election_timeout_min = config.latency.raft_election_timeout_min_s;
  opts.election_timeout_max = config.latency.raft_election_timeout_max_s;
  opts.heartbeat_interval = config.latency.raft_heartbeat_s;
  opts.seed = rng.Next();
  return opts;
}

}  // namespace

OrderingService::OrderingService(Simulator* sim, const NetworkConfig& config,
                                 Rng rng)
    : sim_(sim),
      cutting_(config.block_cutting),
      latency_(config.latency),
      station_(sim, "orderer"),
      raft_(sim, RaftOptionsFrom(config, rng)) {
  raft_.set_on_commit([this](uint64_t payload) {
    auto it = inflight_.find(payload);
    if (it == inflight_.end()) return;
    if (tracer_) {
      auto sit = raft_spans_.find(payload);
      if (sit != raft_spans_.end()) {
        tracer_->End(sit->second);
        raft_spans_.erase(sit);
      }
    }
    Block block = std::move(it->second);
    inflight_.erase(it);
    if (on_block_committed_) on_block_committed_(std::move(block));
  });
}

void OrderingService::set_telemetry(Telemetry* telemetry) {
  tracer_ = telemetry ? telemetry->tracing() : nullptr;
  metrics_ = telemetry ? telemetry->event_metrics() : nullptr;
  txtrace_ = telemetry ? telemetry->txtrace() : nullptr;
  raft_.set_metrics(metrics_);
  raft_.set_txtrace(txtrace_);
}

void OrderingService::Start() { raft_.Start(); }

void OrderingService::Submit(Transaction tx, uint64_t tx_bytes) {
  if (tracer_) {
    // The order span covers orderer queueing, batching wait, and block
    // cutting: it closes when the transaction's block is cut.
    order_spans_[tx.tx_id] = tracer_->Begin(
        trace_category::kOrder, "order", "orderer", tx.tx_id);
  }
  if (metrics_) {
    metrics_->counter("orderer.txs_submitted_total").Increment();
    metrics_->gauge("orderer.queue_depth").Set(station_.CurrentDelay());
  }
  // Per-transaction ordering work occupies the orderer CPU; batching
  // happens when that work completes.
  station_.Submit(latency_.order_per_tx_s,
                  [this, tx = std::move(tx), tx_bytes]() mutable {
                    if (txtrace_) {
                      txtrace_->TxEvent(
                          tx.tx_id, TxStage::kOrdererEnqueue, 0,
                          static_cast<float>(latency_.order_per_tx_s));
                    }
                    AddToBatch(std::move(tx), tx_bytes);
                  });
}

void OrderingService::SubmitConfig(Transaction tx) {
  tx.is_config = true;
  tx.status = TxStatus::kConfig;
  if (tracer_) {
    order_spans_[tx.tx_id] = tracer_->Begin(
        trace_category::kOrder, "order_config", "orderer", tx.tx_id);
  }
  if (metrics_) {
    metrics_->counter("orderer.config_txs_total").Increment();
  }
  station_.Submit(latency_.order_per_tx_s,
                  [this, tx = std::move(tx)]() mutable {
                    // A config transaction terminates the current batch and
                    // occupies its own block (Fabric's config-update flow).
                    Flush();
                    batch_.push_back(std::move(tx));
                    CutBlock();
                  });
}

void OrderingService::AddToBatch(Transaction tx, uint64_t tx_bytes) {
  if (batch_.empty()) {
    // Arm the batch timeout relative to the first buffered transaction.
    uint64_t gen = ++timeout_gen_;
    sim_->ScheduleAfter(cutting_.timeout_s, [this, gen]() {
      if (gen == timeout_gen_ && !batch_.empty()) CutBlock();
    });
  }
  batch_.push_back(std::move(tx));
  batch_bytes_ += tx_bytes;
  if (batch_.size() >= cutting_.max_tx_count ||
      batch_bytes_ >= cutting_.max_bytes) {
    CutBlock();
  }
}

void OrderingService::Flush() {
  if (!batch_.empty()) CutBlock();
}

void OrderingService::CutBlock() {
  ++timeout_gen_;  // disarm any pending timeout
  std::vector<Transaction> txs = std::move(batch_);
  batch_.clear();
  batch_bytes_ = 0;

  double extra = 0;
  if (reorderer_) {
    reorderer_->ProcessBatch(txs);
    extra = reorderer_->ExtraBlockCost(txs.size());
  }

  Block block;
  block.cut_timestamp = sim_->Now();
  block.transactions = std::move(txs);
  ++blocks_cut_;

  if (tracer_) {
    for (const auto& tx : block.transactions) {
      auto sit = order_spans_.find(tx.tx_id);
      if (sit != order_spans_.end()) {
        tracer_->End(sit->second);
        order_spans_.erase(sit);
      }
    }
  }
  if (metrics_) {
    metrics_->counter("orderer.blocks_cut_total").Increment();
    metrics_
        ->histogram("orderer.block_fill_ratio", MetricsRegistry::RatioBounds())
        .Observe(static_cast<double>(block.transactions.size()) /
                 static_cast<double>(std::max(1u, cutting_.max_tx_count)));
  }

  uint64_t payload = next_payload_id_++;
  size_t block_txs = block.transactions.size();
  inflight_.emplace(payload, std::move(block));

  // Block assembly/signing occupies the orderer, then the block goes
  // through Raft consensus.
  station_.Submit(latency_.block_overhead_s + extra,
                  [this, payload, block_txs]() {
                    if (txtrace_) {
                      // kBlockCut carries the orderer payload id, joining
                      // each transaction chain to its block's Raft chain.
                      // Recorded when signing completes — so the queueing
                      // behind a saturated orderer lands in the 'order'
                      // stage, and 'raft' starts at the actual handoff.
                      const Block& b = inflight_.at(payload);
                      for (const auto& tx : b.transactions) {
                        txtrace_->TxEvent(tx.tx_id, TxStage::kBlockCut, 0, 0,
                                          static_cast<uint32_t>(payload));
                      }
                    }
                    if (tracer_) {
                      // One raft span per block, from proposal to quorum
                      // commit.
                      uint64_t span = tracer_->Begin(
                          trace_category::kRaft, "raft_replicate",
                          "orderer/raft");
                      tracer_->Annotate(span, "payload",
                                        std::to_string(payload));
                      tracer_->Annotate(span, "txs",
                                        std::to_string(block_txs));
                      raft_spans_[payload] = span;
                    }
                    raft_.Propose(payload);
                  });
}

}  // namespace blockoptr
