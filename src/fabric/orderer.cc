#include "fabric/orderer.h"

#include <utility>

namespace blockoptr {

namespace {

RaftCluster::Options RaftOptionsFrom(const NetworkConfig& config, Rng& rng) {
  RaftCluster::Options opts;
  opts.num_nodes = config.num_orderers;
  opts.network_delay = config.latency.network_delay_s;
  opts.network_jitter = config.latency.network_jitter_s;
  opts.election_timeout_min = config.latency.raft_election_timeout_min_s;
  opts.election_timeout_max = config.latency.raft_election_timeout_max_s;
  opts.heartbeat_interval = config.latency.raft_heartbeat_s;
  opts.seed = rng.Next();
  return opts;
}

}  // namespace

OrderingService::OrderingService(Simulator* sim, const NetworkConfig& config,
                                 Rng rng)
    : sim_(sim),
      cutting_(config.block_cutting),
      latency_(config.latency),
      station_(sim, "orderer"),
      raft_(sim, RaftOptionsFrom(config, rng)) {
  raft_.set_on_commit([this](uint64_t payload) {
    auto it = inflight_.find(payload);
    if (it == inflight_.end()) return;
    Block block = std::move(it->second);
    inflight_.erase(it);
    if (on_block_committed_) on_block_committed_(std::move(block));
  });
}

void OrderingService::Start() { raft_.Start(); }

void OrderingService::Submit(Transaction tx, uint64_t tx_bytes) {
  // Per-transaction ordering work occupies the orderer CPU; batching
  // happens when that work completes.
  station_.Submit(latency_.order_per_tx_s,
                  [this, tx = std::move(tx), tx_bytes]() mutable {
                    AddToBatch(std::move(tx), tx_bytes);
                  });
}

void OrderingService::SubmitConfig(Transaction tx) {
  tx.is_config = true;
  tx.status = TxStatus::kConfig;
  station_.Submit(latency_.order_per_tx_s, [this, tx = std::move(tx)]() {
    // A config transaction terminates the current batch and occupies its
    // own block (Fabric's config-update flow).
    Flush();
    batch_.push_back(tx);
    CutBlock();
  });
}

void OrderingService::AddToBatch(Transaction tx, uint64_t tx_bytes) {
  if (batch_.empty()) {
    // Arm the batch timeout relative to the first buffered transaction.
    uint64_t gen = ++timeout_gen_;
    sim_->ScheduleAfter(cutting_.timeout_s, [this, gen]() {
      if (gen == timeout_gen_ && !batch_.empty()) CutBlock();
    });
  }
  batch_.push_back(std::move(tx));
  batch_bytes_ += tx_bytes;
  if (batch_.size() >= cutting_.max_tx_count ||
      batch_bytes_ >= cutting_.max_bytes) {
    CutBlock();
  }
}

void OrderingService::Flush() {
  if (!batch_.empty()) CutBlock();
}

void OrderingService::CutBlock() {
  ++timeout_gen_;  // disarm any pending timeout
  std::vector<Transaction> txs = std::move(batch_);
  batch_.clear();
  batch_bytes_ = 0;

  double extra = 0;
  if (reorderer_) {
    reorderer_->ProcessBatch(txs);
    extra = reorderer_->ExtraBlockCost(txs.size());
  }

  Block block;
  block.cut_timestamp = sim_->Now();
  block.transactions = std::move(txs);
  ++blocks_cut_;

  uint64_t payload = next_payload_id_++;
  inflight_.emplace(payload, std::move(block));

  // Block assembly/signing occupies the orderer, then the block goes
  // through Raft consensus.
  station_.Submit(latency_.block_overhead_s + extra,
                  [this, payload]() { raft_.Propose(payload); });
}

}  // namespace blockoptr
