#ifndef BLOCKOPTR_FABRIC_VALIDATOR_H_
#define BLOCKOPTR_FABRIC_VALIDATOR_H_

#include <cstdint>

#include "fabric/endorsement_policy.h"
#include "ledger/block.h"
#include "statedb/versioned_store.h"
#include "telemetry/metrics.h"

namespace blockoptr {

/// Per-block validation outcome counts.
struct BlockValidationStats {
  uint64_t valid = 0;
  uint64_t mvcc_conflicts = 0;
  uint64_t phantom_conflicts = 0;
  uint64_t endorsement_failures = 0;

  uint64_t total() const {
    return valid + mvcc_conflicts + phantom_conflicts + endorsement_failures;
  }
};

/// Fabric's validate-and-commit phase for one block (paper §2.1 phase 3),
/// as a *pure* function of the block contents and the state built from all
/// preceding blocks:
///
///  1. VSCC: the endorsing orgs recorded on the transaction (those whose
///     signatures cover the chosen payload) must satisfy `policy`;
///     otherwise ENDORSEMENT_POLICY_FAILURE.
///  2. MVCC: each read's version must equal the currently committed
///     version of that key (both-absent also matches); otherwise
///     MVCC_READ_CONFLICT. State is updated after every valid transaction,
///     so later transactions in the same block conflict with earlier ones
///     (intra-block conflicts).
///  3. Phantom check: each recorded range query is re-executed against
///     current state; any difference in the (key, version) result list is
///     a PHANTOM_READ_CONFLICT.
///
/// Valid transactions' write sets are applied to `state` at version
/// {block_num, tx_position}. Transactions pre-aborted by a reordering
/// scheduler (Fabric++-style early abort) keep their stamped status and do
/// not touch state.
BlockValidationStats ValidateAndApplyBlock(Block& block, VersionedStore& state,
                                           const EndorsementPolicy& policy);

/// The MVCC read check for a single transaction against `state` (exposed
/// for tests and for the reordering schedulers, which need the same
/// semantics to predict conflicts).
bool ReadsAreCurrent(const ReadWriteSet& rwset, const VersionedStore& state);

/// Accumulates one block's validation outcomes into the standard
/// `validator.*` counters (`validator.mvcc_conflicts`, ...).
void RecordValidationStats(const BlockValidationStats& stats,
                           MetricsRegistry& metrics);

}  // namespace blockoptr

#endif  // BLOCKOPTR_FABRIC_VALIDATOR_H_
