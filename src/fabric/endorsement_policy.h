#ifndef BLOCKOPTR_FABRIC_ENDORSEMENT_POLICY_H_
#define BLOCKOPTR_FABRIC_ENDORSEMENT_POLICY_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace blockoptr {

/// A Fabric endorsement policy: a boolean expression over organizations
/// determining which endorsement signature sets make a transaction valid.
///
/// Grammar (case-insensitive keywords):
///   policy   := "And" "(" list ")" | "Or" "(" list ")"
///             | "OutOf" "(" INT "," list ")"
///             | "Majority" "(" list ")" | ORG_NAME
///   list     := policy ("," policy)*
///
/// The paper's evaluation uses:
///   P1: And(Org1, Or(Org2,Org3,Org4))
///   P2: And(Or(Org1,Org2), Or(Org3,Org4))
///   P3: Majority(Org1,...,OrgN)         (the default)
///   P4: OutOf(2, Org1, Org2, Org3, Org4)
class EndorsementPolicy {
 public:
  /// Parses a policy expression.
  static Result<EndorsementPolicy> Parse(std::string_view text);

  /// Builds the named paper policy P1..P4 for `num_orgs` organizations
  /// ("Org1".."OrgN"). P1/P2/P4 require num_orgs >= 4 in the paper; for
  /// smaller networks the org lists are truncated accordingly.
  static EndorsementPolicy Preset(int preset, int num_orgs);

  EndorsementPolicy() = default;

  /// True when signatures from exactly the orgs in `endorsing_orgs`
  /// satisfy the policy.
  bool IsSatisfiedBy(const std::set<std::string>& endorsing_orgs) const;

  /// Allocation-free overload for the validation hot path: `endorsing_orgs`
  /// must be sorted and unique (the views may point into transaction
  /// storage; nothing is copied).
  bool IsSatisfiedBy(
      const std::vector<std::string_view>& endorsing_orgs) const;

  /// All organizations mentioned anywhere in the policy (sorted, unique).
  std::vector<std::string> Organizations() const;

  /// Orgs without which the policy cannot be satisfied (e.g. Org1 under
  /// P1). These are the endorsement bottlenecks the paper's endorser-
  /// restructuring recommendation detects (§4.4.3).
  std::vector<std::string> MandatoryOrgs() const;

  /// Enumerates all minimal satisfying org sets (no proper subset also
  /// satisfies). Organizations() is capped at ~16 orgs which keeps the
  /// 2^n enumeration trivial for realistic networks.
  std::vector<std::set<std::string>> MinimalSatisfyingSets() const;

  /// Canonical string form.
  std::string ToString() const;

  bool empty() const { return node_.kind == Node::kNone; }

 private:
  struct Node {
    enum Kind { kNone, kOrg, kAnd, kOr, kOutOf } kind = kNone;
    std::string org;           // kOrg
    int n = 0;                 // kOutOf threshold
    std::vector<Node> children;
  };

  static bool Eval(const Node& node,
                   const std::vector<std::string_view>& sorted_orgs);
  static void CollectOrgs(const Node& node, std::set<std::string>& out);
  static std::string NodeToString(const Node& node);

  Node node_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_FABRIC_ENDORSEMENT_POLICY_H_
