#include "fabric/endorser.h"

namespace blockoptr {

EndorseResult ExecuteProposal(Chaincode& chaincode,
                              const VersionedStore& store,
                              const ClientRequest& request) {
  TxContext ctx(&store, chaincode.name());
  Status st = chaincode.Invoke(ctx, request.function, request.args);
  return EndorseResult{std::move(st), ctx.TakeRwset()};
}

uint64_t EstimateTxBytes(const ClientRequest& request,
                         const ReadWriteSet& rwset) {
  // Envelope base (signatures, headers, endorser identities) plus payload.
  uint64_t bytes = 512;
  bytes += request.chaincode.size() + request.function.size();
  for (const auto& a : request.args) bytes += a.size();
  for (const auto& r : rwset.reads) bytes += r.key.size() + 16;
  for (const auto& w : rwset.writes) bytes += w.key.size() + w.value.size();
  for (const auto& rq : rwset.range_queries) {
    bytes += rq.start_key.size() + rq.end_key.size();
    bytes += rq.results.size() * 24;
  }
  return bytes;
}

}  // namespace blockoptr
