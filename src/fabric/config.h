#ifndef BLOCKOPTR_FABRIC_CONFIG_H_
#define BLOCKOPTR_FABRIC_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/endorsement_policy.h"

namespace blockoptr {

/// Block-cutting parameters of the ordering service (paper §2.1): a block
/// is cut when the batch reaches `max_tx_count` transactions ("block
/// count"), `max_bytes` bytes ("block bytes"), or `timeout_s` seconds after
/// the first buffered transaction ("block timeout"), whichever comes first.
struct BlockCuttingConfig {
  uint32_t max_tx_count = 300;
  double timeout_s = 1.0;
  uint64_t max_bytes = 512ULL * 1024 * 1024;  // effectively unbounded

  friend bool operator==(const BlockCuttingConfig&,
                         const BlockCuttingConfig&) = default;
};

/// Service-time parameters of the queueing model. Calibrated so that the
/// default 2-org network destabilizes a little above ~300 TPS — mirroring
/// the paper's observation that rates above 300 TPS led to instabilities
/// in their deployment (§9).
struct LatencyModel {
  // Client-side work (proposal creation before endorsement; endorsement
  // verification + envelope assembly afterwards). Both occupy the client's
  // service station, so client overload widens the endorsement-to-commit
  // window.
  double client_proposal_s = 0.012;
  double client_assemble_s = 0.018;

  // Endorser chaincode execution per transaction: a fixed cost plus a
  // per-state-access cost (so aggregation-heavy functions such as a
  // delta-write calcRevenue really are slower to endorse).
  double endorse_exec_s = 0.003;
  double endorse_per_key_s = 0.00002;

  // Resource contention on the fixed-size cluster: the paper's testbed
  // runs every peer as a pod on the same 5 worker VMs, so each
  // organization beyond the 2-org reference steals a share of per-peer
  // CPU. Peer-side service times (endorsement, validation) are scaled by
  //   1 + peer_contention_per_org * (num_orgs - 2).
  // This is what makes a mandatory endorser (policy P1) saturate at
  // 300 TPS in the 4-org experiments while the 2-org default stays just
  // below the knee — the Figure 7 effect.
  double peer_contention_per_org = 0.15;

  // One-way network delay between any two components, plus uniform jitter.
  double network_delay_s = 0.004;
  double network_jitter_s = 0.002;

  // Client-side endorsement RPC timeout: how long a client waits before
  // writing off an unreachable (black-holed) endorser. Only exercised
  // under fault injection (driver/faults.h).
  double endorse_timeout_s = 0.25;

  // Ordering-service work: per-transaction enqueue cost plus a fixed
  // per-block cost (consensus bookkeeping, block assembly, signing).
  double order_per_tx_s = 0.0005;
  double block_overhead_s = 0.17;

  // Raft timing among orderer nodes.
  double raft_heartbeat_s = 0.05;
  double raft_election_timeout_min_s = 0.15;
  double raft_election_timeout_max_s = 0.30;

  // Peer-side validation/commit: per-block fixed cost plus per-tx cost.
  double validate_per_tx_s = 0.0012;
  double validate_block_overhead_s = 0.02;
  double commit_per_block_s = 0.01;
};

/// Full configuration of a simulated Fabric network + channel.
struct NetworkConfig {
  /// Number of organizations; each org runs one endorsing peer that is
  /// also a committing peer. Default mirrors the paper's Table 2 (2 orgs).
  int num_orgs = 2;

  /// Total client processes (Caliper workers), assigned to organizations
  /// round-robin. The paper uses 10 Caliper workers.
  int num_clients = 10;

  /// Extra client processes for specific organizations (client resource
  /// boost); entry i adds clients to Org(i+1).
  std::vector<int> extra_clients_per_org;

  /// Number of Raft ordering nodes.
  int num_orderers = 3;

  /// Endorsement policy. Default P3: Majority over all orgs.
  EndorsementPolicy endorsement_policy;

  /// Preference weight for endorser selection. 0 = uniform among minimal
  /// satisfying sets; a value w > 1 makes odd-numbered orgs w times more
  /// likely to be chosen (the paper's "endorser distribution skew").
  double endorser_dist_skew = 0;

  BlockCuttingConfig block_cutting;
  LatencyModel latency;

  /// RNG seed for network-internal randomness (raft timeouts, jitter,
  /// endorser choice).
  uint64_t seed = 42;

  /// Identity of this network inside a multi-channel experiment: channel
  /// `channel_index` of `channel_count` (0 of 1 for a plain single-channel
  /// run). Channels are independent Fabric networks coupled only through
  /// the shared client population (driver/sharded.h); per-channel exports
  /// and sampler gauges are labeled with the index.
  int channel_index = 0;
  int channel_count = 1;

  /// Returns the config with the paper's defaults (2 orgs, P3, block count
  /// 300, timeout 1s).
  static NetworkConfig Defaults();

  /// Name of organization `i` (1-based): "Org1".
  static std::string OrgName(int i);

  /// Client id `j` (0-based global) and its organization.
  std::string ClientName(int org_index, int client_index) const;

  /// Number of clients attached to org `i` (1-based), including boosts.
  int ClientsOfOrg(int org) const;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_FABRIC_CONFIG_H_
