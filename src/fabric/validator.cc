#include "fabric/validator.h"

#include <set>

namespace blockoptr {

namespace {

bool ReadItemCurrent(const ReadItem& r, const VersionedStore& state) {
  auto vv = state.Get(r.key);
  if (!vv) return !r.version.has_value();
  return r.version.has_value() && *r.version == vv->version;
}

bool RangeQueryCurrent(const RangeQueryInfo& rq, const VersionedStore& state) {
  auto current = state.Range(rq.start_key, rq.end_key);
  if (current.size() != rq.results.size()) return false;
  for (size_t i = 0; i < current.size(); ++i) {
    if (current[i].first != rq.results[i].key) return false;
    if (!rq.results[i].version.has_value() ||
        *rq.results[i].version != current[i].second.version) {
      return false;
    }
  }
  return true;
}

bool PointReadsCurrent(const ReadWriteSet& rwset, const VersionedStore& state) {
  for (const auto& r : rwset.reads) {
    if (!ReadItemCurrent(r, state)) return false;
  }
  return true;
}

bool RangeReadsCurrent(const ReadWriteSet& rwset, const VersionedStore& state) {
  for (const auto& rq : rwset.range_queries) {
    if (!RangeQueryCurrent(rq, state)) return false;
  }
  return true;
}

void ApplyWrites(const ReadWriteSet& rwset, VersionedStore& state,
                 Version version) {
  for (const auto& w : rwset.writes) {
    state.Apply(w.key, w.value, w.is_delete, version);
  }
}

}  // namespace

bool ReadsAreCurrent(const ReadWriteSet& rwset, const VersionedStore& state) {
  return PointReadsCurrent(rwset, state) && RangeReadsCurrent(rwset, state);
}

BlockValidationStats ValidateAndApplyBlock(Block& block, VersionedStore& state,
                                           const EndorsementPolicy& policy) {
  BlockValidationStats stats;
  uint32_t tx_pos = 0;
  for (auto& tx : block.transactions) {
    const uint32_t pos = tx_pos++;
    if (tx.is_config) {
      tx.status = TxStatus::kConfig;
      continue;
    }
    if (tx.pre_aborted) {
      // Status stamped by the reordering scheduler; count it.
      switch (tx.status) {
        case TxStatus::kMvccReadConflict:
          ++stats.mvcc_conflicts;
          break;
        case TxStatus::kPhantomReadConflict:
          ++stats.phantom_conflicts;
          break;
        default:
          ++stats.endorsement_failures;
          break;
      }
      continue;
    }
    // 1. VSCC: signature set must satisfy the endorsement policy.
    std::set<std::string> signers(tx.endorsers.begin(), tx.endorsers.end());
    if (!policy.IsSatisfiedBy(signers)) {
      tx.status = TxStatus::kEndorsementPolicyFailure;
      ++stats.endorsement_failures;
      continue;
    }
    // 2. MVCC point-read check.
    if (!PointReadsCurrent(tx.rwset, state)) {
      tx.status = TxStatus::kMvccReadConflict;
      ++stats.mvcc_conflicts;
      continue;
    }
    // 3. Phantom (range-read) check.
    if (!RangeReadsCurrent(tx.rwset, state)) {
      tx.status = TxStatus::kPhantomReadConflict;
      ++stats.phantom_conflicts;
      continue;
    }
    tx.status = TxStatus::kValid;
    ++stats.valid;
    ApplyWrites(tx.rwset, state, Version{block.block_num, pos});
  }
  return stats;
}

void RecordValidationStats(const BlockValidationStats& stats,
                           MetricsRegistry& metrics) {
  metrics.counter("validator.valid_total").Increment(stats.valid);
  metrics.counter("validator.mvcc_conflicts").Increment(stats.mvcc_conflicts);
  metrics.counter("validator.phantom_conflicts")
      .Increment(stats.phantom_conflicts);
  metrics.counter("validator.endorsement_failures")
      .Increment(stats.endorsement_failures);
  metrics.counter("validator.blocks_validated_total").Increment();
}

}  // namespace blockoptr
