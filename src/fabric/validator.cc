#include "fabric/validator.h"

#include <algorithm>
#include <string_view>
#include <vector>

#include "common/interner.h"

namespace blockoptr {

namespace {

bool ReadItemCurrent(const ReadItem& r, const VersionedStore& state) {
  // Intern once per item; every later check (re-validation, other peers'
  // stores) skips the string hash. Interning a key the store doesn't hold
  // is fine — ids are process-global, not per-store.
  if (r.cached_id == kInvalidKeyId) {
    r.cached_id = GlobalKeyInterner().Intern(r.key);
  }
  const VersionedValue* vv = state.PeekById(r.cached_id);
  if (vv == nullptr) return !r.version.has_value();
  return r.version.has_value() && *r.version == vv->version;
}

bool RangeQueryCurrent(const RangeQueryInfo& rq, const VersionedStore& state) {
  // Re-executes the range as a version-only scan: no key or value is ever
  // copied, and the first divergence stops the walk.
  size_t i = 0;
  bool matches = true;
  state.RangeVersions(
      rq.start_key, rq.end_key,
      [&](std::string_view key, const Version& version) {
        if (i >= rq.results.size() || rq.results[i].key != key ||
            !rq.results[i].version.has_value() ||
            *rq.results[i].version != version) {
          matches = false;
          return false;
        }
        ++i;
        return true;
      });
  // A shorter current range (deleted keys) must also be a phantom.
  return matches && i == rq.results.size();
}

bool PointReadsCurrent(const ReadWriteSet& rwset, const VersionedStore& state) {
  for (const auto& r : rwset.reads) {
    if (!ReadItemCurrent(r, state)) return false;
  }
  return true;
}

bool RangeReadsCurrent(const ReadWriteSet& rwset, const VersionedStore& state) {
  for (const auto& rq : rwset.range_queries) {
    if (!RangeQueryCurrent(rq, state)) return false;
  }
  return true;
}

void ApplyWrites(const ReadWriteSet& rwset, VersionedStore& state,
                 Version version) {
  for (const auto& w : rwset.writes) {
    if (w.cached_id == kInvalidKeyId) {
      w.cached_id = GlobalKeyInterner().Intern(w.key);
    }
    state.ApplyById(w.cached_id, w.key, w.value, w.is_delete, version);
  }
}

}  // namespace

bool ReadsAreCurrent(const ReadWriteSet& rwset, const VersionedStore& state) {
  return PointReadsCurrent(rwset, state) && RangeReadsCurrent(rwset, state);
}

BlockValidationStats ValidateAndApplyBlock(Block& block, VersionedStore& state,
                                           const EndorsementPolicy& policy) {
  BlockValidationStats stats;
  uint32_t tx_pos = 0;
  // Reused across transactions so the signer check allocates at most once
  // per block (endorser lists are a handful of org names).
  std::vector<std::string_view> signers;
  for (auto& tx : block.transactions) {
    const uint32_t pos = tx_pos++;
    if (tx.is_config) {
      tx.status = TxStatus::kConfig;
      continue;
    }
    if (tx.pre_aborted) {
      // Status stamped by the reordering scheduler; count it.
      switch (tx.status) {
        case TxStatus::kMvccReadConflict:
          ++stats.mvcc_conflicts;
          break;
        case TxStatus::kPhantomReadConflict:
          ++stats.phantom_conflicts;
          break;
        default:
          ++stats.endorsement_failures;
          break;
      }
      continue;
    }
    // 1. VSCC: signature set must satisfy the endorsement policy.
    signers.assign(tx.endorsers.begin(), tx.endorsers.end());
    std::sort(signers.begin(), signers.end());
    signers.erase(std::unique(signers.begin(), signers.end()), signers.end());
    if (!policy.IsSatisfiedBy(signers)) {
      tx.status = TxStatus::kEndorsementPolicyFailure;
      ++stats.endorsement_failures;
      continue;
    }
    // 2. MVCC point-read check.
    if (!PointReadsCurrent(tx.rwset, state)) {
      tx.status = TxStatus::kMvccReadConflict;
      ++stats.mvcc_conflicts;
      continue;
    }
    // 3. Phantom (range-read) check.
    if (!RangeReadsCurrent(tx.rwset, state)) {
      tx.status = TxStatus::kPhantomReadConflict;
      ++stats.phantom_conflicts;
      continue;
    }
    tx.status = TxStatus::kValid;
    ++stats.valid;
    ApplyWrites(tx.rwset, state, Version{block.block_num, pos});
  }
  return stats;
}

void RecordValidationStats(const BlockValidationStats& stats,
                           MetricsRegistry& metrics) {
  metrics.counter("validator.valid_total").Increment(stats.valid);
  metrics.counter("validator.mvcc_conflicts").Increment(stats.mvcc_conflicts);
  metrics.counter("validator.phantom_conflicts")
      .Increment(stats.phantom_conflicts);
  metrics.counter("validator.endorsement_failures")
      .Increment(stats.endorsement_failures);
  metrics.counter("validator.blocks_validated_total").Increment();
}

}  // namespace blockoptr
