#ifndef BLOCKOPTR_FABRIC_CLIENT_H_
#define BLOCKOPTR_FABRIC_CLIENT_H_

#include <memory>
#include <string>

#include "sim/service_station.h"

namespace blockoptr {

/// A client process (a Caliper worker). Clients do real work in Fabric —
/// proposal creation, endorsement verification, envelope assembly — all of
/// which occupies this single-server station. Because assembly happens
/// *after* endorsement, a saturated client widens the endorsement-to-commit
/// window and thereby raises MVCC failures; this is what the paper's
/// client-resource-boost recommendation fixes (§4.4.3, §6.1.2).
class ClientProcess {
 public:
  ClientProcess(Simulator* sim, std::string id, int org_index);

  const std::string& id() const { return id_; }
  int org_index() const { return org_index_; }
  ServiceStation& station() { return *station_; }

 private:
  std::string id_;
  int org_index_;
  std::unique_ptr<ServiceStation> station_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_FABRIC_CLIENT_H_
