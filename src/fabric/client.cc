#include "fabric/client.h"

namespace blockoptr {

ClientProcess::ClientProcess(Simulator* sim, std::string id, int org_index)
    : id_(std::move(id)),
      org_index_(org_index),
      station_(std::make_unique<ServiceStation>(sim, id_)) {}

}  // namespace blockoptr
