#ifndef BLOCKOPTR_FABRIC_PEER_H_
#define BLOCKOPTR_FABRIC_PEER_H_

#include <memory>
#include <string>

#include "sim/service_station.h"
#include "statedb/versioned_store.h"
#include "telemetry/metrics.h"

namespace blockoptr {

/// One organization's peer: an endorsing + committing node with its own
/// copy of the world state. The peer's endorser and validator are separate
/// service stations (Fabric runs endorsement and validation on different
/// executors), sharing the store.
///
/// The store is updated only when the peer's *validator* finishes applying
/// a block, so a peer whose validator is backlogged endorses against stale
/// state — the mechanistic source of endorsement mismatches and extra MVCC
/// conflicts under load.
class OrgPeer {
 public:
  OrgPeer(Simulator* sim, std::string org_name);

  const std::string& org() const { return org_; }
  VersionedStore& store() { return store_; }
  const VersionedStore& store() const { return store_; }
  ServiceStation& endorser_station() { return *endorser_station_; }
  ServiceStation& validator_station() { return *validator_station_; }

  /// Attaches per-peer metrics (`peer.<org>.*`); nullptr disables.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Records commit-side metrics after this peer applied a block. No-op
  /// without a registry.
  void OnBlockApplied(size_t num_txs);

 private:
  std::string org_;
  VersionedStore store_;
  std::unique_ptr<ServiceStation> endorser_station_;
  std::unique_ptr<ServiceStation> validator_station_;
  MetricsRegistry* metrics_ = nullptr;  // optional, not owned
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_FABRIC_PEER_H_
