#include "fabric/network.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "fabric/endorser.h"

namespace blockoptr {

namespace {

/// Parses the numeric suffix of "OrgN"; returns 0 when not parseable.
int OrgIndexFromName(const std::string& name) {
  if (name.rfind("Org", 0) != 0) return 0;
  return std::atoi(name.c_str() + 3);
}

}  // namespace

FabricNetwork::FabricNetwork(Simulator* sim, NetworkConfig config)
    : sim_(sim), config_(std::move(config)), rng_(config_.seed) {
  // Peer-side service slowdown from packing more org pods onto the same
  // cluster (see LatencyModel::peer_contention_per_org).
  peer_scale_ = 1.0 + config_.latency.peer_contention_per_org *
                          std::max(0, config_.num_orgs - 2);
  // Peers: one endorsing + committing peer per organization.
  for (int org = 1; org <= config_.num_orgs; ++org) {
    peers_.push_back(
        std::make_unique<OrgPeer>(sim_, NetworkConfig::OrgName(org)));
  }

  // Clients: `num_clients` assigned round-robin across orgs, plus boosts.
  org_client_indices_.resize(static_cast<size_t>(config_.num_orgs));
  org_rr_.assign(static_cast<size_t>(config_.num_orgs), 0);
  for (int org = 1; org <= config_.num_orgs; ++org) {
    int count = config_.ClientsOfOrg(org);
    for (int c = 0; c < count; ++c) {
      org_client_indices_[static_cast<size_t>(org - 1)].push_back(
          static_cast<int>(clients_.size()));
      clients_.push_back(std::make_unique<ClientProcess>(
          sim_, config_.ClientName(org, c), org));
    }
  }

  org_delivery_horizon_.assign(static_cast<size_t>(config_.num_orgs), 0.0);
  endorser_slowdown_.assign(static_cast<size_t>(config_.num_orgs), 1.0);
  endorser_down_.assign(static_cast<size_t>(config_.num_orgs), 0);
  orderer_ = std::make_unique<OrderingService>(sim_, config_, rng_.Fork());
  orderer_->set_on_block_committed(
      [this](Block block) { DeliverBlock(std::move(block)); });

  UpdateEndorsementPolicy(config_.endorsement_policy);

  // Genesis: a config block (cleaned away by BlockOptR's preprocessing).
  Block genesis;
  Transaction cfg_tx;
  cfg_tx.chaincode = "_lifecycle";
  cfg_tx.activity = "configUpdate";
  cfg_tx.is_config = true;
  cfg_tx.status = TxStatus::kConfig;
  genesis.transactions.push_back(std::move(cfg_tx));
  ledger_.Append(std::move(genesis));
}

Status FabricNetwork::InstallChaincode(std::unique_ptr<Chaincode> chaincode) {
  std::string name = chaincode->name();
  auto [it, inserted] = chaincodes_.emplace(name, std::move(chaincode));
  if (!inserted) {
    return Status::AlreadyExists("chaincode '" + name + "' already installed");
  }
  return Status::OK();
}

void FabricNetwork::SeedState(const std::string& chaincode,
                              const std::string& key,
                              const std::string& value) {
  std::string full_key = chaincode + "~" + key;
  Version version{0, seed_counter_++};
  committed_state_.Apply(full_key, value, /*is_delete=*/false, version);
  for (auto& peer : peers_) {
    peer->store().Apply(full_key, value, /*is_delete=*/false, version);
  }
}

void FabricNetwork::SetEndorserSlowdown(int org, double factor) {
  if (org < 1 || org > config_.num_orgs || factor <= 0) return;
  endorser_slowdown_[static_cast<size_t>(org - 1)] = factor;
}

void FabricNetwork::SetEndorserOutage(int org, bool down) {
  if (org < 1 || org > config_.num_orgs) return;
  endorser_down_[static_cast<size_t>(org - 1)] = down ? 1 : 0;
}

double FabricNetwork::endorser_slowdown(int org) const {
  if (org < 1 || org > config_.num_orgs) return 1.0;
  return endorser_slowdown_[static_cast<size_t>(org - 1)];
}

bool FabricNetwork::endorser_down(int org) const {
  if (org < 1 || org > config_.num_orgs) return false;
  return endorser_down_[static_cast<size_t>(org - 1)] != 0;
}

void FabricNetwork::SetClientLoadScale(double scale) {
  if (scale <= 0) return;
  client_load_scale_ = scale;
}

double FabricNetwork::client_busy_time() const {
  double busy = 0;
  for (const auto& client : clients_) busy += client->station().busy_time();
  return busy;
}

void FabricNetwork::SetReorderer(std::unique_ptr<BlockReorderer> reorderer) {
  orderer_->set_reorderer(std::move(reorderer));
}

void FabricNetwork::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  tracer_ = telemetry ? telemetry->tracing() : nullptr;
  event_metrics_ = telemetry ? telemetry->event_metrics() : nullptr;
  txtrace_ = telemetry ? telemetry->txtrace() : nullptr;
  orderer_->set_telemetry(telemetry);
  for (auto& peer : peers_) peer->set_metrics(event_metrics_);

  Sampler* sampler = telemetry ? telemetry->sampler() : nullptr;
  if (sampler == nullptr) return;
  // Pipeline-level series read the always-on cumulative totals.
  sampler->AddRate("pipeline.commit_tps",
                   [this]() { return totals_.valid_txs; });
  sampler->AddRate("pipeline.mvcc_conflicts_per_s", [this]() {
    return totals_.mvcc_conflicts + totals_.phantom_conflicts;
  });
  sampler->AddRate("pipeline.endorsement_failures_per_s",
                   [this]() { return totals_.endorsement_failures; });
  sampler->AddRate("pipeline.early_aborts_per_s",
                   [this]() { return early_aborts_; });
  sampler->AddRate("orderer.blocks_per_s",
                   [this]() { return totals_.blocks_committed; });
  sampler->AddWindowMean(
      "orderer.block_fill", [this]() { return totals_.block_fill_sum; },
      [this]() { return totals_.blocks_committed; });
  sampler->AddRate("raft.messages_per_s",
                   [this]() { return orderer_->raft().messages_sent(); });
  if (config_.channel_count > 1) {
    // Only registered on multi-channel runs, so single-channel sampler
    // exports stay byte-identical to the pre-sharding format.
    sampler->AddGauge("channel.client_load_scale",
                      [this]() { return client_load_scale_; });
  }
  // Every ServiceStation in the network becomes a bottleneck candidate:
  // per-org endorsers and validators, the orderer, and the clients.
  for (auto& peer : peers_) {
    sampler->AddStation("peer/" + peer->org() + "/endorser",
                        trace_category::kEndorse,
                        &peer->endorser_station());
    sampler->AddStation("peer/" + peer->org() + "/validator",
                        trace_category::kValidate,
                        &peer->validator_station());
  }
  sampler->AddStation("orderer", trace_category::kOrder,
                      &orderer_->station());
  for (auto& client : clients_) {
    sampler->AddStation("client/" + client->id(), trace_category::kSubmit,
                        &client->station());
  }
}

void FabricNetwork::UpdateEndorsementPolicy(const EndorsementPolicy& policy) {
  policy_ = policy;
  minimal_sets_ = policy_.MinimalSatisfyingSets();
  minimal_set_weights_.clear();
  total_set_weight_ = 0;
  for (const auto& set : minimal_sets_) {
    double w = 1.0;
    if (config_.endorser_dist_skew > 1.0) {
      // Odd-numbered orgs are preferred and even-numbered ones avoided —
      // the paper's endorser distribution skew ("the clients send
      // transactions unevenly and therefore two of the organizations
      // endorse far more often than the other two", §6.1.1).
      for (const auto& org : set) {
        if (OrgIndexFromName(org) % 2 == 1) {
          w *= config_.endorser_dist_skew;
        } else {
          w /= config_.endorser_dist_skew;
        }
      }
    }
    minimal_set_weights_.push_back(w);
    total_set_weight_ += w;
  }
}

void FabricNetwork::SubmitBlockCuttingUpdate(
    const BlockCuttingConfig& cutting) {
  Transaction tx;
  tx.tx_id = next_tx_id_++;
  tx.chaincode = "_config";
  tx.activity = "configUpdate";
  tx.args = {"block_cutting", std::to_string(cutting.max_tx_count),
             std::to_string(cutting.timeout_s),
             std::to_string(cutting.max_bytes)};
  tx.client_timestamp = sim_->Now();
  orderer_->SubmitConfig(std::move(tx));
}

void FabricNetwork::SubmitPolicyUpdate(const EndorsementPolicy& policy) {
  Transaction tx;
  tx.tx_id = next_tx_id_++;
  tx.chaincode = "_config";
  tx.activity = "configUpdate";
  tx.args = {"endorsement_policy", policy.ToString()};
  tx.client_timestamp = sim_->Now();
  orderer_->SubmitConfig(std::move(tx));
}

void FabricNetwork::ApplyConfigTransaction(const Transaction& tx) {
  if (tx.args.size() >= 4 && tx.args[0] == "block_cutting") {
    BlockCuttingConfig cutting;
    cutting.max_tx_count =
        static_cast<uint32_t>(std::strtoul(tx.args[1].c_str(), nullptr, 10));
    cutting.timeout_s = std::strtod(tx.args[2].c_str(), nullptr);
    cutting.max_bytes = std::strtoull(tx.args[3].c_str(), nullptr, 10);
    if (cutting.max_tx_count > 0 && cutting.timeout_s > 0) {
      orderer_->UpdateBlockCutting(cutting);
      config_.block_cutting = cutting;
    }
    return;
  }
  if (tx.args.size() >= 2 && tx.args[0] == "endorsement_policy") {
    auto policy = EndorsementPolicy::Parse(tx.args[1]);
    if (policy.ok()) UpdateEndorsementPolicy(*policy);
  }
}

void FabricNetwork::Start() { orderer_->Start(); }

double FabricNetwork::NetworkDelay() {
  return config_.latency.network_delay_s +
         rng_.NextDouble() * config_.latency.network_jitter_s;
}

Chaincode* FabricNetwork::FindChaincode(const std::string& name) {
  auto it = chaincodes_.find(name);
  return it == chaincodes_.end() ? nullptr : it->second.get();
}

int FabricNetwork::PickClient(const ClientRequest& request) {
  int org = request.target_org;
  if (org <= 0 || org > config_.num_orgs) {
    org = (global_org_rr_++ % config_.num_orgs) + 1;
  }
  auto& indices = org_client_indices_[static_cast<size_t>(org - 1)];
  assert(!indices.empty());
  int& cursor = org_rr_[static_cast<size_t>(org - 1)];
  int client = indices[static_cast<size_t>(cursor) % indices.size()];
  ++cursor;
  return client;
}

std::vector<int> FabricNetwork::SelectEndorsingOrgs() {
  std::vector<int> orgs;
  if (minimal_sets_.empty()) {
    // Degenerate policy: fall back to all organizations.
    for (int org = 1; org <= config_.num_orgs; ++org) orgs.push_back(org);
    return orgs;
  }
  // Weighted pick among minimal satisfying sets.
  size_t chosen = 0;
  if (minimal_sets_.size() > 1) {
    double u = rng_.NextDouble() * total_set_weight_;
    double acc = 0;
    for (size_t i = 0; i < minimal_sets_.size(); ++i) {
      acc += minimal_set_weights_[i];
      if (u < acc) {
        chosen = i;
        break;
      }
      chosen = i;
    }
  }
  for (const auto& org_name : minimal_sets_[chosen]) {
    int idx = OrgIndexFromName(org_name);
    if (idx >= 1 && idx <= config_.num_orgs) orgs.push_back(idx);
  }
  return orgs;
}

Status FabricNetwork::Submit(const ClientRequest& request) {
  if (FindChaincode(request.chaincode) == nullptr) {
    return Status::NotFound("chaincode '" + request.chaincode +
                            "' is not installed");
  }
  uint64_t id = next_tx_id_++;
  PendingTx pending;
  pending.request = request;
  pending.client_index = PickClient(request);
  pending.client_timestamp = sim_->Now();
  PendingTx& entry = pending_.emplace(id, std::move(pending)).first->second;

  // Proposal creation occupies the client process.
  ClientProcess& cp = *clients_[static_cast<size_t>(entry.client_index)];
  if (tracer_) {
    // The submit span starts exactly at the recorded client timestamp, so
    // span-derived end-to-end latency is identical to the ledger's.
    entry.submit_span = tracer_->Begin(
        trace_category::kSubmit, "submit", "client/" + cp.id(), id);
  }
  if (event_metrics_) {
    event_metrics_->counter("client.requests_total").Increment();
    event_metrics_->gauge("client.queue_depth")
        .Set(cp.station().CurrentDelay());
  }
  if (txtrace_) {
    txtrace_->TxEvent(id, TxStage::kSubmit,
                      static_cast<uint16_t>(entry.client_index));
  }
  cp.station().Submit(config_.latency.client_proposal_s * client_load_scale_,
                      [this, id]() { StartEndorsement(id); });
  return Status::OK();
}

void FabricNetwork::StartEndorsement(uint64_t pending_id) {
  auto it = pending_.find(pending_id);
  if (it == pending_.end()) return;
  PendingTx& pending = it->second;
  if (tracer_) tracer_->End(pending.submit_span);
  if (txtrace_) {
    txtrace_->TxEvent(
        pending_id, TxStage::kProposalDone,
        static_cast<uint16_t>(pending.client_index),
        static_cast<float>(config_.latency.client_proposal_s *
                           client_load_scale_));
  }

  std::vector<int> orgs = SelectEndorsingOrgs();
  pending.expected_responses = orgs.size();

  for (int org : orgs) {
    sim_->ScheduleAfter(NetworkDelay(), [this, pending_id, org]() {
      auto pit = pending_.find(pending_id);
      if (pit == pending_.end()) return;
      OrgPeer& peer = *peers_[static_cast<size_t>(org - 1)];
      if (endorser_down_[static_cast<size_t>(org - 1)]) {
        // Black-holed endorser (fault injection): the proposal is never
        // executed; the client gives up after the RPC timeout and records
        // the refusal, so the outage surfaces as an endorsement failure
        // (or an early abort when no endorser answered) — never a hang.
        if (event_metrics_) {
          event_metrics_->counter("endorser.outage_drops_total").Increment();
        }
        std::string down_org = peer.org();
        sim_->ScheduleAfter(
            config_.latency.endorse_timeout_s,
            [this, pending_id, org,
             down_org = std::move(down_org)]() mutable {
              auto pit2 = pending_.find(pending_id);
              if (pit2 == pending_.end()) return;
              if (txtrace_) {
                txtrace_->TxEvent(pending_id, TxStage::kEndorseRefused,
                                  static_cast<uint16_t>(org));
              }
              EndorseResult refusal;
              refusal.status = Status::Unavailable("endorser " + down_org +
                                                   " unreachable");
              pit2->second.responses.emplace_back(std::move(down_org),
                                                  std::move(refusal));
              if (pit2->second.responses.size() >=
                  pit2->second.expected_responses) {
                OnEndorsementsComplete(pending_id);
              }
            });
        return;
      }
      Chaincode* cc = FindChaincode(pit->second.request.chaincode);
      assert(cc != nullptr);
      uint64_t endorse_span = 0;
      if (tracer_) {
        // Covers queueing at the endorser plus chaincode execution.
        endorse_span = tracer_->Begin(
            trace_category::kEndorse, "endorse@" + peer.org(),
            "peer/" + peer.org() + "/endorser", pending_id);
      }
      if (event_metrics_) {
        event_metrics_->counter("endorser.proposals_total").Increment();
        event_metrics_->gauge("endorser.queue_depth")
            .Set(peer.endorser_station().CurrentDelay());
      }
      if (txtrace_) {
        txtrace_->TxEvent(pending_id, TxStage::kEndorseStart,
                          static_cast<uint16_t>(org));
      }
      // Execute against the peer's current (possibly stale) store. The
      // simulation cost scales with the number of state accesses.
      EndorseResult result =
          ExecuteProposal(*cc, peer.store(), pit->second.request);
      ++endorsement_counts_[peer.org()];
      size_t accesses = result.rwset.reads.size() +
                        result.rwset.writes.size();
      for (const auto& rq : result.rwset.range_queries) {
        accesses += rq.results.size();
      }
      double cost = (config_.latency.endorse_exec_s +
                     config_.latency.endorse_per_key_s *
                         static_cast<double>(accesses)) *
                    peer_scale_ *
                    endorser_slowdown_[static_cast<size_t>(org - 1)];
      std::string org_name = peer.org();
      peer.endorser_station().Submit(
          cost, [this, pending_id, endorse_span, org, cost,
                 org_name = std::move(org_name),
                 result = std::move(result)]() mutable {
            if (tracer_) tracer_->End(endorse_span);
            if (txtrace_) {
              txtrace_->TxEvent(pending_id, TxStage::kEndorseDone,
                                static_cast<uint16_t>(org),
                                static_cast<float>(cost));
            }
            if (event_metrics_ && !result.status.ok()) {
              event_metrics_->counter("endorser.rejections_total")
                  .Increment();
            }
            sim_->ScheduleAfter(
                NetworkDelay(),
                [this, pending_id, org_name = std::move(org_name),
                 result = std::move(result)]() mutable {
                  auto pit2 = pending_.find(pending_id);
                  if (pit2 == pending_.end()) return;
                  pit2->second.responses.emplace_back(std::move(org_name),
                                                      std::move(result));
                  if (pit2->second.responses.size() >=
                      pit2->second.expected_responses) {
                    OnEndorsementsComplete(pending_id);
                  }
                });
          });
    });
  }
}

void FabricNetwork::OnEndorsementsComplete(uint64_t pending_id) {
  auto it = pending_.find(pending_id);
  if (it == pending_.end()) return;
  PendingTx& pending = it->second;
  if (txtrace_) {
    txtrace_->TxEvent(pending_id, TxStage::kCollect,
                      static_cast<uint16_t>(pending.client_index));
  }

  // Pick the modal read-write set among successful responses; endorsers
  // that produced a different payload (stale store) or rejected the
  // proposal cannot sign it.
  std::vector<size_t> ok_indices;
  for (size_t i = 0; i < pending.responses.size(); ++i) {
    if (pending.responses[i].second.status.ok()) ok_indices.push_back(i);
  }
  if (ok_indices.empty()) {
    // Unanimous chaincode rejection: early abort, never ordered.
    ++early_aborts_;
    if (tracer_) {
      ClientProcess& aborted_cp =
          *clients_[static_cast<size_t>(pending.client_index)];
      tracer_->RecordInstant(trace_category::kAbort, "early_abort",
                             "client/" + aborted_cp.id(), pending_id);
    }
    if (event_metrics_) {
      event_metrics_->counter("client.early_aborts_total").Increment();
    }
    if (txtrace_) txtrace_->AbortTx(pending_id);
    if (on_early_abort_) {
      on_early_abort_(pending.request,
                      pending.responses.empty()
                          ? Status::Internal("no endorsement responses")
                          : pending.responses[0].second.status);
    }
    pending_.erase(it);
    return;
  }

  size_t best = ok_indices[0];
  int best_count = 0;
  for (size_t i : ok_indices) {
    int count = 0;
    for (size_t j : ok_indices) {
      if (pending.responses[i].second.rwset ==
          pending.responses[j].second.rwset) {
        ++count;
      }
    }
    if (count > best_count) {
      best_count = count;
      best = i;
    }
  }
  const ReadWriteSet& canonical = pending.responses[best].second.rwset;

  Transaction tx;
  tx.tx_id = pending_id;
  tx.chaincode = pending.request.chaincode;
  tx.activity = pending.request.function;
  ClientProcess& cp = *clients_[static_cast<size_t>(pending.client_index)];
  tx.invoker =
      Invoker{cp.id(), NetworkConfig::OrgName(cp.org_index())};
  for (size_t i : ok_indices) {
    if (pending.responses[i].second.rwset == canonical) {
      tx.endorsers.push_back(pending.responses[i].first);
    }
  }
  std::sort(tx.endorsers.begin(), tx.endorsers.end());
  tx.client_timestamp = pending.client_timestamp;

  // All reads of the pending entry are done: steal the args and the
  // canonical read-write set instead of copying them (the entry is erased
  // next; the bytes estimate above consumed both while still intact).
  uint64_t bytes = EstimateTxBytes(pending.request, canonical);
  uint16_t client_actor = static_cast<uint16_t>(pending.client_index);
  tx.args = std::move(pending.request.args);
  tx.rwset = std::move(pending.responses[best].second.rwset);
  pending_.erase(it);

  uint64_t assemble_span = 0;
  if (tracer_) {
    assemble_span = tracer_->Begin(
        trace_category::kAssemble, "assemble", "client/" + cp.id(),
        pending_id);
  }

  // Envelope assembly occupies the client, then the envelope travels to
  // the ordering service.
  double assemble_cost = config_.latency.client_assemble_s * client_load_scale_;
  cp.station().Submit(
      assemble_cost,
      [this, assemble_span, assemble_cost, client_actor, tx = std::move(tx),
       bytes]() mutable {
        if (tracer_) tracer_->End(assemble_span);
        if (txtrace_) {
          txtrace_->TxEvent(tx.tx_id, TxStage::kAssembleDone, client_actor,
                            static_cast<float>(assemble_cost));
        }
        sim_->ScheduleAfter(NetworkDelay(),
                            [this, tx = std::move(tx), bytes]() mutable {
                              orderer_->Submit(std::move(tx), bytes);
                            });
      });
}

void FabricNetwork::DeliverBlock(Block block) {
  block.block_num = next_block_num_++;
  // Runs synchronously inside the Raft commit callback chain, so the
  // recorder's "most recently committed payload" is this block's.
  if (txtrace_) {
    txtrace_->OnBlockDelivered(static_cast<uint32_t>(block.block_num));
  }

  // Channel-config updates take effect when their block is delivered.
  for (const auto& tx : block.transactions) {
    if (tx.is_config) ApplyConfigTransaction(tx);
  }

  // Canonical validation: a pure function of block order and content,
  // identical on every peer (Fabric's deterministic validation).
  BlockValidationStats vstats =
      ValidateAndApplyBlock(block, committed_state_, policy_);
  if (event_metrics_) RecordValidationStats(vstats, *event_metrics_);
  // Always-on totals (a handful of integer adds per *block*): these feed
  // the sampler's throughput / conflict-rate / fill series.
  totals_.valid_txs += vstats.valid;
  totals_.mvcc_conflicts += vstats.mvcc_conflicts;
  totals_.phantom_conflicts += vstats.phantom_conflicts;
  totals_.endorsement_failures += vstats.endorsement_failures;
  ++totals_.blocks_committed;
  totals_.block_fill_sum +=
      static_cast<double>(block.transactions.size()) /
      static_cast<double>(std::max(1u, config_.block_cutting.max_tx_count));

  // One shared, immutable-during-fan-out commit payload per block: the
  // validated block and the all-peers countdown ride in a single
  // allocation, and every per-org event captures just {this, org, ptr}.
  auto shared = std::make_shared<CommitFanout>(
      CommitFanout{std::move(block), config_.num_orgs});

  for (int org = 1; org <= config_.num_orgs; ++org) {
    // Blocks travel over an ordered channel (TCP): delivery to a peer
    // never overtakes an earlier block's delivery.
    SimTime arrival = std::max(sim_->Now() + NetworkDelay(),
                               org_delivery_horizon_[static_cast<size_t>(org - 1)]);
    org_delivery_horizon_[static_cast<size_t>(org - 1)] = arrival;
    sim_->ScheduleAt(arrival, [this, org, shared]() {
      OrgPeer& peer = *peers_[static_cast<size_t>(org - 1)];
      const Block& blk = shared->block;
      uint64_t validate_span = 0;
      if (tracer_) {
        // Covers queueing at the validator plus validate-and-commit work.
        validate_span = tracer_->Begin(
            trace_category::kValidate, "validate@" + peer.org(),
            "peer/" + peer.org() + "/validator");
        tracer_->Annotate(validate_span, "block",
                          std::to_string(blk.block_num));
        tracer_->Annotate(validate_span, "txs",
                          std::to_string(blk.transactions.size()));
      }
      if (txtrace_) {
        txtrace_->ValidateEvent(static_cast<uint32_t>(blk.block_num),
                                TxStage::kValidateStart,
                                static_cast<uint16_t>(org));
      }
      double cost =
          (config_.latency.validate_block_overhead_s +
           config_.latency.validate_per_tx_s *
               static_cast<double>(blk.transactions.size()) +
           config_.latency.commit_per_block_s) *
          peer_scale_;
      peer.validator_station().Submit(cost, [this, org, validate_span, cost,
                                             shared]() {
        OrgPeer& p = *peers_[static_cast<size_t>(org - 1)];
        if (tracer_) tracer_->End(validate_span);
        if (txtrace_) {
          txtrace_->ValidateEvent(
              static_cast<uint32_t>(shared->block.block_num),
              TxStage::kValidateDone, static_cast<uint16_t>(org),
              static_cast<float>(cost));
        }
        // Apply the (already stamped) block to this peer's store.
        const Block& blk = shared->block;
        uint32_t pos = 0;
        for (const auto& tx : blk.transactions) {
          uint32_t tx_pos = pos++;
          if (tx.status != TxStatus::kValid) continue;
          for (const auto& w : tx.rwset.writes) {
            p.store().Apply(w.key, w.value, w.is_delete,
                            Version{blk.block_num, tx_pos});
          }
        }
        p.store().MarkBlockApplied(blk.block_num);
        p.OnBlockApplied(blk.transactions.size());
        if (--shared->remaining == 0) {
          // All peers committed: stamp commit time, append to the ledger,
          // and notify the driver.
          SimTime now = sim_->Now();
          shared->block.commit_timestamp = now;
          for (auto& tx : shared->block.transactions) {
            tx.commit_timestamp = now;
          }
          uint64_t num = ledger_.Append(std::move(shared->block));
          const Block& appended = ledger_.GetBlock(num);
          if (event_metrics_) {
            event_metrics_->counter("ledger.blocks_total").Increment();
          }
          if (tracer_ || event_metrics_ || txtrace_) {
            for (const auto& tx : appended.transactions) {
              if (tx.is_config) continue;
              // The commit span closes the transaction lifecycle: it ends
              // exactly at the ledger's commit timestamp, spanning the
              // block's cut-to-commit tail (Raft + all-peer validation).
              if (tracer_) {
                tracer_->RecordComplete(trace_category::kCommit, "commit",
                                        "ledger", tx.tx_id,
                                        appended.cut_timestamp, now);
              }
              if (event_metrics_) {
                event_metrics_->counter("ledger.txs_committed_total")
                    .Increment();
              }
              if (txtrace_) {
                txtrace_->CommitTx(tx.tx_id, tx.client_timestamp,
                                   static_cast<uint32_t>(appended.block_num),
                                   tx.status != TxStatus::kValid);
              }
            }
          }
          if (on_block_commit_) on_block_commit_(appended);
          if (on_commit_) {
            for (const auto& tx : appended.transactions) on_commit_(tx);
          }
        }
      });
    });
  }
}

}  // namespace blockoptr
