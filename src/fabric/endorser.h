#ifndef BLOCKOPTR_FABRIC_ENDORSER_H_
#define BLOCKOPTR_FABRIC_ENDORSER_H_

#include <string>
#include <vector>

#include "chaincode/chaincode.h"
#include "ledger/rwset.h"
#include "statedb/versioned_store.h"
#include "workload/spec.h"

namespace blockoptr {

/// The outcome of one endorser simulating a proposal.
struct EndorseResult {
  /// Non-OK when the chaincode rejected the invocation (early abort —
  /// e.g. the pruned contract failing an illogical activity path).
  Status status;
  ReadWriteSet rwset;
};

/// Executes a transaction proposal against `store` (the endorsing peer's
/// committed world state) and returns the produced read-write set. This is
/// the "execute" phase of Fabric's execute-order-validate flow. Different
/// endorsers execute against their own stores; when stores have diverged
/// (commit lag), the resulting read-write sets differ, which later
/// manifests as an endorsement policy failure during validation.
EndorseResult ExecuteProposal(Chaincode& chaincode, const VersionedStore& store,
                              const ClientRequest& request);

/// Approximate wire size of a transaction, used for block-bytes cutting.
uint64_t EstimateTxBytes(const ClientRequest& request,
                         const ReadWriteSet& rwset);

}  // namespace blockoptr

#endif  // BLOCKOPTR_FABRIC_ENDORSER_H_
