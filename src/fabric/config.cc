#include "fabric/config.h"

namespace blockoptr {

NetworkConfig NetworkConfig::Defaults() {
  NetworkConfig cfg;
  cfg.endorsement_policy = EndorsementPolicy::Preset(3, cfg.num_orgs);
  return cfg;
}

std::string NetworkConfig::OrgName(int i) {
  return "Org" + std::to_string(i);
}

std::string NetworkConfig::ClientName(int org_index, int client_index) const {
  return OrgName(org_index) + "-client" + std::to_string(client_index);
}

int NetworkConfig::ClientsOfOrg(int org) const {
  // Round-robin assignment of `num_clients` over orgs: org i (1-based)
  // receives ceil((num_clients - i + 1) / num_orgs).
  int base = num_clients / num_orgs;
  int rem = num_clients % num_orgs;
  int count = base + (org <= rem ? 1 : 0);
  if (org - 1 < static_cast<int>(extra_clients_per_org.size())) {
    count += extra_clients_per_org[org - 1];
  }
  return count;
}

}  // namespace blockoptr
