#include "fabric/endorsement_policy.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>

#include "common/string_util.h"

namespace blockoptr {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

/// Recursive-descent parser for the policy grammar.
class PolicyParser {
 public:
  explicit PolicyParser(std::string_view text) : text_(text) {}

  Result<std::string> TakeIdentifier() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected identifier at offset " +
                                     std::to_string(pos_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ == text_.size();
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

// The Node type is private; parsing builds it via a friend-free local
// recursion that mirrors the public grammar.
Result<EndorsementPolicy> EndorsementPolicy::Parse(std::string_view text) {
  PolicyParser p(text);

  // Local recursive lambda over the private Node type.
  std::function<Result<Node>()> parse_policy = [&]() -> Result<Node> {
    auto ident = p.TakeIdentifier();
    if (!ident.ok()) return ident.status();
    std::string lower = ToLower(*ident);

    auto parse_list = [&](Node& node) -> Status {
      for (;;) {
        auto child = parse_policy();
        if (!child.ok()) return child.status();
        node.children.push_back(std::move(*child));
        if (p.Consume(',')) continue;
        if (p.Consume(')')) return Status::OK();
        return Status::InvalidArgument("expected ',' or ')' in policy list");
      }
    };

    if (lower == "and" || lower == "or" || lower == "majority" ||
        lower == "outof") {
      if (!p.Consume('(')) {
        return Status::InvalidArgument("expected '(' after " + *ident);
      }
      Node node;
      if (lower == "and") {
        node.kind = Node::kAnd;
      } else if (lower == "or") {
        node.kind = Node::kOr;
      } else {
        node.kind = Node::kOutOf;
      }
      if (lower == "outof") {
        auto n_tok = p.TakeIdentifier();
        if (!n_tok.ok()) return n_tok.status();
        char* end = nullptr;
        long n = std::strtol(n_tok->c_str(), &end, 10);
        if (end != n_tok->c_str() + n_tok->size() || n <= 0) {
          return Status::InvalidArgument("OutOf threshold must be a positive "
                                         "integer, got '" + *n_tok + "'");
        }
        node.n = static_cast<int>(n);
        if (!p.Consume(',')) {
          return Status::InvalidArgument("expected ',' after OutOf threshold");
        }
      }
      BLOCKOPTR_RETURN_NOT_OK(parse_list(node));
      if (node.kind == Node::kOutOf && lower == "majority") {
        // unreachable; kept for clarity
      }
      if (lower == "majority") {
        node.n = static_cast<int>(node.children.size() / 2) + 1;
      }
      if (node.kind == Node::kOutOf &&
          node.n > static_cast<int>(node.children.size())) {
        return Status::InvalidArgument(
            "OutOf threshold exceeds number of sub-policies");
      }
      return node;
    }

    Node leaf;
    leaf.kind = Node::kOrg;
    leaf.org = *ident;
    return leaf;
  };

  auto root = parse_policy();
  if (!root.ok()) return root.status();
  if (!p.AtEnd()) {
    return Status::InvalidArgument("trailing characters in policy at offset " +
                                   std::to_string(p.pos()));
  }
  EndorsementPolicy policy;
  policy.node_ = std::move(*root);
  return policy;
}

EndorsementPolicy EndorsementPolicy::Preset(int preset, int num_orgs) {
  auto org = [](int i) { return "Org" + std::to_string(i); };
  auto org_list = [&](int from, int to) {
    std::vector<std::string> parts;
    for (int i = from; i <= to; ++i) parts.push_back(org(i));
    return Join(parts, ",");
  };
  int n = std::max(num_orgs, 2);
  std::string text;
  switch (preset) {
    case 1:  // And(Org1, Or(Org2,...,OrgN))
      text = "And(Org1, Or(" + org_list(2, n) + "))";
      break;
    case 2: {  // And(Or(first half), Or(second half))
      int half = n / 2;
      text = "And(Or(" + org_list(1, half) + "), Or(" +
             org_list(half + 1, n) + "))";
      break;
    }
    case 4: {  // OutOf(2, Org1..OrgN)
      text = "OutOf(2, " + org_list(1, n) + ")";
      break;
    }
    case 3:
    default:  // Majority(Org1..OrgN) — the paper default
      text = "Majority(" + org_list(1, n) + ")";
      break;
  }
  auto parsed = Parse(text);
  // Presets are generated from a fixed grammar; parsing cannot fail.
  return *parsed;
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

bool EndorsementPolicy::Eval(
    const Node& node, const std::vector<std::string_view>& sorted_orgs) {
  switch (node.kind) {
    case Node::kNone:
      return false;
    case Node::kOrg:
      return std::binary_search(sorted_orgs.begin(), sorted_orgs.end(),
                                std::string_view(node.org));
    case Node::kAnd:
      return std::all_of(node.children.begin(), node.children.end(),
                         [&](const Node& c) { return Eval(c, sorted_orgs); });
    case Node::kOr:
      return std::any_of(node.children.begin(), node.children.end(),
                         [&](const Node& c) { return Eval(c, sorted_orgs); });
    case Node::kOutOf: {
      int satisfied = 0;
      for (const auto& c : node.children) {
        if (Eval(c, sorted_orgs)) ++satisfied;
      }
      return satisfied >= node.n;
    }
  }
  return false;
}

bool EndorsementPolicy::IsSatisfiedBy(
    const std::set<std::string>& endorsing_orgs) const {
  // std::set iterates in sorted order, so the view vector needs no sort.
  std::vector<std::string_view> sorted(endorsing_orgs.begin(),
                                       endorsing_orgs.end());
  return Eval(node_, sorted);
}

bool EndorsementPolicy::IsSatisfiedBy(
    const std::vector<std::string_view>& endorsing_orgs) const {
  return Eval(node_, endorsing_orgs);
}

void EndorsementPolicy::CollectOrgs(const Node& node,
                                    std::set<std::string>& out) {
  if (node.kind == Node::kOrg) {
    out.insert(node.org);
    return;
  }
  for (const auto& c : node.children) CollectOrgs(c, out);
}

std::vector<std::string> EndorsementPolicy::Organizations() const {
  std::set<std::string> orgs;
  CollectOrgs(node_, orgs);
  return {orgs.begin(), orgs.end()};
}

std::vector<std::string> EndorsementPolicy::MandatoryOrgs() const {
  std::vector<std::string> all = Organizations();
  std::set<std::string> all_set(all.begin(), all.end());
  std::vector<std::string> mandatory;
  for (const auto& org : all) {
    std::set<std::string> without = all_set;
    without.erase(org);
    if (!IsSatisfiedBy(without)) mandatory.push_back(org);
  }
  return mandatory;
}

std::vector<std::set<std::string>> EndorsementPolicy::MinimalSatisfyingSets()
    const {
  std::vector<std::string> orgs = Organizations();
  const size_t n = orgs.size();
  std::vector<std::set<std::string>> satisfying;
  if (n == 0 || n > 16) return satisfying;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::set<std::string> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.insert(orgs[i]);
    }
    if (IsSatisfiedBy(subset)) satisfying.push_back(std::move(subset));
  }
  // Keep only minimal sets.
  std::vector<std::set<std::string>> minimal;
  for (const auto& s : satisfying) {
    bool has_proper_subset = std::any_of(
        satisfying.begin(), satisfying.end(), [&](const auto& t) {
          return t.size() < s.size() &&
                 std::includes(s.begin(), s.end(), t.begin(), t.end());
        });
    if (!has_proper_subset) minimal.push_back(s);
  }
  return minimal;
}

std::string EndorsementPolicy::NodeToString(const Node& node) {
  switch (node.kind) {
    case Node::kNone:
      return "<empty>";
    case Node::kOrg:
      return node.org;
    case Node::kAnd:
    case Node::kOr: {
      std::vector<std::string> parts;
      parts.reserve(node.children.size());
      for (const auto& c : node.children) parts.push_back(NodeToString(c));
      return std::string(node.kind == Node::kAnd ? "And(" : "Or(") +
             Join(parts, ",") + ")";
    }
    case Node::kOutOf: {
      std::vector<std::string> parts;
      parts.reserve(node.children.size());
      for (const auto& c : node.children) parts.push_back(NodeToString(c));
      return "OutOf(" + std::to_string(node.n) + "," + Join(parts, ",") + ")";
    }
  }
  return "<invalid>";
}

std::string EndorsementPolicy::ToString() const {
  return NodeToString(node_);
}

}  // namespace blockoptr
