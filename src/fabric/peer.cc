#include "fabric/peer.h"

namespace blockoptr {

OrgPeer::OrgPeer(Simulator* sim, std::string org_name)
    : org_(std::move(org_name)),
      endorser_station_(
          std::make_unique<ServiceStation>(sim, org_ + "-endorser")),
      validator_station_(
          std::make_unique<ServiceStation>(sim, org_ + "-validator")) {}

}  // namespace blockoptr
