#include "fabric/peer.h"

namespace blockoptr {

OrgPeer::OrgPeer(Simulator* sim, std::string org_name)
    : org_(std::move(org_name)),
      endorser_station_(
          std::make_unique<ServiceStation>(sim, org_ + "-endorser")),
      validator_station_(
          std::make_unique<ServiceStation>(sim, org_ + "-validator")) {}

void OrgPeer::OnBlockApplied(size_t num_txs) {
  if (metrics_ == nullptr) return;
  metrics_->counter("peer." + org_ + ".blocks_applied_total").Increment();
  metrics_->counter("peer." + org_ + ".txs_applied_total")
      .Increment(num_txs);
  // How far behind this peer's validator is running — the commit lag that
  // makes endorsement happen against stale state.
  metrics_->gauge("peer." + org_ + ".validator_backlog_s")
      .Set(validator_station_->CurrentDelay());
}

}  // namespace blockoptr
