#ifndef BLOCKOPTR_CHAINCODE_CHAINCODE_H_
#define BLOCKOPTR_CHAINCODE_CHAINCODE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaincode/tx_context.h"
#include "common/result.h"
#include "common/status.h"

namespace blockoptr {

/// A smart contract. Contracts implement `Invoke`, reading and writing
/// world state exclusively through the `TxContext` shim so that every
/// execution yields a read-write set.
///
/// Returning a non-OK status from `Invoke` *early-aborts* the transaction
/// during endorsement: it never enters ordering or validation. The paper's
/// process-model-pruning optimization (§3, §4.4.1) is implemented exactly
/// this way — the pruned contract rejects illogical activity paths at
/// endorsement time.
class Chaincode {
 public:
  virtual ~Chaincode() = default;

  /// Channel-unique chaincode name; doubles as the world-state namespace.
  virtual std::string name() const = 0;

  /// Executes `function(args)` against `ctx`.
  virtual Status Invoke(TxContext& ctx, const std::string& function,
                        const std::vector<std::string>& args) = 0;

  /// Cross-chaincode invocation: runs `function` of `other` inside the
  /// same transaction context under `other`'s namespace (Fabric's
  /// InvokeChaincode on a shared channel).
  static Status InvokeChaincode(Chaincode& other, TxContext& ctx,
                                const std::string& function,
                                const std::vector<std::string>& args);
};

/// Name-indexed factory for contracts, so experiments can swap a contract
/// for its optimized variant by name (paper Table 4: "update smart
/// contract").
class ChaincodeRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Chaincode>()>;

  /// The process-wide registry pre-populated with all built-in contracts
  /// (genchain, scm, drm, ehr, dv, lap and their optimized variants).
  static ChaincodeRegistry& Global();

  /// Registers a factory; overwrites an existing entry with the same name.
  void Register(const std::string& name, Factory factory);

  /// Instantiates a contract by registered name.
  Result<std::unique_ptr<Chaincode>> Create(const std::string& name) const;

  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_CHAINCODE_CHAINCODE_H_
