#include "chaincode/chaincode.h"

namespace blockoptr {

// Defined in contracts/builtin.cc; populates the global registry with all
// built-in contracts. Declared here (not in a header) to keep the
// chaincode module's compile-time dependencies one-directional.
void RegisterBuiltinContracts(ChaincodeRegistry& registry);

Status Chaincode::InvokeChaincode(Chaincode& other, TxContext& ctx,
                                  const std::string& function,
                                  const std::vector<std::string>& args) {
  ctx.PushNamespace(other.name());
  Status st = other.Invoke(ctx, function, args);
  ctx.PopNamespace();
  return st;
}

ChaincodeRegistry& ChaincodeRegistry::Global() {
  // Function-local static pointer: never destroyed (per the style guide's
  // static-storage-duration rules).
  static ChaincodeRegistry* registry = [] {
    auto* r = new ChaincodeRegistry();
    RegisterBuiltinContracts(*r);
    return r;
  }();
  return *registry;
}

void ChaincodeRegistry::Register(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

Result<std::unique_ptr<Chaincode>> ChaincodeRegistry::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("no chaincode registered as '" + name + "'");
  }
  return it->second();
}

std::vector<std::string> ChaincodeRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, _] : factories_) names.push_back(name);
  return names;
}

}  // namespace blockoptr
