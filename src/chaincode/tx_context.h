#ifndef BLOCKOPTR_CHAINCODE_TX_CONTEXT_H_
#define BLOCKOPTR_CHAINCODE_TX_CONTEXT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ledger/rwset.h"
#include "statedb/versioned_store.h"

namespace blockoptr {

/// The execution context handed to a chaincode function during simulation
/// (endorsement). It records every state access into a read-write set,
/// reproducing Fabric shim semantics:
///
///  * `GetState` always reads the *committed* store — a transaction never
///    observes its own writes (Fabric's documented behaviour under its
///    optimistic execution model).
///  * Repeated reads of the same key record one read item.
///  * Repeated writes to the same key keep only the last write.
///  * `GetStateByRange` records the query bounds and the exact observed
///    (key, version) results, enabling phantom-read validation.
///
/// Keys are namespaced by chaincode name ("<chaincode>~<key>"), matching
/// Fabric's per-chaincode world-state namespacing — this is what makes
/// smart-contract partitioning (paper §4.4.2) effective.
class TxContext {
 public:
  /// `store` is the endorsing peer's committed world state; must outlive
  /// the context. `ns` is the executing chaincode's namespace.
  TxContext(const VersionedStore* store, std::string ns);

  // -- Shim API used by contracts -------------------------------------

  /// Committed value of `key` in the current namespace, or nullopt.
  std::optional<std::string> GetState(std::string_view key);

  /// Stages a write of `key` = `value`.
  void PutState(std::string_view key, std::string_view value);

  /// Stages a deletion of `key`.
  void DeleteState(std::string_view key);

  /// Ordered scan of [start_key, end_key) in the current namespace.
  /// Records a range query for phantom validation. Empty `end_key` scans
  /// to the end of the namespace.
  std::vector<std::pair<std::string, std::string>> GetStateByRange(
      std::string_view start_key, std::string_view end_key);

  // -- Namespace control (cross-chaincode invocation) -------------------

  /// Temporarily switches the active namespace (used by
  /// `Chaincode::InvokeChaincode`); restored by `PopNamespace`.
  void PushNamespace(std::string ns);
  void PopNamespace();
  const std::string& current_namespace() const { return ns_stack_.back(); }

  /// The accumulated read-write set (namespaced keys).
  const ReadWriteSet& rwset() const { return rwset_; }
  ReadWriteSet TakeRwset() { return std::move(rwset_); }

 private:
  std::string Namespaced(std::string_view key) const;
  void RecordRead(const std::string& full_key,
                  const std::optional<Version>& version);

  const VersionedStore* store_;
  std::vector<std::string> ns_stack_;
  ReadWriteSet rwset_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_CHAINCODE_TX_CONTEXT_H_
