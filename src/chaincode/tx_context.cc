#include "chaincode/tx_context.h"

#include <algorithm>
#include <cassert>

namespace blockoptr {

TxContext::TxContext(const VersionedStore* store, std::string ns)
    : store_(store) {
  ns_stack_.push_back(std::move(ns));
}

std::string TxContext::Namespaced(std::string_view key) const {
  return ns_stack_.back() + "~" + std::string(key);
}

void TxContext::RecordRead(const std::string& full_key,
                           const std::optional<Version>& version) {
  // One read item per key (Fabric records the first observed version).
  auto it = std::find_if(rwset_.reads.begin(), rwset_.reads.end(),
                         [&](const ReadItem& r) { return r.key == full_key; });
  if (it == rwset_.reads.end()) {
    rwset_.reads.push_back(ReadItem{full_key, version});
  }
}

std::optional<std::string> TxContext::GetState(std::string_view key) {
  std::string full = Namespaced(key);
  const VersionedValue* vv = store_->Peek(full);
  RecordRead(full, vv != nullptr ? std::optional<Version>(vv->version)
                                 : std::nullopt);
  if (vv == nullptr) return std::nullopt;
  return vv->value;
}

void TxContext::PutState(std::string_view key, std::string_view value) {
  std::string full = Namespaced(key);
  auto it =
      std::find_if(rwset_.writes.begin(), rwset_.writes.end(),
                   [&](const WriteItem& w) { return w.key == full; });
  if (it != rwset_.writes.end()) {
    it->value = std::string(value);
    it->is_delete = false;
    return;
  }
  rwset_.writes.push_back(WriteItem{std::move(full), std::string(value),
                                    /*is_delete=*/false});
}

void TxContext::DeleteState(std::string_view key) {
  std::string full = Namespaced(key);
  auto it =
      std::find_if(rwset_.writes.begin(), rwset_.writes.end(),
                   [&](const WriteItem& w) { return w.key == full; });
  if (it != rwset_.writes.end()) {
    it->value.clear();
    it->is_delete = true;
    return;
  }
  rwset_.writes.push_back(WriteItem{std::move(full), "", /*is_delete=*/true});
}

std::vector<std::pair<std::string, std::string>> TxContext::GetStateByRange(
    std::string_view start_key, std::string_view end_key) {
  std::string full_start = Namespaced(start_key);
  // An empty end key scans to the end of this chaincode's namespace; the
  // '~' separator sorts below 0x7F so "<ns>\x7f" upper-bounds it.
  std::string full_end =
      end_key.empty() ? ns_stack_.back() + "\x7f" : Namespaced(end_key);

  RangeQueryInfo rq;
  rq.start_key = full_start;
  rq.end_key = full_end;

  std::vector<std::pair<std::string, std::string>> out;
  // Visit the range in place: the old Range() call materialized every
  // (key, value, version) into a temporary vector just to copy it again.
  const size_t ns_prefix = ns_stack_.back().size() + 1;
  store_->RangeVisit(full_start, full_end,
                     [&](std::string_view k, const VersionedValue& vv) {
                       rq.results.push_back(
                           ReadItem{std::string(k), vv.version});
                       // Strip the namespace prefix for the contract's view.
                       out.emplace_back(std::string(k.substr(ns_prefix)),
                                        vv.value);
                       return true;
                     });
  rwset_.range_queries.push_back(std::move(rq));
  return out;
}

void TxContext::PushNamespace(std::string ns) {
  ns_stack_.push_back(std::move(ns));
}

void TxContext::PopNamespace() {
  assert(ns_stack_.size() > 1);
  ns_stack_.pop_back();
}

}  // namespace blockoptr
