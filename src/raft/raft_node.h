#ifndef BLOCKOPTR_RAFT_RAFT_NODE_H_
#define BLOCKOPTR_RAFT_RAFT_NODE_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "raft/raft_log.h"
#include "sim/simulator.h"

namespace blockoptr {

class RaftCluster;

/// Raft RPC messages (Raft paper §5).
struct RequestVoteArgs {
  uint64_t term;
  int candidate_id;
  uint64_t last_log_index;
  uint64_t last_log_term;
};
struct RequestVoteReply {
  uint64_t term;
  bool vote_granted;
  int voter_id;
};
struct AppendEntriesArgs {
  uint64_t term;
  int leader_id;
  uint64_t prev_log_index;
  uint64_t prev_log_term;
  std::vector<RaftEntry> entries;
  uint64_t leader_commit;
};
struct AppendEntriesReply {
  uint64_t term;
  bool success;
  uint64_t match_index;  // highest replicated index when success
  int follower_id;
};

using RaftMessage = std::variant<RequestVoteArgs, RequestVoteReply,
                                 AppendEntriesArgs, AppendEntriesReply>;

/// Reserved payload for the no-op entry a new leader appends when its log
/// has an uncommitted tail: the §5.4.2 commit rule only advances on
/// current-term entries, and heartbeats append nothing, so without it a
/// crashed leader's surviving entries would sit uncommitted until new
/// traffic arrives. Callers must propose nonzero payloads (the ordering
/// service numbers blocks from 1); the cluster never delivers no-ops.
inline constexpr uint64_t kRaftNoOpPayload = 0;

/// One Raft consensus participant (an ordering-service node). Driven
/// entirely by the discrete-event simulator: election timeouts, heartbeats,
/// and message deliveries are simulator events, so consensus behaviour —
/// including elections and leader failover — is deterministic per seed.
class RaftNode {
 public:
  enum class Role { kFollower, kCandidate, kLeader };

  /// `cluster` and `sim` must outlive the node.
  RaftNode(int id, int cluster_size, RaftCluster* cluster, Simulator* sim,
           Rng rng, double election_timeout_min, double election_timeout_max,
           double heartbeat_interval);

  int id() const { return id_; }
  Role role() const { return role_; }
  uint64_t current_term() const { return current_term_; }
  uint64_t commit_index() const { return commit_index_; }
  const RaftLog& log() const { return log_; }
  bool stopped() const { return stopped_; }

  /// Begins participating: arms the first election timeout.
  void Start();

  /// Crash-stops the node (drops all traffic, freezes timers).
  void Stop();

  /// Restarts after a crash: volatile state reset, persistent state
  /// (term, vote, log) retained per the Raft model.
  void Restart();

  /// Leader-only: appends a payload to the local log and replicates it.
  /// Returns false when this node is not the leader.
  bool Propose(uint64_t payload);

  /// Message delivery entry point (called by the cluster).
  void Receive(const RaftMessage& msg);

 private:
  void BecomeFollower(uint64_t term);
  void StartElection();
  void BecomeLeader();
  void ArmElectionTimer();
  void SendHeartbeats();
  void ReplicateTo(int peer);
  void AdvanceCommitIndex();
  void MaybeApply();

  void Handle(const RequestVoteArgs& args);
  void Handle(const RequestVoteReply& reply);
  void Handle(const AppendEntriesArgs& args);
  void Handle(const AppendEntriesReply& reply);

  const int id_;
  const int cluster_size_;
  RaftCluster* cluster_;
  Simulator* sim_;
  Rng rng_;
  const double election_timeout_min_;
  const double election_timeout_max_;
  const double heartbeat_interval_;

  Role role_ = Role::kFollower;
  uint64_t current_term_ = 0;
  int voted_for_ = -1;
  RaftLog log_;
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;

  // Leader volatile state.
  std::vector<uint64_t> next_index_;
  std::vector<uint64_t> match_index_;
  int votes_received_ = 0;

  // Timer generations invalidate stale scheduled callbacks.
  uint64_t election_timer_gen_ = 0;
  uint64_t heartbeat_timer_gen_ = 0;
  bool stopped_ = false;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_RAFT_RAFT_NODE_H_
