#include "raft/raft_node.h"

#include <algorithm>

#include "raft/raft_cluster.h"

namespace blockoptr {

RaftNode::RaftNode(int id, int cluster_size, RaftCluster* cluster,
                   Simulator* sim, Rng rng, double election_timeout_min,
                   double election_timeout_max, double heartbeat_interval)
    : id_(id),
      cluster_size_(cluster_size),
      cluster_(cluster),
      sim_(sim),
      rng_(rng),
      election_timeout_min_(election_timeout_min),
      election_timeout_max_(election_timeout_max),
      heartbeat_interval_(heartbeat_interval) {
  next_index_.assign(static_cast<size_t>(cluster_size_), 1);
  match_index_.assign(static_cast<size_t>(cluster_size_), 0);
}

void RaftNode::Start() { ArmElectionTimer(); }

void RaftNode::Stop() {
  stopped_ = true;
  // Invalidate all pending timers.
  ++election_timer_gen_;
  ++heartbeat_timer_gen_;
}

void RaftNode::Restart() {
  stopped_ = false;
  role_ = Role::kFollower;
  commit_index_ = 0;
  last_applied_ = 0;
  votes_received_ = 0;
  ArmElectionTimer();
}

void RaftNode::ArmElectionTimer() {
  uint64_t gen = ++election_timer_gen_;
  double timeout =
      election_timeout_min_ +
      rng_.NextDouble() * (election_timeout_max_ - election_timeout_min_);
  sim_->ScheduleAfter(timeout, [this, gen]() {
    if (stopped_ || gen != election_timer_gen_) return;
    if (role_ != Role::kLeader) StartElection();
  });
}

void RaftNode::StartElection() {
  role_ = Role::kCandidate;
  ++current_term_;
  voted_for_ = id_;
  votes_received_ = 1;
  ArmElectionTimer();  // retry if the election stalls
  RequestVoteArgs args{current_term_, id_, log_.LastIndex(), log_.LastTerm()};
  for (int peer = 0; peer < cluster_size_; ++peer) {
    if (peer == id_) continue;
    cluster_->Send(id_, peer, args);
  }
  // Single-node cluster: immediately win.
  if (cluster_size_ == 1) BecomeLeader();
}

void RaftNode::BecomeFollower(uint64_t term) {
  if (term > current_term_) {
    current_term_ = term;
    voted_for_ = -1;
  }
  role_ = Role::kFollower;
  votes_received_ = 0;
  ++heartbeat_timer_gen_;  // stop leader heartbeats if we were leader
  ArmElectionTimer();
}

void RaftNode::BecomeLeader() {
  role_ = Role::kLeader;
  for (int peer = 0; peer < cluster_size_; ++peer) {
    next_index_[static_cast<size_t>(peer)] = log_.LastIndex() + 1;
    match_index_[static_cast<size_t>(peer)] = 0;
  }
  match_index_[static_cast<size_t>(id_)] = log_.LastIndex();
  ++election_timer_gen_;  // leaders do not time out
  if (log_.LastIndex() > commit_index_) {
    // Uncommitted tail from an earlier term: append a current-term no-op
    // so the tail can commit without waiting for new proposals
    // (kRaftNoOpPayload — the commit-rule liveness gap after failover).
    log_.Append(RaftEntry{current_term_, kRaftNoOpPayload});
    match_index_[static_cast<size_t>(id_)] = log_.LastIndex();
  }
  cluster_->OnLeaderElected(id_);
  SendHeartbeats();
}

void RaftNode::SendHeartbeats() {
  if (stopped_ || role_ != Role::kLeader) return;
  for (int peer = 0; peer < cluster_size_; ++peer) {
    if (peer == id_) continue;
    ReplicateTo(peer);
  }
  uint64_t gen = ++heartbeat_timer_gen_;
  sim_->ScheduleAfter(heartbeat_interval_, [this, gen]() {
    if (stopped_ || gen != heartbeat_timer_gen_) return;
    SendHeartbeats();
  });
}

void RaftNode::ReplicateTo(int peer) {
  uint64_t next = next_index_[static_cast<size_t>(peer)];
  AppendEntriesArgs args;
  args.term = current_term_;
  args.leader_id = id_;
  args.prev_log_index = next - 1;
  args.prev_log_term = log_.TermAt(next - 1);
  args.entries = log_.EntriesFrom(next);
  args.leader_commit = commit_index_;
  cluster_->Send(id_, peer, std::move(args));
}

bool RaftNode::Propose(uint64_t payload) {
  if (stopped_ || role_ != Role::kLeader) return false;
  log_.Append(RaftEntry{current_term_, payload});
  match_index_[static_cast<size_t>(id_)] = log_.LastIndex();
  if (cluster_size_ == 1) {
    AdvanceCommitIndex();
    return true;
  }
  for (int peer = 0; peer < cluster_size_; ++peer) {
    if (peer == id_) continue;
    ReplicateTo(peer);
  }
  return true;
}

void RaftNode::Receive(const RaftMessage& msg) {
  if (stopped_) return;
  std::visit([this](const auto& m) { Handle(m); }, msg);
}

void RaftNode::Handle(const RequestVoteArgs& args) {
  if (args.term > current_term_) BecomeFollower(args.term);
  bool grant = false;
  if (args.term == current_term_ &&
      (voted_for_ == -1 || voted_for_ == args.candidate_id)) {
    // Election restriction: candidate's log must be at least as up to date.
    bool up_to_date =
        args.last_log_term > log_.LastTerm() ||
        (args.last_log_term == log_.LastTerm() &&
         args.last_log_index >= log_.LastIndex());
    if (up_to_date) {
      grant = true;
      voted_for_ = args.candidate_id;
      ArmElectionTimer();
    }
  }
  cluster_->Send(id_, args.candidate_id,
                 RequestVoteReply{current_term_, grant, id_});
}

void RaftNode::Handle(const RequestVoteReply& reply) {
  if (reply.term > current_term_) {
    BecomeFollower(reply.term);
    return;
  }
  if (role_ != Role::kCandidate || reply.term != current_term_) return;
  if (reply.vote_granted) {
    ++votes_received_;
    if (votes_received_ * 2 > cluster_size_) BecomeLeader();
  }
}

void RaftNode::Handle(const AppendEntriesArgs& args) {
  if (args.term > current_term_ ||
      (args.term == current_term_ && role_ != Role::kFollower)) {
    BecomeFollower(args.term);
  }
  if (args.term < current_term_) {
    cluster_->Send(id_, args.leader_id,
                   AppendEntriesReply{current_term_, false, 0, id_});
    return;
  }
  ArmElectionTimer();  // valid leader contact
  if (!log_.Matches(args.prev_log_index, args.prev_log_term)) {
    cluster_->Send(id_, args.leader_id,
                   AppendEntriesReply{current_term_, false, 0, id_});
    return;
  }
  // Append, resolving conflicts by truncation.
  uint64_t index = args.prev_log_index;
  for (const auto& entry : args.entries) {
    ++index;
    if (log_.LastIndex() >= index) {
      if (log_.TermAt(index) != entry.term) {
        log_.TruncateFrom(index);
        log_.Append(entry);
      }
    } else {
      log_.Append(entry);
    }
  }
  if (args.leader_commit > commit_index_) {
    commit_index_ = std::min(args.leader_commit, log_.LastIndex());
    MaybeApply();
  }
  cluster_->Send(
      id_, args.leader_id,
      AppendEntriesReply{current_term_, true,
                         args.prev_log_index + args.entries.size(), id_});
}

void RaftNode::Handle(const AppendEntriesReply& reply) {
  if (reply.term > current_term_) {
    BecomeFollower(reply.term);
    return;
  }
  if (role_ != Role::kLeader || reply.term != current_term_) return;
  auto peer = static_cast<size_t>(reply.follower_id);
  if (reply.success) {
    match_index_[peer] = std::max(match_index_[peer], reply.match_index);
    next_index_[peer] = match_index_[peer] + 1;
    AdvanceCommitIndex();
  } else {
    // Back off and retry.
    if (next_index_[peer] > 1) --next_index_[peer];
    ReplicateTo(reply.follower_id);
  }
}

void RaftNode::AdvanceCommitIndex() {
  // Find the highest index replicated on a majority with an entry from
  // the current term (Raft paper §5.4.2).
  for (uint64_t n = log_.LastIndex(); n > commit_index_; --n) {
    if (log_.TermAt(n) != current_term_) break;
    int count = 0;
    for (int peer = 0; peer < cluster_size_; ++peer) {
      if (match_index_[static_cast<size_t>(peer)] >= n) ++count;
    }
    if (count * 2 > cluster_size_) {
      commit_index_ = n;
      MaybeApply();
      break;
    }
  }
}

void RaftNode::MaybeApply() {
  if (last_applied_ < commit_index_) {
    last_applied_ = commit_index_;
    cluster_->OnNodeCommit(*this);
  }
}

}  // namespace blockoptr
