#include "raft/raft_log.h"

namespace blockoptr {

uint64_t RaftLog::TermAt(uint64_t index) const {
  if (index == 0 || index > entries_.size()) return 0;
  return entries_[index - 1].term;
}

bool RaftLog::Matches(uint64_t index, uint64_t term) const {
  if (index == 0) return term == 0;
  if (index > entries_.size()) return false;
  return entries_[index - 1].term == term;
}

void RaftLog::TruncateFrom(uint64_t from_index) {
  if (from_index == 0) {
    entries_.clear();
    return;
  }
  if (from_index <= entries_.size()) {
    entries_.resize(from_index - 1);
  }
}

std::vector<RaftEntry> RaftLog::EntriesFrom(uint64_t from_index) const {
  std::vector<RaftEntry> out;
  if (from_index == 0) from_index = 1;
  for (uint64_t i = from_index; i <= entries_.size(); ++i) {
    out.push_back(entries_[i - 1]);
  }
  return out;
}

}  // namespace blockoptr
