#ifndef BLOCKOPTR_RAFT_RAFT_LOG_H_
#define BLOCKOPTR_RAFT_RAFT_LOG_H_

#include <cstdint>
#include <vector>

namespace blockoptr {

/// One replicated log entry. The payload is an opaque identifier — the
/// ordering service stores the id of a cut block and resolves it back to
/// the block contents on commit.
struct RaftEntry {
  uint64_t term = 0;
  uint64_t payload = 0;

  friend bool operator==(const RaftEntry&, const RaftEntry&) = default;
};

/// A Raft log with 1-based indexing (index 0 is the empty sentinel with
/// term 0, as in the Raft paper).
class RaftLog {
 public:
  uint64_t LastIndex() const { return entries_.size(); }
  uint64_t LastTerm() const {
    return entries_.empty() ? 0 : entries_.back().term;
  }

  /// Term of the entry at `index`; 0 for index 0; 0 for out-of-range.
  uint64_t TermAt(uint64_t index) const;

  /// True if the log contains an entry at `index` with term `term`
  /// (or index == 0).
  bool Matches(uint64_t index, uint64_t term) const;

  const RaftEntry& At(uint64_t index) const { return entries_[index - 1]; }

  void Append(RaftEntry entry) { entries_.push_back(entry); }

  /// Removes entries at `from_index` and beyond.
  void TruncateFrom(uint64_t from_index);

  /// Entries in [from_index, LastIndex()].
  std::vector<RaftEntry> EntriesFrom(uint64_t from_index) const;

 private:
  std::vector<RaftEntry> entries_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_RAFT_RAFT_LOG_H_
