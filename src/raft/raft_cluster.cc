#include "raft/raft_cluster.h"

#include <utility>

namespace blockoptr {

RaftCluster::RaftCluster(Simulator* sim, Options options)
    : sim_(sim), options_(options), rng_(options.seed) {
  for (int i = 0; i < options_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<RaftNode>(
        i, options_.num_nodes, this, sim_, rng_.Fork(),
        options_.election_timeout_min, options_.election_timeout_max,
        options_.heartbeat_interval));
  }
}

void RaftCluster::Start() {
  for (auto& n : nodes_) n->Start();
}

void RaftCluster::Propose(uint64_t payload) {
  if (metrics_) metrics_->counter("raft.proposals_total").Increment();
  if (txtrace_) {
    txtrace_->BlockEvent(static_cast<uint32_t>(payload),
                         TxStage::kRaftPropose);
  }
  pending_.push(payload);
  FlushPending();
}

void RaftCluster::FlushPending() {
  int leader = LeaderId();
  if (leader < 0) {
    // No leader yet; retry shortly (leadership will emerge via timers).
    sim_->ScheduleAfter(options_.heartbeat_interval, [this]() {
      if (!pending_.empty()) FlushPending();
    });
    return;
  }
  while (!pending_.empty()) {
    if (!nodes_[static_cast<size_t>(leader)]->Propose(pending_.front())) {
      // Leadership changed between checks; retry later.
      sim_->ScheduleAfter(options_.heartbeat_interval, [this]() {
        if (!pending_.empty()) FlushPending();
      });
      return;
    }
    // Appended, not committed: keep tracking until delivery so a leader
    // crash cannot silently lose the payload.
    if (txtrace_) {
      txtrace_->BlockEvent(static_cast<uint32_t>(pending_.front()),
                           TxStage::kRaftReplicate,
                           static_cast<uint16_t>(leader));
    }
    outstanding_.insert(pending_.front());
    pending_.pop();
  }
}

void RaftCluster::Send(int from, int to, RaftMessage msg) {
  (void)from;
  if (nodes_[static_cast<size_t>(to)]->stopped()) return;
  ++messages_sent_;
  if (metrics_) metrics_->counter("raft.messages_total").Increment();
  double delay =
      options_.network_delay + rng_.NextDouble() * options_.network_jitter;
  sim_->ScheduleAfter(delay, [this, to, msg = std::move(msg)]() {
    nodes_[static_cast<size_t>(to)]->Receive(msg);
  });
}

void RaftCluster::OnNodeCommit(const RaftNode& node) {
  // Deliver newly committed payloads exactly once, in log order. Committed
  // prefixes are identical on all nodes (Raft log-matching), so reading
  // from whichever node advanced first is safe.
  while (applied_index_ < node.commit_index()) {
    ++applied_index_;
    uint64_t payload = node.log().At(applied_index_).payload;
    // Skip leader no-ops, and dedupe re-proposals: when a crashed
    // leader's entry survives on a quorum after all *and* was re-proposed
    // to the new leader, the payload appears at two log indices — only
    // the first delivers.
    if (payload == kRaftNoOpPayload) continue;
    if (outstanding_.erase(payload) == 0) continue;
    if (metrics_) metrics_->counter("raft.commits_total").Increment();
    // Before on_commit_: block delivery runs synchronously inside the
    // commit callback and reads the recorder's last-committed payload.
    if (txtrace_) {
      txtrace_->BlockEvent(static_cast<uint32_t>(payload),
                           TxStage::kRaftCommit,
                           static_cast<uint16_t>(node.id()));
    }
    if (on_commit_) on_commit_(payload);
  }
}

void RaftCluster::OnLeaderElected(int leader_id) {
  if (metrics_) metrics_->counter("raft.elections_total").Increment();
  // A crashed leader can take appended-but-unreplicated entries down with
  // it. Re-propose every outstanding payload missing from the new
  // leader's log, ahead of newer buffered proposals so delivery order
  // matches proposal order; OnNodeCommit dedupes if the original entry
  // resurfaces.
  if (!outstanding_.empty()) {
    const RaftLog& log = nodes_[static_cast<size_t>(leader_id)]->log();
    std::set<uint64_t> in_log;
    for (uint64_t i = 1; i <= log.LastIndex(); ++i) {
      in_log.insert(log.At(i).payload);
    }
    std::queue<uint64_t> requeue;
    for (uint64_t payload : outstanding_) {
      if (in_log.count(payload) == 0) requeue.push(payload);
    }
    if (!requeue.empty()) {
      while (!pending_.empty()) {
        requeue.push(pending_.front());
        pending_.pop();
      }
      pending_ = std::move(requeue);
    }
  }
  if (!pending_.empty()) FlushPending();
}

void RaftCluster::StopNode(int id) { nodes_[static_cast<size_t>(id)]->Stop(); }

void RaftCluster::RestartNode(int id) {
  nodes_[static_cast<size_t>(id)]->Restart();
}

int RaftCluster::LeaderId() const {
  // The acting leader is the live leader with the highest term.
  int leader = -1;
  uint64_t best_term = 0;
  for (const auto& n : nodes_) {
    if (!n->stopped() && n->role() == RaftNode::Role::kLeader &&
        n->current_term() >= best_term) {
      leader = n->id();
      best_term = n->current_term();
    }
  }
  return leader;
}

}  // namespace blockoptr
