#ifndef BLOCKOPTR_RAFT_RAFT_CLUSTER_H_
#define BLOCKOPTR_RAFT_RAFT_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "common/rng.h"
#include "raft/raft_node.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "telemetry/txtrace.h"

namespace blockoptr {

/// A cluster of Raft nodes connected by a simulated network with
/// configurable per-message delay and jitter. The ordering service uses a
/// cluster to replicate cut blocks: `Propose(block_id)` enqueues the block
/// for consensus and `on_commit` fires exactly once per payload, in log
/// order, once a majority has replicated it.
class RaftCluster {
 public:
  struct Options {
    int num_nodes = 3;
    double network_delay = 0.004;
    double network_jitter = 0.002;
    double election_timeout_min = 0.15;
    double election_timeout_max = 0.30;
    double heartbeat_interval = 0.05;
    uint64_t seed = 7;
  };

  /// `sim` must outlive the cluster.
  RaftCluster(Simulator* sim, Options options);

  /// Callback fired in log order, exactly once per committed payload.
  void set_on_commit(std::function<void(uint64_t payload)> cb) {
    on_commit_ = std::move(cb);
  }

  /// Arms all nodes' timers. Call before running the simulator.
  void Start();

  /// Submits a payload for replication. If no leader is currently known
  /// the proposal is buffered and retried as leadership emerges, so the
  /// caller can fire-and-forget. Appending to a leader's log is not
  /// commitment: payloads stay tracked until delivered, and any payload a
  /// crashed leader took down with it is re-proposed to the next leader —
  /// so `on_commit` eventually fires for every proposal as long as a
  /// majority keeps running. Payloads must be nonzero (kRaftNoOpPayload
  /// is reserved) and unique.
  void Propose(uint64_t payload);

  /// Transport used by nodes; delivers with simulated delay. Messages to
  /// or from stopped nodes are dropped.
  void Send(int from, int to, RaftMessage msg);

  /// Called by a node when its commit index advances; the cluster fires
  /// `on_commit` for newly committed entries (cluster-wide, exactly once).
  void OnNodeCommit(const RaftNode& node);

  /// Called by a node on becoming leader (flushes buffered proposals).
  void OnLeaderElected(int leader_id);

  /// Crash-stop / restart a node (for failover tests).
  void StopNode(int id);
  void RestartNode(int id);

  /// Current leader id, or -1 when unknown.
  int LeaderId() const;

  RaftNode& node(int id) { return *nodes_[static_cast<size_t>(id)]; }
  const RaftNode& node(int id) const { return *nodes_[static_cast<size_t>(id)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  uint64_t messages_sent() const { return messages_sent_; }

  /// Attaches consensus metrics (`raft.*`); nullptr disables.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Attaches the flight recorder (block-scoped kRaft* events, chained on
  /// the payload id); nullptr disables.
  void set_txtrace(TxTraceRecorder* txtrace) { txtrace_ = txtrace; }

 private:
  void FlushPending();

  Simulator* sim_;
  Options options_;
  Rng rng_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  std::function<void(uint64_t)> on_commit_;
  uint64_t applied_index_ = 0;  // cluster-wide highest log index delivered
  std::queue<uint64_t> pending_;
  /// Payloads appended to some leader's log but not yet delivered.
  /// Iterates in proposal order (payload ids are monotonic), which keeps
  /// re-proposals after a leader crash in their original order.
  std::set<uint64_t> outstanding_;
  uint64_t messages_sent_ = 0;
  MetricsRegistry* metrics_ = nullptr;  // optional, not owned
  TxTraceRecorder* txtrace_ = nullptr;  // optional, not owned
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_RAFT_RAFT_CLUSTER_H_
