#ifndef BLOCKOPTR_REORDER_CONFLICT_GRAPH_H_
#define BLOCKOPTR_REORDER_CONFLICT_GRAPH_H_

#include <cstddef>
#include <vector>

#include "ledger/rwset.h"

namespace blockoptr {

/// The intra-batch transaction conflict graph used by the reordering
/// schedulers (Fabric++ [67], FabricSharp [65]).
///
/// There is an edge i -> j when transaction i *writes* a key that
/// transaction j *reads* (including range-query results). Under Fabric's
/// serial in-block validation, if i precedes j in the block, j's read is
/// stale and j aborts; placing j before i saves it. A cycle therefore
/// means not every transaction can be saved — some must be aborted.
class ConflictGraph {
 public:
  explicit ConflictGraph(const std::vector<const ReadWriteSet*>& rwsets);

  size_t size() const { return adj_.size(); }

  /// Successors of i: transactions whose reads are invalidated by i.
  const std::vector<int>& InvalidatedBy(int i) const {
    return adj_[static_cast<size_t>(i)];
  }

  /// Strongly connected components (Tarjan), in reverse topological order.
  std::vector<std::vector<int>> StronglyConnectedComponents() const;

  /// Greedily removes transactions until the graph restricted to the
  /// survivors is acyclic: within every non-trivial SCC, the transaction
  /// with the highest conflict degree is dropped first (Fabric++'s
  /// cycle-elimination heuristic). Returns the aborted indices.
  std::vector<int> BreakCycles();

  /// Topological order of the *precedence* DAG over `alive` transactions:
  /// for every conflict edge i -> j (i invalidates j), j is placed before
  /// i. Must be called after cycles are broken. Ties follow the original
  /// arrival order (stable). Returns the new order of alive indices.
  std::vector<int> SerializableOrder(const std::vector<bool>& alive) const;

 private:
  std::vector<std::vector<int>> adj_;
  std::vector<bool> removed_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_REORDER_CONFLICT_GRAPH_H_
