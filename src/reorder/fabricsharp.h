#ifndef BLOCKOPTR_REORDER_FABRICSHARP_H_
#define BLOCKOPTR_REORDER_FABRICSHARP_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fabric/orderer.h"
#include "statedb/versioned_store.h"

namespace blockoptr {

/// FabricSharp-style OCC reordering (Ruan et al., SIGMOD'20 [65]): the
/// ordering service keeps a *shadow* of the versions its already-ordered
/// blocks will produce, early-aborts transactions whose reads are provably
/// stale against that shadow (they would fail MVCC validation anyway), and
/// serializes the survivors within the block like Fabric++.
///
/// The shadow assumes every surviving transaction commits; transactions
/// that later fail endorsement-policy validation leave the shadow ahead of
/// reality, causing over-aborts — the mechanism behind the paper's note
/// that FabricSharp interacts badly with endorsement failures (§6.4).
class FabricSharpReorderer : public BlockReorderer {
 public:
  /// `first_block_num` must match the number the network will assign to
  /// the first cut block (1: right after the genesis block).
  explicit FabricSharpReorderer(uint64_t first_block_num = 1)
      : next_block_num_(first_block_num) {}

  std::string name() const override { return "fabricsharp"; }

  void ProcessBatch(std::vector<Transaction>& batch) override;

  /// The shadow bookkeeping plus graph work costs more per transaction
  /// than Fabric++'s pure intra-block pass.
  double ExtraBlockCost(size_t batch_size) const override {
    return 0.015 + 0.0003 * static_cast<double>(batch_size);
  }

  uint64_t cross_block_aborts() const { return cross_block_aborts_; }
  uint64_t intra_block_aborts() const { return intra_block_aborts_; }

 private:
  bool ReadsFreshAgainstShadow(const ReadWriteSet& rwset) const;

  // key -> version it will hold once pending blocks commit; nullopt means
  // the key will be deleted.
  std::map<std::string, std::optional<Version>> shadow_;
  uint64_t next_block_num_;
  uint64_t cross_block_aborts_ = 0;
  uint64_t intra_block_aborts_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_REORDER_FABRICSHARP_H_
