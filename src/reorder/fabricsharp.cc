#include "reorder/fabricsharp.h"

#include "reorder/conflict_graph.h"

namespace blockoptr {

bool FabricSharpReorderer::ReadsFreshAgainstShadow(
    const ReadWriteSet& rwset) const {
  auto check = [&](const ReadItem& r) {
    auto it = shadow_.find(r.key);
    if (it == shadow_.end()) return true;  // untouched by ordered blocks
    if (!it->second.has_value()) {
      // Key deleted by an ordered transaction; a read of "absent" is fine.
      return !r.version.has_value();
    }
    return r.version.has_value() && *r.version == *it->second;
  };
  for (const auto& r : rwset.reads) {
    if (!check(r)) return false;
  }
  for (const auto& rq : rwset.range_queries) {
    for (const auto& r : rq.results) {
      if (!check(r)) return false;
    }
    // A write into the queried range by an ordered tx that the endorser
    // did not see is a phantom; detect inserts via shadow keys in range.
    for (const auto& [key, ver] : shadow_) {
      if (key >= rq.start_key && (rq.end_key.empty() || key < rq.end_key)) {
        bool seen = false;
        for (const auto& r : rq.results) {
          if (r.key == key) {
            seen = true;
            break;
          }
        }
        if (!seen && ver.has_value()) return false;  // phantom insert
      }
    }
  }
  return true;
}

void FabricSharpReorderer::ProcessBatch(std::vector<Transaction>& batch) {
  const uint64_t block_num = next_block_num_++;
  if (batch.empty()) return;

  // Pass 1: abort transactions already doomed by earlier ordered blocks.
  std::vector<bool> doomed(batch.size(), false);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!ReadsFreshAgainstShadow(batch[i].rwset)) {
      doomed[i] = true;
      batch[i].pre_aborted = true;
      batch[i].status = TxStatus::kMvccReadConflict;
      ++cross_block_aborts_;
    }
  }

  // Pass 2: serialize the survivors within the block (conflict graph over
  // the survivors only).
  std::vector<const ReadWriteSet*> rwsets;
  std::vector<size_t> survivor_index;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!doomed[i]) {
      rwsets.push_back(&batch[i].rwset);
      survivor_index.push_back(i);
    }
  }

  std::vector<Transaction> out;
  out.reserve(batch.size());
  if (!rwsets.empty()) {
    ConflictGraph graph(rwsets);
    std::vector<int> aborted = graph.BreakCycles();
    std::vector<bool> alive(rwsets.size(), true);
    for (int a : aborted) {
      size_t orig = survivor_index[static_cast<size_t>(a)];
      alive[static_cast<size_t>(a)] = false;
      batch[orig].pre_aborted = true;
      batch[orig].status = TxStatus::kMvccReadConflict;
      ++intra_block_aborts_;
    }
    std::vector<int> order = graph.SerializableOrder(alive);
    for (int i : order) {
      out.push_back(std::move(batch[survivor_index[static_cast<size_t>(i)]]));
    }
  }

  // Update the shadow with the survivors' writes at their final positions.
  for (size_t pos = 0; pos < out.size(); ++pos) {
    for (const auto& w : out[pos].rwset.writes) {
      if (w.is_delete) {
        shadow_[w.key] = std::nullopt;
      } else {
        shadow_[w.key] = Version{block_num, static_cast<uint32_t>(pos)};
      }
    }
  }

  // Aborted transactions are appended (recorded invalid in the block).
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].pre_aborted) out.push_back(std::move(batch[i]));
  }
  batch = std::move(out);
}

}  // namespace blockoptr
