#include "reorder/conflict_graph.h"

#include <algorithm>
#include <utility>

#include "common/interner.h"

namespace blockoptr {

ConflictGraph::ConflictGraph(const std::vector<const ReadWriteSet*>& rwsets) {
  const size_t n = rwsets.size();
  adj_.assign(n, {});
  removed_.assign(n, false);

  // Readers and writers as two flat sorted (key, tx) arrays over the
  // cached interned-ID views, intersected with one sequential co-walk:
  // no string-keyed map, no per-key vectors, no per-writer binary
  // searches. A first co-walk pass counts each writer's matches so every
  // adjacency list is allocated exactly once. The adjacency result is
  // identical to the old string-keyed index — it only depends on which
  // key *sets* intersect, and each adjacency list is canonicalized by
  // the final sort + unique.
  size_t total_reads = 0;
  size_t total_writes = 0;
  for (size_t j = 0; j < n; ++j) {
    total_reads += rwsets[j]->ReadKeyIds().size();
    total_writes += rwsets[j]->WriteKeyIds().size();
  }
  std::vector<std::pair<KeyId, int>> readers;
  std::vector<std::pair<KeyId, int>> writers;
  readers.reserve(total_reads);
  writers.reserve(total_writes);
  for (size_t j = 0; j < n; ++j) {
    for (KeyId key : rwsets[j]->ReadKeyIds()) {
      readers.emplace_back(key, static_cast<int>(j));
    }
    for (KeyId key : rwsets[j]->WriteKeyIds()) {
      writers.emplace_back(key, static_cast<int>(j));
    }
  }
  std::sort(readers.begin(), readers.end());
  std::sort(writers.begin(), writers.end());

  // Both passes walk the same per-key (writer run × reader run) blocks.
  auto for_each_conflict_block = [&](auto&& block) {
    size_t r = 0;
    size_t w = 0;
    while (r < readers.size() && w < writers.size()) {
      if (readers[r].first < writers[w].first) {
        ++r;
      } else if (writers[w].first < readers[r].first) {
        ++w;
      } else {
        const KeyId key = readers[r].first;
        size_t r_end = r;
        while (r_end < readers.size() && readers[r_end].first == key) ++r_end;
        size_t w_end = w;
        while (w_end < writers.size() && writers[w_end].first == key) ++w_end;
        block(r, r_end, w, w_end);
        r = r_end;
        w = w_end;
      }
    }
  };

  std::vector<uint32_t> match_count(n, 0);
  for_each_conflict_block([&](size_t r0, size_t r1, size_t w0, size_t w1) {
    const uint32_t run = static_cast<uint32_t>(r1 - r0);
    for (size_t w = w0; w < w1; ++w) {
      match_count[static_cast<size_t>(writers[w].second)] += run;
    }
  });
  for (size_t i = 0; i < n; ++i) {
    adj_[i].reserve(match_count[i]);
  }
  for_each_conflict_block([&](size_t r0, size_t r1, size_t w0, size_t w1) {
    for (size_t w = w0; w < w1; ++w) {
      const int i = writers[w].second;
      for (size_t r = r0; r < r1; ++r) {
        const int j = readers[r].second;
        if (j != i) adj_[static_cast<size_t>(i)].push_back(j);
      }
    }
  });
  for (size_t i = 0; i < n; ++i) {
    std::sort(adj_[i].begin(), adj_[i].end());
    adj_[i].erase(std::unique(adj_[i].begin(), adj_[i].end()), adj_[i].end());
  }
}

std::vector<std::vector<int>> ConflictGraph::StronglyConnectedComponents()
    const {
  // Iterative Tarjan.
  const int n = static_cast<int>(adj_.size());
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> lowlink(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int next_index = 0;

  struct Frame {
    int v;
    size_t child;
  };
  for (int start = 0; start < n; ++start) {
    if (index[static_cast<size_t>(start)] != -1 ||
        removed_[static_cast<size_t>(start)]) {
      continue;
    }
    std::vector<Frame> frames{{start, 0}};
    index[static_cast<size_t>(start)] = lowlink[static_cast<size_t>(start)] =
        next_index++;
    stack.push_back(start);
    on_stack[static_cast<size_t>(start)] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& succ = adj_[static_cast<size_t>(f.v)];
      bool descended = false;
      while (f.child < succ.size()) {
        int w = succ[f.child++];
        if (removed_[static_cast<size_t>(w)]) continue;
        if (index[static_cast<size_t>(w)] == -1) {
          index[static_cast<size_t>(w)] = lowlink[static_cast<size_t>(w)] =
              next_index++;
          stack.push_back(w);
          on_stack[static_cast<size_t>(w)] = true;
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[static_cast<size_t>(w)]) {
          lowlink[static_cast<size_t>(f.v)] =
              std::min(lowlink[static_cast<size_t>(f.v)],
                       index[static_cast<size_t>(w)]);
        }
      }
      if (descended) continue;
      // Done with f.v.
      if (lowlink[static_cast<size_t>(f.v)] ==
          index[static_cast<size_t>(f.v)]) {
        std::vector<int> scc;
        for (;;) {
          int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<size_t>(w)] = false;
          scc.push_back(w);
          if (w == f.v) break;
        }
        sccs.push_back(std::move(scc));
      }
      int v = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        int parent = frames.back().v;
        lowlink[static_cast<size_t>(parent)] =
            std::min(lowlink[static_cast<size_t>(parent)],
                     lowlink[static_cast<size_t>(v)]);
      }
    }
  }
  return sccs;
}

std::vector<int> ConflictGraph::BreakCycles() {
  std::vector<int> aborted;
  for (;;) {
    auto sccs = StronglyConnectedComponents();
    // Also handle self-loops (a tx cannot invalidate itself in Fabric —
    // reads are taken before writes — so adj_ never has self-edges; only
    // multi-node SCCs matter).
    std::vector<int>* worst_scc = nullptr;
    for (auto& scc : sccs) {
      if (scc.size() > 1) {
        worst_scc = &scc;
        break;
      }
    }
    if (worst_scc == nullptr) break;
    // Drop the member with the highest degree inside the SCC.
    int victim = (*worst_scc)[0];
    size_t best_degree = 0;
    for (int v : *worst_scc) {
      size_t degree = 0;
      for (int w : adj_[static_cast<size_t>(v)]) {
        if (!removed_[static_cast<size_t>(w)]) ++degree;
      }
      for (int u : *worst_scc) {
        if (u == v || removed_[static_cast<size_t>(u)]) continue;
        if (std::binary_search(adj_[static_cast<size_t>(u)].begin(),
                               adj_[static_cast<size_t>(u)].end(), v)) {
          ++degree;
        }
      }
      if (degree > best_degree) {
        best_degree = degree;
        victim = v;
      }
    }
    removed_[static_cast<size_t>(victim)] = true;
    aborted.push_back(victim);
  }
  std::sort(aborted.begin(), aborted.end());
  return aborted;
}

std::vector<int> ConflictGraph::SerializableOrder(
    const std::vector<bool>& alive) const {
  const int n = static_cast<int>(adj_.size());
  // Precedence edge j -> i for every conflict edge i -> j (the reader must
  // come first). Kahn's algorithm with original-order tie-breaking.
  std::vector<std::vector<int>> succ(static_cast<size_t>(n));
  std::vector<int> indegree(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    if (!alive[static_cast<size_t>(i)]) continue;
    for (int j : adj_[static_cast<size_t>(i)]) {
      if (!alive[static_cast<size_t>(j)]) continue;
      succ[static_cast<size_t>(j)].push_back(i);
      ++indegree[static_cast<size_t>(i)];
    }
  }
  // Min-heap over available nodes keyed by original index keeps ties in
  // arrival order.
  std::vector<int> available;
  for (int i = 0; i < n; ++i) {
    if (alive[static_cast<size_t>(i)] && indegree[static_cast<size_t>(i)] == 0) {
      available.push_back(i);
    }
  }
  std::make_heap(available.begin(), available.end(), std::greater<>());
  std::vector<int> order;
  while (!available.empty()) {
    std::pop_heap(available.begin(), available.end(), std::greater<>());
    int v = available.back();
    available.pop_back();
    order.push_back(v);
    for (int w : succ[static_cast<size_t>(v)]) {
      if (--indegree[static_cast<size_t>(w)] == 0) {
        available.push_back(w);
        std::push_heap(available.begin(), available.end(), std::greater<>());
      }
    }
  }
  return order;
}

}  // namespace blockoptr
