#include "reorder/conflict_graph.h"

#include <algorithm>
#include <map>
#include <string>

namespace blockoptr {

ConflictGraph::ConflictGraph(const std::vector<const ReadWriteSet*>& rwsets) {
  const size_t n = rwsets.size();
  adj_.assign(n, {});
  removed_.assign(n, false);

  // Index: key -> transactions reading it / writing it.
  std::map<std::string, std::vector<int>> readers;
  for (size_t j = 0; j < n; ++j) {
    for (const auto& key : rwsets[j]->ReadKeys()) {
      readers[key].push_back(static_cast<int>(j));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (const auto& w : rwsets[i]->writes) {
      auto it = readers.find(w.key);
      if (it == readers.end()) continue;
      for (int j : it->second) {
        if (j != static_cast<int>(i)) {
          adj_[i].push_back(j);
        }
      }
    }
    std::sort(adj_[i].begin(), adj_[i].end());
    adj_[i].erase(std::unique(adj_[i].begin(), adj_[i].end()), adj_[i].end());
  }
}

std::vector<std::vector<int>> ConflictGraph::StronglyConnectedComponents()
    const {
  // Iterative Tarjan.
  const int n = static_cast<int>(adj_.size());
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> lowlink(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int next_index = 0;

  struct Frame {
    int v;
    size_t child;
  };
  for (int start = 0; start < n; ++start) {
    if (index[static_cast<size_t>(start)] != -1 ||
        removed_[static_cast<size_t>(start)]) {
      continue;
    }
    std::vector<Frame> frames{{start, 0}};
    index[static_cast<size_t>(start)] = lowlink[static_cast<size_t>(start)] =
        next_index++;
    stack.push_back(start);
    on_stack[static_cast<size_t>(start)] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& succ = adj_[static_cast<size_t>(f.v)];
      bool descended = false;
      while (f.child < succ.size()) {
        int w = succ[f.child++];
        if (removed_[static_cast<size_t>(w)]) continue;
        if (index[static_cast<size_t>(w)] == -1) {
          index[static_cast<size_t>(w)] = lowlink[static_cast<size_t>(w)] =
              next_index++;
          stack.push_back(w);
          on_stack[static_cast<size_t>(w)] = true;
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[static_cast<size_t>(w)]) {
          lowlink[static_cast<size_t>(f.v)] =
              std::min(lowlink[static_cast<size_t>(f.v)],
                       index[static_cast<size_t>(w)]);
        }
      }
      if (descended) continue;
      // Done with f.v.
      if (lowlink[static_cast<size_t>(f.v)] ==
          index[static_cast<size_t>(f.v)]) {
        std::vector<int> scc;
        for (;;) {
          int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<size_t>(w)] = false;
          scc.push_back(w);
          if (w == f.v) break;
        }
        sccs.push_back(std::move(scc));
      }
      int v = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        int parent = frames.back().v;
        lowlink[static_cast<size_t>(parent)] =
            std::min(lowlink[static_cast<size_t>(parent)],
                     lowlink[static_cast<size_t>(v)]);
      }
    }
  }
  return sccs;
}

std::vector<int> ConflictGraph::BreakCycles() {
  std::vector<int> aborted;
  for (;;) {
    auto sccs = StronglyConnectedComponents();
    // Also handle self-loops (a tx cannot invalidate itself in Fabric —
    // reads are taken before writes — so adj_ never has self-edges; only
    // multi-node SCCs matter).
    std::vector<int>* worst_scc = nullptr;
    for (auto& scc : sccs) {
      if (scc.size() > 1) {
        worst_scc = &scc;
        break;
      }
    }
    if (worst_scc == nullptr) break;
    // Drop the member with the highest degree inside the SCC.
    int victim = (*worst_scc)[0];
    size_t best_degree = 0;
    for (int v : *worst_scc) {
      size_t degree = 0;
      for (int w : adj_[static_cast<size_t>(v)]) {
        if (!removed_[static_cast<size_t>(w)]) ++degree;
      }
      for (int u : *worst_scc) {
        if (u == v || removed_[static_cast<size_t>(u)]) continue;
        if (std::binary_search(adj_[static_cast<size_t>(u)].begin(),
                               adj_[static_cast<size_t>(u)].end(), v)) {
          ++degree;
        }
      }
      if (degree > best_degree) {
        best_degree = degree;
        victim = v;
      }
    }
    removed_[static_cast<size_t>(victim)] = true;
    aborted.push_back(victim);
  }
  std::sort(aborted.begin(), aborted.end());
  return aborted;
}

std::vector<int> ConflictGraph::SerializableOrder(
    const std::vector<bool>& alive) const {
  const int n = static_cast<int>(adj_.size());
  // Precedence edge j -> i for every conflict edge i -> j (the reader must
  // come first). Kahn's algorithm with original-order tie-breaking.
  std::vector<std::vector<int>> succ(static_cast<size_t>(n));
  std::vector<int> indegree(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    if (!alive[static_cast<size_t>(i)]) continue;
    for (int j : adj_[static_cast<size_t>(i)]) {
      if (!alive[static_cast<size_t>(j)]) continue;
      succ[static_cast<size_t>(j)].push_back(i);
      ++indegree[static_cast<size_t>(i)];
    }
  }
  // Min-heap over available nodes keyed by original index keeps ties in
  // arrival order.
  std::vector<int> available;
  for (int i = 0; i < n; ++i) {
    if (alive[static_cast<size_t>(i)] && indegree[static_cast<size_t>(i)] == 0) {
      available.push_back(i);
    }
  }
  std::make_heap(available.begin(), available.end(), std::greater<>());
  std::vector<int> order;
  while (!available.empty()) {
    std::pop_heap(available.begin(), available.end(), std::greater<>());
    int v = available.back();
    available.pop_back();
    order.push_back(v);
    for (int w : succ[static_cast<size_t>(v)]) {
      if (--indegree[static_cast<size_t>(w)] == 0) {
        available.push_back(w);
        std::push_heap(available.begin(), available.end(), std::greater<>());
      }
    }
  }
  return order;
}

}  // namespace blockoptr
