#include "reorder/fabricpp.h"

#include "reorder/conflict_graph.h"

namespace blockoptr {

void FabricPPReorderer::ProcessBatch(std::vector<Transaction>& batch) {
  if (batch.size() < 2) return;

  std::vector<const ReadWriteSet*> rwsets;
  rwsets.reserve(batch.size());
  for (const auto& tx : batch) rwsets.push_back(&tx.rwset);

  ConflictGraph graph(rwsets);
  std::vector<int> aborted = graph.BreakCycles();

  std::vector<bool> alive(batch.size(), true);
  for (int a : aborted) {
    alive[static_cast<size_t>(a)] = false;
    batch[static_cast<size_t>(a)].pre_aborted = true;
    batch[static_cast<size_t>(a)].status = TxStatus::kMvccReadConflict;
    ++total_early_aborts_;
  }

  std::vector<int> order = graph.SerializableOrder(alive);

  std::vector<Transaction> out;
  out.reserve(batch.size());
  for (int i : order) out.push_back(std::move(batch[static_cast<size_t>(i)]));
  // Aborted transactions are still recorded in the block (flagged
  // invalid), appended at the end.
  for (int a : aborted) out.push_back(std::move(batch[static_cast<size_t>(a)]));
  batch = std::move(out);
}

}  // namespace blockoptr
