#ifndef BLOCKOPTR_REORDER_FABRICPP_H_
#define BLOCKOPTR_REORDER_FABRICPP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/orderer.h"

namespace blockoptr {

/// Fabric++-style transaction reordering (Sharma et al., SIGMOD'19 [67]):
/// within each batch, build the conflict graph, abort transactions
/// involved in dependency cycles (early abort), and emit the survivors in
/// a serializable order (every reader before the writer that would
/// invalidate it). Eliminates *intra-block* MVCC conflicts; inter-block
/// staleness still fails at validation — exactly the gap the paper's
/// proximity-correlation metric (corP vs block size) diagnoses.
class FabricPPReorderer : public BlockReorderer {
 public:
  std::string name() const override { return "fabric++"; }

  void ProcessBatch(std::vector<Transaction>& batch) override;

  /// Dependency-graph construction and cycle elimination are roughly
  /// linear in batch size with a per-transaction constant.
  double ExtraBlockCost(size_t batch_size) const override {
    return 0.01 + 0.0002 * static_cast<double>(batch_size);
  }

  uint64_t total_early_aborts() const { return total_early_aborts_; }

 private:
  uint64_t total_early_aborts_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_REORDER_FABRICPP_H_
