#ifndef BLOCKOPTR_DRIVER_ROBUSTNESS_H_
#define BLOCKOPTR_DRIVER_ROBUSTNESS_H_

// Recommendation-robustness harness: runs one workload healthy and under a
// set of fault scenarios, then reports — per recommendation type — whether
// BlockOptR's advice holds, appears (flips on), or withdraws (flips off)
// under each fault. Turns "does the advice survive faults?" into a
// measured, regression-tested artifact (the fault_robustness golden).

#include <string>
#include <string_view>
#include <vector>

#include "blockopt/recommend/recommender.h"
#include "common/result.h"
#include "driver/experiment.h"
#include "driver/faults.h"
#include "driver/report.h"

namespace blockoptr {

/// One named fault scenario to evaluate advice under.
struct FaultScenario {
  std::string name;
  FaultPlan plan;
};

/// The standard scenario library, scaled to a run of roughly `horizon_s`
/// virtual seconds of scheduled arrivals: a mid-run Raft leader crash, a
/// full endorser outage from mid-run on, a straggler endorser, and a 4x
/// burst window. Every scenario keeps the run completable — faults
/// degrade, they never wedge.
std::vector<FaultScenario> StandardFaultScenarios(double horizon_s);

/// Per-recommendation-type verdict of healthy-vs-faulted.
enum class RobustnessVerdict {
  kAbsent,     // recommended in neither run
  kHold,       // recommended in both
  kAppeared,   // only under the fault (advice flips on)
  kWithdrawn,  // only when healthy (advice flips off)
};

std::string_view RobustnessVerdictName(RobustnessVerdict v);

/// Healthy-vs-faulted comparison for one scenario.
struct RobustnessResult {
  std::string scenario;
  PerformanceReport healthy;
  PerformanceReport faulted;
  std::vector<Recommendation> healthy_recs;
  std::vector<Recommendation> faulted_recs;
  std::vector<FaultWindow> fault_windows;
  /// Indexed by RecommendationType (all nine, catalog order).
  std::vector<RobustnessVerdict> verdicts;
};

/// Runs `base` healthy plus once per scenario (via the sweep engine, so
/// `jobs` parallelizes the runs under the usual determinism contract) and
/// diffs the recommendation sets. `base.faults` must be empty — it is the
/// healthy reference.
Result<std::vector<RobustnessResult>> EvaluateRobustness(
    const ExperimentConfig& base, const std::vector<FaultScenario>& scenarios,
    const RecommenderOptions& options, int jobs);

/// The hold/appear/withdraw matrix as a fixed-width text table — one row
/// per recommendation type, one column per scenario, plus a
/// success-rate/throughput footer per run. Deterministic, suitable for
/// golden snapshots.
std::string FormatRobustnessMatrix(const std::string& workload,
                                   const std::vector<RobustnessResult>& results);

}  // namespace blockoptr

#endif  // BLOCKOPTR_DRIVER_ROBUSTNESS_H_
