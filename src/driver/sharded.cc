#include "driver/sharded.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "driver/channel_run.h"
#include "sim/shard_runner.h"

namespace blockoptr {

namespace {

/// Hard cap on the client-capacity share other channels may claim, so a
/// saturated sibling slows a channel down (up to 4x) instead of stalling
/// it outright.
constexpr double kMaxForeignShare = 0.75;

/// The per-channel config: everything from the experiment except the
/// schedule (each channel gets its partition) and the sharding knobs
/// (each channel is a plain single-channel run from its own view).
/// Copies field-by-field instead of whole-struct so a million-request
/// schedule is never duplicated per channel — keep in sync with
/// ExperimentConfig when adding fields.
ExperimentConfig ChannelTemplate(const ExperimentConfig& config) {
  ExperimentConfig t;
  t.network = config.network;
  t.chaincodes = config.chaincodes;
  t.seeds = config.seeds;
  t.client_manager = config.client_manager;
  t.orderer_scheduler = config.orderer_scheduler;
  t.faults = config.faults;
  t.max_sim_time = config.max_sim_time;
  t.enable_telemetry = config.enable_telemetry;
  t.telemetry_options = config.telemetry_options;
  t.stream = config.stream;
  return t;
}

}  // namespace

uint64_t ChannelSeed(uint64_t base_seed, int channel) {
  // splitmix64 of the base seed advanced by the channel index: disjoint,
  // well-mixed per-channel streams from one experiment seed.
  uint64_t z = base_seed +
               0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(channel) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<Schedule> PartitionSchedule(const Schedule& schedule,
                                        int channels,
                                        const std::vector<double>& weights) {
  if (channels <= 1) return {schedule};
  std::vector<double> w(static_cast<size_t>(channels), 1.0);
  for (size_t i = 0; i < w.size() && i < weights.size(); ++i) {
    if (weights[i] > 0) w[i] = weights[i];
  }
  double total = 0;
  for (double x : w) total += x;

  // Smooth weighted round-robin: each pick goes to the channel with the
  // highest accumulated credit, which then pays the full weight total.
  // Interleaves channels as evenly as their weights allow and depends
  // only on (request index, weights) — never on request content.
  std::vector<Schedule> parts(static_cast<size_t>(channels));
  std::vector<double> credit(static_cast<size_t>(channels), 0.0);
  for (size_t i = 0; i < parts.size(); ++i) {
    parts[i].reserve(schedule.size() / parts.size() + 1);
  }
  for (const auto& req : schedule) {
    size_t best = 0;
    for (size_t c = 0; c < credit.size(); ++c) {
      credit[c] += w[c];
      if (credit[c] > credit[best]) best = c;
    }
    credit[best] -= total;
    parts[best].push_back(req);
  }
  return parts;
}

double MinCouplingLatency(const LatencyModel& latency) {
  // The shortest causal path from "another channel occupies a shared
  // client" to an observable effect here: the proposal must be created on
  // the client, travel to an endorser, and start executing. Coupling is
  // only re-evaluated at epoch boundaries, so any epoch at or below this
  // is conservative (no coupling event can cross an epoch unseen).
  double epoch = latency.client_proposal_s + latency.network_delay_s +
                 latency.endorse_exec_s;
  return std::max(epoch, 1e-3);
}

Result<ExperimentOutput> RunShardedExperiment(const ExperimentConfig& config) {
  const int channels = config.channels;
  if (channels <= 1) {
    return Status::InvalidArgument(
        "RunShardedExperiment requires channels > 1");
  }

  std::vector<Schedule> parts =
      PartitionSchedule(config.schedule, channels, config.channel_weights);

  const ExperimentConfig tmpl = ChannelTemplate(config);
  std::vector<std::unique_ptr<ChannelRun>> runs;
  runs.reserve(static_cast<size_t>(channels));
  for (int c = 0; c < channels; ++c) {
    ExperimentConfig cc = tmpl;
    cc.schedule = std::move(parts[static_cast<size_t>(c)]);
    cc.network.channel_index = c;
    cc.network.channel_count = channels;
    cc.network.seed = ChannelSeed(config.network.seed, c);
    auto run = ChannelRun::Create(cc);
    if (!run.ok()) return run.status();
    runs.push_back(std::move(*run));
  }

  std::vector<Shard*> shards;
  shards.reserve(runs.size());
  for (auto& run : runs) shards.push_back(run.get());

  ShardRunnerOptions options;
  options.threads = config.sim_threads;
  options.epoch_s = config.epoch_s > 0
                        ? config.epoch_s
                        : MinCouplingLatency(config.network.latency);
  options.max_time = config.max_sim_time;

  // Cross-channel coupling state: previous-boundary cumulative client
  // busy time per channel, differentiated every epoch. The shared client
  // population has `num_clients` workers, so its capacity over a window
  // is num_clients * window seconds.
  const double clients =
      static_cast<double>(runs.front()->network().num_clients());
  std::vector<double> prev_busy(runs.size(), 0.0);
  std::vector<double> delta(runs.size(), 0.0);
  double prev_epoch_end = 0.0;
  auto sync = [&](SimTime epoch_end) {
    const double window = epoch_end - prev_epoch_end;
    prev_epoch_end = epoch_end;
    if (window <= 0) return;
    double total_delta = 0;
    for (size_t c = 0; c < runs.size(); ++c) {
      double busy = runs[c]->network().client_busy_time();
      delta[c] = busy - prev_busy[c];
      prev_busy[c] = busy;
      total_delta += delta[c];
    }
    const double capacity = clients * window;
    for (size_t c = 0; c < runs.size(); ++c) {
      double foreign = (total_delta - delta[c]) / capacity;
      foreign = std::clamp(foreign, 0.0, kMaxForeignShare);
      runs[c]->network().SetClientLoadScale(1.0 / (1.0 - foreign));
    }
  };

  BLOCKOPTR_RETURN_NOT_OK(RunShards(shards, options, sync));

  // Whole-experiment view on top, full per-channel outputs below.
  ExperimentOutput out;
  out.network = config.network;
  out.network.channel_count = channels;
  out.channels.reserve(runs.size());
  for (auto& run : runs) {
    ExperimentOutput channel_out = run->Finish();
    out.report.Merge(channel_out.report);
    out.sim_end_time = std::max(out.sim_end_time, channel_out.sim_end_time);
    out.events_processed += channel_out.events_processed;
    out.queue_peak = std::max(out.queue_peak, channel_out.queue_peak);
    for (const auto& [org, count] : channel_out.endorsement_counts) {
      out.endorsement_counts[org] += count;
    }
    out.channels.push_back(std::move(channel_out));
  }
  // Fault windows are the same plan on every channel; the top level
  // carries channel 0's resolved windows as the representative set.
  out.fault_windows = out.channels.front().fault_windows;
  return out;
}

}  // namespace blockoptr
