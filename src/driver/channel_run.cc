#include "driver/channel_run.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "driver/client_manager.h"
#include "fabric/endorsement_policy.h"
#include "reorder/fabricpp.h"
#include "reorder/fabricsharp.h"

namespace blockoptr {

namespace {

Result<std::unique_ptr<BlockReorderer>> MakeScheduler(
    const std::string& name) {
  if (name.empty()) return std::unique_ptr<BlockReorderer>();
  if (name == "fabricpp") {
    return std::unique_ptr<BlockReorderer>(new FabricPPReorderer());
  }
  if (name == "fabricsharp") {
    return std::unique_ptr<BlockReorderer>(new FabricSharpReorderer());
  }
  return Status::InvalidArgument("unknown orderer scheduler '" + name + "'");
}

}  // namespace

Result<std::unique_ptr<ChannelRun>> ChannelRun::Create(
    const ExperimentConfig& config) {
  std::unique_ptr<ChannelRun> run(new ChannelRun());
  BLOCKOPTR_RETURN_NOT_OK(run->Setup(config));
  return run;
}

Status ChannelRun::Setup(const ExperimentConfig& config) {
  max_sim_time_ = config.max_sim_time;
  faults_enabled_ = config.faults.enabled();
  base_network_config_ = config.network;

  network_ = std::make_unique<FabricNetwork>(&sim_, config.network);

  for (const auto& name : config.chaincodes) {
    auto contract = ChaincodeRegistry::Global().Create(name);
    if (!contract.ok()) return contract.status();
    BLOCKOPTR_RETURN_NOT_OK(
        network_->InstallChaincode(std::move(*contract)));
  }
  for (const auto& seed : config.seeds) {
    network_->SeedState(seed.chaincode, seed.key, seed.value);
  }

  auto scheduler = MakeScheduler(config.orderer_scheduler);
  if (!scheduler.ok()) return scheduler.status();
  if (*scheduler != nullptr) network_->SetReorderer(std::move(*scheduler));

  if (config.enable_telemetry) {
    output_.telemetry =
        std::make_unique<Telemetry>(&sim_, config.telemetry_options);
    network_->set_telemetry(output_.telemetry.get());
  }

  if (config.stream.enabled) {
    output_.stream = std::make_unique<StreamEngine>(config.stream);
    StreamEngine* engine = output_.stream.get();
    network_->set_on_block_commit(
        [engine](const Block& block) { engine->OnBlockCommit(block); });
    if (config.stream.apply) {
      // The engine decides *when* (first evaluation whose active set has
      // an applicable entry); this hook decides *how* — through the same
      // config-update transactions a live operator would submit. Only the
      // two system-level recommendations have an in-band application
      // path; everything else reports false and stays advisory.
      const int num_orgs = config.network.num_orgs;
      FabricNetwork* net = network_.get();
      engine->set_apply_hook([net, num_orgs](const Recommendation& rec) {
        switch (rec.type) {
          case RecommendationType::kBlockSizeAdaptation: {
            if (rec.suggested_block_count == 0) return false;
            BlockCuttingConfig cutting;
            cutting.max_tx_count = rec.suggested_block_count;
            net->SubmitBlockCuttingUpdate(cutting);
            return true;
          }
          case RecommendationType::kEndorserRestructuring: {
            net->SubmitPolicyUpdate(
                EndorsementPolicy::Preset(4, num_orgs));
            return true;
          }
          default:
            return false;
        }
      });
    }
  }

  // Client manager: apply reordering / rate control to the workload.
  schedule_ = ClientManager::Prepare(
      config.schedule, config.client_manager,
      output_.telemetry ? &output_.telemetry->metrics() : nullptr);

  // Fault injection: arrival faults reshape the prepared schedule;
  // runtime faults (crashes, endorser degradation) become simulator
  // events when the injector arms below.
  faults_ = std::make_unique<FaultInjector>(&sim_, network_.get(),
                                            config.faults);
  if (faults_enabled_) ApplyArrivalFaults(schedule_, config.faults);

  network_->set_on_commit([this](const Transaction& tx) {
    output_.report.RecordCommit(tx);
    if (!tx.is_config) {
      ++completed_;
      last_commit_ = std::max(last_commit_, tx.commit_timestamp);
    }
  });
  network_->set_on_early_abort([this](const ClientRequest&, const Status&) {
    output_.report.RecordEarlyAbort();
    ++completed_;
  });

  // Fail fast if the schedule references a missing contract (checked
  // before anything is scheduled, so Submit below cannot fail).
  for (const auto& req : schedule_) {
    bool found =
        std::find(config.chaincodes.begin(), config.chaincodes.end(),
                  req.chaincode) != config.chaincodes.end();
    if (!found) {
      return Status::InvalidArgument("schedule references chaincode '" +
                                     req.chaincode +
                                     "' which is not installed");
    }
  }

  // The whole schedule sits in the event queue up front; pre-size the
  // engine for it. Requests are captured by reference — `schedule_`
  // outlives the run loop — so arrival events carry no per-request copy.
  sim_.Reserve(schedule_.size() + 64);
  for (const auto& req : schedule_) {
    FabricNetwork* net = network_.get();
    sim_.ScheduleAt(req.send_time,
                    [net, &req]() { (void)net->Submit(req); });
  }
  total_ = schedule_.size();

  if (faults_enabled_) faults_->Arm();
  network_->Start();
  if (output_.telemetry && output_.telemetry->sampler()) {
    // The continuous monitor: one self-re-arming tick per period. Started
    // after network setup so the first window covers real run time.
    output_.telemetry->sampler()->Start();
  }
  return Status::OK();
}

Status ChannelRun::RunToCompletion() {
  while (completed_ < total_) {
    if (!sim_.Step()) {
      return Status::Internal(
          "simulation drained before all transactions completed (" +
          std::to_string(completed_) + "/" + std::to_string(total_) + ")");
    }
    if (sim_.Now() > max_sim_time_) {
      return Status::Internal("simulation exceeded max_sim_time");
    }
  }
  return Status::OK();
}

Status ChannelRun::AdvanceUntil(SimTime epoch_end) {
  while (completed_ < total_) {
    if (!sim_.StepIfBefore(epoch_end)) {
      if (sim_.num_pending() == 0) {
        return Status::Internal(
            "simulation drained before all transactions completed (" +
            std::to_string(completed_) + "/" + std::to_string(total_) +
            ")");
      }
      return Status::OK();  // next event lies beyond this epoch
    }
    if (sim_.Now() > max_sim_time_) {
      return Status::Internal("simulation exceeded max_sim_time");
    }
  }
  return Status::OK();
}

SimTime ChannelRun::NextTime() const {
  if (sim_.num_pending() == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return sim_.NextEventTime();
}

ExperimentOutput ChannelRun::Finish() {
  output_.report.Finish(last_commit_);
  if (output_.stream) {
    // Flush the last partial window and drop the apply hook — the
    // network it captured dies with this channel, the engine does not.
    output_.stream->Finalize(sim_.Now());
  }
  if (output_.telemetry && output_.telemetry->sampler()) {
    // Snapshot whole-run station totals and detach from the network —
    // the network and simulator die with this channel, the telemetry
    // does not.
    output_.telemetry->sampler()->Finalize();
  }
  if (output_.telemetry && output_.telemetry->txtrace()) {
    // Seal the flight recorder's trailing exemplar window.
    output_.telemetry->txtrace()->Finalize(sim_.Now());
  }
  if (output_.telemetry) {
    if (output_.telemetry->options().tracing) {
      output_.report.set_stage_breakdown(
          ComputeStageBreakdown(output_.telemetry->tracer()));
      // Feed every finished span into a per-stage latency histogram, so
      // quantiles are also available through the histogram path
      // (Histogram::Quantile) — e.g. in the Prometheus exposition, where
      // raw spans do not travel.
      for (const auto& span : output_.telemetry->tracer().spans()) {
        output_.telemetry->metrics()
            .histogram("stage." + span.category + ".seconds")
            .Observe(span.duration());
      }
    }
    // Engine-level gauges: how many events the run cost and how deep the
    // queue got. Both are deterministic per config, so they are safe to
    // snapshot (the sweep determinism harness compares full snapshots).
    output_.telemetry->metrics().gauge("sim.events_processed")
        .Set(static_cast<double>(sim_.num_processed()));
    output_.telemetry->metrics().gauge("sim.queue_peak")
        .Set(static_cast<double>(sim_.queue_peak()));
  }
  faults_->FinalizeWindows(sim_.Now());
  output_.fault_windows = faults_->windows();
  output_.ledger = network_->ledger();
  output_.endorsement_counts = network_->endorsement_counts();
  output_.network = base_network_config_;
  output_.sim_end_time = sim_.Now();
  output_.events_processed = sim_.num_processed();
  output_.queue_peak = sim_.queue_peak();
  return std::move(output_);
}

}  // namespace blockoptr
