#include "driver/rate_controller.h"

#include <algorithm>

namespace blockoptr {

void RateController::CapRate(Schedule& schedule, double max_tps) {
  if (max_tps <= 0 || schedule.empty()) return;
  const double min_gap = 1.0 / max_tps;
  double prev = schedule.front().send_time;
  double prev_adjusted = prev;
  for (size_t i = 1; i < schedule.size(); ++i) {
    double gap = schedule[i].send_time - prev;
    prev = schedule[i].send_time;
    // Keep gaps that are already slower than the cap; clamp fast ones.
    double adjusted_gap = std::max(gap, min_gap);
    prev_adjusted += adjusted_gap;
    schedule[i].send_time = prev_adjusted;
  }
}

void RateController::CapRateWindowed(Schedule& schedule, double max_tps) {
  if (max_tps <= 0 || schedule.empty()) return;
  const double min_gap = 1.0 / max_tps;
  // A request may keep its own time unless it violates the min gap with
  // the (already adjusted) previous request; then it slides right.
  double horizon = schedule.front().send_time;
  for (size_t i = 1; i < schedule.size(); ++i) {
    double t = std::max(schedule[i].send_time, horizon + min_gap);
    schedule[i].send_time = t;
    horizon = t;
  }
}

}  // namespace blockoptr
