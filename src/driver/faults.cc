#include "driver/faults.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/string_util.h"
#include "fabric/network.h"

namespace blockoptr {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kMaxDiurnalAmplitude = 0.95;

struct Preset {
  std::string_view name;
  FaultEvent event;
};

const std::vector<Preset>& PresetTable() {
  static const std::vector<Preset> kTable = [] {
    std::vector<Preset> table;
    auto add = [&table](std::string_view name, FaultKind kind,
                        auto&&... setters) {
      FaultEvent e;
      e.kind = kind;
      (setters(e), ...);
      table.push_back(Preset{name, e});
    };
    add("leader-crash", FaultKind::kLeaderCrash, [](FaultEvent& e) {
      e.at = 5;
      e.duration = 10;
    });
    add("node-crash", FaultKind::kNodeCrash, [](FaultEvent& e) {
      e.at = 5;
      e.duration = 10;
      e.node = 0;
    });
    add("endorser-outage", FaultKind::kEndorserOutage, [](FaultEvent& e) {
      e.at = 5;
      e.duration = 0;
      e.org = 2;
    });
    add("endorser-slow", FaultKind::kEndorserSlow, [](FaultEvent& e) {
      e.at = 5;
      e.duration = 20;
      e.org = 2;
      e.factor = 8;
    });
    add("burst", FaultKind::kBurst, [](FaultEvent& e) {
      e.at = 5;
      e.duration = 5;
      e.factor = 4;
    });
    add("diurnal", FaultKind::kDiurnal, [](FaultEvent& e) {
      e.at = 0;
      e.factor = 0.8;
      e.period = 20;
    });
    add("hotkey-shift", FaultKind::kSkewShift, [](FaultEvent& e) {
      e.at = 5;
      e.offset = 137;
    });
    return table;
  }();
  return kTable;
}

const FaultEvent* FindPreset(std::string_view name) {
  for (const auto& preset : PresetTable()) {
    if (preset.name == name) return &preset.event;
  }
  return nullptr;
}

bool ParseNumber(std::string_view text, double* out) {
  std::string buf(text);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

Status ValidateEvent(const FaultEvent& e) {
  auto bad = [&e](const std::string& why) {
    return Status::InvalidArgument("fault '" + DescribeFault(e) + "': " + why);
  };
  if (e.at < 0) return bad("onset t must be >= 0");
  if (e.duration < 0) return bad("dur must be >= 0");
  switch (e.kind) {
    case FaultKind::kNodeCrash:
      if (e.node < 0) return bad("node must be >= 0");
      break;
    case FaultKind::kEndorserOutage:
    case FaultKind::kEndorserSlow:
      if (e.org < 1) return bad("org must be >= 1");
      if (e.kind == FaultKind::kEndorserSlow && e.factor <= 0) {
        return bad("factor must be > 0");
      }
      break;
    case FaultKind::kBurst:
      if (e.duration <= 0) return bad("burst needs dur > 0");
      if (e.factor <= 0) return bad("factor must be > 0");
      break;
    case FaultKind::kDiurnal:
      if (e.factor < 0 || e.factor > kMaxDiurnalAmplitude) {
        return bad("diurnal amplitude (factor) must be in [0, 0.95]");
      }
      if (e.period <= 0) return bad("period must be > 0");
      break;
    default:
      break;
  }
  return Status::OK();
}

/// Integral of the diurnal intensity 1 + amp*sin(2*pi*u/period) over
/// [0, s] — the cumulative expected-arrival count (relative to the base
/// rate) s seconds past the ramp onset.
double DiurnalIntegral(double s, double amp, double period) {
  double w = 2 * kPi / period;
  return s + amp / w * (1 - std::cos(w * s));
}

/// Compresses arrivals originally in [t0, t0+factor*dur) into
/// [t0, t0+dur): a factor-x send-rate burst. Later arrivals shift earlier
/// by the removed span. Monotone, so order is preserved; count trivially
/// so.
void ApplyBurst(Schedule& schedule, const FaultEvent& e) {
  double src_len = e.factor * e.duration;
  for (auto& req : schedule) {
    double x = req.send_time;
    if (x <= e.at) continue;
    if (x < e.at + src_len) {
      req.send_time = e.at + (x - e.at) / e.factor;
    } else {
      req.send_time = x - (src_len - e.duration);
    }
  }
}

/// Warps arrivals after the onset so the instantaneous rate follows
/// 1 + amp*sin(...): the warped time s solves DiurnalIntegral(s) = x
/// (bisection; the integrand is bounded in [1-amp, 1+amp], giving tight
/// deterministic brackets).
void ApplyDiurnal(Schedule& schedule, const FaultEvent& e) {
  double amp = std::clamp(e.factor, 0.0, kMaxDiurnalAmplitude);
  if (amp == 0) return;
  for (auto& req : schedule) {
    if (req.send_time <= e.at) continue;
    double target = req.send_time - e.at;
    double lo = target / (1 + amp);
    double hi = target / (1 - amp);
    for (int i = 0; i < 64; ++i) {
      double mid = 0.5 * (lo + hi);
      if (DiurnalIntegral(mid, amp, e.period) < target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    req.send_time = e.at + 0.5 * (lo + hi);
  }
}

/// "keyNNNNNN" (workload/synthetic.h naming) -> N, or -1.
int64_t SyntheticKeyIndex(const std::string& arg) {
  if (arg.size() != 9 || !StartsWith(arg, "key")) return -1;
  int64_t idx = 0;
  for (size_t i = 3; i < arg.size(); ++i) {
    if (arg[i] < '0' || arg[i] > '9') return -1;
    idx = idx * 10 + (arg[i] - '0');
  }
  return idx;
}

/// Rotates the synthetic-key arguments of every request sent at/after the
/// onset by `offset` modulo the schedule's observed key space — under
/// Zipfian skew this moves the hot set mid-run. RangeRead argument pairs
/// are skipped so [start, end) ranges stay well-formed.
void ApplySkewShift(Schedule& schedule, const FaultEvent& e) {
  int64_t key_space = 0;
  for (const auto& req : schedule) {
    for (const auto& arg : req.args) {
      key_space = std::max(key_space, SyntheticKeyIndex(arg) + 1);
    }
  }
  if (key_space <= 1) return;
  int64_t offset = ((e.offset % key_space) + key_space) % key_space;
  for (auto& req : schedule) {
    if (req.send_time < e.at || req.function == "RangeRead") continue;
    for (auto& arg : req.args) {
      int64_t idx = SyntheticKeyIndex(arg);
      if (idx < 0) continue;
      arg = "key" + ZeroPad(static_cast<uint64_t>((idx + offset) % key_space),
                            6);
    }
  }
}

std::string FormatParam(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLeaderCrash:
      return "leader-crash";
    case FaultKind::kNodeCrash:
      return "node-crash";
    case FaultKind::kEndorserOutage:
      return "endorser-outage";
    case FaultKind::kEndorserSlow:
      return "endorser-slow";
    case FaultKind::kBurst:
      return "burst";
    case FaultKind::kDiurnal:
      return "diurnal";
    case FaultKind::kSkewShift:
      return "hotkey-shift";
  }
  return "unknown";
}

std::string DescribeFault(const FaultEvent& event) {
  std::string out(FaultKindName(event.kind));
  out += "@t=" + FormatParam(event.at);
  switch (event.kind) {
    case FaultKind::kLeaderCrash:
      out += ",dur=" + FormatParam(event.duration);
      break;
    case FaultKind::kNodeCrash:
      out += ",dur=" + FormatParam(event.duration) +
             ",node=" + std::to_string(event.node);
      break;
    case FaultKind::kEndorserOutage:
      out += ",dur=" + FormatParam(event.duration) +
             ",org=" + std::to_string(event.org);
      break;
    case FaultKind::kEndorserSlow:
      out += ",dur=" + FormatParam(event.duration) +
             ",org=" + std::to_string(event.org) +
             ",factor=" + FormatParam(event.factor);
      break;
    case FaultKind::kBurst:
      out += ",dur=" + FormatParam(event.duration) +
             ",factor=" + FormatParam(event.factor);
      break;
    case FaultKind::kDiurnal:
      out += ",factor=" + FormatParam(event.factor) +
             ",period=" + FormatParam(event.period);
      break;
    case FaultKind::kSkewShift:
      out += ",offset=" + std::to_string(event.offset);
      break;
  }
  return out;
}

std::vector<std::string> FaultPresetNames() {
  std::vector<std::string> names;
  names.reserve(PresetTable().size());
  for (const auto& preset : PresetTable()) names.emplace_back(preset.name);
  return names;
}

Result<FaultPlan> ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  for (const auto& part : Split(spec, ';')) {
    std::string_view text = Trim(part);
    if (text.empty()) continue;
    size_t at_pos = text.find('@');
    std::string_view name = Trim(text.substr(0, at_pos));
    const FaultEvent* preset = FindPreset(name);
    if (preset == nullptr) {
      return Status::InvalidArgument(
          "unknown fault '" + std::string(name) +
          "' (presets: " + Join(FaultPresetNames(), ", ") + ")");
    }
    FaultEvent event = *preset;
    if (at_pos != std::string_view::npos) {
      for (const auto& kv : Split(text.substr(at_pos + 1), ',')) {
        std::string_view entry = Trim(kv);
        if (entry.empty()) continue;
        size_t eq = entry.find('=');
        if (eq == std::string_view::npos) {
          return Status::InvalidArgument("fault parameter '" +
                                         std::string(entry) +
                                         "' is not key=value");
        }
        std::string_view key = Trim(entry.substr(0, eq));
        double value = 0;
        if (!ParseNumber(Trim(entry.substr(eq + 1)), &value)) {
          return Status::InvalidArgument("fault parameter '" +
                                         std::string(entry) +
                                         "' has a malformed value");
        }
        if (key == "t") {
          event.at = value;
        } else if (key == "dur") {
          event.duration = value;
        } else if (key == "node") {
          event.node = static_cast<int>(value);
        } else if (key == "org") {
          event.org = static_cast<int>(value);
        } else if (key == "factor") {
          event.factor = value;
        } else if (key == "period") {
          event.period = value;
        } else if (key == "offset") {
          event.offset = static_cast<int>(value);
        } else {
          return Status::InvalidArgument(
              "unknown fault parameter '" + std::string(key) +
              "' (known: t, dur, node, org, factor, period, offset)");
        }
      }
    }
    BLOCKOPTR_RETURN_NOT_OK(ValidateEvent(event));
    plan.events.push_back(event);
  }
  if (plan.events.empty()) {
    return Status::InvalidArgument("empty fault spec");
  }
  std::stable_sort(
      plan.events.begin(), plan.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

void ApplyArrivalFaults(Schedule& schedule, const FaultPlan& plan) {
  if (schedule.empty()) return;
  bool touched = false;
  for (const auto& event : plan.events) {
    switch (event.kind) {
      case FaultKind::kBurst:
        ApplyBurst(schedule, event);
        touched = true;
        break;
      case FaultKind::kDiurnal:
        ApplyDiurnal(schedule, event);
        touched = true;
        break;
      case FaultKind::kSkewShift:
        ApplySkewShift(schedule, event);
        touched = true;
        break;
      default:
        break;
    }
  }
  if (touched) NormalizeSchedule(schedule);
}

FaultInjector::FaultInjector(Simulator* sim, FabricNetwork* network,
                             FaultPlan plan)
    : sim_(sim), network_(network), plan_(std::move(plan)) {}

void FaultInjector::Arm() {
  windows_.clear();
  windows_.reserve(plan_.events.size());
  for (const FaultEvent& e : plan_.events) {
    double end = e.duration > 0 ? e.at + e.duration : kOpenEnded;
    switch (e.kind) {
      case FaultKind::kLeaderCrash: {
        windows_.push_back(
            {std::string(FaultKindName(e.kind)), e.at, end});
        size_t w = windows_.size() - 1;
        sim_->ScheduleAt(e.at, [this, e, w]() {
          RaftCluster& raft = network_->orderer().mutable_raft();
          // Resolve the acting leader at fire time; before any election
          // has concluded, hit node 0 (a deterministic stand-in).
          int victim = raft.LeaderId();
          if (victim < 0) victim = 0;
          windows_[w].name =
              "leader-crash(node" + std::to_string(victim) + ")";
          raft.StopNode(victim);
          if (e.duration > 0) {
            sim_->ScheduleAfter(e.duration, [this, victim]() {
              network_->orderer().mutable_raft().RestartNode(victim);
            });
          }
        });
        break;
      }
      case FaultKind::kNodeCrash: {
        windows_.push_back({"node-crash(node" + std::to_string(e.node) + ")",
                            e.at, end});
        sim_->ScheduleAt(e.at, [this, e]() {
          RaftCluster& raft = network_->orderer().mutable_raft();
          if (e.node >= raft.num_nodes()) return;
          raft.StopNode(e.node);
          if (e.duration > 0) {
            sim_->ScheduleAfter(e.duration, [this, e]() {
              network_->orderer().mutable_raft().RestartNode(e.node);
            });
          }
        });
        break;
      }
      case FaultKind::kEndorserOutage: {
        windows_.push_back(
            {"endorser-outage(Org" + std::to_string(e.org) + ")", e.at, end});
        sim_->ScheduleAt(e.at, [this, e]() {
          network_->SetEndorserOutage(e.org, true);
          if (e.duration > 0) {
            sim_->ScheduleAfter(e.duration, [this, e]() {
              network_->SetEndorserOutage(e.org, false);
            });
          }
        });
        break;
      }
      case FaultKind::kEndorserSlow: {
        windows_.push_back(
            {"endorser-slow(Org" + std::to_string(e.org) + ")", e.at, end});
        sim_->ScheduleAt(e.at, [this, e]() {
          network_->SetEndorserSlowdown(e.org, e.factor);
          if (e.duration > 0) {
            sim_->ScheduleAfter(e.duration, [this, e]() {
              network_->SetEndorserSlowdown(e.org, 1.0);
            });
          }
        });
        break;
      }
      // Arrival-process faults act on the schedule before the run
      // (ApplyArrivalFaults); only their windows are recorded here.
      case FaultKind::kBurst:
      case FaultKind::kDiurnal:
      case FaultKind::kSkewShift:
        windows_.push_back(
            {std::string(FaultKindName(e.kind)), e.at, end});
        break;
    }
  }
}

void FaultInjector::FinalizeWindows(double end_time) {
  for (auto& w : windows_) {
    if (w.end == kOpenEnded || w.end > end_time) w.end = end_time;
  }
}

}  // namespace blockoptr
