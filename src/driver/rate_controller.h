#ifndef BLOCKOPTR_DRIVER_RATE_CONTROLLER_H_
#define BLOCKOPTR_DRIVER_RATE_CONTROLLER_H_

#include <vector>

#include "workload/spec.h"

namespace blockoptr {

/// Client-side transaction-rate control (paper §4.4.1 recommendation 3 and
/// §4.5): the client manager caps the rate at which transactions leave the
/// clients. Two modes:
///
///  * `CapRate` re-paces the whole schedule at `max_tps`, preserving order
///    (the paper's evaluation setting: "Set send rate to 100 TPS").
///  * `CapRateWindowed` only stretches intervals whose instantaneous rate
///    exceeds `max_tps` (targeted load shedding/queuing — the refinement
///    §7 suggests for specific high-traffic periods), leaving low-traffic
///    periods untouched.
class RateController {
 public:
  /// Re-paces every request to at most `max_tps`; requests already slower
  /// than the cap keep their relative spacing.
  static void CapRate(Schedule& schedule, double max_tps);

  /// Stretches only the overloaded stretches of the schedule: successive
  /// requests are delayed just enough that no `1/max_tps` window ever
  /// carries more than one request.
  static void CapRateWindowed(Schedule& schedule, double max_tps);
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_DRIVER_RATE_CONTROLLER_H_
