#include "driver/presets.h"

#include <utility>

namespace blockoptr {

ExperimentConfig MakeSyntheticExperiment(const SyntheticConfig& workload,
                                         const NetworkConfig& network) {
  ExperimentConfig cfg;
  cfg.network = network;
  cfg.chaincodes = {"genchain"};
  for (auto& [k, v] : SyntheticSeedState(workload)) {
    cfg.seeds.push_back(SeedEntry{"genchain", k, v});
  }
  cfg.schedule = GenerateSynthetic(workload);
  return cfg;
}

ExperimentConfig MakeChannelExperiment(const ChannelExperimentDef& def) {
  ExperimentConfig cfg = MakeSyntheticExperiment(def.workload, def.network);
  cfg.channels = def.channels;
  cfg.channel_weights = def.channel_weights;
  return cfg;
}

std::vector<ChannelExperimentDef> ChannelExperiments(int num_txs) {
  SyntheticConfig wl;
  wl.num_txs = num_txs;
  NetworkConfig net = NetworkConfig::Defaults();

  std::vector<ChannelExperimentDef> defs;

  {  // 1: balanced 4-channel sharding of the Table 2 default workload.
    ChannelExperimentDef d{1, "4 channels balanced", wl, net, 4, {}};
    defs.push_back(std::move(d));
  }
  {  // 2: cross-channel hot-key contention — every channel's partition
     // hits the same Zipf-hot keys, so conflicts climb on all channels at
     // once while the shared client population saturates.
    SyntheticConfig w = wl;
    w.key_skew = 2;
    w.type = SyntheticWorkloadType::kUpdateHeavy;
    ChannelExperimentDef d{2, "4 channels hot-key contention", w, net, 4,
                           {}};
    defs.push_back(std::move(d));
  }
  {  // 3: skewed channel load — channel 0 carries 4x the traffic of each
     // other channel, so one channel saturates first and the coupling
     // drags its siblings.
    SyntheticConfig w = wl;
    w.send_rate = 600;
    ChannelExperimentDef d{3, "4 channels skewed load 4:1:1:1", w, net, 4,
                           {4, 1, 1, 1}};
    defs.push_back(std::move(d));
  }
  {  // 4: 8-channel scale point.
    ChannelExperimentDef d{4, "8 channels balanced", wl, net, 8, {}};
    defs.push_back(std::move(d));
  }
  return defs;
}

std::vector<SyntheticExperimentDef> Table3Experiments(int num_txs) {
  SyntheticConfig wl;
  wl.num_txs = num_txs;
  NetworkConfig net = NetworkConfig::Defaults();

  std::vector<SyntheticExperimentDef> defs;
  auto add = [&](int number, std::string label, SyntheticConfig w,
                 NetworkConfig n) {
    defs.push_back({number, std::move(label), std::move(w), std::move(n)});
  };

  {  // 1: endorsement policy P1 (4 orgs).
    NetworkConfig n = net;
    n.num_orgs = 4;
    n.endorsement_policy = EndorsementPolicy::Preset(1, 4);
    SyntheticConfig w = wl;
    w.num_orgs = 4;
    add(1, "Endorsement policy P1", w, n);
  }
  {  // 2: policy P2 + endorser distribution skew 6.
    NetworkConfig n = net;
    n.num_orgs = 4;
    n.endorsement_policy = EndorsementPolicy::Preset(2, 4);
    n.endorser_dist_skew = 6;
    SyntheticConfig w = wl;
    w.num_orgs = 4;
    add(2, "Policy P2 / skew 6", w, n);
  }
  {  // 3: four organizations.
    NetworkConfig n = net;
    n.num_orgs = 4;
    n.endorsement_policy = EndorsementPolicy::Preset(3, 4);
    SyntheticConfig w = wl;
    w.num_orgs = 4;
    add(3, "No. of orgs 4", w, n);
  }
  {  // 4-7: workload types.
    SyntheticConfig w = wl;
    w.type = SyntheticWorkloadType::kReadHeavy;
    add(4, "Workload Read-heavy", w, net);
    w.type = SyntheticWorkloadType::kUpdateHeavy;
    add(5, "Workload Update-heavy", w, net);
    w.type = SyntheticWorkloadType::kInsertHeavy;
    add(6, "Workload Insert-heavy", w, net);
    w.type = SyntheticWorkloadType::kRangeReadHeavy;
    add(7, "Workload RangeRead-heavy", w, net);
  }
  {  // 8: key distribution skew 2.
    SyntheticConfig w = wl;
    w.key_skew = 2;
    add(8, "Key distribution skew 2", w, net);
  }
  {  // 9-11: block count.
    NetworkConfig n = net;
    n.block_cutting.max_tx_count = 50;
    add(9, "Block count 50", wl, n);
    n.block_cutting.max_tx_count = 300;
    add(10, "Block count 300", wl, n);
    n.block_cutting.max_tx_count = 1000;
    add(11, "Block count 1000", wl, n);
  }
  {  // 12-14: send rate.
    SyntheticConfig w = wl;
    w.send_rate = 50;
    add(12, "Send rate 50", w, net);
    w.send_rate = 300;
    add(13, "Send rate 300", w, net);
    w.send_rate = 1000;
    add(14, "Send rate 1000", w, net);
  }
  {  // 15: transaction distribution skew 70%.
    SyntheticConfig w = wl;
    w.tx_dist_skew = 0.7;
    add(15, "Tx distribution skew 70%", w, net);
  }
  return defs;
}

}  // namespace blockoptr
