#include "driver/robustness.h"

#include <algorithm>
#include <cstdio>

#include "blockopt/log/preprocess.h"
#include "common/string_util.h"
#include "driver/sweep.h"

namespace blockoptr {

namespace {

constexpr RecommendationType kAllTypes[] = {
    RecommendationType::kActivityReordering,
    RecommendationType::kProcessModelPruning,
    RecommendationType::kTransactionRateControl,
    RecommendationType::kDeltaWrites,
    RecommendationType::kSmartContractPartitioning,
    RecommendationType::kDataModelAlteration,
    RecommendationType::kBlockSizeAdaptation,
    RecommendationType::kEndorserRestructuring,
    RecommendationType::kClientResourceBoost,
};

FaultScenario MakeScenario(std::string name, const FaultEvent& event) {
  FaultScenario scenario;
  scenario.name = std::move(name);
  scenario.plan.events.push_back(event);
  return scenario;
}

}  // namespace

std::vector<FaultScenario> StandardFaultScenarios(double horizon_s) {
  double h = std::max(horizon_s, 1.0);
  std::vector<FaultScenario> scenarios;
  {
    FaultEvent e;
    e.kind = FaultKind::kLeaderCrash;
    e.at = 0.25 * h;
    e.duration = 0.25 * h;
    scenarios.push_back(MakeScenario("leader-crash", e));
  }
  {
    FaultEvent e;
    e.kind = FaultKind::kEndorserOutage;
    e.org = 2;
    e.at = 0.3 * h;
    e.duration = 0;  // down for the rest of the run
    scenarios.push_back(MakeScenario("endorser-outage", e));
  }
  {
    FaultEvent e;
    e.kind = FaultKind::kEndorserSlow;
    e.org = 2;
    e.factor = 8;
    e.at = 0.2 * h;
    e.duration = 0.5 * h;
    scenarios.push_back(MakeScenario("endorser-slow", e));
  }
  {
    FaultEvent e;
    e.kind = FaultKind::kBurst;
    e.at = 0.2 * h;
    e.duration = 0.2 * h;
    e.factor = 4;
    scenarios.push_back(MakeScenario("burst", e));
  }
  return scenarios;
}

std::string_view RobustnessVerdictName(RobustnessVerdict v) {
  switch (v) {
    case RobustnessVerdict::kAbsent:
      return "-";
    case RobustnessVerdict::kHold:
      return "hold";
    case RobustnessVerdict::kAppeared:
      return "appeared";
    case RobustnessVerdict::kWithdrawn:
      return "withdrawn";
  }
  return "?";
}

Result<std::vector<RobustnessResult>> EvaluateRobustness(
    const ExperimentConfig& base, const std::vector<FaultScenario>& scenarios,
    const RecommenderOptions& options, int jobs) {
  if (base.faults.enabled()) {
    return Status::InvalidArgument(
        "base config must be healthy (it is the reference run)");
  }
  if (scenarios.empty()) {
    return Status::InvalidArgument("no fault scenarios given");
  }

  std::vector<ExperimentConfig> configs;
  configs.reserve(scenarios.size() + 1);
  configs.push_back(base);
  for (const auto& scenario : scenarios) {
    ExperimentConfig faulted = base;
    faulted.faults = scenario.plan;
    configs.push_back(std::move(faulted));
  }

  SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  std::vector<Result<ExperimentOutput>> outputs =
      SweepRunner(sweep_options).Run(configs);
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (!outputs[i].ok()) {
      const std::string& run =
          i == 0 ? std::string("healthy") : scenarios[i - 1].name;
      return Status::Internal("robustness run '" + run +
                              "' failed: " + outputs[i].status().message());
    }
  }

  const ExperimentOutput& healthy = *outputs[0];
  std::vector<Recommendation> healthy_recs =
      RecommendFromLog(ExtractBlockchainLog(healthy.ledger), options);

  std::vector<RobustnessResult> results;
  results.reserve(scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const ExperimentOutput& faulted = *outputs[i + 1];
    RobustnessResult result;
    result.scenario = scenarios[i].name;
    result.healthy = healthy.report;
    result.faulted = faulted.report;
    result.healthy_recs = healthy_recs;
    result.faulted_recs =
        RecommendFromLog(ExtractBlockchainLog(faulted.ledger), options);
    result.fault_windows = faulted.fault_windows;
    result.verdicts.reserve(std::size(kAllTypes));
    for (RecommendationType type : kAllTypes) {
      bool before = HasRecommendation(healthy_recs, type);
      bool after = HasRecommendation(result.faulted_recs, type);
      RobustnessVerdict verdict = RobustnessVerdict::kAbsent;
      if (before && after) {
        verdict = RobustnessVerdict::kHold;
      } else if (!before && after) {
        verdict = RobustnessVerdict::kAppeared;
      } else if (before && !after) {
        verdict = RobustnessVerdict::kWithdrawn;
      }
      result.verdicts.push_back(verdict);
    }
    results.push_back(std::move(result));
  }
  return results;
}

std::string FormatRobustnessMatrix(
    const std::string& workload,
    const std::vector<RobustnessResult>& results) {
  std::string out = "Robustness matrix — workload: " + workload + "\n";
  out += "verdicts: hold (advice survives the fault), appeared (flips on), "
         "withdrawn (flips off), - (in neither run)\n\n";
  if (results.empty()) return out;

  char line[512];
  std::string header;
  std::snprintf(line, sizeof(line), "%-28s %-8s", "recommendation", "healthy");
  header += line;
  for (const auto& r : results) {
    std::snprintf(line, sizeof(line), " %-16s", r.scenario.c_str());
    header += line;
  }
  out += header + "\n";

  for (size_t t = 0; t < std::size(kAllTypes); ++t) {
    RecommendationType type = kAllTypes[t];
    bool healthy_has = HasRecommendation(results[0].healthy_recs, type);
    std::snprintf(line, sizeof(line), "%-28s %-8s",
                  std::string(RecommendationTypeName(type)).c_str(),
                  healthy_has ? "yes" : "-");
    out += line;
    for (const auto& r : results) {
      std::snprintf(
          line, sizeof(line), " %-16s",
          std::string(RobustnessVerdictName(r.verdicts[t])).c_str());
      out += line;
    }
    out += "\n";
  }

  out += "\n";
  std::snprintf(line, sizeof(line), "%-18s %9s %10s %10s %9s %9s %9s\n",
                "run", "success", "tput(tps)", "committed", "endfail",
                "mvccfail", "earlyab");
  out += line;
  auto report_row = [&](const std::string& name,
                        const PerformanceReport& report) {
    std::snprintf(line, sizeof(line),
                  "%-18s %8.1f%% %10.1f %10llu %9llu %9llu %9llu\n",
                  name.c_str(), 100.0 * report.SuccessRate(),
                  report.Throughput(),
                  static_cast<unsigned long long>(report.total_committed()),
                  static_cast<unsigned long long>(
                      report.endorsement_failures()),
                  static_cast<unsigned long long>(report.mvcc_failures()),
                  static_cast<unsigned long long>(report.early_aborts()));
    out += line;
  };
  report_row("healthy", results[0].healthy);
  for (const auto& r : results) {
    report_row(r.scenario, r.faulted);
    for (const auto& w : r.fault_windows) {
      std::snprintf(line, sizeof(line), "  fault window: %s %s\n",
                    w.name.c_str(),
                    FormatEvidenceWindow(w.start, w.end).c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace blockoptr
