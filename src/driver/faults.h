#ifndef BLOCKOPTR_DRIVER_FAULTS_H_
#define BLOCKOPTR_DRIVER_FAULTS_H_

// Deterministic fault injection (ROADMAP item 4). A FaultPlan is a list of
// sim-time-scheduled fault events — Raft node crashes, endorser
// degradation/outage, arrival-process modulation — parsed from the CLI
// `--faults=` spec or taken from the preset library. The FaultInjector
// turns the plan into simulator events against a live FabricNetwork;
// arrival faults are pure Schedule transforms applied before the run.
// Everything is deterministic per (config, plan): no wall clock, no
// extra RNG draws, so the sweep determinism contract (driver/sweep.h)
// extends to faulted experiments unchanged.

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sim/simulator.h"
#include "telemetry/bottleneck.h"
#include "workload/spec.h"

namespace blockoptr {

class FabricNetwork;

enum class FaultKind {
  /// Crash-stop the current Raft leader at `at`; restart it after
  /// `duration` (0 = stays down for the rest of the run). The crashed
  /// node is resolved at fire time, so the fault always hits the acting
  /// leader even after earlier elections.
  kLeaderCrash,
  /// Crash-stop orderer node `node` (0-based) at `at`; restart after
  /// `duration`.
  kNodeCrash,
  /// Black-hole org `org`'s endorser over [at, at+duration): proposals
  /// sent to it time out and come back as refusals. Transactions proceed
  /// with fewer signatures (failing endorsement-policy validation when
  /// too few) or early-abort when no endorser answered — never a silent
  /// drop.
  kEndorserOutage,
  /// Straggler: scale org `org`'s endorsement execution cost by `factor`
  /// over [at, at+duration).
  kEndorserSlow,
  /// Burst window: arrivals that originally fell in
  /// [at, at+factor*duration) are compressed into [at, at+duration), so
  /// the client send rate is `factor`x inside the window. Request count
  /// and order are preserved exactly (monotone time warp).
  kBurst,
  /// Diurnal ramp: from `at` on, the arrival rate is modulated by
  /// 1 + factor*sin(2*pi*(t-at)/period) (factor is the amplitude in
  /// [0, 0.95]). Count and order preserved exactly.
  kDiurnal,
  /// Mid-run hot-key shift: synthetic keys ("keyNNNNNN") in requests with
  /// send_time >= `at` are rotated by `offset` modulo the schedule's key
  /// space, moving the hot set under Zipfian skew. RangeRead arguments
  /// are left alone so ranges stay well-formed.
  kSkewShift,
};

std::string_view FaultKindName(FaultKind kind);

/// One scheduled fault. Fields without meaning for a kind are ignored.
struct FaultEvent {
  FaultKind kind = FaultKind::kLeaderCrash;
  double at = 5.0;        // sim-time onset (seconds)
  double duration = 0;    // 0 = rest of the run (where meaningful)
  int node = 0;           // orderer node for kNodeCrash (0-based)
  int org = 1;            // organization for endorser faults (1-based)
  double factor = 4.0;    // slowdown / burst multiplier / diurnal amplitude
  double period = 20.0;   // diurnal period (seconds)
  int offset = 137;       // skew-shift key rotation
};

/// "leader-crash@t=5,dur=10" — the spec notation of one event.
std::string DescribeFault(const FaultEvent& event);

struct FaultPlan {
  std::vector<FaultEvent> events;
  bool enabled() const { return !events.empty(); }
};

/// Preset names understood by ParseFaultPlan ("leader-crash",
/// "endorser-outage", ...), each a single event with canned parameters.
std::vector<std::string> FaultPresetNames();

/// Parses a `--faults=` spec: semicolon-separated events, each a preset
/// name optionally followed by `@key=value,key=value` overrides. Keys:
/// t (onset), dur, node, org, factor, period, offset. Examples:
///   "leader-crash@t=10,dur=5"
///   "endorser-slow@t=5,org=2,factor=8,dur=20;burst@t=30,dur=5,factor=4"
Result<FaultPlan> ParseFaultPlan(const std::string& spec);

/// Applies the plan's arrival-process events (burst, diurnal, skew shift)
/// to the schedule in place, then re-normalizes it. Pure and
/// deterministic; events of other kinds are ignored. Time-warp events
/// preserve the request count and relative order exactly.
void ApplyArrivalFaults(Schedule& schedule, const FaultPlan& plan);

/// Schedules the plan's runtime events (crashes, endorser degradation)
/// against a live network and records the resolved fault windows — the
/// attribution input of ComputeBottleneckReport. Construct after the
/// network, call Arm() before running the simulator, FinalizeWindows()
/// after; the injector must outlive the run loop.
class FaultInjector {
 public:
  /// `sim` and `network` must outlive the injector.
  FaultInjector(Simulator* sim, FabricNetwork* network, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Arm();

  /// Clamps open-ended windows ("rest of the run") to the run's end time.
  void FinalizeWindows(double end_time);

  /// One window per plan event (arrival events included), named with the
  /// resolved target, e.g. "leader-crash(node1)" or
  /// "endorser-outage(Org2)".
  const std::vector<FaultWindow>& windows() const { return windows_; }

 private:
  static constexpr double kOpenEnded = -1.0;

  Simulator* sim_;
  FabricNetwork* network_;
  FaultPlan plan_;
  std::vector<FaultWindow> windows_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_DRIVER_FAULTS_H_
