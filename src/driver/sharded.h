#ifndef BLOCKOPTR_DRIVER_SHARDED_H_
#define BLOCKOPTR_DRIVER_SHARDED_H_

// The multi-channel sharded experiment driver (ROADMAP: million-tx scale).
// An experiment with `channels = N` becomes N independent ChannelRuns —
// each with its own event core, Fabric network, and derived RNG stream —
// advanced in conservative epoch lockstep by the shard runner and coupled
// through the shared client population: at every epoch boundary each
// channel's client-side service costs are scaled by how much of the shared
// client capacity the *other* channels consumed in the closing window.
// Everything at and between boundaries is deterministic, so a run is
// field-for-field identical for any `sim_threads`.

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "driver/experiment.h"
#include "workload/spec.h"

namespace blockoptr {

/// Derived RNG seed of channel `channel` (splitmix64-style mix), so
/// channels draw from disjoint deterministic streams. Extends the sweep
/// determinism contract: the whole multi-channel run is a pure function of
/// (config, base seed).
uint64_t ChannelSeed(uint64_t base_seed, int channel);

/// Deterministically partitions a schedule across `channels` by smooth
/// weighted round-robin: request order and send times are preserved,
/// channel i receives a share proportional to `weights[i]` (empty weights
/// or non-positive entries mean 1). The concatenation of the parts in
/// round-robin pick order is exactly the input schedule.
std::vector<Schedule> PartitionSchedule(const Schedule& schedule,
                                        int channels,
                                        const std::vector<double>& weights);

/// The smallest sim-time distance at which one channel's load can affect
/// another through the shared clients: a proposal must at least be created
/// and travel to an endorser and start executing before any cross-channel
/// effect is observable. Used as the default lockstep epoch — conservative
/// synchronization at this granularity loses no coupling fidelity.
double MinCouplingLatency(const LatencyModel& latency);

/// Runs a `channels > 1` experiment: partitions the workload, builds the
/// per-channel runs, advances them in epoch lockstep on `sim_threads`
/// workers with client-population coupling at every boundary, and returns
/// the aggregate output (merged report, summed engine counters, per-channel
/// outputs in `ExperimentOutput::channels`). RunExperiment dispatches here;
/// call that instead.
Result<ExperimentOutput> RunShardedExperiment(const ExperimentConfig& config);

}  // namespace blockoptr

#endif  // BLOCKOPTR_DRIVER_SHARDED_H_
