#ifndef BLOCKOPTR_DRIVER_CLIENT_MANAGER_H_
#define BLOCKOPTR_DRIVER_CLIENT_MANAGER_H_

#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "workload/spec.h"

namespace blockoptr {

/// Knobs of the client manager — the driver-side component that, like the
/// paper's Caliper configuration (§4.5 "Our implementations"), can order
/// transactions across clients (activity reordering) and control the
/// generated transaction rate (rate control).
struct ClientManagerSettings {
  /// Activities moved to the front of the run (executed before everything
  /// else commits).
  std::vector<std::string> activities_first;

  /// Activities deferred to the end of the run (the paper's DRM/SCM
  /// redesigns: run conflicting queries after the write traffic).
  std::vector<std::string> activities_last;

  /// Maximum client send rate in TPS (0 = uncapped).
  double rate_cap_tps = 0;

  /// When true, rate control only stretches overloaded periods instead of
  /// re-pacing the entire schedule.
  bool windowed_rate_control = false;

  bool HasReordering() const {
    return !activities_first.empty() || !activities_last.empty();
  }
};

/// Applies the client-manager transformations to a workload schedule and
/// returns the effective schedule the clients will execute.
class ClientManager {
 public:
  /// `metrics`, when non-null, receives `client_manager.*` counters
  /// describing which transformations actually ran.
  static Schedule Prepare(Schedule schedule,
                          const ClientManagerSettings& settings,
                          MetricsRegistry* metrics = nullptr);
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_DRIVER_CLIENT_MANAGER_H_
