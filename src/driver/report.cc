#include "driver/report.h"

#include "common/string_util.h"

namespace blockoptr {

void PerformanceReport::RecordCommit(const Transaction& tx) {
  ++total_committed_;
  if (!saw_first_ || tx.client_timestamp < first_send_) {
    first_send_ = tx.client_timestamp;
    saw_first_ = true;
  }
  switch (tx.status) {
    case TxStatus::kValid: {
      ++successful_;
      double lat = tx.commit_timestamp - tx.client_timestamp;
      latency_.Add(lat);
      latency_pct_.Add(lat);
      break;
    }
    case TxStatus::kMvccReadConflict:
      ++mvcc_failures_;
      break;
    case TxStatus::kPhantomReadConflict:
      ++phantom_failures_;
      break;
    case TxStatus::kEndorsementPolicyFailure:
      ++endorsement_failures_;
      break;
    case TxStatus::kConfig:
      --total_committed_;  // config txs are not workload transactions
      break;
  }
}

void PerformanceReport::RecordEarlyAbort() { ++early_aborts_; }

void PerformanceReport::Merge(const PerformanceReport& other) {
  // Capture other's tail before its samples dissolve into the pooled
  // tracker. A leaf report contributes one entry; an already-merged
  // report contributes the entries it recorded (never both — that would
  // double-count its channels as one pooled pseudo-channel).
  if (other.channel_tails_.empty()) {
    ChannelTail tail;
    PercentileTracker pct = other.latency_pct_;  // Percentile() sorts lazily
    tail.p50_s = pct.Percentile(50);
    tail.p95_s = pct.Percentile(95);
    tail.p99_s = pct.Percentile(99);
    tail.max_s = other.latency_.max();
    tail.successful = other.successful_;
    channel_tails_.push_back(tail);
  } else {
    channel_tails_.insert(channel_tails_.end(), other.channel_tails_.begin(),
                          other.channel_tails_.end());
  }
  total_committed_ += other.total_committed_;
  successful_ += other.successful_;
  mvcc_failures_ += other.mvcc_failures_;
  phantom_failures_ += other.phantom_failures_;
  endorsement_failures_ += other.endorsement_failures_;
  early_aborts_ += other.early_aborts_;
  latency_.Merge(other.latency_);
  latency_pct_.Merge(other.latency_pct_);
  if (other.saw_first_ &&
      (!saw_first_ || other.first_send_ < first_send_)) {
    first_send_ = other.first_send_;
  }
  saw_first_ = saw_first_ || other.saw_first_;
  if (other.end_time_ > end_time_) end_time_ = other.end_time_;
}

double PerformanceReport::SuccessRate() const {
  if (total_committed_ == 0) return 0;
  return static_cast<double>(successful_) /
         static_cast<double>(total_committed_);
}

double PerformanceReport::Throughput() const {
  double span = duration();
  if (span <= 0) return 0;
  return static_cast<double>(successful_) / span;
}

std::string PerformanceReport::Summary() const {
  std::string out;
  out += "success=" + FormatPercent(SuccessRate());
  out += " tput=" + FormatDouble(Throughput(), 1) + "tps";
  out += " lat=" + FormatDouble(AvgLatency(), 3) + "s";
  out += " committed=" + std::to_string(total_committed_);
  out += " mvcc=" + std::to_string(mvcc_failures_);
  out += " phantom=" + std::to_string(phantom_failures_);
  out += " endorse=" + std::to_string(endorsement_failures_);
  out += " early_abort=" + std::to_string(early_aborts_);
  return out;
}

double RelativeImprovement(double baseline, double optimized,
                           bool lower_is_better) {
  if (baseline == 0) return 0;
  double change = (optimized - baseline) / baseline;
  return lower_is_better ? -change : change;
}

}  // namespace blockoptr
