#ifndef BLOCKOPTR_DRIVER_CHANNEL_RUN_H_
#define BLOCKOPTR_DRIVER_CHANNEL_RUN_H_

// One channel's live experiment: the setup / step / finish internals of
// RunExperiment, factored so the single-channel path and the multi-channel
// sharded driver share one code path. A ChannelRun owns the simulator, the
// Fabric network, the prepared schedule, and the output under construction;
// it is also a sim::Shard, so the shard runner can advance it in epoch
// lockstep next to its sibling channels.

#include <memory>

#include "common/result.h"
#include "driver/experiment.h"
#include "driver/faults.h"
#include "fabric/network.h"
#include "sim/shard_runner.h"
#include "sim/simulator.h"

namespace blockoptr {

class ChannelRun : public Shard {
 public:
  /// Builds the fully-armed channel: network constructed, chaincodes
  /// installed, state seeded, scheduler/telemetry/stream attached, the
  /// prepared schedule sitting in the event queue, faults armed, network
  /// started, sampler ticking. After Create the channel only needs to be
  /// stepped (RunToCompletion or AdvanceUntil) and Finished.
  static Result<std::unique_ptr<ChannelRun>> Create(
      const ExperimentConfig& config);

  ChannelRun(const ChannelRun&) = delete;
  ChannelRun& operator=(const ChannelRun&) = delete;

  /// The classic single-channel run loop: unbounded Step() until every
  /// scheduled request committed or early-aborted. Bit-identical to the
  /// pre-sharding RunExperiment loop (no epoch machinery touches it).
  Status RunToCompletion();

  // Shard interface (the multi-channel epoch-lockstep path).
  Status AdvanceUntil(SimTime epoch_end) override;
  bool done() const override { return completed_ >= total_; }
  SimTime NextTime() const override;

  /// Post-run finalization: report finish, stream/sampler finalize, stage
  /// breakdown, engine gauges, fault windows — then surrenders the output.
  /// Call exactly once, after the run loop completed without error.
  ExperimentOutput Finish();

  FabricNetwork& network() { return *network_; }
  const FabricNetwork& network() const { return *network_; }
  Simulator& sim() { return sim_; }

 private:
  ChannelRun() = default;

  /// The fallible construction steps, in exactly the order the monolithic
  /// RunExperiment performed them.
  Status Setup(const ExperimentConfig& config);

  Simulator sim_;
  std::unique_ptr<FabricNetwork> network_;
  std::unique_ptr<FaultInjector> faults_;
  Schedule schedule_;  // arrival events reference entries in place
  ExperimentOutput output_;
  size_t completed_ = 0;
  size_t total_ = 0;
  double last_commit_ = 0;
  double max_sim_time_ = 36000;
  bool faults_enabled_ = false;
  NetworkConfig base_network_config_;  // echoed into output_.network
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_DRIVER_CHANNEL_RUN_H_
