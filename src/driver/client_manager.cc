#include "driver/client_manager.h"

#include "driver/rate_controller.h"

namespace blockoptr {

Schedule ClientManager::Prepare(Schedule schedule,
                                const ClientManagerSettings& settings,
                                MetricsRegistry* metrics) {
  if (metrics) {
    metrics->counter("client_manager.scheduled_total")
        .Increment(schedule.size());
  }
  if (settings.HasReordering()) {
    double rate = ScheduleRate(schedule);
    if (rate <= 0) rate = 1;
    ReorderActivities(schedule, settings.activities_first,
                      settings.activities_last, rate);
    if (metrics) {
      metrics->counter("client_manager.reordered_runs_total").Increment();
    }
  }
  if (settings.rate_cap_tps > 0) {
    if (settings.windowed_rate_control) {
      RateController::CapRateWindowed(schedule, settings.rate_cap_tps);
    } else {
      RateController::CapRate(schedule, settings.rate_cap_tps);
    }
    if (metrics) {
      metrics->counter("client_manager.rate_capped_runs_total").Increment();
      metrics->gauge("client_manager.rate_cap_tps")
          .Set(settings.rate_cap_tps);
    }
  }
  return schedule;
}

}  // namespace blockoptr
