#ifndef BLOCKOPTR_DRIVER_REPORT_H_
#define BLOCKOPTR_DRIVER_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "ledger/transaction.h"
#include "telemetry/telemetry.h"

namespace blockoptr {

/// Performance summary of one experiment run, mirroring what the paper
/// measures (§5): success rate (successful / total), throughput of
/// successful transactions, and average latency, plus the failure
/// breakdown and latency percentiles.
class PerformanceReport {
 public:
  /// Records a committed transaction (any status).
  void RecordCommit(const Transaction& tx);

  /// Records a transaction rejected by all endorsers (never ordered).
  void RecordEarlyAbort();

  /// Marks the end of the run for throughput computation.
  void Finish(double end_time) { end_time_ = end_time; }

  /// Tail-latency quantiles of one merged-in channel, captured at Merge
  /// time: the merged PercentileTracker pools every channel's samples, so
  /// a channel's own tail is unrecoverable afterwards — and a channel
  /// whose p99 is 3x the others' disappears into the pooled quantile.
  struct ChannelTail {
    double p50_s = 0;
    double p95_s = 0;
    double p99_s = 0;
    double max_s = 0;
    uint64_t successful = 0;
  };

  /// Folds another (already Finished) report into this one — used to build
  /// the whole-experiment report from per-channel reports. Counters add,
  /// latency accumulators merge, and the wall span becomes the union
  /// (earliest first send -> latest end time), so Throughput() reflects
  /// the combined run. Stage breakdowns are per-channel artifacts and are
  /// not merged. `other`'s tail quantiles are appended to channel_tails()
  /// (its own when it is a leaf report, its recorded tails when it is
  /// itself a merged report), so per-channel p99 survives the merge.
  void Merge(const PerformanceReport& other);

  /// One entry per merged-in leaf report, in merge order — for the
  /// sharded driver that is channel order, so `channel_tails()[c]` is
  /// channel c's tail. Empty for a leaf (never-merged) report.
  const std::vector<ChannelTail>& channel_tails() const {
    return channel_tails_;
  }

  uint64_t total_committed() const { return total_committed_; }
  uint64_t successful() const { return successful_; }
  uint64_t mvcc_failures() const { return mvcc_failures_; }
  uint64_t phantom_failures() const { return phantom_failures_; }
  uint64_t endorsement_failures() const { return endorsement_failures_; }
  uint64_t early_aborts() const { return early_aborts_; }
  uint64_t failed() const {
    return mvcc_failures_ + phantom_failures_ + endorsement_failures_;
  }

  /// Successful / committed (the paper's success rate), in [0, 1].
  double SuccessRate() const;

  /// Successful transactions per second over the run.
  double Throughput() const;

  /// Mean end-to-end latency (client timestamp -> block commit) of
  /// successful transactions, seconds.
  double AvgLatency() const { return latency_.mean(); }
  double MaxLatency() const { return latency_.max(); }
  double LatencyPercentile(double p) { return latency_pct_.Percentile(p); }

  /// Wall span of the run (first client send -> Finish time); 0 when no
  /// transaction was ever recorded, so an empty run never reports a
  /// negative or garbage duration.
  double duration() const { return saw_first_ ? end_time_ - first_send_ : 0; }

  /// One-line summary: "success=87.2% tput=261.4tps lat=0.413s ...".
  std::string Summary() const;

  /// Per-stage latency breakdown derived from telemetry spans (empty when
  /// the run had telemetry disabled).
  void set_stage_breakdown(std::vector<StageLatency> stages) {
    stage_breakdown_ = std::move(stages);
  }
  const std::vector<StageLatency>& stage_breakdown() const {
    return stage_breakdown_;
  }

  /// Fixed-width table of the stage breakdown; "" when none was attached.
  std::string StageBreakdownTable() const {
    return FormatStageBreakdownTable(stage_breakdown_);
  }

 private:
  uint64_t total_committed_ = 0;
  uint64_t successful_ = 0;
  uint64_t mvcc_failures_ = 0;
  uint64_t phantom_failures_ = 0;
  uint64_t endorsement_failures_ = 0;
  uint64_t early_aborts_ = 0;
  RunningStats latency_;
  PercentileTracker latency_pct_;
  double first_send_ = 0;
  bool saw_first_ = false;
  double end_time_ = 0;
  std::vector<StageLatency> stage_breakdown_;
  std::vector<ChannelTail> channel_tails_;
};

/// Relative change helper for paper-style "% improvement" rows:
/// positive = improvement for throughput/success, and for latency when
/// `lower_is_better`.
double RelativeImprovement(double baseline, double optimized,
                           bool lower_is_better = false);

}  // namespace blockoptr

#endif  // BLOCKOPTR_DRIVER_REPORT_H_
