#ifndef BLOCKOPTR_DRIVER_EXPERIMENT_H_
#define BLOCKOPTR_DRIVER_EXPERIMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "blockopt/stream/stream_engine.h"
#include "common/result.h"
#include "driver/client_manager.h"
#include "driver/faults.h"
#include "driver/report.h"
#include "fabric/config.h"
#include "ledger/ledger.h"
#include "telemetry/telemetry.h"
#include "workload/spec.h"

namespace blockoptr {

/// A world-state entry installed before the run (init-transaction
/// analogue).
struct SeedEntry {
  std::string chaincode;
  std::string key;
  std::string value;
};

/// Everything needed to run one benchmark experiment — the equivalent of
/// one HyperledgerLab/Caliper round in the paper's methodology (§5).
struct ExperimentConfig {
  NetworkConfig network;

  /// Registry names of the contracts to install (e.g. {"scm"} or the
  /// optimized variant {"scm_pruned"}).
  std::vector<std::string> chaincodes;

  std::vector<SeedEntry> seeds;
  Schedule schedule;

  /// Client-manager transformations (activity reordering, rate control).
  ClientManagerSettings client_manager;

  /// Ordering-service scheduler: "" (vanilla Fabric), "fabricpp", or
  /// "fabricsharp".
  std::string orderer_scheduler;

  /// Deterministic fault injection (driver/faults.h): Raft node crashes,
  /// endorser degradation/outage, and arrival-process modulation,
  /// scheduled in sim time. Empty (the default) runs healthy. Arrival
  /// events transform the prepared schedule before the run; runtime
  /// events fire from the simulator; the resolved windows land in
  /// `ExperimentOutput::fault_windows` for bottleneck attribution.
  FaultPlan faults;

  /// Safety valve: abort the run if virtual time exceeds this.
  double max_sim_time = 36000;

  /// Multi-channel sharding (driver/sharded.h): > 1 splits the experiment
  /// into this many channels — each an independent Fabric network with its
  /// own event core and derived RNG seed — run in epoch lockstep and
  /// coupled through the shared client population. The schedule is
  /// partitioned across channels deterministically (weighted round-robin
  /// per `channel_weights`). 1 (the default) is the classic single-channel
  /// run, bit-identical to the pre-sharding path.
  int channels = 1;

  /// Worker threads advancing channels in parallel; results are
  /// field-for-field identical for every value (1 = serial reference,
  /// <= 0 = all hardware threads). Ignored when `channels` <= 1.
  int sim_threads = 1;

  /// Lockstep epoch length in sim seconds; <= 0 (the default) derives it
  /// from the latency model's minimum cross-channel coupling latency
  /// (MinCouplingLatency). Ignored when `channels` <= 1.
  double epoch_s = 0;

  /// Relative workload weight per channel (empty = uniform). Entry i
  /// weights channel i; missing/non-positive entries default to 1.
  std::vector<double> channel_weights;

  /// When true, the run records observability data into
  /// `ExperimentOutput::telemetry` (per `telemetry_options`: lifecycle
  /// spans, component metrics, continuous sampler time series) and
  /// attaches a stage-latency breakdown to the report. Off by default:
  /// the disabled path does no telemetry work and schedules no telemetry
  /// events.
  bool enable_telemetry = false;

  /// Which telemetry aspects a telemetry-enabled run records (ignored
  /// when `enable_telemetry` is false). `TelemetryOptions::SamplerOnly()`
  /// is the low-overhead continuous-monitoring profile.
  TelemetryOptions telemetry_options;

  /// Streaming analysis (Observability v3): when `stream.enabled`, the
  /// commit path feeds a StreamEngine that derives the blockchain log
  /// incrementally, maintains windowed metrics / a sliding conflict
  /// graph, and re-evaluates the nine recommendations online. With
  /// `stream.apply`, the top applicable recommendation is submitted
  /// mid-run as a config-update transaction (block-size adaptation →
  /// SubmitBlockCuttingUpdate; endorser restructuring →
  /// SubmitPolicyUpdate). Independent of `enable_telemetry`.
  StreamOptions stream;
};

/// The result of a run: the performance report plus the artefacts
/// BlockOptR analyzes (the ledger) and network-side statistics.
struct ExperimentOutput {
  PerformanceReport report;
  Ledger ledger;
  std::map<std::string, uint64_t> endorsement_counts;
  NetworkConfig network;  // effective config (for metric extraction)
  double sim_end_time = 0;

  /// Engine statistics: total discrete events executed by the run and the
  /// event queue's high-water mark (also exported as the
  /// `sim.events_processed` / `sim.queue_peak` gauges when telemetry is
  /// on). events/sec of a bench run is `events_processed` over wall time.
  uint64_t events_processed = 0;
  size_t queue_peak = 0;

  /// Resolved fault windows (empty for healthy runs), named with the
  /// fired target — e.g. "leader-crash(node1)" — and clamped to the run.
  /// Pass to ComputeBottleneckReport so the verdict names the fault.
  std::vector<FaultWindow> fault_windows;

  /// Trace + metrics of the run; null unless
  /// `ExperimentConfig::enable_telemetry` was set. The recorder's data
  /// stays readable/exportable after the run even though the simulator is
  /// gone.
  std::unique_ptr<Telemetry> telemetry;

  /// Streaming analysis engine state; null unless
  /// `ExperimentConfig::stream.enabled` was set. Finalized (windows
  /// flushed, apply hook released) before RunExperiment returns.
  std::unique_ptr<StreamEngine> stream;

  /// Per-channel outputs of a multi-channel run (`channels > 1`), indexed
  /// by channel. Each entry is a complete single-channel output — ledger,
  /// telemetry, stream, fault windows, engine stats. The top level then
  /// carries the whole-experiment view: the merged report, summed engine
  /// counters, merged endorsement counts — but an empty ledger and null
  /// telemetry/stream (those stay per-channel; consumers iterate
  /// `channels`). Empty for single-channel runs.
  std::vector<ExperimentOutput> channels;
};

/// Runs the experiment to completion (every scheduled request committed or
/// early-aborted) and returns the output. Deterministic per
/// (config, schedule) — including all seeds.
Result<ExperimentOutput> RunExperiment(const ExperimentConfig& config);

}  // namespace blockoptr

#endif  // BLOCKOPTR_DRIVER_EXPERIMENT_H_
