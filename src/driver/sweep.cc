#include "driver/sweep.h"

#include <functional>
#include <utility>

#include "chaincode/chaincode.h"
#include "common/thread_pool.h"

namespace blockoptr {

std::vector<Result<ExperimentOutput>> SweepRunner::Run(
    const std::vector<ExperimentConfig>& configs) const {
  // Warm the lazily-initialized process-wide tables on this thread so
  // workers only ever read them (magic-static init is thread-safe, but
  // doing it up front keeps the first parallel run off that path).
  (void)ChaincodeRegistry::Global();

  std::vector<std::function<Result<ExperimentOutput>()>> tasks;
  tasks.reserve(configs.size());
  for (const auto& config : configs) {
    tasks.emplace_back([&config]() { return RunExperiment(config); });
  }
  return RunAll<Result<ExperimentOutput>>(options_.jobs, std::move(tasks));
}

}  // namespace blockoptr
