#ifndef BLOCKOPTR_DRIVER_PRESETS_H_
#define BLOCKOPTR_DRIVER_PRESETS_H_

// Shared experiment definitions: the paper's Table 3 synthetic experiment
// set and the helper that turns a synthetic workload + network into a
// runnable ExperimentConfig. Lives in the library (not the bench tree) so
// the figure benches, the CLI `sweep` mode, and the determinism-equivalence
// tests all iterate over the *same* configurations.

#include <string>
#include <vector>

#include "driver/experiment.h"
#include "workload/synthetic.h"

namespace blockoptr {

/// One Table 3 experiment: the Table 2 defaults with exactly one control
/// variable changed.
struct SyntheticExperimentDef {
  int number;
  std::string label;
  SyntheticConfig workload;
  NetworkConfig network;
};

/// The 15 synthetic experiments of the paper's Table 3, scaled to
/// `num_txs` transactions each. Every experiment starts from the Table 2
/// defaults (Uniform workload, P3 endorsement, 2 orgs, block count 300,
/// send rate 300, no skews) and varies exactly one control variable.
std::vector<SyntheticExperimentDef> Table3Experiments(int num_txs);

/// Builds the runnable experiment for a synthetic workload: installs
/// genchain, seeds its state, and generates the schedule.
ExperimentConfig MakeSyntheticExperiment(const SyntheticConfig& workload,
                                         const NetworkConfig& network);

}  // namespace blockoptr

#endif  // BLOCKOPTR_DRIVER_PRESETS_H_
