#ifndef BLOCKOPTR_DRIVER_PRESETS_H_
#define BLOCKOPTR_DRIVER_PRESETS_H_

// Shared experiment definitions: the paper's Table 3 synthetic experiment
// set and the helper that turns a synthetic workload + network into a
// runnable ExperimentConfig. Lives in the library (not the bench tree) so
// the figure benches, the CLI `sweep` mode, and the determinism-equivalence
// tests all iterate over the *same* configurations.

#include <string>
#include <vector>

#include "driver/experiment.h"
#include "workload/synthetic.h"

namespace blockoptr {

/// One Table 3 experiment: the Table 2 defaults with exactly one control
/// variable changed.
struct SyntheticExperimentDef {
  int number;
  std::string label;
  SyntheticConfig workload;
  NetworkConfig network;
};

/// The 15 synthetic experiments of the paper's Table 3, scaled to
/// `num_txs` transactions each. Every experiment starts from the Table 2
/// defaults (Uniform workload, P3 endorsement, 2 orgs, block count 300,
/// send rate 300, no skews) and varies exactly one control variable.
std::vector<SyntheticExperimentDef> Table3Experiments(int num_txs);

/// Builds the runnable experiment for a synthetic workload: installs
/// genchain, seeds its state, and generates the schedule.
ExperimentConfig MakeSyntheticExperiment(const SyntheticConfig& workload,
                                         const NetworkConfig& network);

/// One multi-channel experiment: a synthetic workload partitioned over
/// `channels` Fabric channels (optionally with skewed per-channel load).
struct ChannelExperimentDef {
  int number;
  std::string label;
  SyntheticConfig workload;
  NetworkConfig network;
  int channels = 4;
  std::vector<double> channel_weights;  // empty = balanced
};

/// The multi-channel preset set (`sweep --set=channels`), scaled to
/// `num_txs` transactions total: balanced sharding, cross-channel hot-key
/// contention (every channel's share hammers the same Zipf-hot keys, so
/// conflict rates rise on all channels while the shared clients saturate),
/// skewed channel load (one channel carries 4x the traffic of each other),
/// and an 8-channel scale point.
std::vector<ChannelExperimentDef> ChannelExperiments(int num_txs);

/// Builds the runnable multi-channel experiment for a preset definition.
ExperimentConfig MakeChannelExperiment(const ChannelExperimentDef& def);

}  // namespace blockoptr

#endif  // BLOCKOPTR_DRIVER_PRESETS_H_
