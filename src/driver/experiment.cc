#include "driver/experiment.h"

#include <algorithm>
#include <memory>

#include "fabric/endorsement_policy.h"
#include "fabric/network.h"
#include "reorder/fabricpp.h"
#include "reorder/fabricsharp.h"
#include "sim/simulator.h"

namespace blockoptr {

namespace {

Result<std::unique_ptr<BlockReorderer>> MakeScheduler(
    const std::string& name) {
  if (name.empty()) return std::unique_ptr<BlockReorderer>();
  if (name == "fabricpp") {
    return std::unique_ptr<BlockReorderer>(new FabricPPReorderer());
  }
  if (name == "fabricsharp") {
    return std::unique_ptr<BlockReorderer>(new FabricSharpReorderer());
  }
  return Status::InvalidArgument("unknown orderer scheduler '" + name + "'");
}

}  // namespace

Result<ExperimentOutput> RunExperiment(const ExperimentConfig& config) {
  Simulator sim;
  FabricNetwork network(&sim, config.network);

  for (const auto& name : config.chaincodes) {
    auto contract = ChaincodeRegistry::Global().Create(name);
    if (!contract.ok()) return contract.status();
    BLOCKOPTR_RETURN_NOT_OK(
        network.InstallChaincode(std::move(*contract)));
  }
  for (const auto& seed : config.seeds) {
    network.SeedState(seed.chaincode, seed.key, seed.value);
  }

  auto scheduler = MakeScheduler(config.orderer_scheduler);
  if (!scheduler.ok()) return scheduler.status();
  if (*scheduler != nullptr) network.SetReorderer(std::move(*scheduler));

  ExperimentOutput output;
  if (config.enable_telemetry) {
    output.telemetry =
        std::make_unique<Telemetry>(&sim, config.telemetry_options);
    network.set_telemetry(output.telemetry.get());
  }

  if (config.stream.enabled) {
    output.stream = std::make_unique<StreamEngine>(config.stream);
    StreamEngine* engine = output.stream.get();
    network.set_on_block_commit(
        [engine](const Block& block) { engine->OnBlockCommit(block); });
    if (config.stream.apply) {
      // The engine decides *when* (first evaluation whose active set has
      // an applicable entry); this hook decides *how* — through the same
      // config-update transactions a live operator would submit. Only the
      // two system-level recommendations have an in-band application
      // path; everything else reports false and stays advisory.
      const int num_orgs = config.network.num_orgs;
      FabricNetwork* net = &network;
      engine->set_apply_hook([net, num_orgs](const Recommendation& rec) {
        switch (rec.type) {
          case RecommendationType::kBlockSizeAdaptation: {
            if (rec.suggested_block_count == 0) return false;
            BlockCuttingConfig cutting;
            cutting.max_tx_count = rec.suggested_block_count;
            net->SubmitBlockCuttingUpdate(cutting);
            return true;
          }
          case RecommendationType::kEndorserRestructuring: {
            net->SubmitPolicyUpdate(
                EndorsementPolicy::Preset(4, num_orgs));
            return true;
          }
          default:
            return false;
        }
      });
    }
  }

  // Client manager: apply reordering / rate control to the workload.
  Schedule schedule = ClientManager::Prepare(
      config.schedule, config.client_manager,
      output.telemetry ? &output.telemetry->metrics() : nullptr);

  // Fault injection: arrival faults reshape the prepared schedule;
  // runtime faults (crashes, endorser degradation) become simulator
  // events when the injector arms below.
  FaultInjector faults(&sim, &network, config.faults);
  if (config.faults.enabled()) ApplyArrivalFaults(schedule, config.faults);

  size_t completed = 0;
  double last_commit = 0;
  network.set_on_commit([&](const Transaction& tx) {
    output.report.RecordCommit(tx);
    if (!tx.is_config) {
      ++completed;
      last_commit = std::max(last_commit, tx.commit_timestamp);
    }
  });
  network.set_on_early_abort([&](const ClientRequest&, const Status&) {
    output.report.RecordEarlyAbort();
    ++completed;
  });

  // Fail fast if the schedule references a missing contract (checked
  // before anything is scheduled, so Submit below cannot fail).
  for (const auto& req : schedule) {
    bool found =
        std::find(config.chaincodes.begin(), config.chaincodes.end(),
                  req.chaincode) != config.chaincodes.end();
    if (!found) {
      return Status::InvalidArgument("schedule references chaincode '" +
                                     req.chaincode +
                                     "' which is not installed");
    }
  }

  // The whole schedule sits in the event queue up front; pre-size the
  // engine for it. Requests are captured by reference — `schedule`
  // outlives the run loop — so arrival events carry no per-request copy.
  sim.Reserve(schedule.size() + 64);
  for (const auto& req : schedule) {
    sim.ScheduleAt(req.send_time,
                   [&network, &req]() { (void)network.Submit(req); });
  }

  if (config.faults.enabled()) faults.Arm();
  network.Start();
  if (output.telemetry && output.telemetry->sampler()) {
    // The continuous monitor: one self-re-arming tick per period. Started
    // after network setup so the first window covers real run time.
    output.telemetry->sampler()->Start();
  }

  const size_t total = schedule.size();
  while (completed < total) {
    if (!sim.Step()) {
      return Status::Internal(
          "simulation drained before all transactions completed (" +
          std::to_string(completed) + "/" + std::to_string(total) + ")");
    }
    if (sim.Now() > config.max_sim_time) {
      return Status::Internal("simulation exceeded max_sim_time");
    }
  }

  output.report.Finish(last_commit);
  if (output.stream) {
    // Flush the last partial window and drop the apply hook — the
    // network it captured dies with this function, the engine does not.
    output.stream->Finalize(sim.Now());
  }
  if (output.telemetry && output.telemetry->sampler()) {
    // Snapshot whole-run station totals and detach from the network —
    // the network and simulator die with this function, the telemetry
    // does not.
    output.telemetry->sampler()->Finalize();
  }
  if (output.telemetry) {
    if (output.telemetry->options().tracing) {
      output.report.set_stage_breakdown(
          ComputeStageBreakdown(output.telemetry->tracer()));
      // Feed every finished span into a per-stage latency histogram, so
      // quantiles are also available through the histogram path
      // (Histogram::Quantile) — e.g. in the Prometheus exposition, where
      // raw spans do not travel.
      for (const auto& span : output.telemetry->tracer().spans()) {
        output.telemetry->metrics()
            .histogram("stage." + span.category + ".seconds")
            .Observe(span.duration());
      }
    }
    // Engine-level gauges: how many events the run cost and how deep the
    // queue got. Both are deterministic per config, so they are safe to
    // snapshot (the sweep determinism harness compares full snapshots).
    output.telemetry->metrics().gauge("sim.events_processed")
        .Set(static_cast<double>(sim.num_processed()));
    output.telemetry->metrics().gauge("sim.queue_peak")
        .Set(static_cast<double>(sim.queue_peak()));
  }
  faults.FinalizeWindows(sim.Now());
  output.fault_windows = faults.windows();
  output.ledger = network.ledger();
  output.endorsement_counts = network.endorsement_counts();
  output.network = config.network;
  output.sim_end_time = sim.Now();
  output.events_processed = sim.num_processed();
  output.queue_peak = sim.queue_peak();
  return output;
}

}  // namespace blockoptr
