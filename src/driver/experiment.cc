#include "driver/experiment.h"

#include "driver/channel_run.h"
#include "driver/sharded.h"

namespace blockoptr {

Result<ExperimentOutput> RunExperiment(const ExperimentConfig& config) {
  if (config.channels > 1) return RunShardedExperiment(config);
  // Single channel: the classic path — one ChannelRun, the unbounded
  // Step() loop, bit-identical to the pre-sharding monolithic driver.
  auto run = ChannelRun::Create(config);
  if (!run.ok()) return run.status();
  BLOCKOPTR_RETURN_NOT_OK((*run)->RunToCompletion());
  return (*run)->Finish();
}

}  // namespace blockoptr
