#ifndef BLOCKOPTR_DRIVER_SWEEP_H_
#define BLOCKOPTR_DRIVER_SWEEP_H_

#include <vector>

#include "common/result.h"
#include "driver/experiment.h"

namespace blockoptr {

/// Options for a parallel experiment sweep.
struct SweepOptions {
  /// Worker threads. 1 (the default) runs every experiment inline on the
  /// calling thread — byte-identical to a hand-written serial loop. Values
  /// > 1 run experiments concurrently; <= 0 uses all hardware threads.
  int jobs = 1;
};

/// Runs batches of independent experiments, optionally in parallel.
///
/// Determinism contract: every experiment run owns *all* of its mutable
/// state — simulator, RNG streams, network, ledger, and (when enabled)
/// telemetry are constructed inside RunExperiment per run, and nothing is
/// shared between concurrent runs except immutable process-wide tables
/// (the chaincode registry and contract-variant maps, which are warmed
/// before workers start and only read afterwards). Results are gathered
/// in submission order. Consequence: the result vector is field-for-field
/// identical for any `jobs` value, and across repeated runs — simulation
/// outputs depend only on each config, never on thread scheduling.
/// This is enforced by tests/sweep_test.cc.
///
/// Callers must not mutate ChaincodeRegistry::Global() while a sweep is
/// in flight.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = SweepOptions())
      : options_(options) {}

  /// Runs every config to completion; result i corresponds to configs[i].
  std::vector<Result<ExperimentOutput>> Run(
      const std::vector<ExperimentConfig>& configs) const;

  int jobs() const { return options_.jobs; }

 private:
  SweepOptions options_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_DRIVER_SWEEP_H_
