#ifndef BLOCKOPTR_LEDGER_TRANSACTION_H_
#define BLOCKOPTR_LEDGER_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ledger/rwset.h"
#include "sim/simulator.h"

namespace blockoptr {

/// Validation outcome recorded per transaction in the ledger. Matches the
/// paper's transaction-status attribute (§4.1 attribute 7): success, MVCC
/// read conflict (MRC), phantom read conflict, endorsement policy failure.
enum class TxStatus {
  kValid = 0,
  kMvccReadConflict,
  kPhantomReadConflict,
  kEndorsementPolicyFailure,
  /// Configuration / lifecycle transaction; removed by preprocessing.
  kConfig,
};

std::string_view TxStatusName(TxStatus s);

/// The paper's derived transaction-type attribute (§4.1 attribute 8),
/// computed from the read-write set.
enum class TxType {
  kRead = 0,
  kWrite,      // blind write / insert (no read of the written key)
  kUpdate,     // read-modify-write of at least one key
  kRangeRead,
  kDelete,
};

std::string_view TxTypeName(TxType t);

/// Derives the transaction type from a read-write set. Precedence follows
/// the paper's taxonomy: delete > range read > update > write > read.
TxType DeriveTxType(const ReadWriteSet& rwset);

/// Identity of the client that invoked a transaction (paper attribute 5).
struct Invoker {
  std::string client_id;  // e.g. "Org2-client3"
  std::string org;        // e.g. "Org2"

  friend bool operator==(const Invoker&, const Invoker&) = default;
};

/// A committed transaction envelope as stored in a ledger block. Carries
/// everything BlockOptR's preprocessing extracts (paper §4.1).
struct Transaction {
  uint64_t tx_id = 0;
  std::string chaincode;              // smart-contract name
  std::string activity;               // smart-contract function: A(x)
  std::vector<std::string> args;      // function arguments
  Invoker invoker;
  std::vector<std::string> endorsers; // endorsing orgs that signed
  ReadWriteSet rwset;
  TxStatus status = TxStatus::kValid;
  SimTime client_timestamp = 0;       // when the client created the proposal
  SimTime commit_timestamp = 0;       // when the block committed
  bool is_config = false;             // channel-config / lifecycle tx

  /// Set by a reordering scheduler (Fabric++-style early abort): the
  /// stamped status is final and the validator must not re-validate.
  bool pre_aborted = false;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_LEDGER_TRANSACTION_H_
