#ifndef BLOCKOPTR_LEDGER_BLOCK_H_
#define BLOCKOPTR_LEDGER_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ledger/transaction.h"

namespace blockoptr {

/// A block of ordered transactions. Blocks are hash-chained: each block
/// records the hash of its predecessor, and `ComputeHash()` digests the
/// block contents so tampering is detectable (`Ledger::VerifyChain`).
struct Block {
  uint64_t block_num = 0;
  SimTime cut_timestamp = 0;     // when the orderer cut the block
  SimTime commit_timestamp = 0;  // when peers committed it
  uint64_t prev_hash = 0;
  uint64_t hash = 0;
  std::vector<Transaction> transactions;

  /// FNV-1a digest over block number, previous hash, and per-transaction
  /// identity/content fields. Not cryptographic — the simulation needs
  /// chain integrity, not adversarial resistance.
  uint64_t ComputeHash() const;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_LEDGER_BLOCK_H_
