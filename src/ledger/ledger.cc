#include "ledger/ledger.h"

#include <cassert>

namespace blockoptr {

uint64_t Ledger::Append(Block block) {
  block.block_num = blocks_.size();
  block.prev_hash = blocks_.empty() ? 0 : blocks_.back().hash;
  block.hash = block.ComputeHash();
  num_txs_ += block.transactions.size();
  blocks_.push_back(std::move(block));
  return blocks_.back().block_num;
}

const Block& Ledger::GetBlock(uint64_t block_num) const {
  assert(block_num < blocks_.size());
  return blocks_[block_num];
}

void Ledger::ForEachTransaction(
    const std::function<void(const Block&, const Transaction&)>& fn) const {
  for (const auto& b : blocks_) {
    for (const auto& tx : b.transactions) fn(b, tx);
  }
}

Status Ledger::VerifyChain() const {
  uint64_t prev = 0;
  for (const auto& b : blocks_) {
    if (b.prev_hash != prev) {
      return Status::Internal("broken prev-hash link at block " +
                              std::to_string(b.block_num));
    }
    if (b.ComputeHash() != b.hash) {
      return Status::Internal("hash mismatch at block " +
                              std::to_string(b.block_num));
    }
    prev = b.hash;
  }
  return Status::OK();
}

double Ledger::AverageBlockSize() const {
  if (blocks_.empty()) return 0.0;
  return static_cast<double>(num_txs_) / static_cast<double>(blocks_.size());
}

}  // namespace blockoptr
