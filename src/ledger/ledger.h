#ifndef BLOCKOPTR_LEDGER_LEDGER_H_
#define BLOCKOPTR_LEDGER_LEDGER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "ledger/block.h"

namespace blockoptr {

/// The append-only distributed ledger: the chain of committed blocks. In
/// Fabric *every* transaction — failed or successful — is appended; only
/// the validation flag differs. That property is what makes the ledger a
/// complete log for BlockOptR's analysis (paper §4).
class Ledger {
 public:
  Ledger() = default;

  /// Appends `block` after assigning its number, prev-hash link and hash.
  /// Returns the assigned block number.
  uint64_t Append(Block block);

  uint64_t NumBlocks() const { return blocks_.size(); }
  uint64_t NumTransactions() const { return num_txs_; }

  const Block& GetBlock(uint64_t block_num) const;
  const std::vector<Block>& blocks() const { return blocks_; }

  /// Visits every transaction in commit order.
  void ForEachTransaction(
      const std::function<void(const Block&, const Transaction&)>& fn) const;

  /// Re-computes every hash link; fails if any block was tampered with.
  Status VerifyChain() const;

  /// Average number of transactions per block — the paper's B_sizeavg.
  double AverageBlockSize() const;

 private:
  std::vector<Block> blocks_;
  uint64_t num_txs_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_LEDGER_LEDGER_H_
