#include "ledger/rwset.h"

#include <algorithm>

namespace blockoptr {

namespace {
void SortDedup(std::vector<std::string>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}
}  // namespace

std::vector<std::string> ReadWriteSet::AccessedKeys() const {
  std::vector<std::string> keys = ReadKeys();
  for (const auto& w : writes) keys.push_back(w.key);
  SortDedup(keys);
  return keys;
}

std::vector<std::string> ReadWriteSet::ReadKeys() const {
  std::vector<std::string> keys;
  keys.reserve(reads.size());
  for (const auto& r : reads) keys.push_back(r.key);
  for (const auto& rq : range_queries) {
    for (const auto& r : rq.results) keys.push_back(r.key);
  }
  SortDedup(keys);
  return keys;
}

std::vector<std::string> ReadWriteSet::WriteKeys() const {
  std::vector<std::string> keys;
  keys.reserve(writes.size());
  for (const auto& w : writes) keys.push_back(w.key);
  SortDedup(keys);
  return keys;
}

bool ReadWriteSet::HasWriteTo(const std::string& key) const {
  return std::any_of(writes.begin(), writes.end(),
                     [&](const WriteItem& w) { return w.key == key; });
}

bool ReadWriteSet::HasReadOf(const std::string& key) const {
  if (std::any_of(reads.begin(), reads.end(),
                  [&](const ReadItem& r) { return r.key == key; })) {
    return true;
  }
  for (const auto& rq : range_queries) {
    if (std::any_of(rq.results.begin(), rq.results.end(),
                    [&](const ReadItem& r) { return r.key == key; })) {
      return true;
    }
  }
  return false;
}

}  // namespace blockoptr
