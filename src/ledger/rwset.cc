#include "ledger/rwset.h"

#include <algorithm>
#include <iterator>

namespace blockoptr {

namespace {
void SortDedup(std::vector<std::string>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}
}  // namespace

std::vector<std::string> ReadWriteSet::AccessedKeys() const {
  std::vector<std::string> keys = ReadKeys();
  for (const auto& w : writes) keys.push_back(w.key);
  SortDedup(keys);
  return keys;
}

std::vector<std::string> ReadWriteSet::ReadKeys() const {
  std::vector<std::string> keys;
  keys.reserve(reads.size());
  for (const auto& r : reads) keys.push_back(r.key);
  for (const auto& rq : range_queries) {
    for (const auto& r : rq.results) keys.push_back(r.key);
  }
  SortDedup(keys);
  return keys;
}

std::vector<std::string> ReadWriteSet::WriteKeys() const {
  std::vector<std::string> keys;
  keys.reserve(writes.size());
  for (const auto& w : writes) keys.push_back(w.key);
  SortDedup(keys);
  return keys;
}

namespace {
void SortDedupIds(std::vector<KeyId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}
}  // namespace

void ReadWriteSet::EnsureIdViews() const {
  size_t range_results = 0;
  for (const auto& rq : range_queries) range_results += rq.results.size();
  KeyIdViews& c = id_views;
  if (c.reads_seen == reads.size() && c.writes_seen == writes.size() &&
      c.ranges_seen == range_queries.size() &&
      c.range_results_seen == range_results) {
    return;
  }
  Interner& interner = GlobalKeyInterner();
  c.read_ids.clear();
  c.read_ids.reserve(reads.size() + range_results);
  for (const auto& r : reads) c.read_ids.push_back(interner.Intern(r.key));
  for (const auto& rq : range_queries) {
    for (const auto& r : rq.results) {
      c.read_ids.push_back(interner.Intern(r.key));
    }
  }
  SortDedupIds(c.read_ids);
  c.write_ids.clear();
  c.write_ids.reserve(writes.size());
  for (const auto& w : writes) c.write_ids.push_back(interner.Intern(w.key));
  SortDedupIds(c.write_ids);
  c.accessed_ids.clear();
  c.accessed_ids.reserve(c.read_ids.size() + c.write_ids.size());
  std::set_union(c.read_ids.begin(), c.read_ids.end(), c.write_ids.begin(),
                 c.write_ids.end(), std::back_inserter(c.accessed_ids));
  c.reads_seen = reads.size();
  c.writes_seen = writes.size();
  c.ranges_seen = range_queries.size();
  c.range_results_seen = range_results;
}

const std::vector<KeyId>& ReadWriteSet::ReadKeyIds() const {
  EnsureIdViews();
  return id_views.read_ids;
}

const std::vector<KeyId>& ReadWriteSet::WriteKeyIds() const {
  EnsureIdViews();
  return id_views.write_ids;
}

const std::vector<KeyId>& ReadWriteSet::AccessedKeyIds() const {
  EnsureIdViews();
  return id_views.accessed_ids;
}

bool ReadWriteSet::HasWriteTo(const std::string& key) const {
  return std::any_of(writes.begin(), writes.end(),
                     [&](const WriteItem& w) { return w.key == key; });
}

bool ReadWriteSet::HasReadOf(const std::string& key) const {
  if (std::any_of(reads.begin(), reads.end(),
                  [&](const ReadItem& r) { return r.key == key; })) {
    return true;
  }
  for (const auto& rq : range_queries) {
    if (std::any_of(rq.results.begin(), rq.results.end(),
                    [&](const ReadItem& r) { return r.key == key; })) {
      return true;
    }
  }
  return false;
}

}  // namespace blockoptr
