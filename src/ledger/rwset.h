#ifndef BLOCKOPTR_LEDGER_RWSET_H_
#define BLOCKOPTR_LEDGER_RWSET_H_

#include <optional>
#include <string>
#include <vector>

#include "statedb/versioned_store.h"

namespace blockoptr {

/// One key read during simulation/endorsement, with the committed version
/// observed at that time (nullopt when the key did not exist).
struct ReadItem {
  std::string key;
  std::optional<Version> version;

  friend bool operator==(const ReadItem&, const ReadItem&) = default;
};

/// One key written (or deleted) by the transaction.
struct WriteItem {
  std::string key;
  std::string value;
  bool is_delete = false;

  friend bool operator==(const WriteItem&, const WriteItem&) = default;
};

/// A range query executed during endorsement: the bounds plus the exact
/// (key, version) results observed. Validation re-executes the range
/// against commit-time state; any difference is a *phantom read conflict*.
struct RangeQueryInfo {
  std::string start_key;
  std::string end_key;  // empty = unbounded
  std::vector<ReadItem> results;

  friend bool operator==(const RangeQueryInfo&, const RangeQueryInfo&) =
      default;
};

/// The read-write set produced by endorsing (simulating) a transaction.
/// This is the object Fabric's validators check and the primary artefact
/// BlockOptR's analysis consumes (paper §4.1 attribute 6).
struct ReadWriteSet {
  std::vector<ReadItem> reads;
  std::vector<WriteItem> writes;
  std::vector<RangeQueryInfo> range_queries;

  friend bool operator==(const ReadWriteSet&, const ReadWriteSet&) = default;

  /// All keys accessed (reads, writes, and range-query results), deduped,
  /// sorted. This is RWS(x) in the paper's formalization.
  std::vector<std::string> AccessedKeys() const;

  /// Keys in the read set (including range results): RS(x).
  std::vector<std::string> ReadKeys() const;

  /// Keys in the write set: WS(x).
  std::vector<std::string> WriteKeys() const;

  bool HasWriteTo(const std::string& key) const;
  bool HasReadOf(const std::string& key) const;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_LEDGER_RWSET_H_
