#ifndef BLOCKOPTR_LEDGER_RWSET_H_
#define BLOCKOPTR_LEDGER_RWSET_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/interner.h"
#include "statedb/versioned_store.h"

namespace blockoptr {

/// One key read during simulation/endorsement, with the committed version
/// observed at that time (nullopt when the key did not exist).
struct ReadItem {
  std::string key;
  std::optional<Version> version;
  /// Lazily cached interned id of `key` (ids are process-stable, so a
  /// cached value never goes stale; copies may carry it). Filled by the
  /// validator's first lookup; excluded from equality.
  mutable KeyId cached_id = kInvalidKeyId;

  friend bool operator==(const ReadItem& a, const ReadItem& b) {
    return a.key == b.key && a.version == b.version;
  }
};

/// One key written (or deleted) by the transaction.
struct WriteItem {
  std::string key;
  std::string value;
  bool is_delete = false;
  /// Same contract as ReadItem::cached_id.
  mutable KeyId cached_id = kInvalidKeyId;

  friend bool operator==(const WriteItem& a, const WriteItem& b) {
    return a.key == b.key && a.value == b.value && a.is_delete == b.is_delete;
  }
};

/// A range query executed during endorsement: the bounds plus the exact
/// (key, version) results observed. Validation re-executes the range
/// against commit-time state; any difference is a *phantom read conflict*.
struct RangeQueryInfo {
  std::string start_key;
  std::string end_key;  // empty = unbounded
  std::vector<ReadItem> results;

  friend bool operator==(const RangeQueryInfo&, const RangeQueryInfo&) =
      default;
};

/// The read-write set produced by endorsing (simulating) a transaction.
/// This is the object Fabric's validators check and the primary artefact
/// BlockOptR's analysis consumes (paper §4.1 attribute 6).
struct ReadWriteSet {
  std::vector<ReadItem> reads;
  std::vector<WriteItem> writes;
  std::vector<RangeQueryInfo> range_queries;

  /// Lazily built, cached sorted-unique KeyId views over the same key
  /// sets as ReadKeys()/WriteKeys()/AccessedKeys(). Invalidated by size:
  /// the cache is rebuilt whenever the number of reads, writes, range
  /// queries, or range results has changed since it was built (every
  /// mutation path in the codebase appends items; replacing a key
  /// in place without changing any count is not supported). Not
  /// thread-safe: views must be built and read from the owning thread.
  struct KeyIdViews {
    std::vector<KeyId> read_ids;
    std::vector<KeyId> write_ids;
    std::vector<KeyId> accessed_ids;
    size_t reads_seen = static_cast<size_t>(-1);
    size_t writes_seen = static_cast<size_t>(-1);
    size_t ranges_seen = static_cast<size_t>(-1);
    size_t range_results_seen = static_cast<size_t>(-1);
  };
  mutable KeyIdViews id_views;

  // Equality is over the recorded data only, never the derived ID cache.
  friend bool operator==(const ReadWriteSet& a, const ReadWriteSet& b) {
    return a.reads == b.reads && a.writes == b.writes &&
           a.range_queries == b.range_queries;
  }

  /// All keys accessed (reads, writes, and range-query results), deduped,
  /// sorted. This is RWS(x) in the paper's formalization.
  std::vector<std::string> AccessedKeys() const;

  /// Keys in the read set (including range results): RS(x).
  std::vector<std::string> ReadKeys() const;

  /// Keys in the write set: WS(x).
  std::vector<std::string> WriteKeys() const;

  /// Interned-ID views of RS(x)/WS(x)/RWS(x): sorted by KeyId, deduped,
  /// cached across calls (the string accessors above re-sort on every
  /// call and allocate a fresh vector; the hot loops use these instead).
  /// ID sort order is NOT lexicographic key order — use the views for
  /// membership, merge, and intersection only.
  const std::vector<KeyId>& ReadKeyIds() const;
  const std::vector<KeyId>& WriteKeyIds() const;
  const std::vector<KeyId>& AccessedKeyIds() const;

  bool HasWriteTo(const std::string& key) const;
  bool HasReadOf(const std::string& key) const;

 private:
  void EnsureIdViews() const;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_LEDGER_RWSET_H_
