#include "ledger/transaction.h"

#include <algorithm>

namespace blockoptr {

std::string_view TxStatusName(TxStatus s) {
  switch (s) {
    case TxStatus::kValid:
      return "VALID";
    case TxStatus::kMvccReadConflict:
      return "MVCC_READ_CONFLICT";
    case TxStatus::kPhantomReadConflict:
      return "PHANTOM_READ_CONFLICT";
    case TxStatus::kEndorsementPolicyFailure:
      return "ENDORSEMENT_POLICY_FAILURE";
    case TxStatus::kConfig:
      return "CONFIG";
  }
  return "UNKNOWN";
}

std::string_view TxTypeName(TxType t) {
  switch (t) {
    case TxType::kRead:
      return "read";
    case TxType::kWrite:
      return "write";
    case TxType::kUpdate:
      return "update";
    case TxType::kRangeRead:
      return "range_read";
    case TxType::kDelete:
      return "delete";
  }
  return "unknown";
}

TxType DeriveTxType(const ReadWriteSet& rwset) {
  const bool has_delete =
      std::any_of(rwset.writes.begin(), rwset.writes.end(),
                  [](const WriteItem& w) { return w.is_delete; });
  if (has_delete) return TxType::kDelete;
  if (!rwset.range_queries.empty()) return TxType::kRangeRead;
  if (rwset.writes.empty()) return TxType::kRead;
  // A write that also reads the same key is an update (read-modify-write).
  for (const auto& w : rwset.writes) {
    if (rwset.HasReadOf(w.key)) return TxType::kUpdate;
  }
  return TxType::kWrite;
}

}  // namespace blockoptr
