#include "ledger/block.h"

#include <string_view>

namespace blockoptr {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void HashBytes(uint64_t& h, std::string_view bytes) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
}

void HashU64(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
}

}  // namespace

uint64_t Block::ComputeHash() const {
  uint64_t h = kFnvOffset;
  HashU64(h, block_num);
  HashU64(h, prev_hash);
  for (const auto& tx : transactions) {
    HashU64(h, tx.tx_id);
    HashBytes(h, tx.chaincode);
    HashBytes(h, tx.activity);
    for (const auto& a : tx.args) HashBytes(h, a);
    HashBytes(h, tx.invoker.client_id);
    HashU64(h, static_cast<uint64_t>(tx.status));
    for (const auto& r : tx.rwset.reads) {
      HashBytes(h, r.key);
      HashU64(h, r.version ? r.version->block_num : ~0ULL);
      HashU64(h, r.version ? r.version->tx_num : ~0ULL);
    }
    for (const auto& w : tx.rwset.writes) {
      HashBytes(h, w.key);
      HashBytes(h, w.value);
      HashU64(h, w.is_delete ? 1 : 0);
    }
  }
  return h;
}

}  // namespace blockoptr
