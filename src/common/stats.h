#ifndef BLOCKOPTR_COMMON_STATS_H_
#define BLOCKOPTR_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace blockoptr {

/// Streaming summary statistics (Welford's algorithm): count, mean,
/// variance, min, max. Used for latency/throughput reporting.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1); 0 if count < 2
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples for exact percentile queries. Suitable for the
/// experiment scale in this repo (tens of thousands of samples).
class PercentileTracker {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  /// Exact percentile by nearest-rank on the sorted samples; p in [0, 100].
  /// Returns 0 when empty.
  double Percentile(double p);

  double Median() { return Percentile(50.0); }

  /// Merges another tracker's samples into this one (exact percentiles
  /// over the union — sample order does not affect nearest-rank queries).
  void Merge(const PercentileTracker& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Fixed-width bucketing of values over [0, +inf), used for the rate /
/// failure-rate distributions over time intervals (paper metrics Trd_i and
/// Frd_i with user-configurable interval size `ins`).
class IntervalCounter {
 public:
  /// `interval` is the bucket width (e.g. seconds). Must be > 0.
  explicit IntervalCounter(double interval) : interval_(interval) {}

  /// Adds an observation at coordinate `t` (e.g. a timestamp).
  void Add(double t);

  double interval() const { return interval_; }
  size_t num_intervals() const { return counts_.size(); }

  /// Count in bucket `i` (0 for out-of-range i).
  uint64_t CountAt(size_t i) const;

  /// Count divided by interval width — a rate per unit.
  double RateAt(size_t i) const;

  const std::vector<uint64_t>& counts() const { return counts_; }

  /// Merges another counter bucketed at the same interval width: buckets
  /// are absolute (indexed by t / interval), so the merge is an
  /// elementwise sum and is order-insensitive.
  void Merge(const IntervalCounter& other);

  /// Drops every bucket (capacity retained) — back to the
  /// just-constructed state.
  void Clear() { counts_.clear(); }

 private:
  double interval_;
  std::vector<uint64_t> counts_;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_COMMON_STATS_H_
