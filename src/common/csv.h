#ifndef BLOCKOPTR_COMMON_CSV_H_
#define BLOCKOPTR_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace blockoptr {

/// RFC-4180-style CSV writer. Fields containing commas, quotes, or newlines
/// are quoted, embedded quotes doubled. The blockchain-log and event-log
/// exporters (paper §4.1–4.2) use this to emit analysis-ready CSV.
class CsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row; escapes each field as needed.
  void WriteRow(const std::vector<std::string>& fields);

  /// Escapes one field per RFC 4180 (exposed for testing).
  static std::string EscapeField(std::string_view field);

 private:
  std::ostream& out_;
};

/// Minimal CSV parser matching the writer's dialect. Parses quoted fields,
/// doubled quotes, and embedded newlines inside quotes.
class CsvReader {
 public:
  /// Parses an entire CSV document into rows of fields.
  static Result<std::vector<std::vector<std::string>>> ParseDocument(
      std::string_view text);

  /// Parses a single line that is known to contain no embedded newlines.
  static Result<std::vector<std::string>> ParseLine(std::string_view line);
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_COMMON_CSV_H_
