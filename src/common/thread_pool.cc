#include "common/thread_pool.h"

#include <algorithm>

namespace blockoptr {

namespace {

/// The pool whose worker is currently executing on this thread, if any.
/// Used only to reject nested submission into the *same* pool.
thread_local const ThreadPool* current_worker_pool = nullptr;

}  // namespace

int ThreadPool::ResolveThreads(int jobs) {
  if (jobs > 0) return jobs;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  const int n = ResolveThreads(threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::CheckNotWorker() const {
  if (current_worker_pool == this) {
    throw std::logic_error(
        "ThreadPool: nested Submit from a worker of the same pool is not "
        "supported (it can deadlock once all workers block on futures)");
  }
}

void ThreadPool::WorkerLoop() {
  current_worker_pool = this;
  for (;;) {
    InlineCallback task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const int threads = ThreadPool::ResolveThreads(jobs);
  if (threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(static_cast<int>(std::min(static_cast<size_t>(threads), n)));
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::future<void>> done;
  done.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    done.push_back(pool.Submit([&fn, &errors, i]() {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }));
  }
  for (auto& f : done) f.get();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace blockoptr
