#ifndef BLOCKOPTR_COMMON_RESULT_H_
#define BLOCKOPTR_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace blockoptr {

/// A value-or-error return type in the style of arrow::Result. Either holds
/// a `T` (and an OK status) or a non-OK `Status`.
///
///   Result<int> Parse(std::string_view s);
///   ...
///   Result<int> r = Parse("42");
///   if (!r.ok()) return r.status();
///   int v = *r;
template <typename T>
class Result {
 public:
  /// Constructs a result holding a value (implicit, like arrow::Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status (implicit).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors. Must not be called on a failed result.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this result failed.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a `Result` expression, otherwise assigns the
/// unwrapped value to `lhs`. Usage:
///   BLOCKOPTR_ASSIGN_OR_RETURN(auto v, ComputeThing());
#define BLOCKOPTR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value();

#define BLOCKOPTR_ASSIGN_OR_RETURN(lhs, expr)                             \
  BLOCKOPTR_ASSIGN_OR_RETURN_IMPL(                                        \
      BLOCKOPTR_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define BLOCKOPTR_CONCAT_INNER_(a, b) a##b
#define BLOCKOPTR_CONCAT_(a, b) BLOCKOPTR_CONCAT_INNER_(a, b)

}  // namespace blockoptr

#endif  // BLOCKOPTR_COMMON_RESULT_H_
