#ifndef BLOCKOPTR_COMMON_CHUNK_POOL_H_
#define BLOCKOPTR_COMMON_CHUNK_POOL_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace blockoptr {

/// A grow-only pool with *stable element addresses*: storage is a vector
/// of fixed-size contiguous chunks, so growing never relocates existing
/// elements (unlike std::vector) and costs one allocation per
/// `kChunkSize` elements (unlike std::deque, which with large elements
/// degenerates to one allocation — and one scattered node — per element).
/// Built for the scheduler's callback slot pools, where elements are
/// invoked in place and may grow the pool mid-invocation.
///
/// Elements are value-initialized on growth and never destroyed until the
/// pool itself dies; vacancy is managed by the caller (free lists of
/// indices).
template <typename T, std::size_t kChunkSizeLog2 = 10>
class ChunkPool {
 public:
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkSizeLog2;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  std::size_t size() const { return size_; }

  T& operator[](std::size_t i) {
    return chunks_[i >> kChunkSizeLog2][i & kChunkMask];
  }
  const T& operator[](std::size_t i) const {
    return chunks_[i >> kChunkSizeLog2][i & kChunkMask];
  }

  /// Appends a value-initialized element and returns its index.
  std::size_t emplace_back() {
    if ((size_ & kChunkMask) == 0 && (size_ >> kChunkSizeLog2) ==
                                         chunks_.size()) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
    return size_++;
  }

  /// Pre-grows to at least `n` elements (see emplace_back for the
  /// initialization contract).
  void Grow(std::size_t n) {
    while (size_ < n) emplace_back();
  }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace blockoptr

#endif  // BLOCKOPTR_COMMON_CHUNK_POOL_H_
